//! Umbrella crate for the HMPI reproduction workspace.
//!
//! Re-exports the member crates so the root examples and end-to-end tests
//! (and downstream users who want a single dependency) can reach everything:
//!
//! * [`hetsim`] — the heterogeneous network-of-computers model;
//! * [`mpisim`] — the in-process MPI subset with virtual time;
//! * [`perfmodel`] — the performance-model definition language;
//! * [`hmpi`] — the paper's contribution: `Recon`, `Timeof`, `Group_create`;
//! * [`apps`] — the paper's two applications (EM3D and matrix
//!   multiplication) with plain-MPI baselines.
//!
//! See `README.md` for the tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use hetsim;
pub use hmpi;
pub use hmpi_apps as apps;
pub use mpisim;
pub use perfmodel;
