//! Heterogeneous matrix multiplication on the paper's LAN: the Figure 8
//! program end to end.
//!
//! Shows the `HMPI_Timeof` sweep choosing the generalised block size, the
//! heterogeneous generalised-block distribution it implies, and the ≈3×
//! win over the homogeneous MPI baseline the paper reports in Figure 11.
//!
//! ```text
//! cargo run --release --example heterogeneous_matmul
//! ```

use hetsim::Cluster;
use hmpi_apps::matmul::{
    run_hmpi, run_mpi, GeneralizedBlockDist,
};
use hmpi_apps::matmul::block::{serial_matmul, BlockMatrix};
use hmpi_apps::matmul::driver::{SEED_A, SEED_B};
use std::sync::Arc;

fn main() {
    let m = 3; // 3x3 processor grid
    let n = 18; // matrix size in r-blocks
    let r = 9; // the paper's optimal r
    let cluster = Arc::new(Cluster::paper_lan_matmul());

    println!("C = A x B, {0}x{0} blocks of {1}x{1} doubles, 3x3 grid", n, r);

    let mpi = run_mpi(cluster.clone(), m, n, r, Some(m));
    println!("\nhomogeneous MPI distribution:    {:.3} virtual s", mpi.time);

    let hmpi = run_hmpi(cluster, m, n, r, None);
    println!(
        "HMPI heterogeneous distribution: {:.3} virtual s  (Timeof chose l = {})",
        hmpi.time, hmpi.l
    );
    println!("speedup: {:.2}x", mpi.time / hmpi.time);

    // Show the distribution the speeds imply.
    let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
    let mut grid_speeds = vec![speeds[0]];
    let mut rest: Vec<f64> = speeds[1..].to_vec();
    rest.sort_by(|a, b| b.total_cmp(a));
    grid_speeds.extend(rest);
    let dist = GeneralizedBlockDist::heterogeneous(m, hmpi.l, &grid_speeds);
    println!("\ngeneralised block ({0} x {0} r-blocks) partition:", hmpi.l);
    println!("  column widths w = {:?}", dist.w);
    for j in 0..m {
        println!("  column {j}: heights {:?}", dist.heights[j]);
    }
    println!("  (areas proportional to the grid speeds {grid_speeds:?})");

    // Verify the distributed product against the serial reference.
    let want = serial_matmul(
        &BlockMatrix::deterministic(n, r, SEED_A),
        &BlockMatrix::deterministic(n, r, SEED_B),
    );
    let got = hmpi.c.expect("gathered result");
    let max_err = got
        .data()
        .iter()
        .zip(want.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        ;
    println!("\nmax |error| vs serial reference: {max_err:.3e}");
    assert!(max_err < 1e-9);
    println!("distributed product is exact — only the schedule differs.");
}
