//! Quickstart: the minimal HMPI program.
//!
//! Builds a small heterogeneous cluster model, describes a trivial
//! performance model in the paper's model-definition language, and lets
//! `HMPI_Group_create` pick the processes — then the members communicate
//! over the group's MPI communicator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hetsim::{Link, Protocol, TopologyBuilder};
use hmpi::{HmpiRuntime, RuntimeConfig};
use mpisim::ReduceOp;
use perfmodel::{CompiledModel, ParamValue};

/// A tiny model in the paper's language: `p` processors with volumes from
/// the `work` vector, a ring of communication, one bulk-synchronous step.
const MODEL: &str = r"
algorithm Ring(int p, int work[p], int bytes) {
  coord I=p;
  node {I>=0: bench*(work[I]);};
  link (L=p) {
    I>=0 && L == (I+1)%p : length*(bytes) [I]->[L];
  };
  parent[0];
  scheme {
    int i;
    par (i = 0; i < p; i++) 100%%[i]->[(i+1)%p];
    par (i = 0; i < p; i++) 100%%[i];
  };
}
";

fn main() {
    // A 5-machine heterogeneous network: one fast, one slow, three medium.
    // Declared through the topology builder; a flat one-level topology is
    // bit-identical to the classic flat cluster, and adding `.site()` /
    // `.switch()` levels later needs no other change.
    let topology = TopologyBuilder::new()
        .node("host", 50.0)
        .node("bigiron", 200.0)
        .node("ws1", 80.0)
        .node("ws2", 80.0)
        .node("old486", 5.0)
        .intra_switch(Link::with_defaults(Protocol::Tcp))
        .build();

    // Compile the performance model once (the paper's "compiler" step).
    let compiled = CompiledModel::compile(MODEL).expect("model parses");

    let runtime = HmpiRuntime::from_topology(topology, RuntimeConfig::new());
    let report = runtime.run(|h| {
        // HMPI_Recon: measure actual speeds (here they equal base speeds).
        h.recon(10.0).expect("recon");

        // Three abstract processors with uneven work; HMPI_Group_create
        // should pick bigiron for the heavy one and skip old486 entirely.
        let model = compiled
            .instantiate(&[
                ParamValue::Int(3),
                ParamValue::Array(vec![100, 400, 150]),
                ParamValue::Int(64 * 1024),
            ])
            .expect("instantiate");

        if h.is_host() {
            println!(
                "predicted best execution time: {:.3} virtual seconds",
                h.timeof(&model).expect("timeof")
            );
        }

        let group = h.group_create(&model).expect("group_create");
        if h.is_host() {
            println!(
                "selected world ranks (by abstract processor): {:?}",
                group.members()
            );
        }

        let sum = if let Some(comm) = group.comm() {
            // Control is handed over to MPI: a normal collective.
            let s = comm
                .allreduce_one_i64(h.rank() as i64, ReduceOp::Sum)
                .expect("allreduce");
            Some(s)
        } else {
            None
        };

        if group.is_member() {
            h.group_free(group).expect("group_free");
        }
        h.finalize().expect("finalize");
        sum
    });

    for (rank, sum) in report.results.iter().enumerate() {
        match sum {
            Some(s) => println!("rank {rank}: member, sum of member ranks = {s}"),
            None => println!("rank {rank}: not selected"),
        }
    }
    println!("total virtual time: {:.4} s", report.makespan.as_secs());
}
