//! N-body simulation (extension application): irregular body groups on the
//! paper's heterogeneous LAN, MPI vs HMPI.
//!
//! Unlike EM3D's sparse neighbour exchange, gravity is all-pairs: every
//! step each process allgathers every group's positions. The HMPI win comes
//! purely from pairing the big groups with the fast machines.
//!
//! ```text
//! cargo run --release --example nbody_simulation
//! ```

use hetsim::Cluster;
use hmpi_repro::apps::nbody::{run_hmpi, run_mpi, serial_run, Bodies, NbodyConfig};
use std::sync::Arc;

fn main() {
    let cfg = NbodyConfig::ramp(9, 30, 3.0, 0xB0D1);
    let niter = 5;
    let k = 10;

    println!(
        "N-body: {} groups, sizes {:?}, {} bodies total",
        cfg.p(),
        cfg.bodies_per_group,
        cfg.total()
    );

    let mpi = run_mpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, niter, k);
    println!("\nplain MPI (group i on rank i): {:.3} virtual s", mpi.time);

    let hmpi = run_hmpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, niter, k);
    println!("HMPI (selected group):         {:.3} virtual s", hmpi.time);
    println!("speedup: {:.2}x", mpi.time / hmpi.time);

    println!("\nassignment (group -> world rank):");
    let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
    for (g, &world) in hmpi.members.iter().enumerate() {
        println!(
            "  group {g} ({:>3} bodies) -> rank {world} (speed {:>5.0})",
            cfg.bodies_per_group[g], speeds[world]
        );
    }

    // Verify against the serial reference.
    let want = serial_run(&cfg, niter);
    let got = Bodies::concat(&hmpi.groups);
    let max_err = got
        .pos
        .iter()
        .zip(&want.pos)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |position error| vs serial reference: {max_err:.3e}");
    assert!(max_err < 1e-9);
    println!("trajectories are identical — only the schedule differs.");
}
