//! EM3D on the paper's 9-workstation LAN: plain MPI vs HMPI, side by side.
//!
//! Reproduces the Section 3 / Section 5 comparison: the same irregular
//! field simulation runs once with the rank-order MPI group (Figure 3) and
//! once with the HMPI-selected group (Figure 5), then prints both times,
//! the selected assignment, and a correctness check against the serial
//! reference.
//!
//! ```text
//! cargo run --release --example em3d_simulation
//! ```

use hetsim::Cluster;
use hmpi_apps::em3d::{run_hmpi, run_mpi, serial_run, Em3dConfig, Em3dSystem};
use std::sync::Arc;

fn main() {
    let p = 9;
    let niter = 5;
    let k = 10;
    let cfg = Em3dConfig::ramp(p, 120, 1.6, 0xE3D);
    let cluster = Arc::new(Cluster::paper_lan_em3d());

    println!("EM3D: {p} sub-bodies, sizes {:?}", cfg.nodes_per_body);
    println!(
        "cluster speeds: {:?}",
        cluster.nodes().iter().map(|n| n.base_speed).collect::<Vec<_>>()
    );

    let mpi = run_mpi(cluster.clone(), &cfg, niter);
    println!("\nplain MPI  (body i on rank i):   {:.3} virtual s", mpi.time);

    let hmpi = run_hmpi(cluster, &cfg, niter, k);
    println!("HMPI       (selected group):     {:.3} virtual s", hmpi.time);
    println!("speedup: {:.2}x", mpi.time / hmpi.time);
    println!(
        "HMPI predicted one iteration at {:.4} s before running anything",
        hmpi.predicted.unwrap()
    );
    println!("\nassignment (sub-body -> world rank):");
    for (body, &world) in hmpi.members.iter().enumerate() {
        println!(
            "  body {body} ({:>4} nodes) -> rank {world} (speed {:>5.0})",
            cfg.nodes_per_body[body],
            Cluster::paper_lan_em3d().node(hetsim::NodeId(world)).base_speed
        );
    }

    // Verify both runs against the serial reference.
    let serial = serial_run(Em3dSystem::generate(&cfg), niter);
    for (run, name) in [(&mpi, "MPI"), (&hmpi, "HMPI")] {
        let mut max_err = 0.0f64;
        for (body, (se, sh)) in serial.iter().enumerate() {
            let (e, h) = &run.fields[body];
            for (a, b) in e.iter().zip(se).chain(h.iter().zip(sh)) {
                max_err = max_err.max((a - b).abs());
            }
        }
        println!("{name} max |error| vs serial reference: {max_err:.3e}");
        assert!(max_err < 1e-9, "{name} diverged from the serial reference");
    }
    println!("\nboth runs reproduce the serial fields exactly — only the time differs.");
}
