//! `HMPI_Recon` under dynamic external load.
//!
//! The paper's third HNOC challenge: workstations are multi-user, so "the
//! actual speeds of processors can dynamically change dependent on the
//! external computations". This example puts a heavy external job on the
//! fastest machine halfway through, and shows that a group created from
//! stale estimates is slow while one created after a fresh `HMPI_Recon`
//! routes around the loaded machine.
//!
//! ```text
//! cargo run --release --example dynamic_load_recon
//! ```

use hetsim::{Link, LoadModel, Processor, Protocol, SimTime, TopologyBuilder};
use hmpi::{HmpiRuntime, RuntimeConfig};
use perfmodel::{ModelBuilder, PerformanceModel};

fn main() {
    // "bigiron" loses 90% of its capacity from t = 100 on (another user's
    // job arrives).
    let topology = TopologyBuilder::new()
        .node("host", 50.0)
        .processor(
            Processor::new("bigiron", 200.0).with_load(LoadModel::Step {
                start: SimTime::from_secs(100.0),
                end: SimTime::from_secs(1e9),
                fraction: 0.9,
            }),
        )
        .node("steady", 100.0)
        .node("backup", 90.0)
        .intra_switch(Link::with_defaults(Protocol::Tcp))
        .build();

    let runtime = HmpiRuntime::from_topology(topology, RuntimeConfig::new());
    let report = runtime.run(|h| {
        let model = ModelBuilder::new("one-heavy-task")
            .processors(2)
            .volumes(vec![50.0, 2000.0])
            .parent(0)
            .build()
            .expect("model");

        // Phase 1: before the load arrives. Recon sees bigiron at 200.
        h.recon(10.0).expect("recon");
        let g1 = h.group_create(&model).expect("create");
        let pick1 = g1.members()[1];
        let t0 = h.now();
        if let Some(comm) = g1.comm() {
            comm.compute(model.volumes()[comm.rank()]);
            comm.barrier().expect("barrier");
        }
        let phase1 = (h.now() - t0).as_secs();
        if g1.is_member() {
            h.group_free(g1).expect("free");
        }
        h.finalize().expect("sync");

        // Let virtual time pass the load onset on every rank.
        let here = h.now().as_secs();
        if here < 120.0 {
            h.compute((120.0 - here) * h.process().cluster().speed_at(h.node(), h.now()));
        }
        h.finalize().expect("sync");

        // Phase 2a: stale estimates still claim bigiron is fastest.
        let g2 = h.group_create(&model).expect("create");
        let stale_pick = g2.members()[1];
        let t0 = h.now();
        if let Some(comm) = g2.comm() {
            comm.compute(model.volumes()[comm.rank()]);
            comm.barrier().expect("barrier");
        }
        let stale_time = (h.now() - t0).as_secs();
        if g2.is_member() {
            h.group_free(g2).expect("free");
        }
        h.finalize().expect("sync");

        // Phase 2b: fresh recon notices the load and avoids bigiron.
        h.recon(10.0).expect("recon");
        let g3 = h.group_create(&model).expect("create");
        let fresh_pick = g3.members()[1];
        let t0 = h.now();
        if let Some(comm) = g3.comm() {
            comm.compute(model.volumes()[comm.rank()]);
            comm.barrier().expect("barrier");
        }
        let fresh_time = (h.now() - t0).as_secs();
        if g3.is_member() {
            h.group_free(g3).expect("free");
        }
        h.finalize().expect("sync");

        (pick1, phase1, stale_pick, stale_time, fresh_pick, fresh_time)
    });

    let (pick1, phase1, stale_pick, stale_time, fresh_pick, fresh_time) = report.results[0];
    let name = |r: usize| ["host", "bigiron", "steady", "backup"][r];
    println!("phase 1 (no load):        heavy task on {:<8} -> {phase1:>8.2} virtual s", name(pick1));
    println!("phase 2 (stale recon):    heavy task on {:<8} -> {stale_time:>8.2} virtual s", name(stale_pick));
    println!("phase 2 (fresh recon):    heavy task on {:<8} -> {fresh_time:>8.2} virtual s", name(fresh_pick));
    assert_eq!(name(pick1), "bigiron");
    assert_eq!(name(stale_pick), "bigiron", "stale estimates keep picking the loaded machine");
    assert_ne!(name(fresh_pick), "bigiron", "fresh recon must route around the load");
    assert!(fresh_time < stale_time);
    println!(
        "\nfresh recon is {:.1}x faster than planning on stale estimates.",
        stale_time / fresh_time
    );
}
