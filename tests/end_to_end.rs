//! Workspace-level end-to-end test: the whole reproduction through the
//! umbrella crate, asserting the paper's headline claims hold.

use hmpi_repro::apps::em3d::{self, Em3dConfig};
use hmpi_repro::apps::matmul;
use hmpi_repro::hetsim::Cluster;
use std::sync::Arc;

#[test]
fn paper_headline_em3d_speedup() {
    // Paper Section 5 / Figure 9: "the HMPI application is almost 1.5 times
    // faster than the standard MPI one" on the 9-workstation LAN.
    let cfg = Em3dConfig::ramp(9, 100, 1.6, 0xE3D);
    let mpi = em3d::run_mpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, 3);
    let hmpi = em3d::run_hmpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, 3, 10);
    let speedup = mpi.time / hmpi.time;
    assert!(
        (1.2..2.2).contains(&speedup),
        "EM3D speedup {speedup:.2} outside the paper-like band"
    );
}

#[test]
fn paper_headline_matmul_speedup() {
    // Paper Section 5 / Figure 11: "the HMPI application is almost 3 times
    // faster than the standard MPI one".
    let cluster = Arc::new(Cluster::paper_lan_matmul());
    let mpi = matmul::run_mpi(cluster.clone(), 3, 9, 8, Some(3));
    let hmpi = matmul::run_hmpi(cluster, 3, 9, 8, Some(9));
    let speedup = mpi.time / hmpi.time;
    assert!(
        (2.0..4.5).contains(&speedup),
        "MM speedup {speedup:.2} outside the paper-like band"
    );
}

#[test]
fn paper_optimal_block_size_is_interior() {
    // Paper: "All results are obtained for r = l = 9, which have appeared
    // optimal" — the Timeof sweep must find an interior optimum, not the
    // smallest or an absurd block size.
    let hmpi = matmul::run_hmpi(Arc::new(Cluster::paper_lan_matmul()), 3, 18, 8, None);
    assert!(
        (6..=18).contains(&hmpi.l),
        "Timeof chose l = {} — not an interior optimum",
        hmpi.l
    );
}

#[test]
fn both_applications_compute_correct_results() {
    // Functional correctness end-to-end (results, not just times).
    let cfg = Em3dConfig::ramp(5, 40, 2.0, 7);
    let serial = em3d::serial_run(em3d::Em3dSystem::generate(&cfg), 3);
    let hmpi = em3d::run_hmpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, 3, 10);
    for (body, (se, _)) in serial.iter().enumerate() {
        for (a, b) in hmpi.fields[body].0.iter().zip(se) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    let run = matmul::run_hmpi(Arc::new(Cluster::paper_lan_matmul()), 3, 9, 3, Some(9));
    let want = matmul::block::serial_matmul(
        &matmul::block::BlockMatrix::deterministic(9, 3, matmul::driver::SEED_A),
        &matmul::block::BlockMatrix::deterministic(9, 3, matmul::driver::SEED_B),
    );
    let got = run.c.unwrap();
    for (x, y) in got.data().iter().zip(want.data()) {
        assert!((x - y).abs() < 1e-9);
    }
}
