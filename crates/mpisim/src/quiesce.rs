//! Exact virtual-time quiescence detection.
//!
//! The old no-hang story was a 60 s wall-clock watchdog: if a blocked
//! receive made no progress for a minute of real time, the program was
//! declared deadlocked. Slow, and inexact — a slow-but-live sender and a
//! true deadlock looked the same until the timer ran out.
//!
//! This module replaces it with a *quiescence detector*. Every rank
//! registers its state with a shared [`Registry`]: `Active` while running,
//! `Blocked` (with a [`WaitRecord`] describing exactly what could unblock
//! it) while waiting, `Done` when its thread exits. Whenever the last
//! active rank blocks or exits, the registry classifies the global state
//! under one lock:
//!
//! 1. **Stability.** If any blocked rank can still make progress on its own
//!    — a matching message is queued for it, its awaited peer is already
//!    dead (so its failure-detector abort will fire), or its agreement
//!    round is completable — the system is *not* quiescent: no verdict is
//!    issued, and that rank resolves organically within one poll interval.
//!    Fault chains therefore unravel link-by-link in virtual-time order,
//!    which keeps the error surface deterministic.
//! 2. **Timeout round.** Otherwise, if any stuck rank has a virtual-time
//!    deadline, the ranks holding the *minimum* deadline receive
//!    [`MpiError::Timeout`] verdicts — in virtual time nothing can reach
//!    them before their deadline, because every rank that could send is
//!    itself stuck. Ranks with later deadlines keep waiting: the resumed
//!    ranks may yet send to them. A rank whose "deadline" is its own node's
//!    crash time converts the verdict into its own fail-stop, so doomed
//!    ranks die in milliseconds of real time instead of dragging out a
//!    real-time grace period.
//! 3. **Terminal round.** No deadlines anywhere: the state can never
//!    change. The registry builds the exact wait graph over the stuck
//!    ranks and classifies each one — a rank that transitively waits on a
//!    dead rank is a *fault-induced orphan* and gets
//!    [`MpiError::NodeFailed`] naming the dead root cause; a rank stuck in
//!    a cycle of live ranks is *truly deadlocked* and gets
//!    [`MpiError::Deadlock`] carrying the wait graph.
//!
//! Detection is exact (no false verdicts: a verdict is only issued when no
//! message is queued and no rank is running) and fast (classification runs
//! at the moment of quiescence, so wall time is milliseconds). The
//! wall-clock watchdog survives only as a configurable belt-and-braces
//! backstop behind this detector.

use crate::agree::{AgreeKey, AgreeTable};
use crate::error::{MpiError, WaitGraph};
use crate::p2p::{Claim, Mailbox, Pattern};
use hetsim::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

/// What a blocked rank is waiting for.
#[derive(Debug, Clone)]
pub(crate) enum WaitKind {
    /// Blocked in a mailbox receive/probe: unblocked by a deliverable
    /// envelope matching one of the patterns.
    Mailbox {
        /// Acceptable matches (several for `wait_any`).
        pats: Vec<Pattern>,
    },
    /// Blocked in an agreement round: unblocked by slot completion.
    Agreement {
        /// The round being waited on.
        key: AgreeKey,
    },
}

/// A blocked rank's registration: exactly what could unblock it.
#[derive(Debug, Clone)]
pub(crate) struct WaitRecord {
    /// World ranks whose action could unblock this rank.
    pub waiting_on: Vec<usize>,
    /// `true`: any one dead member of `waiting_on` aborts the wait via the
    /// failure detector (specific-source receive, collective-plane
    /// receive). `false`: the wait aborts only once *all* of `waiting_on`
    /// are dead (`ANY_SOURCE`, `wait_any`, agreement).
    pub abort_any: bool,
    /// Virtual-time deadline bounding the wait, if any. A doomed rank's own
    /// crash time is registered here, making death an implicit deadline.
    pub deadline: Option<SimTime>,
    /// The unblocking condition proper.
    pub kind: WaitKind,
}

#[derive(Debug)]
enum Phase {
    Active,
    Blocked(WaitRecord),
    Done,
}

#[derive(Debug)]
struct Inner {
    phase: Vec<Phase>,
    /// World ranks observed fail-stopped *or* terminated — either way they
    /// will never send again.
    dead: Vec<bool>,
    /// Per-rank wait epoch, bumped on every transition to `Blocked`. A
    /// verdict is stamped with the epoch it was issued for and is never
    /// delivered across epochs: a verdict that outlives the wait it judged
    /// (the rank resolved organically and blocked again) is stale by
    /// construction and must be dropped, not delivered to the new wait.
    epoch: Vec<u64>,
    /// Verdicts issued by classification — `(wait epoch, error)` — consumed
    /// once by their rank after epoch and re-validation checks.
    verdicts: Vec<Option<(u64, MpiError)>>,
}

/// The universe-wide quiescence registry.
#[derive(Debug)]
pub(crate) struct Registry {
    mailboxes: Vec<Arc<Mailbox>>,
    agreements: Arc<AgreeTable>,
    inner: Mutex<Inner>,
}

impl Registry {
    pub(crate) fn new(mailboxes: Vec<Arc<Mailbox>>, agreements: Arc<AgreeTable>) -> Self {
        let n = mailboxes.len();
        Registry {
            mailboxes,
            agreements,
            inner: Mutex::new(Inner {
                phase: (0..n).map(|_| Phase::Active).collect(),
                dead: vec![false; n],
                epoch: vec![0; n],
                verdicts: vec![None; n],
            }),
        }
    }

    /// Marks `world_rank` as dead (fail-stopped or terminated): it will
    /// never send again. Classification is *not* triggered here — the rank's
    /// own thread is still unwinding (it counts as active until
    /// [`Registry::done`]).
    pub(crate) fn mark_dead(&self, world_rank: usize) {
        self.inner.lock().dead[world_rank] = true;
    }

    /// Registers `me` as blocked. May trigger classification (if `me` was
    /// the last active rank); returns a verdict immediately if one lands on
    /// `me`, in which case `me` is back to `Active` and must not wait.
    ///
    /// Must be called while holding **no** mailbox lock: classification
    /// takes mailbox locks under the registry lock.
    pub(crate) fn block(&self, me: usize, rec: WaitRecord) -> Option<MpiError> {
        let mut inner = self.inner.lock();
        // Every transition to Blocked opens a new wait epoch, fencing off
        // any verdict issued for an earlier wait of this rank.
        inner.epoch[me] = inner.epoch[me].wrapping_add(1);
        inner.phase[me] = Phase::Blocked(rec);
        if inner.verdicts[me].is_none() {
            self.classify(&mut inner);
        }
        self.take_verdict(&mut inner, me)
    }

    /// Takes a pending verdict for `me`, if classification issued one while
    /// it was waiting. Consuming the verdict returns `me` to `Active`.
    pub(crate) fn check(&self, me: usize) -> Option<MpiError> {
        let mut inner = self.inner.lock();
        self.take_verdict(&mut inner, me)
    }

    /// Delivers `me`'s pending verdict only if it was issued for `me`'s
    /// *current* wait (epoch match) and that wait, re-validated under the
    /// registry lock, still cannot resolve *productively* (a deliverable
    /// envelope, a completable agreement). A verdict failing either check
    /// is dropped and classification re-runs from the current state — a
    /// fresh verdict issued by that re-run is delivered on the second pass
    /// (it is valid by construction). Consuming a verdict returns `me` to
    /// `Active`.
    ///
    /// The re-validation deliberately ignores the abort path (waited-on
    /// peers dying *after* the verdict was issued): a peer consuming its
    /// own verdict from the same classification round and terminating must
    /// not flip the survivors' verdicts to `PeerTerminated` — which rank
    /// wins that race is wall-clock scheduling, and every member of a
    /// judged cycle must report the same `Deadlock`.
    fn take_verdict(&self, inner: &mut Inner, me: usize) -> Option<MpiError> {
        for _ in 0..2 {
            let Some((epoch, _)) = &inner.verdicts[me] else {
                return None;
            };
            let shared: &Inner = inner;
            let valid = *epoch == shared.epoch[me]
                && match &shared.phase[me] {
                    Phase::Blocked(rec) => !self.can_deliver(shared, me, rec),
                    _ => false,
                };
            if valid {
                let (_, v) = inner.verdicts[me].take().expect("checked above");
                inner.phase[me] = Phase::Active;
                return Some(v);
            }
            inner.verdicts[me] = None;
            self.classify(inner);
        }
        None
    }

    /// Deregisters `me` (its wait resolved organically: a match was
    /// delivered, its abort fired, or its deadline was observed missed). A
    /// verdict racing with organic resolution is dropped — classification
    /// only issues verdicts consistent with organic outcomes.
    pub(crate) fn unblock(&self, me: usize) {
        let mut inner = self.inner.lock();
        inner.phase[me] = Phase::Active;
        inner.verdicts[me] = None;
    }

    /// Atomic claim-and-unblock: removes a qualifying envelope from `me`'s
    /// mailbox and, if the scan resolves the wait (match or provably-missed
    /// deadline), flips `me` back to `Active` — all under the registry
    /// lock, so the classifier can never observe a rank that has consumed
    /// its message but still looks blocked (which would fabricate deadlock
    /// verdicts for its peers).
    pub(crate) fn claim_for(
        &self,
        me: usize,
        pat: Pattern,
        deadline: Option<SimTime>,
    ) -> Claim {
        let mut inner = self.inner.lock();
        let c = self.mailboxes[me].claim(pat, deadline);
        if !matches!(c, Claim::Nothing) {
            inner.phase[me] = Phase::Active;
            inner.verdicts[me] = None;
        }
        c
    }

    /// Records that `me`'s thread exited; may trigger classification.
    pub(crate) fn done(&self, me: usize) {
        let mut inner = self.inner.lock();
        inner.phase[me] = Phase::Done;
        inner.verdicts[me] = None;
        self.classify(&mut inner);
    }

    /// True if the blocked rank `r` can resolve without anyone else acting:
    /// a deliverable (or provably-late) envelope is queued, its
    /// failure-detector abort would fire, or its agreement round is
    /// completable.
    fn can_resolve(&self, inner: &Inner, r: usize, rec: &WaitRecord) -> bool {
        let aborts = if rec.abort_any {
            rec.waiting_on.iter().any(|&w| inner.dead[w])
        } else {
            !rec.waiting_on.is_empty() && rec.waiting_on.iter().all(|&w| inner.dead[w])
        };
        aborts || self.can_deliver(inner, r, rec)
    }

    /// True if the blocked rank `r` can resolve *productively*: a
    /// deliverable (or provably-late) envelope is queued, or its agreement
    /// round is completable. Excludes the dead-peer abort path — used by
    /// [`Registry::take_verdict`], where a peer death after verdict issue
    /// must not invalidate the verdict.
    fn can_deliver(&self, inner: &Inner, r: usize, rec: &WaitRecord) -> bool {
        match &rec.kind {
            WaitKind::Mailbox { pats } => self.mailboxes[r].can_progress(pats, rec.deadline),
            WaitKind::Agreement { key } => self
                .agreements
                .try_outcome(*key, |w| inner.dead[w])
                .is_some(),
        }
    }

    /// The classifier. Runs under the registry lock whenever the system
    /// *may* have quiesced; issues verdicts only when it provably has.
    fn classify(&self, inner: &mut Inner) {
        if inner.phase.iter().any(|p| matches!(p, Phase::Active)) {
            return;
        }
        let blocked: Vec<usize> = inner
            .phase
            .iter()
            .enumerate()
            .filter_map(|(r, p)| matches!(p, Phase::Blocked(_)).then_some(r))
            .collect();
        if blocked.is_empty() {
            return;
        }
        // Stability: every blocked rank must be truly stuck, or the state
        // is still evolving and any verdict could be wrong.
        for &r in &blocked {
            let Phase::Blocked(rec) = &inner.phase[r] else {
                unreachable!()
            };
            if self.can_resolve(inner, r, rec) {
                return;
            }
        }
        // Timeout round: the minimum deadline is unreachable — nothing can
        // be sent before it, because every possible sender is stuck.
        let dmin = blocked
            .iter()
            .filter_map(|&r| match &inner.phase[r] {
                Phase::Blocked(rec) => rec.deadline,
                _ => None,
            })
            .min();
        if let Some(dmin) = dmin {
            for &r in &blocked {
                let Phase::Blocked(rec) = &inner.phase[r] else {
                    unreachable!()
                };
                if rec.deadline == Some(dmin) {
                    inner.verdicts[r] = Some((inner.epoch[r], MpiError::Timeout));
                    self.mailboxes[r].wake_all();
                }
            }
            return;
        }
        // Terminal round: no deadline anywhere, so the state can never
        // change. Build the exact wait graph and classify every rank.
        let edges: Vec<(usize, Vec<usize>)> = blocked
            .iter()
            .map(|&r| {
                let Phase::Blocked(rec) = &inner.phase[r] else {
                    unreachable!()
                };
                let on = match &rec.kind {
                    WaitKind::Mailbox { .. } => rec.waiting_on.clone(),
                    // Agreement waits are re-derived fresh: only live
                    // members that have not deposited actually block the
                    // round.
                    WaitKind::Agreement { key } => {
                        self.agreements.pending_live(*key, |w| inner.dead[w])
                    }
                };
                (r, on)
            })
            .collect();
        // Fault-orphan fixpoint: a rank waiting (transitively) on a dead
        // rank is an orphan of that fault; blame the smallest reachable
        // dead rank for a deterministic error surface.
        let n = inner.phase.len();
        let mut cause: Vec<Option<usize>> = vec![None; n];
        loop {
            let mut changed = false;
            for (r, on) in &edges {
                let blame = on
                    .iter()
                    .filter_map(|&w| {
                        if inner.dead[w] {
                            Some(w)
                        } else {
                            cause[w]
                        }
                    })
                    .min();
                if blame.is_some() && (cause[*r].is_none() || blame < cause[*r]) {
                    cause[*r] = blame;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let graph = WaitGraph {
            edges: edges.clone(),
        };
        for (r, on) in edges {
            let v = match cause[r] {
                Some(w) => MpiError::NodeFailed { world_rank: w },
                None => MpiError::Deadlock {
                    waiting: r,
                    on,
                    graph: graph.clone(),
                },
            };
            inner.verdicts[r] = Some((inner.epoch[r], v));
            self.mailboxes[r].wake_all();
        }
    }
}
