//! Reduction operations.

/// The predefined reduction operations (`MPI_SUM`, `MPI_PROD`, `MPI_MAX`,
/// `MPI_MIN`), plus logical and/or for `bool`-like uses over numeric types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    /// Applies the operation to two `f64` operands.
    #[inline]
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Applies the operation to two `i64` operands.
    #[inline]
    pub fn apply_i64(self, a: i64, b: i64) -> i64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Combines two equal-length `f64` vectors elementwise, accumulating into
    /// `acc`.
    ///
    /// # Panics
    /// Panics if lengths differ (caller bugs, not wire conditions).
    pub fn fold_f64(self, acc: &mut [f64], rhs: &[f64]) {
        assert_eq!(acc.len(), rhs.len(), "reduction operands must match");
        for (a, b) in acc.iter_mut().zip(rhs) {
            *a = self.apply_f64(*a, *b);
        }
    }

    /// Combines two equal-length `i64` vectors elementwise, accumulating into
    /// `acc`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn fold_i64(self, acc: &mut [i64], rhs: &[i64]) {
        assert_eq!(acc.len(), rhs.len(), "reduction operands must match");
        for (a, b) in acc.iter_mut().zip(rhs) {
            *a = self.apply_i64(*a, *b);
        }
    }

    /// The identity element for `f64` (the value `x` with `op(id, x) = x`).
    pub fn identity_f64(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// The identity element for `i64`.
    pub fn identity_i64(self) -> i64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Prod => 1,
            ReduceOp::Max => i64::MIN,
            ReduceOp::Min => i64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ops() {
        assert_eq!(ReduceOp::Sum.apply_f64(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.apply_f64(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Max.apply_f64(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply_i64(-2, 3), -2);
    }

    #[test]
    fn fold_elementwise() {
        let mut acc = vec![1.0, 2.0, 3.0];
        ReduceOp::Sum.fold_f64(&mut acc, &[10.0, 20.0, 30.0]);
        assert_eq!(acc, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn identities_are_identities() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min] {
            assert_eq!(op.apply_f64(op.identity_f64(), 7.5), 7.5);
            assert_eq!(op.apply_i64(op.identity_i64(), -7), -7);
        }
    }

    #[test]
    #[should_panic]
    fn fold_length_mismatch_panics() {
        let mut acc = vec![1.0];
        ReduceOp::Sum.fold_f64(&mut acc, &[1.0, 2.0]);
    }
}
