//! Cartesian process topologies (`MPI_Cart_*`).
//!
//! The paper's matrix-multiplication application lives on an `m × m`
//! processor grid; this module provides the standard MPI machinery for such
//! grids: [`CartComm`] wraps a communicator with dimensions, translates
//! between ranks and coordinates (`MPI_Cart_rank` / `MPI_Cart_coords`),
//! computes shift partners (`MPI_Cart_shift`) and extracts row/column
//! subcommunicators (`MPI_Cart_sub`).

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};

/// A communicator with an attached cartesian topology.
#[derive(Debug, Clone)]
pub struct CartComm {
    comm: Comm,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

impl CartComm {
    /// Attaches a cartesian topology to a communicator
    /// (`MPI_Cart_create` with `reorder = false`). Collective in MPI; here
    /// it is purely local because no ranks are reordered.
    ///
    /// # Errors
    /// [`MpiError::InvalidCounts`] if the dimension product does not equal
    /// the communicator size or arities mismatch.
    pub fn new(comm: Comm, dims: &[usize], periodic: &[bool]) -> MpiResult<CartComm> {
        if dims.is_empty() || dims.iter().product::<usize>() != comm.size() {
            return Err(MpiError::InvalidCounts(format!(
                "dims {dims:?} do not tile a communicator of size {}",
                comm.size()
            )));
        }
        if periodic.len() != dims.len() {
            return Err(MpiError::InvalidCounts(
                "periodic flags must match dims".into(),
            ));
        }
        Ok(CartComm {
            comm,
            dims: dims.to_vec(),
            periodic: periodic.to_vec(),
        })
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of grid dimensions (`MPI_Cartdim_get`).
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// This process's coordinates (`MPI_Cart_coords` of own rank).
    pub fn coords(&self) -> Vec<usize> {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of an arbitrary rank (`MPI_Cart_coords`).
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.comm.size());
        let mut rem = rank;
        let mut out = vec![0; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            out[i] = rem % self.dims[i];
            rem /= self.dims[i];
        }
        out
    }

    /// Rank of the process at `coords` (`MPI_Cart_rank`).
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] if a non-periodic coordinate is out of
    /// range; periodic dimensions wrap.
    pub fn rank_of(&self, coords: &[isize]) -> MpiResult<usize> {
        if coords.len() != self.dims.len() {
            return Err(MpiError::InvalidCounts(format!(
                "{} coordinates for {} dimensions",
                coords.len(),
                self.dims.len()
            )));
        }
        let mut rank = 0usize;
        for (i, (&c, &extent)) in coords.iter().zip(&self.dims).enumerate() {
            let wrapped = if self.periodic[i] {
                c.rem_euclid(extent as isize) as usize
            } else {
                if c < 0 || c as usize >= extent {
                    return Err(MpiError::InvalidRank {
                        rank: c,
                        comm_size: extent,
                    });
                }
                c as usize
            };
            rank = rank * extent + wrapped;
        }
        Ok(rank)
    }

    /// Shift partners along a dimension (`MPI_Cart_shift`): returns
    /// `(source, destination)` for a displacement `disp` — the ranks one
    /// would receive from and send to in `MPI_Sendrecv`. `None` marks the
    /// edge of a non-periodic dimension (`MPI_PROC_NULL`).
    ///
    /// # Panics
    /// Panics if `dim` is out of range.
    pub fn shift(&self, dim: usize, disp: isize) -> (Option<usize>, Option<usize>) {
        assert!(dim < self.dims.len());
        let mut dst_coords: Vec<isize> =
            self.coords().iter().map(|&c| c as isize).collect();
        let mut src_coords = dst_coords.clone();
        dst_coords[dim] += disp;
        src_coords[dim] -= disp;
        (self.rank_of(&src_coords).ok(), self.rank_of(&dst_coords).ok())
    }

    /// Extracts the subcommunicator of the grid slice through this process
    /// in which `keep[d]` dimensions vary (`MPI_Cart_sub`). For a 2D grid,
    /// `keep = [false, true]` yields this process's row communicator and
    /// `keep = [true, false]` its column communicator. Collective.
    ///
    /// # Errors
    /// [`MpiError::InvalidCounts`] on arity mismatch; transport errors from
    /// the underlying split.
    pub fn sub(&self, keep: &[bool]) -> MpiResult<CartComm> {
        if keep.len() != self.dims.len() {
            return Err(MpiError::InvalidCounts(
                "keep flags must match dims".into(),
            ));
        }
        // Color = the fixed (dropped) coordinates; key = position within the
        // kept slice, preserving grid order.
        let coords = self.coords();
        let mut color = 0i32;
        let mut key = 0i32;
        for ((&c, &extent), &k) in coords.iter().zip(&self.dims).zip(keep) {
            if k {
                key = key * extent as i32 + c as i32;
            } else {
                color = color * extent as i32 + c as i32;
            }
        }
        let sub = self
            .comm
            .split(Some(color), key)?
            .expect("every rank supplied a color");
        let dims: Vec<usize> = self
            .dims
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(&d, _)| d)
            .collect();
        let periodic: Vec<bool> = self
            .periodic
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(&p, _)| p)
            .collect();
        let dims = if dims.is_empty() { vec![1] } else { dims };
        let periodic = if periodic.is_empty() {
            vec![false]
        } else {
            periodic
        };
        CartComm::new(sub, &dims, &periodic)
    }
}

/// Balanced dimension factorisation (`MPI_Dims_create`): factors `nnodes`
/// into `ndims` dimensions as squarely as possible, in non-increasing order.
///
/// # Panics
/// Panics if `ndims` is zero.
pub fn dims_create(nnodes: usize, ndims: usize) -> Vec<usize> {
    assert!(ndims >= 1);
    let mut dims = vec![1usize; ndims];
    let mut remaining = nnodes;
    // Peel prime factors largest-first onto the currently smallest dim.
    let mut factors = Vec::new();
    let mut n = remaining;
    let mut f = 2;
    while f * f <= n {
        while n.is_multiple_of(f) {
            factors.push(f);
            n /= f;
        }
        f += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = dims
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("ndims >= 1");
        dims[i] *= f;
        remaining /= f;
    }
    debug_assert_eq!(remaining, 1);
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Universe;
    use crate::ReduceOp;
    use hetsim::{ClusterBuilder, Link, Protocol};
    use std::sync::Arc;

    fn cluster(n: usize) -> Arc<hetsim::Cluster> {
        let mut b = ClusterBuilder::new();
        for i in 0..n {
            b = b.node(format!("h{i}"), 100.0);
        }
        Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
    }

    #[test]
    fn dims_create_is_balanced() {
        assert_eq!(dims_create(9, 2), vec![3, 3]);
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 2), vec![1, 1]);
    }

    #[test]
    fn coords_and_rank_are_inverse() {
        let u = Universe::new(cluster(6));
        u.run(|p| {
            let cart = CartComm::new(p.world(), &[2, 3], &[false, false]).unwrap();
            for r in 0..6 {
                let c = cart.coords_of(r);
                let signed: Vec<isize> = c.iter().map(|&x| x as isize).collect();
                assert_eq!(cart.rank_of(&signed).unwrap(), r);
            }
            assert_eq!(cart.coords_of(5), vec![1, 2]);
        });
    }

    #[test]
    fn bad_dims_rejected() {
        let u = Universe::new(cluster(6));
        u.run(|p| {
            assert!(CartComm::new(p.world(), &[2, 2], &[false, false]).is_err());
            assert!(CartComm::new(p.world(), &[2, 3], &[false]).is_err());
        });
    }

    #[test]
    fn shift_non_periodic_has_edges() {
        let u = Universe::new(cluster(4));
        u.run(|p| {
            let cart = CartComm::new(p.world(), &[4], &[false]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            match p.world_rank() {
                0 => {
                    assert_eq!(src, None);
                    assert_eq!(dst, Some(1));
                }
                3 => {
                    assert_eq!(src, Some(2));
                    assert_eq!(dst, None);
                }
                r => {
                    assert_eq!(src, Some(r - 1));
                    assert_eq!(dst, Some(r + 1));
                }
            }
        });
    }

    #[test]
    fn shift_periodic_wraps() {
        let u = Universe::new(cluster(4));
        u.run(|p| {
            let cart = CartComm::new(p.world(), &[4], &[true]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            let me = p.world_rank();
            assert_eq!(src, Some((me + 3) % 4));
            assert_eq!(dst, Some((me + 1) % 4));
        });
    }

    #[test]
    fn cart_sub_gives_row_and_column_comms() {
        let u = Universe::new(cluster(6));
        let report = u.run(|p| {
            let cart = CartComm::new(p.world(), &[2, 3], &[false, false]).unwrap();
            let row = cart.sub(&[false, true]).unwrap();
            let col = cart.sub(&[true, false]).unwrap();
            let row_sum = row
                .comm()
                .allreduce_one_i64(p.world_rank() as i64, ReduceOp::Sum)
                .unwrap();
            let col_sum = col
                .comm()
                .allreduce_one_i64(p.world_rank() as i64, ReduceOp::Sum)
                .unwrap();
            (row.comm().size(), col.comm().size(), row_sum, col_sum)
        });
        // Grid: ranks 0..6 as 2x3. Row of rank 0: {0,1,2} sum 3; column of
        // rank 0: {0,3} sum 3.
        assert_eq!(report.results[0], (3, 2, 3, 3));
        // Rank 4 = (1,1): row {3,4,5} sum 12, column {1,4} sum 5.
        assert_eq!(report.results[4], (3, 2, 12, 5));
    }

    #[test]
    fn ring_exchange_over_periodic_cart() {
        // A classic halo exchange: everyone sendrecv's with its +1 neighbour.
        let n = 5;
        let u = Universe::new(cluster(n));
        let report = u.run(move |p| {
            let cart = CartComm::new(p.world(), &[n], &[true]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            let (got, _) = cart
                .comm()
                .sendrecv::<i64, i64>(
                    &[p.world_rank() as i64],
                    dst.unwrap(),
                    0,
                    src.unwrap(),
                    0,
                )
                .unwrap();
            got[0]
        });
        for (me, got) in report.results.iter().enumerate() {
            assert_eq!(*got as usize, (me + n - 1) % n);
        }
    }
}
