//! MPI process groups.
//!
//! A [`Group`] is an ordered set of world ranks. The paper leans on MPI's
//! group machinery — "it is relatively straightforward for application
//! programmers to perform such group operations by obtaining the groups
//! associated with the MPI communicator given by `HMPI_Get_comm`" — so the
//! full constructor family is implemented: set-like operations (`union`,
//! `intersection`, `difference`), subsetting (`incl`, `excl`), range
//! operations (`range_incl`, `range_excl`), plus `translate_ranks` and
//! `compare`.

use crate::error::{MpiError, MpiResult};
use serde::{Deserialize, Serialize};

/// Result of [`Group::compare`], mirroring `MPI_Group_compare`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupCompare {
    /// Same members in the same order (`MPI_IDENT`).
    Ident,
    /// Same members, different order (`MPI_SIMILAR`).
    Similar,
    /// Different membership (`MPI_UNEQUAL`).
    Unequal,
}

/// The value `translate_ranks` reports for a rank with no image
/// (`MPI_UNDEFINED`).
pub const UNDEFINED: isize = -1;

/// An ordered set of world ranks.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// The empty group (`MPI_GROUP_EMPTY`).
    pub fn empty() -> Self {
        Group {
            members: Vec::new(),
        }
    }

    /// A group over the given world ranks, in the given order.
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] on duplicate entries.
    pub fn from_world_ranks(members: Vec<usize>) -> MpiResult<Self> {
        let mut seen = std::collections::HashSet::with_capacity(members.len());
        for &m in &members {
            if !seen.insert(m) {
                return Err(MpiError::InvalidGroup(format!(
                    "world rank {m} appears more than once"
                )));
            }
        }
        Ok(Group { members })
    }

    /// The group `{0, 1, .., n-1}` — the world group of an `n`-rank universe.
    pub fn world(n: usize) -> Self {
        Group {
            members: (0..n).collect(),
        }
    }

    /// Number of members (`MPI_Group_size`).
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// True if the group has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The world ranks, in group-rank order.
    #[inline]
    pub fn world_ranks(&self) -> &[usize] {
        &self.members
    }

    /// The world rank of the member with group rank `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// This process's group rank, given its world rank (`MPI_Group_rank`);
    /// `None` if not a member.
    pub fn rank_of_world(&self, world: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == world)
    }

    /// Set union preserving the order "members of `self` first, then members
    /// of `other` not in `self`" (`MPI_Group_union`).
    pub fn union(&self, other: &Group) -> Group {
        let mut members = self.members.clone();
        for &m in &other.members {
            if !self.members.contains(&m) {
                members.push(m);
            }
        }
        Group { members }
    }

    /// Members of `self` that are also in `other`, in `self`'s order
    /// (`MPI_Group_intersection`).
    pub fn intersection(&self, other: &Group) -> Group {
        Group {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| other.members.contains(m))
                .collect(),
        }
    }

    /// Members of `self` not in `other`, in `self`'s order
    /// (`MPI_Group_difference`).
    pub fn difference(&self, other: &Group) -> Group {
        Group {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| !other.members.contains(m))
                .collect(),
        }
    }

    /// The subgroup formed by the listed group ranks, in the listed order
    /// (`MPI_Group_incl`).
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] on out-of-range or duplicate ranks.
    pub fn incl(&self, ranks: &[usize]) -> MpiResult<Group> {
        let mut members = Vec::with_capacity(ranks.len());
        let mut seen = std::collections::HashSet::with_capacity(ranks.len());
        for &r in ranks {
            if r >= self.size() {
                return Err(MpiError::InvalidGroup(format!(
                    "rank {r} out of range for group of size {}",
                    self.size()
                )));
            }
            if !seen.insert(r) {
                return Err(MpiError::InvalidGroup(format!("rank {r} listed twice")));
            }
            members.push(self.members[r]);
        }
        Ok(Group { members })
    }

    /// The subgroup formed by removing the listed group ranks
    /// (`MPI_Group_excl`); remaining members keep their relative order.
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] on out-of-range or duplicate ranks.
    pub fn excl(&self, ranks: &[usize]) -> MpiResult<Group> {
        let mut drop = vec![false; self.size()];
        for &r in ranks {
            if r >= self.size() {
                return Err(MpiError::InvalidGroup(format!(
                    "rank {r} out of range for group of size {}",
                    self.size()
                )));
            }
            if drop[r] {
                return Err(MpiError::InvalidGroup(format!("rank {r} listed twice")));
            }
            drop[r] = true;
        }
        Ok(Group {
            members: self
                .members
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop[*i])
                .map(|(_, &m)| m)
                .collect(),
        })
    }

    /// `MPI_Group_range_incl`: each `(first, last, stride)` triple expands to
    /// the ranks `first, first+stride, ...` up to and including `last`.
    /// Strides may be negative for descending ranges.
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] on zero strides, out-of-range ranks or
    /// duplicates across the expansion.
    pub fn range_incl(&self, ranges: &[(isize, isize, isize)]) -> MpiResult<Group> {
        let ranks = self.expand_ranges(ranges)?;
        self.incl(&ranks)
    }

    /// `MPI_Group_range_excl`: the complement of the expanded ranges.
    ///
    /// # Errors
    /// Same conditions as [`Group::range_incl`].
    pub fn range_excl(&self, ranges: &[(isize, isize, isize)]) -> MpiResult<Group> {
        let ranks = self.expand_ranges(ranges)?;
        self.excl(&ranks)
    }

    fn expand_ranges(&self, ranges: &[(isize, isize, isize)]) -> MpiResult<Vec<usize>> {
        let mut out = Vec::new();
        for &(first, last, stride) in ranges {
            if stride == 0 {
                return Err(MpiError::InvalidGroup("zero stride in range".into()));
            }
            let mut r = first;
            while (stride > 0 && r <= last) || (stride < 0 && r >= last) {
                if r < 0 {
                    return Err(MpiError::InvalidGroup(format!("negative rank {r} in range")));
                }
                out.push(r as usize);
                r += stride;
            }
        }
        Ok(out)
    }

    /// `MPI_Group_translate_ranks`: for each rank of `self`, its rank in
    /// `other`, or [`UNDEFINED`] if the member is absent there.
    pub fn translate_ranks(&self, ranks: &[usize], other: &Group) -> Vec<isize> {
        ranks
            .iter()
            .map(|&r| {
                self.members
                    .get(r)
                    .and_then(|&w| other.rank_of_world(w))
                    .map_or(UNDEFINED, |x| x as isize)
            })
            .collect()
    }

    /// `MPI_Group_compare`.
    pub fn compare(&self, other: &Group) -> GroupCompare {
        if self.members == other.members {
            return GroupCompare::Ident;
        }
        if self.size() == other.size() {
            let mut a = self.members.clone();
            let mut b = other.members.clone();
            a.sort_unstable();
            b.sort_unstable();
            if a == b {
                return GroupCompare::Similar;
            }
        }
        GroupCompare::Unequal
    }

    /// True if `world` is a member.
    pub fn contains_world(&self, world: usize) -> bool {
        self.members.contains(&world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: &[usize]) -> Group {
        Group::from_world_ranks(v.to_vec()).unwrap()
    }

    #[test]
    fn world_group_is_identity_ordered() {
        let w = Group::world(4);
        assert_eq!(w.size(), 4);
        assert_eq!(w.world_ranks(), &[0, 1, 2, 3]);
        assert_eq!(w.rank_of_world(2), Some(2));
    }

    #[test]
    fn duplicates_rejected() {
        assert!(Group::from_world_ranks(vec![1, 2, 1]).is_err());
    }

    #[test]
    fn union_keeps_left_order_then_new_members() {
        let a = g(&[3, 1]);
        let b = g(&[1, 5, 3, 7]);
        assert_eq!(a.union(&b).world_ranks(), &[3, 1, 5, 7]);
    }

    #[test]
    fn intersection_and_difference() {
        let a = g(&[0, 2, 4, 6]);
        let b = g(&[4, 0, 5]);
        assert_eq!(a.intersection(&b).world_ranks(), &[0, 4]);
        assert_eq!(a.difference(&b).world_ranks(), &[2, 6]);
        assert_eq!(b.difference(&a).world_ranks(), &[5]);
    }

    #[test]
    fn incl_reorders() {
        let a = g(&[10, 20, 30, 40]);
        let sub = a.incl(&[3, 0]).unwrap();
        assert_eq!(sub.world_ranks(), &[40, 10]);
    }

    #[test]
    fn incl_rejects_bad_ranks() {
        let a = g(&[10, 20]);
        assert!(a.incl(&[2]).is_err());
        assert!(a.incl(&[0, 0]).is_err());
    }

    #[test]
    fn excl_preserves_order() {
        let a = g(&[10, 20, 30, 40]);
        let sub = a.excl(&[1, 3]).unwrap();
        assert_eq!(sub.world_ranks(), &[10, 30]);
    }

    #[test]
    fn range_incl_ascending_and_descending() {
        let a = Group::world(10);
        let sub = a.range_incl(&[(0, 6, 2)]).unwrap();
        assert_eq!(sub.world_ranks(), &[0, 2, 4, 6]);
        let sub = a.range_incl(&[(5, 3, -1)]).unwrap();
        assert_eq!(sub.world_ranks(), &[5, 4, 3]);
    }

    #[test]
    fn range_excl_complement() {
        let a = Group::world(6);
        let sub = a.range_excl(&[(1, 5, 2)]).unwrap(); // drop 1,3,5
        assert_eq!(sub.world_ranks(), &[0, 2, 4]);
    }

    #[test]
    fn range_zero_stride_rejected() {
        let a = Group::world(4);
        assert!(a.range_incl(&[(0, 3, 0)]).is_err());
    }

    #[test]
    fn translate_ranks_finds_images() {
        let a = g(&[3, 1, 4]);
        let b = g(&[4, 3]);
        assert_eq!(a.translate_ranks(&[0, 1, 2], &b), vec![1, UNDEFINED, 0]);
    }

    #[test]
    fn compare_all_three_cases() {
        let a = g(&[1, 2, 3]);
        assert_eq!(a.compare(&g(&[1, 2, 3])), GroupCompare::Ident);
        assert_eq!(a.compare(&g(&[3, 2, 1])), GroupCompare::Similar);
        assert_eq!(a.compare(&g(&[1, 2, 4])), GroupCompare::Unequal);
        assert_eq!(a.compare(&g(&[1, 2])), GroupCompare::Unequal);
    }

    #[test]
    fn empty_group_behaves() {
        let e = Group::empty();
        assert!(e.is_empty());
        assert_eq!(e.compare(&Group::empty()), GroupCompare::Ident);
        let a = g(&[1]);
        assert_eq!(a.intersection(&e).size(), 0);
        assert_eq!(a.union(&e).world_ranks(), &[1]);
    }
}
