//! Point-to-point matching engine.
//!
//! Each rank owns one [`Mailbox`]. Senders post [`Envelope`]s directly into
//! the destination's mailbox (eager/buffered semantics — sends never block);
//! receivers scan their queue front-to-back for the first envelope matching
//! `(context, source, tag)` and block on a condition variable when nothing
//! matches yet. Front-to-back scanning preserves MPI's non-overtaking
//! guarantee: two messages from the same sender on the same communicator
//! that both match a receive are matched in the order they were sent.

use crate::error::{MpiError, MpiResult};
use hetsim::SimTime;
use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: isize = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// How long a blocked receive waits (in real time) before concluding the
/// program has deadlocked. The raw [`Mailbox::recv_match`] panics with
/// diagnostics; the guarded path used by [`crate::Comm`] returns
/// [`MpiError::Deadlock`] so rank threads unwind cleanly. Virtual time is
/// unaffected; this is purely a developer-experience safety net.
pub const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Real-time grace a *deadline* receive (`recv_deadline` / `recv_timeout`)
/// waits for a matching message before declaring [`MpiError::Timeout`].
///
/// Virtual time and real time are decoupled: a sender whose virtual send
/// time is well before the receiver's virtual deadline may still be running
/// behind in real time, so a deadline receive cannot conclude "no message by
/// virtual time `d`" instantly — it waits this long in real time for one to
/// show up (liveness changes and posts cut the wait short).
pub const TIMEOUT_GRACE: Duration = Duration::from_millis(500);

/// Polling slice for guarded receives: an upper bound on how long a blocked
/// receive sleeps before re-checking its abort condition, which caps the
/// latency of noticing a peer-failure transition even if a wakeup is lost.
const GUARD_POLL: Duration = Duration::from_millis(25);

/// A message in flight or queued at the receiver.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Context id (communicator + p2p/collective plane).
    pub ctx: u64,
    /// Sender's world rank.
    pub src_world: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Virtual time the sender posted the message.
    pub sent_at: SimTime,
    /// Virtual time the message reaches the receiver.
    pub arrival: SimTime,
}

/// Completion information for a receive or probe (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank *within the communicator the operation was issued on*.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: i32,
    /// Payload size in bytes (`MPI_Get_count` precursor).
    pub bytes: usize,
}

/// A receive-side matching pattern.
#[derive(Debug, Clone, Copy)]
pub struct Pattern {
    /// Context id the receive is posted on.
    pub ctx: u64,
    /// Required sender world rank, or `None` for `ANY_SOURCE`.
    pub src_world: Option<usize>,
    /// Required tag, or `None` for `ANY_TAG`.
    pub tag: Option<i32>,
}

impl Pattern {
    fn matches(&self, env: &Envelope) -> bool {
        env.ctx == self.ctx
            && self.src_world.is_none_or(|s| s == env.src_world)
            && self.tag.is_none_or(|t| t == env.tag)
    }
}

/// One rank's incoming-message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    inner: Mutex<Vec<Envelope>>,
    cond: Condvar,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Posts a message (called from the sender's thread).
    pub fn post(&self, env: Envelope) {
        self.inner.lock().push(env);
        self.cond.notify_all();
    }

    /// Removes and returns the first queued envelope matching `pat`,
    /// blocking until one arrives.
    ///
    /// # Panics
    /// Panics after [`DEADLOCK_TIMEOUT`] of real time with no match — the
    /// surrounding SPMD program has deadlocked.
    pub fn recv_match(&self, pat: Pattern) -> Envelope {
        let mut q = self.inner.lock();
        loop {
            if let Some(i) = q.iter().position(|e| pat.matches(e)) {
                return q.remove(i);
            }
            let timed_out = self.cond.wait_for(&mut q, DEADLOCK_TIMEOUT).timed_out();
            if timed_out {
                panic!(
                    "mpisim deadlock: receive {pat:?} matched nothing for {DEADLOCK_TIMEOUT:?}; \
                     {} unmatched message(s) queued: {:?}",
                    q.len(),
                    q.iter()
                        .map(|e| (e.ctx, e.src_world, e.tag, e.data.len()))
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    /// Wakes every thread blocked on this mailbox so it re-checks its match
    /// and abort conditions. Called when rank liveness changes.
    pub fn wake_all(&self) {
        self.cond.notify_all();
    }

    /// Failure-aware matched receive. Blocks until one of:
    ///
    /// * a matching envelope is queued (with `arrival <= deadline`, if a
    ///   virtual-time deadline is given) — returns it;
    /// * `abort()` reports an error (a peer died, the caller's own node
    ///   crashed, …) — returns that error;
    /// * a virtual-time deadline is given and provably cannot be met —
    ///   returns [`MpiError::Timeout`]. "Provably" means either a matching
    ///   envelope from the specific source is queued with a later arrival
    ///   (non-overtaking: nothing earlier can follow), or `grace` of real
    ///   time passed with no qualifying message;
    /// * no deadline is given and `grace` of real time passes with no match —
    ///   returns [`MpiError::Deadlock`] with queue diagnostics.
    ///
    /// The abort check is re-evaluated at least every `GUARD_POLL` (25 ms) of real
    /// time, so progress does not depend on wakeups being delivered.
    pub fn recv_match_guarded(
        &self,
        pat: Pattern,
        deadline: Option<SimTime>,
        grace: Duration,
        mut abort: impl FnMut() -> Option<MpiError>,
    ) -> MpiResult<Envelope> {
        let start = Instant::now();
        let mut q = self.inner.lock();
        loop {
            match deadline {
                None => {
                    if let Some(i) = q.iter().position(|e| pat.matches(e)) {
                        return Ok(q.remove(i));
                    }
                }
                Some(d) => {
                    if let Some(i) = q.iter().position(|e| pat.matches(e) && e.arrival <= d) {
                        return Ok(q.remove(i));
                    }
                    // A queued match must have arrival > d. For a specific
                    // source, non-overtaking means no earlier arrival can
                    // follow it: the deadline is already missed.
                    if pat.src_world.is_some() && q.iter().any(|e| pat.matches(e)) {
                        return Err(MpiError::Timeout);
                    }
                }
            }
            if let Some(err) = abort() {
                return Err(err);
            }
            let Some(remaining) = grace.checked_sub(start.elapsed()).filter(|r| !r.is_zero())
            else {
                return Err(match deadline {
                    Some(_) => MpiError::Timeout,
                    None => MpiError::Deadlock(format!(
                        "receive {pat:?} matched nothing for {grace:?}; \
                         {} unmatched message(s) queued: {:?}",
                        q.len(),
                        q.iter()
                            .map(|e| (e.ctx, e.src_world, e.tag, e.data.len()))
                            .collect::<Vec<_>>()
                    )),
                });
            };
            self.cond.wait_for(&mut q, remaining.min(GUARD_POLL));
        }
    }

    /// Like [`Mailbox::recv_match`] but leaves the message queued
    /// (`MPI_Probe`). Returns the matched envelope's metadata.
    pub fn probe_match(&self, pat: Pattern) -> (usize, i32, usize, SimTime) {
        let mut q = self.inner.lock();
        loop {
            if let Some(e) = q.iter().find(|e| pat.matches(e)) {
                return (e.src_world, e.tag, e.data.len(), e.arrival);
            }
            let timed_out = self.cond.wait_for(&mut q, DEADLOCK_TIMEOUT).timed_out();
            if timed_out {
                panic!("mpisim deadlock: probe {pat:?} matched nothing for {DEADLOCK_TIMEOUT:?}");
            }
        }
    }

    /// Non-blocking probe (`MPI_Iprobe`): metadata of the first match, if any.
    pub fn try_probe(&self, pat: Pattern) -> Option<(usize, i32, usize, SimTime)> {
        let q = self.inner.lock();
        q.iter()
            .find(|e| pat.matches(e))
            .map(|e| (e.src_world, e.tag, e.data.len(), e.arrival))
    }

    /// Non-blocking matched receive (`MPI_Irecv` + immediate test).
    pub fn try_recv_match(&self, pat: Pattern) -> Option<Envelope> {
        let mut q = self.inner.lock();
        let i = q.iter().position(|e| pat.matches(e))?;
        Some(q.remove(i))
    }

    /// Number of queued (unmatched) messages — used by shutdown diagnostics.
    pub fn pending(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(ctx: u64, src: usize, tag: i32, data: &[u8]) -> Envelope {
        Envelope {
            ctx,
            src_world: src,
            tag,
            data: data.to_vec(),
            sent_at: SimTime::ZERO,
            arrival: SimTime::from_secs(1.0),
        }
    }

    #[test]
    fn exact_match_removes_message() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"hi"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(got.data, b"hi");
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn wildcards_match_anything_in_context() {
        let mb = Mailbox::new();
        mb.post(env(1, 3, 9, b"x"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        });
        assert_eq!(got.src_world, 3);
        assert_eq!(got.tag, 9);
    }

    #[test]
    fn context_isolates_messages() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"ctx1"));
        mb.post(env(2, 0, 7, b"ctx2"));
        let got = mb.recv_match(Pattern {
            ctx: 2,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(got.data, b"ctx2");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn non_overtaking_same_source_same_tag() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"first"));
        mb.post(env(1, 0, 7, b"second"));
        let a = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        let b = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(a.data, b"first");
        assert_eq!(b.data, b"second");
    }

    #[test]
    fn selective_tag_skips_earlier_nonmatching() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 1, b"tag1"));
        mb.post(env(1, 0, 2, b"tag2"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(2),
        });
        assert_eq!(got.data, b"tag2");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn probe_leaves_message_queued() {
        let mb = Mailbox::new();
        mb.post(env(1, 4, 5, b"abc"));
        let (src, tag, len, _) = mb.probe_match(Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        });
        assert_eq!((src, tag, len), (4, 5, 3));
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn try_probe_returns_none_when_empty() {
        let mb = Mailbox::new();
        assert!(mb
            .try_probe(Pattern {
                ctx: 1,
                src_world: None,
                tag: None
            })
            .is_none());
    }

    #[test]
    fn blocked_recv_wakes_on_post() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            mb2.recv_match(Pattern {
                ctx: 1,
                src_world: Some(0),
                tag: Some(0),
            })
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.post(env(1, 0, 0, b"late"));
        let got = h.join().unwrap();
        assert_eq!(got.data, b"late");
    }
}
