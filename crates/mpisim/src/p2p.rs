//! Point-to-point matching engine: eager lanes, pooled rendezvous
//! payloads, and an indexed matcher.
//!
//! Each rank owns one [`Mailbox`]. The substrate splits traffic into two
//! protocols at a configurable eager limit (default
//! [`DEFAULT_EAGER_LIMIT`], after jeffhammond/hmpi's `EAGER_LIMIT`):
//!
//! * **eager** — payloads at or under the limit are packed *inline* into
//!   the envelope ([`Payload::Inline`]) and travel through per-(sender,
//!   receiver) SPSC lanes ([`crate::lane`]); no per-message heap
//!   allocation, no shared lock between senders;
//! * **rendezvous** — larger payloads ride in zero-copy buffers leased
//!   from the universe's [`BufferPool`](crate::pool::BufferPool)
//!   ([`Payload::Pooled`]); the buffer returns to its size class when the
//!   receiver drops the [`Msg`], and copy-out happens in
//!   [`RENDEZVOUS_BLOCK`]-sized slabs.
//!
//! Matching is indexed instead of scanned: the mailbox keeps one FIFO
//! queue per `(context, sender)`. A specific-source receive looks at
//! exactly one queue; an `ANY_SOURCE` receive takes the minimum
//! `(arrival quantum, sender rank, sender seq)` key over the context's
//! queue heads — per-sender FIFO preserves MPI's non-overtaking
//! guarantee, and the key gives wildcard matches a *deterministic*
//! virtual-arrival order (ties within one arbitration quantum resolve by
//! rank, then send sequence, never by OS-thread arrival). The old
//! mailbox rescanned the whole queue per receive — O(queue) per match,
//! O(n²) to drain a burst; the index makes both O(1)-ish.
//!
//! Blocking receives sleep on a doorbell: a waiter registers itself
//! (atomic counter) before its final match check, and producers ring the
//! condvar only when a waiter is registered — so the hot path posts
//! without ever touching the receiver's lock, and idle receivers wake
//! event-driven rather than by the old 25 ms poll slice.

use crate::lane::LaneSet;
use crate::pool::Lease;
use crate::vtime::{quantum_of, WireXfer};
use hetsim::SimTime;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: isize = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Default wall-clock watchdog: how long a blocked receive waits in real
/// time before giving up. Since the virtual-time quiescence detector
/// ([`crate::quiesce`]) classifies stuck states in milliseconds, this is a
/// belt-and-braces backstop that should never fire in practice — it only
/// catches programs that defeat the detector (e.g. a rank busy-polling
/// outside the runtime forever). Configurable per universe with
/// [`crate::UniverseConfig::deadlock_timeout`] or the
/// `MPISIM_DEADLOCK_TIMEOUT` environment variable (seconds); the raw
/// panicking [`Mailbox::recv_match`] always uses this default.
pub const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Spacing of internal retry heuristics (re-issued guarded receives after
/// a transient verdict): the successor of the removed `TIMEOUT_GRACE`
/// constant's internal role, kept private so callers can't couple to it.
/// (Deadline receives are exact since the quiescence detector landed: they
/// time out when the detector proves no qualifying message can arrive, not
/// after a fixed real-time wait.)
#[allow(dead_code)]
pub(crate) const RETRY_GRACE: Duration = Duration::from_millis(500);

/// Backstop sleep slice for doorbell-guarded waits. Every transition a
/// guarded receive cares about (message arrival, peer death, quiescence
/// verdict, agreement deposit) rings the mailbox doorbell, so this bound
/// exists only to catch wakeups lost to bugs; it replaced the 25 ms
/// `GUARD_POLL` slice that guarded receives used to *rely* on.
pub(crate) const WAKE_BACKSTOP: Duration = Duration::from_millis(250);

/// Capacity of an inline (eager) payload slot, bytes.
pub const INLINE_CAP: usize = 256;

/// Default eager/rendezvous protocol split, bytes (the hmpi snippet's
/// `EAGER_LIMIT`). Configurable per universe with
/// [`crate::UniverseConfig::eager_limit`] / `MPISIM_EAGER_LIMIT`, clamped
/// to [`INLINE_CAP`].
pub const DEFAULT_EAGER_LIMIT: usize = 256;

/// Copy-out slab size for rendezvous payloads, bytes (the hmpi snippet's
/// `BLOCK_SIZE`): [`Msg::into_vec`] copies pooled payloads out in blocks
/// of this size so the lease returns to the pool as one pipelined pass
/// completes, rather than lingering element-by-element.
pub const RENDEZVOUS_BLOCK: usize = 8192;

/// A message payload in one of the two protocol representations (plus a
/// plain heap escape hatch for callers that already own a `Vec<u8>`).
// The size skew is the design: eager bytes live in the envelope so the
// hot path never allocates. Boxing `Inline` would put them back on the
// heap.
#[allow(clippy::large_enum_variant)]
pub enum Payload {
    /// Eager: bytes packed into the envelope itself.
    Inline {
        /// Number of valid bytes in `buf`.
        len: u16,
        /// Inline storage; only `buf[..len]` is meaningful.
        buf: [u8; INLINE_CAP],
    },
    /// Rendezvous: a buffer leased from the universe's arena; returns to
    /// its size class on drop.
    Pooled(Lease),
    /// A caller-owned heap buffer (legacy path; collective fan-in that
    /// already materialised a `Vec<u8>`).
    Heap(Vec<u8>),
}

impl Payload {
    /// Packs `bytes` inline. Panics if `bytes.len() > INLINE_CAP`.
    pub fn inline_from(bytes: &[u8]) -> Payload {
        assert!(bytes.len() <= INLINE_CAP, "inline payload over capacity");
        let mut buf = [0u8; INLINE_CAP];
        buf[..bytes.len()].copy_from_slice(bytes);
        Payload::Inline {
            len: bytes.len() as u16,
            buf,
        }
    }

    /// Wraps an owned vector, inlining it when it fits under `eager_limit`.
    pub fn from_vec(v: Vec<u8>, eager_limit: usize) -> Payload {
        if v.len() <= eager_limit.min(INLINE_CAP) {
            Payload::inline_from(&v)
        } else {
            Payload::Heap(v)
        }
    }

    /// The payload bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            Payload::Inline { len, buf } => &buf[..*len as usize],
            Payload::Pooled(lease) => lease.bytes(),
            Payload::Heap(v) => v,
        }
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Inline { len, .. } => *len as usize,
            Payload::Pooled(lease) => lease.bytes().len(),
            Payload::Heap(v) => v.len(),
        }
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Protocol label for traces/diagnostics.
    pub fn protocol(&self) -> &'static str {
        match self {
            Payload::Inline { .. } => "eager",
            Payload::Pooled(_) => "rendezvous",
            Payload::Heap(_) => "heap",
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload::{}({}B)", self.protocol(), self.len())
    }
}

/// A received payload; dereferences to its bytes.
///
/// Dropping a `Msg` whose payload was pooled returns the buffer to the
/// universe's arena — receivers that only borrow (`decode(&msg)`) recycle
/// the buffer the moment the message goes out of scope.
pub struct Msg {
    payload: Payload,
}

impl Msg {
    /// Wraps a payload.
    pub(crate) fn new(payload: Payload) -> Msg {
        Msg { payload }
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Which protocol carried the message ("eager"/"rendezvous"/"heap").
    pub fn protocol(&self) -> &'static str {
        self.payload.protocol()
    }

    /// Copies the payload out into an owned vector.
    ///
    /// Heap payloads move without copying. Pooled payloads copy out in
    /// [`RENDEZVOUS_BLOCK`]-sized slabs (the block-pipelined copy of the
    /// rendezvous protocol) and the lease returns to the pool on return.
    pub fn into_vec(self) -> Vec<u8> {
        match self.payload {
            Payload::Heap(v) => v,
            Payload::Inline { len, buf } => buf[..len as usize].to_vec(),
            Payload::Pooled(lease) => {
                let src = lease.bytes();
                let mut out = Vec::with_capacity(src.len());
                for block in src.chunks(RENDEZVOUS_BLOCK) {
                    out.extend_from_slice(block);
                }
                out
            }
        }
    }
}

impl std::ops::Deref for Msg {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.payload.bytes()
    }
}

impl AsRef<[u8]> for Msg {
    fn as_ref(&self) -> &[u8] {
        self.payload.bytes()
    }
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Msg[{} {}B]", self.protocol(), self.len())
    }
}

/// A message in flight or queued at the receiver.
#[derive(Debug)]
pub struct Envelope {
    /// Context id (communicator + p2p/collective plane).
    pub ctx: u64,
    /// Sender's world rank.
    pub src_world: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload in its protocol representation.
    pub payload: Payload,
    /// Virtual time the sender posted the message.
    pub sent_at: SimTime,
    /// Virtual time the message reaches the receiver (tentative when a
    /// contended reservation is stamped in `xfer`: the receiver settles
    /// the final arrival against its own frontier at match time).
    pub arrival: SimTime,
    /// Sender's per-rank send sequence number — with the arrival quantum
    /// and the sender rank, the deterministic wildcard tie-break key.
    pub seq: u64,
    /// Contended-wire reservation granted by the sender, settled by the
    /// receiver ([`crate::vtime::NetFrontier::settle`]). `None` for
    /// uncontended transfers.
    pub xfer: Option<WireXfer>,
}

impl Envelope {
    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Borrow of the payload bytes.
    pub fn bytes(&self) -> &[u8] {
        self.payload.bytes()
    }

    /// Consumes the envelope into its received payload.
    pub fn into_msg(self) -> Msg {
        Msg::new(self.payload)
    }
}

/// Completion information for a receive or probe (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank *within the communicator the operation was issued on*.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: i32,
    /// Payload size in bytes (`MPI_Get_count` precursor).
    pub bytes: usize,
}

/// A receive-side matching pattern.
#[derive(Debug, Clone, Copy)]
pub struct Pattern {
    /// Context id the receive is posted on.
    pub ctx: u64,
    /// Required sender world rank, or `None` for `ANY_SOURCE`.
    pub src_world: Option<usize>,
    /// Required tag, or `None` for `ANY_TAG`.
    pub tag: Option<i32>,
}

impl Pattern {
    fn tag_matches(&self, tag: i32) -> bool {
        self.tag.is_none_or(|t| t == tag)
    }
}

/// What one atomic match attempt concluded for a (possibly
/// deadline-bounded) receive.
#[derive(Debug)]
// `Matched` carries the envelope (and its inline payload) by value so a
// claim stays allocation-free; the enum lives only on the stack between
// the match and the caller.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Claim {
    /// A qualifying envelope was removed from the queue.
    Matched(Envelope),
    /// A matching envelope from the *specific* awaited source is queued
    /// with `arrival > deadline`: non-overtaking means nothing earlier can
    /// follow, so the deadline is provably missed.
    DeadlineMissed,
    /// Nothing qualifying is queued (yet).
    Nothing,
}

/// One queued message plus its ingest-order ticket.
#[derive(Debug)]
struct Queued {
    ticket: u64,
    env: Envelope,
}

/// Where a located match lives in the index.
enum Locate {
    Hit { key: (u64, usize), pos: usize },
    Missed,
    Nothing,
}

/// The indexed message store: one FIFO per `(ctx, sender)`. An ingest
/// ticket is kept for diagnostics (`dump`); wildcard matches order across
/// senders by the deterministic `(arrival quantum, rank, seq)` key.
#[derive(Debug, Default)]
struct Store {
    queues: HashMap<(u64, usize), VecDeque<Queued>>,
    next_ticket: u64,
    total: usize,
}

impl Store {
    /// Pulls every message parked in the eager lanes into the index.
    /// Must run before any match/peek/count so lane traffic is visible to
    /// the same-lock observers (receive loops *and* the quiescence
    /// classifier).
    fn sync(&mut self, lanes: &LaneSet<Envelope>) {
        if lanes.any_dirty() {
            lanes.drain_into(|_, env| self.ingest(env));
        }
    }

    fn ingest(&mut self, env: Envelope) {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.total += 1;
        self.queues
            .entry((env.ctx, env.src_world))
            .or_default()
            .push_back(Queued { ticket, env });
    }

    /// First deliverable entry in one queue: tag match, and on-time when a
    /// deadline bounds the receive. Returns (position, ticket).
    fn hit_in(
        q: &VecDeque<Queued>,
        pat: &Pattern,
        deadline: Option<SimTime>,
    ) -> Option<(usize, u64)> {
        q.iter().enumerate().find_map(|(i, item)| {
            let ok = pat.tag_matches(item.env.tag)
                && deadline.is_none_or(|d| item.env.arrival <= d);
            ok.then_some((i, item.ticket))
        })
    }

    /// Whether any entry in `q` matches `pat` ignoring arrival times.
    fn any_match_in(q: &VecDeque<Queued>, pat: &Pattern) -> bool {
        q.iter().any(|item| pat.tag_matches(item.env.tag))
    }

    fn locate(&self, pat: Pattern, deadline: Option<SimTime>) -> Locate {
        match pat.src_world {
            Some(src) => {
                let key = (pat.ctx, src);
                let Some(q) = self.queues.get(&key) else {
                    return Locate::Nothing;
                };
                if let Some((pos, _)) = Self::hit_in(q, &pat, deadline) {
                    return Locate::Hit { key, pos };
                }
                if deadline.is_some() && Self::any_match_in(q, &pat) {
                    // The queued match must have arrival > deadline; for a
                    // specific source, non-overtaking means no earlier
                    // arrival can follow it: the deadline is already
                    // missed.
                    return Locate::Missed;
                }
                Locate::Nothing
            }
            None => {
                // Wildcard: per-sender FIFO picks the head match in each
                // queue; across senders the winner holds the minimum
                // `(arrival quantum, sender rank, sender seq)` key — the
                // same deterministic order the contention arbiter grants
                // in — so simultaneous arrivals resolve by rank and send
                // order, never by which OS thread reached the mailbox
                // first.
                type ArrivalKey = (u64, usize, u64);
                let mut best: Option<((u64, usize), usize, ArrivalKey)> = None;
                for (key, q) in &self.queues {
                    if key.0 != pat.ctx {
                        continue;
                    }
                    if let Some((pos, _)) = Self::hit_in(q, &pat, deadline) {
                        let item = &q[pos];
                        let k = (
                            quantum_of(item.env.arrival),
                            item.env.src_world,
                            item.env.seq,
                        );
                        if best.as_ref().is_none_or(|&(_, _, b)| k < b) {
                            best = Some((*key, pos, k));
                        }
                    }
                }
                match best {
                    Some((key, pos, _)) => Locate::Hit { key, pos },
                    None => Locate::Nothing,
                }
            }
        }
    }

    fn claim(&mut self, pat: Pattern, deadline: Option<SimTime>) -> Claim {
        match self.locate(pat, deadline) {
            Locate::Hit { key, pos } => {
                let q = self.queues.get_mut(&key).expect("located queue exists");
                let item = q.remove(pos).expect("located position exists");
                if q.is_empty() {
                    self.queues.remove(&key);
                }
                self.total -= 1;
                Claim::Matched(item.env)
            }
            Locate::Missed => Claim::DeadlineMissed,
            Locate::Nothing => Claim::Nothing,
        }
    }

    /// Metadata of the first (oldest-ticket) match, without removal.
    fn peek(&self, pat: Pattern) -> Option<(usize, i32, usize, SimTime)> {
        match self.locate(pat, None) {
            Locate::Hit { key, pos } => {
                let item = &self.queues[&key][pos];
                Some((
                    item.env.src_world,
                    item.env.tag,
                    item.env.len(),
                    item.env.arrival,
                ))
            }
            _ => None,
        }
    }

    /// The quiescence-relevant progress predicate for one pattern: a
    /// deliverable match is queued (`arrival <= deadline` when bounded),
    /// or a provably-late specific-source match lets the receive resolve
    /// as a missed deadline.
    fn progressable(&self, pat: &Pattern, deadline: Option<SimTime>) -> bool {
        match pat.src_world {
            Some(src) => {
                let Some(q) = self.queues.get(&(pat.ctx, src)) else {
                    return false;
                };
                Self::hit_in(q, pat, deadline).is_some()
                    || (deadline.is_some() && Self::any_match_in(q, pat))
            }
            None => self
                .queues
                .iter()
                .any(|(key, q)| key.0 == pat.ctx && Self::hit_in(q, pat, deadline).is_some()),
        }
    }

    /// (ctx, src, tag, len) of every queued message, for diagnostics.
    fn dump(&self) -> Vec<(u64, usize, i32, usize)> {
        let mut all: Vec<(u64, &Queued)> = self
            .queues
            .values()
            .flatten()
            .map(|item| (item.ticket, item))
            .collect();
        all.sort_by_key(|(t, _)| *t);
        all.iter()
            .map(|(_, item)| {
                (
                    item.env.ctx,
                    item.env.src_world,
                    item.env.tag,
                    item.env.len(),
                )
            })
            .collect()
    }
}

/// One rank's incoming-message endpoint: per-sender eager lanes feeding
/// an indexed store, with a doorbell for blocked receivers.
#[derive(Debug)]
pub struct Mailbox {
    state: Mutex<Store>,
    cond: Condvar,
    lanes: LaneSet<Envelope>,
    /// Receivers registered for a doorbell ring; producers skip the
    /// notify (and its lock) when zero.
    waiters: AtomicUsize,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::for_world(0)
    }
}

impl Mailbox {
    /// An empty mailbox with no eager lanes (posts go straight to the
    /// store) — convenient for tests and single-producer uses.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// A mailbox with one eager lane per sender in an `n`-rank world.
    pub fn for_world(n: usize) -> Self {
        Mailbox {
            state: Mutex::new(Store::default()),
            cond: Condvar::new(),
            lanes: LaneSet::new(n),
            waiters: AtomicUsize::new(0),
        }
    }

    /// Posts a message straight into the indexed store (sender thread).
    ///
    /// Lane traffic already queued by the same sender is drained first,
    /// so mixing [`Mailbox::post`] and [`Mailbox::post_lane`] from one
    /// thread preserves that sender's FIFO order.
    pub fn post(&self, env: Envelope) {
        let mut st = self.state.lock();
        st.sync(&self.lanes);
        st.ingest(env);
        self.cond.notify_all();
    }

    /// Posts a message through the sender's eager lane — the hot path.
    /// Never touches the store lock unless a receiver is registered on
    /// the doorbell (or the mailbox was built without lanes).
    pub fn post_lane(&self, env: Envelope) {
        if self.lanes.senders() == 0 {
            return self.post(env);
        }
        debug_assert!(env.src_world < self.lanes.senders());
        self.lanes.push(env.src_world, env);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Ring the doorbell under the store lock: a receiver between
            // its final check and its `wait` holds the lock, so the
            // notify can't slip into that window and get lost.
            let _guard = self.state.lock();
            self.cond.notify_all();
        }
    }

    /// Wakes every thread blocked on this mailbox so it re-checks its match
    /// and abort conditions. Called when rank liveness changes.
    pub fn wake_all(&self) {
        // Taking the lock orders the ring after the state change the
        // caller made and prevents the notify landing in a waiter's
        // check-to-sleep window (see post_lane).
        let _guard = self.state.lock();
        self.cond.notify_all();
    }

    /// Removes and returns the first queued envelope matching `pat`,
    /// blocking until one arrives.
    ///
    /// # Panics
    /// Panics after [`DEADLOCK_TIMEOUT`] of real time with no match — the
    /// surrounding SPMD program has deadlocked.
    pub fn recv_match(&self, pat: Pattern) -> Envelope {
        let mut st = self.state.lock();
        loop {
            // Register on the doorbell *before* the final check so a
            // producer that misses our registration is provably ordered
            // before the check (and its message visible to it).
            self.waiters.fetch_add(1, Ordering::SeqCst);
            st.sync(&self.lanes);
            if let Claim::Matched(env) = st.claim(pat, None) {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                return env;
            }
            let timed_out = self.cond.wait_for(&mut st, DEADLOCK_TIMEOUT).timed_out();
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            if timed_out {
                st.sync(&self.lanes);
                panic!(
                    "mpisim deadlock: receive {pat:?} matched nothing for {DEADLOCK_TIMEOUT:?}; \
                     {} unmatched message(s) queued: {:?}",
                    st.total,
                    st.dump()
                );
            }
        }
    }

    /// One atomic match-and-remove attempt for a (possibly
    /// deadline-bounded) receive.
    pub(crate) fn claim(&self, pat: Pattern, deadline: Option<SimTime>) -> Claim {
        let mut st = self.state.lock();
        st.sync(&self.lanes);
        st.claim(pat, deadline)
    }

    /// Like a claiming receive's wait but leaves the message queued
    /// (probe). Returns the matched envelope's metadata, or `None` after
    /// the bounded wait.
    pub(crate) fn wait_or_peek(
        &self,
        pat: Pattern,
        timeout: Duration,
    ) -> Option<(usize, i32, usize, SimTime)> {
        let mut st = self.state.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        st.sync(&self.lanes);
        let hit = match st.peek(pat) {
            Some(hit) => Some(hit),
            None => {
                self.cond.wait_for(&mut st, timeout);
                st.sync(&self.lanes);
                st.peek(pat)
            }
        };
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        hit
    }

    /// Bounded wait until some pattern in `pats` could make progress under
    /// `deadline` (per [`Store::progressable`]), a wakeup arrives, or
    /// `timeout` elapses — the sleep primitive of every guarded wait loop.
    /// With empty `pats` this is a pure interruptible sleep (used by
    /// agreement polls). Returns true if progress is possible.
    pub(crate) fn wait_deliverable(
        &self,
        pats: &[Pattern],
        deadline: Option<SimTime>,
        timeout: Duration,
    ) -> bool {
        let mut st = self.state.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        st.sync(&self.lanes);
        let check = |st: &Store| pats.iter().any(|p| st.progressable(p, deadline));
        let ok = if check(&st) {
            true
        } else {
            self.cond.wait_for(&mut st, timeout);
            st.sync(&self.lanes);
            check(&st)
        };
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        ok
    }

    /// True if a blocked receive over `pats` could make progress on its
    /// own: a deliverable match is queued, or (deadline-bounded,
    /// specific-source) a provably-late match lets it return `Timeout`.
    /// Used by the quiescence classifier, which must observe the exact
    /// conditions the receive loop itself checks.
    pub(crate) fn can_progress(&self, pats: &[Pattern], deadline: Option<SimTime>) -> bool {
        let mut st = self.state.lock();
        st.sync(&self.lanes);
        pats.iter().any(|p| st.progressable(p, deadline))
    }

    /// Like [`Mailbox::recv_match`] but leaves the message queued
    /// (`MPI_Probe`). Returns the matched envelope's metadata.
    pub fn probe_match(&self, pat: Pattern) -> (usize, i32, usize, SimTime) {
        let mut st = self.state.lock();
        loop {
            self.waiters.fetch_add(1, Ordering::SeqCst);
            st.sync(&self.lanes);
            if let Some(hit) = st.peek(pat) {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                return hit;
            }
            let timed_out = self.cond.wait_for(&mut st, DEADLOCK_TIMEOUT).timed_out();
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            if timed_out {
                panic!("mpisim deadlock: probe {pat:?} matched nothing for {DEADLOCK_TIMEOUT:?}");
            }
        }
    }

    /// Non-blocking probe (`MPI_Iprobe`): metadata of the first match, if any.
    pub fn try_probe(&self, pat: Pattern) -> Option<(usize, i32, usize, SimTime)> {
        let mut st = self.state.lock();
        st.sync(&self.lanes);
        st.peek(pat)
    }

    /// Non-blocking matched receive (`MPI_Irecv` + immediate test).
    pub fn try_recv_match(&self, pat: Pattern) -> Option<Envelope> {
        let mut st = self.state.lock();
        st.sync(&self.lanes);
        match st.claim(pat, None) {
            Claim::Matched(env) => Some(env),
            _ => None,
        }
    }

    /// Number of queued (unmatched) messages — used by shutdown diagnostics.
    pub fn pending(&self) -> usize {
        let mut st = self.state.lock();
        st.sync(&self.lanes);
        st.total
    }

    /// Removes and returns every queued message (end-of-run drain, so
    /// pooled payloads return to the arena before leak accounting).
    pub(crate) fn drain_all(&self) -> usize {
        let mut st = self.state.lock();
        st.sync(&self.lanes);
        let n = st.total;
        st.queues.clear();
        st.total = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(ctx: u64, src: usize, tag: i32, data: &[u8]) -> Envelope {
        Envelope {
            ctx,
            src_world: src,
            tag,
            payload: Payload::from_vec(data.to_vec(), DEFAULT_EAGER_LIMIT),
            sent_at: SimTime::ZERO,
            arrival: SimTime::from_secs(1.0),
            seq: 0,
            xfer: None,
        }
    }

    fn env_at(ctx: u64, src: usize, tag: i32, arrival: f64) -> Envelope {
        Envelope {
            arrival: SimTime::from_secs(arrival),
            ..env(ctx, src, tag, b"x")
        }
    }

    #[test]
    fn exact_match_removes_message() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"hi"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(got.bytes(), b"hi");
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn wildcards_match_anything_in_context() {
        let mb = Mailbox::new();
        mb.post(env(1, 3, 9, b"x"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        });
        assert_eq!(got.src_world, 3);
        assert_eq!(got.tag, 9);
    }

    #[test]
    fn context_isolates_messages() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"ctx1"));
        mb.post(env(2, 0, 7, b"ctx2"));
        let got = mb.recv_match(Pattern {
            ctx: 2,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(got.bytes(), b"ctx2");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn non_overtaking_same_source_same_tag() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"first"));
        mb.post(env(1, 0, 7, b"second"));
        let a = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        let b = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(a.bytes(), b"first");
        assert_eq!(b.bytes(), b"second");
    }

    #[test]
    fn selective_tag_skips_earlier_nonmatching() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 1, b"tag1"));
        mb.post(env(1, 0, 2, b"tag2"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(2),
        });
        assert_eq!(got.bytes(), b"tag2");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn wildcard_matches_in_virtual_arrival_order() {
        // Posted in the "wrong" wall-clock order: the earlier *virtual*
        // arrival wins regardless of which sender reached the mailbox
        // first.
        let mb = Mailbox::new();
        mb.post(env_at(1, 2, 7, 2.0));
        mb.post(env_at(1, 5, 7, 1.0));
        let pat = Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        };
        let a = mb.recv_match(pat);
        let b = mb.recv_match(pat);
        assert_eq!(a.src_world, 5);
        assert_eq!(b.src_world, 2);
    }

    #[test]
    fn wildcard_ties_in_one_quantum_resolve_by_rank() {
        // Identical virtual arrivals (same arbitration quantum): the lower
        // sender rank wins, independent of post order.
        let mb = Mailbox::new();
        mb.post(env_at(1, 7, 4, 1.0));
        mb.post(env_at(1, 3, 4, 1.0));
        let pat = Pattern {
            ctx: 1,
            src_world: None,
            tag: Some(4),
        };
        assert_eq!(mb.recv_match(pat).src_world, 3);
        assert_eq!(mb.recv_match(pat).src_world, 7);
        // Sub-quantum noise does not reorder the tie-break.
        mb.post(env_at(1, 9, 4, 1.0 + 2e-10));
        mb.post(env_at(1, 4, 4, 1.0));
        assert_eq!(mb.recv_match(pat).src_world, 4);
        assert_eq!(mb.recv_match(pat).src_world, 9);
    }

    #[test]
    fn wildcard_same_rank_ties_resolve_by_send_seq() {
        // Same quantum, same sender: the per-rank send sequence (FIFO
        // within the sender's queue) orders the matches.
        let mb = Mailbox::new();
        let mut first = env_at(1, 2, 4, 1.0);
        first.seq = 10;
        let mut second = env_at(1, 2, 4, 1.0);
        second.seq = 11;
        mb.post(first);
        mb.post(second);
        let pat = Pattern {
            ctx: 1,
            src_world: None,
            tag: Some(4),
        };
        assert_eq!(mb.recv_match(pat).seq, 10);
        assert_eq!(mb.recv_match(pat).seq, 11);
    }

    #[test]
    fn lane_posts_preserve_sender_fifo_and_are_matchable() {
        let mb = Mailbox::for_world(4);
        mb.post_lane(env(1, 2, 7, b"a"));
        mb.post_lane(env(1, 2, 7, b"b"));
        mb.post_lane(env(1, 3, 7, b"c"));
        assert_eq!(mb.pending(), 3);
        let pat = Pattern {
            ctx: 1,
            src_world: Some(2),
            tag: Some(7),
        };
        assert_eq!(mb.recv_match(pat).bytes(), b"a");
        assert_eq!(mb.recv_match(pat).bytes(), b"b");
        assert_eq!(mb.try_probe(Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        }).map(|(s, ..)| s), Some(3));
    }

    #[test]
    fn deadline_missed_is_proved_for_specific_source_only() {
        let mb = Mailbox::new();
        mb.post(env_at(1, 0, 7, 10.0));
        let d = Some(SimTime::from_secs(5.0));
        let specific = Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        };
        let wildcard = Pattern {
            ctx: 1,
            src_world: None,
            tag: Some(7),
        };
        assert!(matches!(mb.claim(specific, d), Claim::DeadlineMissed));
        assert!(matches!(mb.claim(wildcard, d), Claim::Nothing));
    }

    #[test]
    fn deadline_claim_skips_late_and_takes_on_time() {
        let mb = Mailbox::new();
        mb.post(env_at(1, 0, 7, 10.0));
        mb.post(env_at(1, 0, 7, 2.0));
        let d = Some(SimTime::from_secs(5.0));
        let pat = Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        };
        match mb.claim(pat, d) {
            Claim::Matched(env) => assert_eq!(env.arrival, SimTime::from_secs(2.0)),
            other => panic!("expected on-time match, got {other:?}"),
        }
    }

    #[test]
    fn probe_leaves_message_queued() {
        let mb = Mailbox::new();
        mb.post(env(1, 4, 5, b"abc"));
        let (src, tag, len, _) = mb.probe_match(Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        });
        assert_eq!((src, tag, len), (4, 5, 3));
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn try_probe_returns_none_when_empty() {
        let mb = Mailbox::new();
        assert!(mb
            .try_probe(Pattern {
                ctx: 1,
                src_world: None,
                tag: None
            })
            .is_none());
    }

    #[test]
    fn blocked_recv_wakes_on_lane_post() {
        let mb = Arc::new(Mailbox::for_world(2));
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            mb2.recv_match(Pattern {
                ctx: 1,
                src_world: Some(0),
                tag: Some(0),
            })
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.post_lane(env(1, 0, 0, b"late"));
        let got = h.join().unwrap();
        assert_eq!(got.bytes(), b"late");
    }

    #[test]
    fn payload_protocol_split_at_inline_cap() {
        let small = Payload::from_vec(vec![7u8; INLINE_CAP], DEFAULT_EAGER_LIMIT);
        let big = Payload::from_vec(vec![7u8; INLINE_CAP + 1], DEFAULT_EAGER_LIMIT);
        assert_eq!(small.protocol(), "eager");
        assert_eq!(big.protocol(), "heap");
        assert_eq!(small.len(), INLINE_CAP);
        assert_eq!(big.len(), INLINE_CAP + 1);
    }

    #[test]
    fn msg_into_vec_round_trips_all_protocols() {
        let data: Vec<u8> = (0..=255u8).cycle().take(3 * RENDEZVOUS_BLOCK + 17).collect();
        let heap = Msg::new(Payload::Heap(data.clone()));
        assert_eq!(heap.into_vec(), data);
        let inline = Msg::new(Payload::inline_from(&data[..100]));
        assert_eq!(inline.into_vec(), &data[..100]);
        let pool = crate::pool::BufferPool::new();
        let mut lease = pool.lease(data.len());
        lease.buf_mut().extend_from_slice(&data);
        let pooled = Msg::new(Payload::Pooled(lease));
        assert_eq!(&*pooled, &data[..]);
        assert_eq!(pooled.into_vec(), data);
        assert_eq!(pool.outstanding(), 0, "lease returned after copy-out");
    }
}
