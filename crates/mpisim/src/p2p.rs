//! Point-to-point matching engine.
//!
//! Each rank owns one [`Mailbox`]. Senders post [`Envelope`]s directly into
//! the destination's mailbox (eager/buffered semantics — sends never block);
//! receivers scan their queue front-to-back for the first envelope matching
//! `(context, source, tag)` and block on a condition variable when nothing
//! matches yet. Front-to-back scanning preserves MPI's non-overtaking
//! guarantee: two messages from the same sender on the same communicator
//! that both match a receive are matched in the order they were sent.

use hetsim::SimTime;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: isize = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Default wall-clock watchdog: how long a blocked receive waits in real
/// time before giving up. Since the virtual-time quiescence detector
/// ([`crate::quiesce`]) classifies stuck states in milliseconds, this is a
/// belt-and-braces backstop that should never fire in practice — it only
/// catches programs that defeat the detector (e.g. a rank busy-polling
/// outside the runtime forever). Configurable per universe with
/// [`crate::Universe::with_deadlock_timeout`] or the
/// `MPISIM_DEADLOCK_TIMEOUT` environment variable (seconds); the raw
/// panicking [`Mailbox::recv_match`] always uses this default.
pub const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Historical real-time grace of a *deadline* receive (`recv_deadline` /
/// `recv_timeout`). Deadline receives are now exact: they time out when the
/// quiescence detector proves no qualifying message can arrive, not after a
/// fixed real-time wait. The constant remains as public API and as the
/// spacing of a few internal retry heuristics.
pub const TIMEOUT_GRACE: Duration = Duration::from_millis(500);

/// Polling slice for guarded receives: an upper bound on how long a blocked
/// receive sleeps before re-checking its abort condition, which caps the
/// latency of noticing a peer-failure transition even if a wakeup is lost.
pub(crate) const GUARD_POLL: Duration = Duration::from_millis(25);

/// A message in flight or queued at the receiver.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Context id (communicator + p2p/collective plane).
    pub ctx: u64,
    /// Sender's world rank.
    pub src_world: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Virtual time the sender posted the message.
    pub sent_at: SimTime,
    /// Virtual time the message reaches the receiver.
    pub arrival: SimTime,
}

/// Completion information for a receive or probe (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank *within the communicator the operation was issued on*.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: i32,
    /// Payload size in bytes (`MPI_Get_count` precursor).
    pub bytes: usize,
}

/// A receive-side matching pattern.
#[derive(Debug, Clone, Copy)]
pub struct Pattern {
    /// Context id the receive is posted on.
    pub ctx: u64,
    /// Required sender world rank, or `None` for `ANY_SOURCE`.
    pub src_world: Option<usize>,
    /// Required tag, or `None` for `ANY_TAG`.
    pub tag: Option<i32>,
}

impl Pattern {
    fn matches(&self, env: &Envelope) -> bool {
        env.ctx == self.ctx
            && self.src_world.is_none_or(|s| s == env.src_world)
            && self.tag.is_none_or(|t| t == env.tag)
    }
}

/// What one atomic scan of the queue concluded for a (possibly
/// deadline-bounded) receive.
#[derive(Debug)]
pub(crate) enum Claim {
    /// A qualifying envelope was removed from the queue.
    Matched(Envelope),
    /// A matching envelope from the *specific* awaited source is queued
    /// with `arrival > deadline`: non-overtaking means nothing earlier can
    /// follow, so the deadline is provably missed.
    DeadlineMissed,
    /// Nothing qualifying is queued (yet).
    Nothing,
}

/// One rank's incoming-message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    inner: Mutex<Vec<Envelope>>,
    cond: Condvar,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Posts a message (called from the sender's thread).
    pub fn post(&self, env: Envelope) {
        self.inner.lock().push(env);
        self.cond.notify_all();
    }

    /// Removes and returns the first queued envelope matching `pat`,
    /// blocking until one arrives.
    ///
    /// # Panics
    /// Panics after [`DEADLOCK_TIMEOUT`] of real time with no match — the
    /// surrounding SPMD program has deadlocked.
    pub fn recv_match(&self, pat: Pattern) -> Envelope {
        let mut q = self.inner.lock();
        loop {
            if let Some(i) = q.iter().position(|e| pat.matches(e)) {
                return q.remove(i);
            }
            let timed_out = self.cond.wait_for(&mut q, DEADLOCK_TIMEOUT).timed_out();
            if timed_out {
                panic!(
                    "mpisim deadlock: receive {pat:?} matched nothing for {DEADLOCK_TIMEOUT:?}; \
                     {} unmatched message(s) queued: {:?}",
                    q.len(),
                    q.iter()
                        .map(|e| (e.ctx, e.src_world, e.tag, e.data.len()))
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    /// Wakes every thread blocked on this mailbox so it re-checks its match
    /// and abort conditions. Called when rank liveness changes.
    pub fn wake_all(&self) {
        self.cond.notify_all();
    }

    /// One atomic scan-and-remove attempt for a (possibly deadline-bounded)
    /// receive.
    pub(crate) fn claim(&self, pat: Pattern, deadline: Option<SimTime>) -> Claim {
        let mut q = self.inner.lock();
        Self::claim_locked(&mut q, pat, deadline)
    }

    fn claim_locked(q: &mut Vec<Envelope>, pat: Pattern, deadline: Option<SimTime>) -> Claim {
        let pos = match deadline {
            None => q.iter().position(|e| pat.matches(e)),
            Some(d) => {
                let hit = q.iter().position(|e| pat.matches(e) && e.arrival <= d);
                if hit.is_none() && pat.src_world.is_some() && q.iter().any(|e| pat.matches(e)) {
                    // A queued match must have arrival > d. For a specific
                    // source, non-overtaking means no earlier arrival can
                    // follow it: the deadline is already missed.
                    return Claim::DeadlineMissed;
                }
                hit
            }
        };
        match pos {
            Some(i) => Claim::Matched(q.remove(i)),
            None => Claim::Nothing,
        }
    }

    /// The quiescence-relevant progress predicate for one pattern: a
    /// deliverable match is queued (`arrival <= deadline` when bounded), or
    /// a provably-late specific-source match lets the receive resolve as a
    /// missed deadline.
    fn progressable(q: &[Envelope], pat: &Pattern, deadline: Option<SimTime>) -> bool {
        match deadline {
            None => q.iter().any(|e| pat.matches(e)),
            Some(d) => {
                q.iter().any(|e| pat.matches(e) && e.arrival <= d)
                    || (pat.src_world.is_some() && q.iter().any(|e| pat.matches(e)))
            }
        }
    }

    /// Like a claiming receive's wait but leaves the message queued
    /// (probe). Returns the matched envelope's metadata, or `None` after
    /// the bounded wait.
    pub(crate) fn wait_or_peek(
        &self,
        pat: Pattern,
        timeout: Duration,
    ) -> Option<(usize, i32, usize, SimTime)> {
        let peek = |q: &[Envelope]| {
            q.iter()
                .find(|e| pat.matches(e))
                .map(|e| (e.src_world, e.tag, e.data.len(), e.arrival))
        };
        let mut q = self.inner.lock();
        if let Some(hit) = peek(&q) {
            return Some(hit);
        }
        self.cond.wait_for(&mut q, timeout);
        peek(&q)
    }

    /// Bounded wait until some pattern in `pats` could make progress under
    /// `deadline` (per [`Mailbox::progressable`]), a wakeup arrives, or
    /// `timeout` elapses — the sleep primitive of every guarded wait loop.
    /// With empty `pats` this is a pure interruptible sleep (used by
    /// agreement polls). Returns true if progress is possible.
    pub(crate) fn wait_deliverable(
        &self,
        pats: &[Pattern],
        deadline: Option<SimTime>,
        timeout: Duration,
    ) -> bool {
        let hit = |q: &[Envelope]| pats.iter().any(|p| Self::progressable(q, p, deadline));
        let mut q = self.inner.lock();
        if hit(&q) {
            return true;
        }
        self.cond.wait_for(&mut q, timeout);
        hit(&q)
    }

    /// True if a blocked receive over `pats` could make progress on its
    /// own: a deliverable match is queued, or (deadline-bounded,
    /// specific-source) a provably-late match lets it return `Timeout`.
    /// Used by the quiescence classifier, which must observe the exact
    /// conditions the receive loop itself checks.
    pub(crate) fn can_progress(&self, pats: &[Pattern], deadline: Option<SimTime>) -> bool {
        let q = self.inner.lock();
        pats.iter().any(|p| Self::progressable(&q, p, deadline))
    }

    /// Like [`Mailbox::recv_match`] but leaves the message queued
    /// (`MPI_Probe`). Returns the matched envelope's metadata.
    pub fn probe_match(&self, pat: Pattern) -> (usize, i32, usize, SimTime) {
        let mut q = self.inner.lock();
        loop {
            if let Some(e) = q.iter().find(|e| pat.matches(e)) {
                return (e.src_world, e.tag, e.data.len(), e.arrival);
            }
            let timed_out = self.cond.wait_for(&mut q, DEADLOCK_TIMEOUT).timed_out();
            if timed_out {
                panic!("mpisim deadlock: probe {pat:?} matched nothing for {DEADLOCK_TIMEOUT:?}");
            }
        }
    }

    /// Non-blocking probe (`MPI_Iprobe`): metadata of the first match, if any.
    pub fn try_probe(&self, pat: Pattern) -> Option<(usize, i32, usize, SimTime)> {
        let q = self.inner.lock();
        q.iter()
            .find(|e| pat.matches(e))
            .map(|e| (e.src_world, e.tag, e.data.len(), e.arrival))
    }

    /// Non-blocking matched receive (`MPI_Irecv` + immediate test).
    pub fn try_recv_match(&self, pat: Pattern) -> Option<Envelope> {
        let mut q = self.inner.lock();
        let i = q.iter().position(|e| pat.matches(e))?;
        Some(q.remove(i))
    }

    /// Number of queued (unmatched) messages — used by shutdown diagnostics.
    pub fn pending(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(ctx: u64, src: usize, tag: i32, data: &[u8]) -> Envelope {
        Envelope {
            ctx,
            src_world: src,
            tag,
            data: data.to_vec(),
            sent_at: SimTime::ZERO,
            arrival: SimTime::from_secs(1.0),
        }
    }

    #[test]
    fn exact_match_removes_message() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"hi"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(got.data, b"hi");
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn wildcards_match_anything_in_context() {
        let mb = Mailbox::new();
        mb.post(env(1, 3, 9, b"x"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        });
        assert_eq!(got.src_world, 3);
        assert_eq!(got.tag, 9);
    }

    #[test]
    fn context_isolates_messages() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"ctx1"));
        mb.post(env(2, 0, 7, b"ctx2"));
        let got = mb.recv_match(Pattern {
            ctx: 2,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(got.data, b"ctx2");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn non_overtaking_same_source_same_tag() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 7, b"first"));
        mb.post(env(1, 0, 7, b"second"));
        let a = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        let b = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(7),
        });
        assert_eq!(a.data, b"first");
        assert_eq!(b.data, b"second");
    }

    #[test]
    fn selective_tag_skips_earlier_nonmatching() {
        let mb = Mailbox::new();
        mb.post(env(1, 0, 1, b"tag1"));
        mb.post(env(1, 0, 2, b"tag2"));
        let got = mb.recv_match(Pattern {
            ctx: 1,
            src_world: Some(0),
            tag: Some(2),
        });
        assert_eq!(got.data, b"tag2");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn probe_leaves_message_queued() {
        let mb = Mailbox::new();
        mb.post(env(1, 4, 5, b"abc"));
        let (src, tag, len, _) = mb.probe_match(Pattern {
            ctx: 1,
            src_world: None,
            tag: None,
        });
        assert_eq!((src, tag, len), (4, 5, 3));
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn try_probe_returns_none_when_empty() {
        let mb = Mailbox::new();
        assert!(mb
            .try_probe(Pattern {
                ctx: 1,
                src_world: None,
                tag: None
            })
            .is_none());
    }

    #[test]
    fn blocked_recv_wakes_on_post() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            mb2.recv_match(Pattern {
                ctx: 1,
                src_world: Some(0),
                tag: Some(0),
            })
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.post(env(1, 0, 0, b"late"));
        let got = h.join().unwrap();
        assert_eq!(got.data, b"late");
    }
}
