//! Typed views over message payloads.
//!
//! Messages travel as byte vectors; [`MpiType`] converts slices of plain
//! numeric types to and from bytes with explicit little-endian encoding (no
//! `unsafe`, per the data-race-freedom discipline of the surrounding
//! codebase — the cost is a copy, which the virtual-time model does not
//! observe anyway).

use crate::error::{MpiError, MpiResult};
use crate::p2p::Payload;
use crate::pool::BufferPool;
use std::sync::Arc;

/// A plain datatype that can cross the message-passing layer.
pub trait MpiType: Copy + Send + 'static {
    /// Size of one element in bytes on the wire.
    const WIRE_SIZE: usize;

    /// Appends the little-endian encoding of `self` to `out`.
    fn write_to(&self, out: &mut Vec<u8>);

    /// Decodes one element from exactly `WIRE_SIZE` bytes.
    fn read_from(bytes: &[u8]) -> Self;
}

macro_rules! impl_mpi_type {
    ($($t:ty),*) => {$(
        impl MpiType for $t {
            const WIRE_SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_from(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("read_from requires WIRE_SIZE bytes"))
            }
        }
    )*};
}

impl_mpi_type!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl MpiType for usize {
    const WIRE_SIZE: usize = 8;

    #[inline]
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }

    #[inline]
    fn read_from(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes.try_into().expect("read_from requires 8 bytes")) as usize
    }
}

impl MpiType for bool {
    const WIRE_SIZE: usize = 1;

    #[inline]
    fn write_to(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    #[inline]
    fn read_from(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

/// Encodes a slice of elements into a fresh byte vector.
pub fn encode<T: MpiType>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::WIRE_SIZE);
    for x in data {
        x.write_to(&mut out);
    }
    out
}

thread_local! {
    /// Per-rank scratch buffer for eager encoding: the wire bytes of a
    /// small message are staged here before being packed into the inline
    /// envelope, so the eager path allocates nothing after warm-up.
    static EAGER_SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Encodes a slice directly into its protocol representation: inline
/// (eager, zero-allocation via a thread-local scratch) at or under
/// `eager_limit` wire bytes, an arena lease (rendezvous) above it.
pub(crate) fn encode_payload<T: MpiType>(
    data: &[T],
    eager_limit: usize,
    pool: &Arc<BufferPool>,
) -> Payload {
    let wire = data.len() * T::WIRE_SIZE;
    if wire <= eager_limit {
        EAGER_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            for x in data {
                x.write_to(&mut scratch);
            }
            Payload::inline_from(&scratch)
        })
    } else {
        let mut lease = pool.lease(wire);
        let buf = lease.buf_mut();
        for x in data {
            x.write_to(buf);
        }
        Payload::Pooled(lease)
    }
}

/// Decodes a byte vector into elements of `T`.
///
/// # Errors
/// Returns [`MpiError::TypeMismatch`] if the byte length is not a multiple of
/// the element size.
pub fn decode<T: MpiType>(bytes: &[u8]) -> MpiResult<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIRE_SIZE) {
        return Err(MpiError::TypeMismatch {
            message_bytes: bytes.len(),
            elem_bytes: T::WIRE_SIZE,
        });
    }
    Ok(bytes.chunks_exact(T::WIRE_SIZE).map(T::read_from).collect())
}

/// Decodes into a caller-supplied buffer, checking capacity.
///
/// # Errors
/// [`MpiError::Truncated`] if the buffer is too small,
/// [`MpiError::TypeMismatch`] if the byte length is not a whole number of
/// elements. Returns the number of elements written.
pub fn decode_into<T: MpiType>(bytes: &[u8], buf: &mut [T]) -> MpiResult<usize> {
    if !bytes.len().is_multiple_of(T::WIRE_SIZE) {
        return Err(MpiError::TypeMismatch {
            message_bytes: bytes.len(),
            elem_bytes: T::WIRE_SIZE,
        });
    }
    let n = bytes.len() / T::WIRE_SIZE;
    if n > buf.len() {
        return Err(MpiError::Truncated {
            message_bytes: bytes.len(),
            buffer_bytes: buf.len() * T::WIRE_SIZE,
        });
    }
    for (slot, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::WIRE_SIZE)) {
        *slot = T::read_from(chunk);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data = [1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode(&data);
        assert_eq!(bytes.len(), data.len() * 8);
        let back: Vec<f64> = decode(&bytes).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_i32_and_usize() {
        let ints = [i32::MIN, -1, 0, 1, i32::MAX];
        assert_eq!(decode::<i32>(&encode(&ints)).unwrap(), ints);
        let sizes = [0usize, 1, usize::MAX];
        assert_eq!(decode::<usize>(&encode(&sizes)).unwrap(), sizes);
    }

    #[test]
    fn roundtrip_bool() {
        let bs = [true, false, true];
        assert_eq!(decode::<bool>(&encode(&bs)).unwrap(), bs);
    }

    #[test]
    fn decode_rejects_ragged_length() {
        let bytes = vec![0u8; 9];
        assert!(matches!(
            decode::<f64>(&bytes),
            Err(MpiError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn decode_into_detects_truncation() {
        let bytes = encode(&[1.0f64, 2.0, 3.0]);
        let mut buf = [0.0f64; 2];
        assert!(matches!(
            decode_into(&bytes, &mut buf),
            Err(MpiError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_into_partial_buffer_ok() {
        let bytes = encode(&[1.0f64, 2.0]);
        let mut buf = [0.0f64; 4];
        let n = decode_into(&bytes, &mut buf).unwrap();
        assert_eq!(n, 2);
        assert_eq!(&buf[..2], &[1.0, 2.0]);
    }

    #[test]
    fn empty_roundtrip() {
        let empty: [f64; 0] = [];
        let bytes = encode(&empty);
        assert!(bytes.is_empty());
        assert!(decode::<f64>(&bytes).unwrap().is_empty());
    }
}
