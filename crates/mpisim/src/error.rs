//! Error types for the message-passing layer.

use std::fmt;

/// Result alias used throughout `mpisim`.
pub type MpiResult<T> = Result<T, MpiError>;

/// The blocked-receive wait graph at the moment a deadlock was detected.
///
/// One entry per *stuck* world rank: `(rank, ranks whose send could have
/// unblocked it)`. Built by the quiescence detector when every live rank is
/// blocked and no queued message can unblock any of them, so the edges are
/// exact, not sampled. Entries are in world-rank order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaitGraph {
    /// `(waiting rank, ranks it was waiting on)`, in waiting-rank order.
    pub edges: Vec<(usize, Vec<usize>)>,
}

impl fmt::Display for WaitGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (r, on) in &self.edges {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{r}->{on:?}")?;
        }
        Ok(())
    }
}

/// Errors the message-passing layer can report. Where real MPI would call
/// the error handler and usually abort, we return these so tests can assert
/// on misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A rank argument was outside the communicator's group.
    InvalidRank {
        /// The offending rank.
        rank: isize,
        /// The size of the communicator it was used with.
        comm_size: usize,
    },
    /// A receive buffer was too small for the matched message
    /// (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes in the matched message.
        message_bytes: usize,
        /// Bytes available in the receive buffer.
        buffer_bytes: usize,
    },
    /// The payload length is not a multiple of the element size, so it cannot
    /// be reinterpreted as the requested type.
    TypeMismatch {
        /// Bytes in the message.
        message_bytes: usize,
        /// Size of the requested element type.
        elem_bytes: usize,
    },
    /// A group constructor was handed a rank list with duplicates or
    /// out-of-range entries.
    InvalidGroup(String),
    /// `Comm::create` was called by a process outside the new group, or a
    /// collective was invoked on a communicator the caller is not part of.
    NotInCommunicator,
    /// A `split` produced no group for this process (undefined color) and the
    /// caller asked for the communicator anyway.
    UndefinedColor,
    /// Counts passed to a v-collective are inconsistent with the data.
    InvalidCounts(String),
    /// A peer rank terminated (its mailbox is gone) while we were waiting.
    PeerTerminated {
        /// World rank of the vanished peer.
        world_rank: usize,
    },
    /// A rank's node fail-stopped (a `FaultPlan` crash). Returned both by the
    /// failed rank itself — every operation after its node's crash time — and
    /// by peers blocked on it or sending to it.
    NodeFailed {
        /// World rank of the failed process (possibly the caller's own).
        world_rank: usize,
    },
    /// A deadline receive (`recv_deadline` / `recv_timeout`) expired with no
    /// matching message arriving by the virtual-time deadline. The caller's
    /// clock has been advanced to the deadline; a late message stays queued.
    Timeout,
    /// The link the message would travel over has been dropped by the fault
    /// plan (`FaultEvent::LinkDrop`).
    LinkDown {
        /// Source node index.
        from: usize,
        /// Destination node index.
        to: usize,
    },
    /// The program is stuck: every live rank is blocked and no queued
    /// message can unblock any of them. Detected by the virtual-time
    /// quiescence detector (exactly, in milliseconds of real time) or, as a
    /// belt-and-braces backstop, by the configurable wall-clock watchdog.
    /// Carries the exact wait graph at detection time.
    Deadlock {
        /// The caller's world rank.
        waiting: usize,
        /// World ranks whose send could have unblocked the caller.
        on: Vec<usize>,
        /// The full wait graph over every stuck rank.
        graph: WaitGraph,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank { rank, comm_size } => {
                write!(f, "rank {rank} invalid for communicator of size {comm_size}")
            }
            MpiError::Truncated {
                message_bytes,
                buffer_bytes,
            } => write!(
                f,
                "message of {message_bytes} bytes truncated: buffer holds {buffer_bytes}"
            ),
            MpiError::TypeMismatch {
                message_bytes,
                elem_bytes,
            } => write!(
                f,
                "message of {message_bytes} bytes is not a whole number of {elem_bytes}-byte elements"
            ),
            MpiError::InvalidGroup(msg) => write!(f, "invalid group: {msg}"),
            MpiError::NotInCommunicator => write!(f, "calling process is not in the communicator"),
            MpiError::UndefinedColor => {
                write!(f, "process supplied an undefined color to split")
            }
            MpiError::InvalidCounts(msg) => write!(f, "invalid counts: {msg}"),
            MpiError::PeerTerminated { world_rank } => {
                write!(f, "peer world rank {world_rank} terminated")
            }
            MpiError::NodeFailed { world_rank } => {
                write!(f, "world rank {world_rank}'s node fail-stopped")
            }
            MpiError::Timeout => write!(f, "receive deadline expired"),
            MpiError::LinkDown { from, to } => {
                write!(f, "link n{from} -> n{to} is down")
            }
            MpiError::Deadlock { waiting, on, graph } => write!(
                f,
                "deadlock: rank {waiting} waiting on {on:?}; wait graph: [{graph}]"
            ),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MpiError::InvalidRank {
            rank: 7,
            comm_size: 4,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));

        let e = MpiError::Truncated {
            message_bytes: 100,
            buffer_bytes: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MpiError::NotInCommunicator, MpiError::NotInCommunicator);
        assert_ne!(
            MpiError::NotInCommunicator,
            MpiError::UndefinedColor
        );
    }
}
