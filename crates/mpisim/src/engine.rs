//! The collective algorithm engine: schedule-driven collectives with
//! cost-model selection.
//!
//! Every collective here executes a [`perfmodel::collective`] *schedule* —
//! an ordered list of rounds of point-to-point transfers — through the same
//! eager transport ([`Comm::post_bytes`] / [`Comm::recv_bytes`]) the rest of
//! mpisim uses, on the communicator's collective plane. That buys three
//! properties for free:
//!
//! * **a fault contract** — under fail-stop faults every surviving member
//!   returns either the *complete, correct* result or a typed
//!   [`MpiError::NodeFailed`]; never a torn buffer and never a hang.
//!   Faults propagate *along schedule edges*: a receive aborts when its
//!   specific scheduled sender is dead ([`Comm::recv_bytes_from`]), and a
//!   rank that aborts mid-schedule first *poisons* every scheduled transfer
//!   it has not yet sent (a [`TAG_POISON`] message naming the failed world
//!   rank), so downstream ranks fail fast with the same root cause instead
//!   of blocking on a live-but-aborted peer. The whole error surface is a
//!   deterministic function of the fault plan — same seed, same survivor
//!   set — and is predicted offline by [`perfmodel::collective::fault_impact`];
//! * **tracing** — the inner sends/receives appear in the virtual-time
//!   trace, and the engine wraps each call in a [`TraceKind::Collective`]
//!   span named after the algorithm that ran;
//! * **prediction parity** — [`perfmodel::collective::price`] replays the
//!   identical schedule against the cluster's link table, so `timeof`-style
//!   predictions see exactly the communication the network will execute
//!   (bit-exact under every contention model — the replay mirrors the
//!   transport's endpoint-causal grant/settle arbitration; see DESIGN.md
//!   §10 and §14).
//!
//! Selection ([`CollectivePolicy::Auto`], the default) prices every eligible
//! algorithm per call from the message size, communicator size and the
//! hetsim link table, and runs the predicted-cheapest. All selection inputs
//! are rank-independent, so every member picks the same algorithm without
//! any agreement traffic.
//!
//! Reduction collectives preserve a **fixed deterministic fold order**
//! regardless of algorithm: the result element `i` is always the
//! identity-seeded left fold of contribution element `i` over ranks in
//! ascending communicator-rank order. Schedules therefore move raw
//! contributions (or ascending-prefix partial folds), never tree-shaped
//! partials, and switching algorithms never changes a single result bit.

use crate::comm::Comm;
use crate::datatype::{decode, decode_into, encode, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::op::ReduceOp;
use std::cell::Cell;
use hetsim::trace::{TraceEvent, TraceKind};
use hetsim::{ContentionModel, NodeId, PairTable, SimTime};
use perfmodel::collective::{
    chunk_bounds, eligible, price, schedule, select, CollectiveAlgo, CollectiveKind, LinkSharing,
    Xfer,
};
use perfmodel::{hier_plan, GatherXfer, HierPlan, PairCost, RankTopology};

/// Tag used by every engine-scheduled transfer. A single tag suffices:
/// transfers ride the communicator's collective plane, where the per-pair
/// FIFO (non-overtaking) guarantee plus the schedules' fixed per-pair send
/// order make matching unambiguous.
pub(crate) const TAG_COLL: i32 = 9;

/// Tag of a *poison* message: a rank aborting out of a schedule posts one of
/// these in place of every scheduled transfer it will no longer send. The
/// payload is the world rank of the failed node being blamed (one `i64`).
/// Because each scheduled edge carries exactly one message — data or poison
/// — the collective plane stays balanced and per-pair FIFO keeps matching
/// unambiguous.
pub(crate) const TAG_POISON: i32 = 10;

/// The world rank an engine collective should propagate blame for, if the
/// error is a fail-stop fault. Non-fault errors (count mismatches, link
/// drops) are not poisoned: their stuck peers are resolved by the
/// quiescence detector instead.
fn fault_blame(e: &MpiError) -> Option<usize> {
    match *e {
        MpiError::NodeFailed { world_rank } | MpiError::PeerTerminated { world_rank } => {
            Some(world_rank)
        }
        _ => None,
    }
}

/// How the engine picks an algorithm for each collective call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CollectivePolicy {
    /// Price every eligible flat algorithm *and* the hierarchical plan for
    /// the communicator's topology (declared on the cluster, or inferred
    /// from the latency scale), and run the predicted-cheapest (the
    /// default). On a flat topology this degenerates to [`Self::FlatAuto`]
    /// exactly — no hierarchical plan exists, so selection and virtual
    /// times are bit-identical.
    #[default]
    Auto,
    /// Price only the flat algorithms, ignoring any topology — the
    /// pre-hierarchy selector, kept addressable so benches can measure what
    /// hierarchy awareness buys.
    FlatAuto,
    /// Always run the given algorithm; calls for which it is ineligible
    /// fail with [`MpiError::InvalidCounts`].
    Fixed(CollectiveAlgo),
}

/// How one collective call will execute: a flat schedule of the given
/// algorithm, or a hierarchical multi-level plan.
enum Execution {
    Flat(CollectiveAlgo),
    Hier(Box<HierPlan>),
}

/// The engine's [`PairCost`] view of a communicator: pairwise link costs by
/// communicator rank, uniform unit speeds (collective pricing involves no
/// computation).
struct CostView {
    table: PairTable,
    /// `nodes[comm_rank]` = hosting cluster node, so the pricer's per-node
    /// contention resources (NIC, memory bus) group co-located ranks.
    nodes: Vec<NodeId>,
}

impl PairCost for CostView {
    fn speed(&self, _proc: usize) -> f64 {
        1.0
    }
    fn latency(&self, src: usize, dst: usize) -> f64 {
        self.table.latency(src, dst)
    }
    fn bandwidth(&self, src: usize, dst: usize) -> f64 {
        self.table.bandwidth(src, dst)
    }
    fn node_of(&self, proc: usize) -> usize {
        self.nodes[proc].index()
    }
}

fn sharing_of(c: ContentionModel) -> LinkSharing {
    match c {
        ContentionModel::ParallelLinks => LinkSharing::Parallel,
        ContentionModel::SerializedNic => LinkSharing::PerEndpoint,
        ContentionModel::SharedBus => LinkSharing::Shared,
    }
}

impl Comm {
    /// The link-cost view the engine selects against: healthy base latency
    /// and bandwidth for every pair of member ranks, plus the cluster's
    /// contention model.
    fn coll_cost(&self) -> (CostView, LinkSharing) {
        let nodes: Vec<NodeId> = (0..self.size()).map(|r| self.node_of(r)).collect();
        (
            CostView {
                table: self.shared.cluster.pair_table(&nodes),
                nodes,
            },
            sharing_of(self.shared.cluster.contention()),
        )
    }

    /// The communicator's per-rank hierarchy coordinates: read off the
    /// cluster's declared [`hetsim::TopologyInfo`] when one exists,
    /// otherwise inferred from the pair table's latency scale
    /// ([`RankTopology::infer`]). A flat cluster yields flat coordinates
    /// either way, and [`hier_plan`] then declines to plan.
    fn rank_topology(&self, cost: &CostView) -> RankTopology {
        match self.shared.cluster.topology() {
            Some(info) => RankTopology::new(
                cost.nodes.iter().map(|&n| info.site_of(n)).collect(),
                cost.nodes.iter().map(|&n| info.switch_of(n)).collect(),
                cost.nodes.iter().map(|n| n.index()).collect(),
            ),
            None => RankTopology::infer(self.size(), cost),
        }
    }

    /// The hierarchical candidate for one call, with its predicted time —
    /// `None` when the topology offers nothing over a flat schedule.
    fn hier_candidate(
        &self,
        kind: CollectiveKind,
        root: usize,
        elems: usize,
        elem_bytes: usize,
        cost: &CostView,
        sharing: LinkSharing,
    ) -> Option<(Box<HierPlan>, f64)> {
        let topo = self.rank_topology(cost);
        let plan = hier_plan(
            kind,
            self.size(),
            root,
            elems,
            elem_bytes as f64,
            &topo,
            cost,
            sharing,
        )?;
        let t = price(
            self.size(),
            &plan.xfer_rounds(elems),
            elem_bytes as f64,
            cost,
            sharing,
        );
        Some((Box::new(plan), t))
    }

    /// Resolves how a call executes: an explicit request or the universe's
    /// [`CollectivePolicy`], with eligibility checking. Under
    /// [`CollectivePolicy::Auto`] the flat winner competes against the
    /// hierarchical plan; hierarchy is adopted only when *strictly*
    /// cheaper, so flat topologies (where no plan exists) and ties keep the
    /// pre-hierarchy choice bit-for-bit.
    fn resolve_exec(
        &self,
        kind: CollectiveKind,
        explicit: Option<CollectiveAlgo>,
        root: usize,
        elems: usize,
        elem_bytes: usize,
    ) -> MpiResult<Execution> {
        let p = self.size();
        if root >= p {
            // Validated before Auto pricing: perfmodel::collective::select
            // has no schedule for an out-of-range root.
            return Err(MpiError::InvalidRank {
                rank: root as isize,
                comm_size: p,
            });
        }
        let requested = explicit.or(match self.shared.coll_policy {
            CollectivePolicy::Auto | CollectivePolicy::FlatAuto => None,
            CollectivePolicy::Fixed(a) => Some(a),
        });
        match requested {
            Some(a) => {
                if eligible(kind, a, p) {
                    Ok(Execution::Flat(a))
                } else {
                    Err(MpiError::InvalidCounts(format!(
                        "algorithm {} is not eligible for {} over {p} rank(s)",
                        a.name(),
                        kind.name(),
                    )))
                }
            }
            None => {
                let (cost, sharing) = self.coll_cost();
                let (flat, flat_t) =
                    select(kind, p, root, elems, elem_bytes as f64, &cost, sharing);
                if self.shared.coll_policy != CollectivePolicy::FlatAuto {
                    if let Some((plan, t)) =
                        self.hier_candidate(kind, root, elems, elem_bytes, &cost, sharing)
                    {
                        if t < flat_t {
                            return Ok(Execution::Hier(plan));
                        }
                    }
                }
                Ok(Execution::Flat(flat))
            }
        }
    }

    /// Predicts the cheapest algorithm (and its virtual time in seconds) for
    /// a collective of `elems` elements of `elem_bytes` each, exactly as
    /// auto-selecting dispatch would choose it under the universe's policy:
    /// [`CollectiveAlgo::Hierarchical`] when the hierarchical plan strictly
    /// beats the flat winner (and the policy is not
    /// [`CollectivePolicy::FlatAuto`]), the flat winner otherwise. `root`
    /// is the communicator rank the operation is rooted at (pass 0 for
    /// rootless collectives).
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] if `root` is outside the communicator.
    pub fn predict_collective(
        &self,
        kind: CollectiveKind,
        root: usize,
        elems: usize,
        elem_bytes: usize,
    ) -> MpiResult<(CollectiveAlgo, f64)> {
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank {
                rank: root as isize,
                comm_size: p,
            });
        }
        let (cost, sharing) = self.coll_cost();
        let (flat, flat_t) = select(kind, p, root, elems, elem_bytes as f64, &cost, sharing);
        if self.shared.coll_policy != CollectivePolicy::FlatAuto {
            if let Some((_, t)) =
                self.hier_candidate(kind, root, elems, elem_bytes, &cost, sharing)
            {
                if t < flat_t {
                    return Ok((CollectiveAlgo::Hierarchical, t));
                }
            }
        }
        Ok((flat, flat_t))
    }

    /// Predicts the virtual time of one specific algorithm for a collective.
    /// [`CollectiveAlgo::Hierarchical`] prices the topology's hierarchical
    /// plan (an error when the topology is flat — no plan exists).
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] if `root` is outside the communicator;
    /// [`MpiError::InvalidCounts`] if the algorithm is not eligible on this
    /// communicator.
    pub fn predict_collective_with(
        &self,
        kind: CollectiveKind,
        algo: CollectiveAlgo,
        root: usize,
        elems: usize,
        elem_bytes: usize,
    ) -> MpiResult<f64> {
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank {
                rank: root as isize,
                comm_size: p,
            });
        }
        if algo == CollectiveAlgo::Hierarchical {
            let (cost, sharing) = self.coll_cost();
            return self
                .hier_candidate(kind, root, elems, elem_bytes, &cost, sharing)
                .map(|(_, t)| t)
                .ok_or_else(|| {
                    MpiError::InvalidCounts(format!(
                        "no hierarchical plan exists for {} over {p} rank(s) \
                         (flat topology?)",
                        kind.name(),
                    ))
                });
        }
        let rounds = schedule(kind, algo, p, root, elems).ok_or_else(|| {
            MpiError::InvalidCounts(format!(
                "algorithm {} is not eligible for {} over {p} rank(s)",
                algo.name(),
                kind.name(),
            ))
        })?;
        let (cost, sharing) = self.coll_cost();
        Ok(price(p, &rounds, elem_bytes as f64, &cost, sharing))
    }

    /// Records a [`TraceKind::Collective`] span covering one engine call.
    fn trace_collective(
        &self,
        kind: CollectiveKind,
        algo: CollectiveAlgo,
        elems: usize,
        elem_bytes: usize,
        start: SimTime,
    ) {
        if let Some(tracer) = &self.shared.tracer {
            let mut ev =
                TraceEvent::new(self.my_world_rank(), TraceKind::Collective, algo.name(), start);
            ev.dur = self.clock.now().max(start) - start;
            ev.collective = true;
            ev.bytes = (elems * elem_bytes) as u64;
            ev.info = Some(format!(
                "{} p={} elems={elems}",
                kind.name(),
                self.size()
            ));
            tracer.record(ev);
        }
    }

    /// Posts one scheduled data transfer and counts it, so an abort knows
    /// exactly which scheduled sends remain to be poisoned.
    fn post_sched(&self, bytes: Vec<u8>, dst: usize, sent: &Cell<usize>) -> MpiResult<()> {
        self.post_bytes(self.coll_plane(), bytes, dst, TAG_COLL)?;
        sent.set(sent.get() + 1);
        Ok(())
    }

    /// Completes one scheduled receive from comm rank `src`: the data
    /// payload, or the failure the sender propagated in its place.
    ///
    /// The wait uses point-to-point abort semantics (only `src`'s own death
    /// aborts it), so the failure surface follows schedule edges
    /// deterministically instead of racing a real-time failure detector. A
    /// [`TAG_POISON`] message decodes to [`MpiError::NodeFailed`] blaming
    /// the world rank it carries; a terminated peer is normalised to
    /// [`MpiError::NodeFailed`] too, so the engine's fault contract exposes
    /// a single error type.
    fn recv_sched(&self, src: usize) -> MpiResult<Vec<u8>> {
        match self.recv_bytes_from(self.coll_plane(), src, None) {
            Ok((bytes, st)) if st.tag == TAG_POISON => {
                let v: Vec<i64> = decode(&bytes)?;
                let world_rank = v
                    .first()
                    .map(|&w| w as usize)
                    .unwrap_or_else(|| self.world_rank_of(src));
                Err(MpiError::NodeFailed { world_rank })
            }
            Ok((bytes, _)) => Ok(bytes.into_vec()),
            Err(MpiError::PeerTerminated { world_rank }) => {
                Err(MpiError::NodeFailed { world_rank })
            }
            Err(e) => Err(e),
        }
    }

    /// Posts a poison message for every scheduled send of this rank that was
    /// never issued (`sent` were). Posts to already-dead destinations fail
    /// and are dropped — those ranks need no notification.
    fn poison_rest(&self, rounds: &[Vec<Xfer>], sent: usize, blame: usize) {
        let me = self.rank();
        for (i, x) in rounds
            .iter()
            .flatten()
            .filter(|x| x.src == me)
            .enumerate()
        {
            if i >= sent {
                let _ = self.post_bytes(
                    self.coll_plane(),
                    encode(&[blame as i64]),
                    x.dst,
                    TAG_POISON,
                );
            }
        }
    }

    /// Runs one engine collective under the fault contract: `body` threads
    /// the issued-send counter through the algorithm, and on a fail-stop
    /// error the un-issued remainder of this rank's schedule is poisoned so
    /// every downstream rank aborts with the same blamed world rank.
    fn with_fault_contract<R>(
        &self,
        rounds: &[Vec<Xfer>],
        body: impl FnOnce(&Cell<usize>) -> MpiResult<R>,
    ) -> MpiResult<R> {
        let sent = Cell::new(0usize);
        let out = body(&sent);
        if let Err(e) = &out {
            if let Some(blame) = fault_blame(e) {
                self.poison_rest(rounds, sent.get(), blame);
            }
        }
        out
    }

    /// Executes a data-movement schedule over `buf`: within each round, this
    /// rank issues all its sends in schedule order, then completes all its
    /// receives. A received payload whose size disagrees with the scheduled
    /// range is [`MpiError::InvalidCounts`] — the hallmark of ranks calling
    /// the collective with different buffer lengths.
    ///
    /// All receives land in a scratch copy that is committed to `buf` only
    /// when the whole schedule has run: an abort part-way through leaves
    /// `buf` exactly as the caller passed it (no torn results).
    fn run_movement<T: MpiType>(
        &self,
        rounds: &[Vec<Xfer>],
        buf: &mut [T],
        sent: &Cell<usize>,
    ) -> MpiResult<()> {
        let me = self.rank();
        let mut scratch: Vec<T> = buf.to_vec();
        for round in rounds {
            for x in round.iter().filter(|x| x.src == me) {
                self.post_sched(encode(&scratch[x.lo..x.hi]), x.dst, sent)?;
            }
            for x in round.iter().filter(|x| x.dst == me) {
                let bytes = self.recv_sched(x.src)?;
                let want = x.elems() * T::WIRE_SIZE;
                if bytes.len() != want {
                    return Err(MpiError::InvalidCounts(format!(
                        "scheduled transfer carried {} bytes, expected {want} \
                         (mismatched buffer lengths across ranks?)",
                        bytes.len()
                    )));
                }
                decode_into(&bytes, &mut scratch[x.lo..x.hi])?;
            }
        }
        buf.copy_from_slice(&scratch);
        Ok(())
    }

    /// Engine broadcast: replaces every rank's `buf` with the root's. All
    /// ranks must pass equal-length buffers (unlike the legacy
    /// [`Comm::bcast`], non-roots size their buffer up front, which is what
    /// lets every rank price and select the algorithm locally). The
    /// algorithm is chosen by the universe's [`CollectivePolicy`].
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] for a bad root; [`MpiError::InvalidCounts`]
    /// for mismatched buffer lengths or an ineligible pinned algorithm;
    /// [`MpiError::NodeFailed`] if this rank's data path depends on a
    /// fail-stopped member — the fault contract guarantees every survivor
    /// returns the complete result or this error, never a torn buffer.
    pub fn bcast_into<T: MpiType>(&self, buf: &mut [T], root: usize) -> MpiResult<()> {
        match self.resolve_exec(CollectiveKind::Bcast, None, root, buf.len(), T::WIRE_SIZE)? {
            Execution::Flat(algo) => self.bcast_into_with(algo, buf, root),
            Execution::Hier(plan) => {
                // A bcast plan is pure movement; its transfer view is the
                // executed schedule, the pricer's replay and the poison
                // reference all at once.
                let rounds = plan.xfer_rounds(buf.len());
                let start = self.clock.now();
                self.with_fault_contract(&rounds, |sent| self.run_movement(&rounds, buf, sent))?;
                self.trace_collective(
                    CollectiveKind::Bcast,
                    CollectiveAlgo::Hierarchical,
                    buf.len(),
                    T::WIRE_SIZE,
                    start,
                );
                Ok(())
            }
        }
    }

    /// [`Comm::bcast_into`] with an explicit algorithm.
    ///
    /// # Errors
    /// As [`Comm::bcast_into`]; [`MpiError::InvalidCounts`] if `algo` is not
    /// eligible here.
    pub fn bcast_into_with<T: MpiType>(
        &self,
        algo: CollectiveAlgo,
        buf: &mut [T],
        root: usize,
    ) -> MpiResult<()> {
        if root >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root as isize,
                comm_size: self.size(),
            });
        }
        let rounds =
            schedule(CollectiveKind::Bcast, algo, self.size(), root, buf.len()).ok_or_else(
                || {
                    MpiError::InvalidCounts(format!(
                        "algorithm {} is not eligible for bcast over {} rank(s)",
                        algo.name(),
                        self.size()
                    ))
                },
            )?;
        let start = self.clock.now();
        self.with_fault_contract(&rounds, |sent| self.run_movement(&rounds, buf, sent))?;
        self.trace_collective(CollectiveKind::Bcast, algo, buf.len(), T::WIRE_SIZE, start);
        Ok(())
    }

    /// Engine allgather for equal contributions: every rank contributes
    /// `contrib` and receives the concatenation in rank order. All ranks
    /// must contribute the same number of elements (use the legacy
    /// [`Comm::allgatherv`] for ragged contributions).
    ///
    /// # Errors
    /// [`MpiError::InvalidCounts`] for mismatched contribution lengths or an
    /// ineligible pinned algorithm; [`MpiError::NodeFailed`] if this rank's
    /// data path depends on a fail-stopped member (every survivor returns
    /// the complete result or that error, never a torn buffer).
    pub fn allgather_eq<T: MpiType + Copy + Default>(&self, contrib: &[T]) -> MpiResult<Vec<T>> {
        let p = self.size();
        let total = contrib.len() * p;
        match self.resolve_exec(CollectiveKind::Allgather, None, 0, total, T::WIRE_SIZE)? {
            Execution::Flat(algo) => self.allgather_eq_with(algo, contrib),
            Execution::Hier(plan) => {
                // An allgather plan is pure chunk movement over the output
                // buffer: runs gather leaders-up, leaders exchange, full
                // buffer broadcasts back down.
                let rounds = plan.xfer_rounds(total);
                let mut buf = vec![T::default(); total];
                let (lo, hi) = chunk_bounds(total, p, self.rank());
                buf[lo..hi].copy_from_slice(contrib);
                let start = self.clock.now();
                self.with_fault_contract(&rounds, |sent| {
                    self.run_movement(&rounds, &mut buf, sent)
                })?;
                self.trace_collective(
                    CollectiveKind::Allgather,
                    CollectiveAlgo::Hierarchical,
                    total,
                    T::WIRE_SIZE,
                    start,
                );
                Ok(buf)
            }
        }
    }

    /// [`Comm::allgather_eq`] with an explicit algorithm.
    ///
    /// # Errors
    /// As [`Comm::allgather_eq`]; [`MpiError::InvalidCounts`] if `algo` is
    /// not eligible here.
    pub fn allgather_eq_with<T: MpiType + Copy + Default>(
        &self,
        algo: CollectiveAlgo,
        contrib: &[T],
    ) -> MpiResult<Vec<T>> {
        let p = self.size();
        let total = contrib.len() * p;
        let rounds = schedule(CollectiveKind::Allgather, algo, p, 0, total).ok_or_else(|| {
            MpiError::InvalidCounts(format!(
                "algorithm {} is not eligible for allgather over {p} rank(s)",
                algo.name()
            ))
        })?;
        let mut buf = vec![T::default(); total];
        let (lo, hi) = chunk_bounds(total, p, self.rank());
        buf[lo..hi].copy_from_slice(contrib);
        let start = self.clock.now();
        self.with_fault_contract(&rounds, |sent| self.run_movement(&rounds, &mut buf, sent))?;
        self.trace_collective(CollectiveKind::Allgather, algo, total, T::WIRE_SIZE, start);
        Ok(buf)
    }
}

/// Generates the typed engine reductions for one element type.
macro_rules! impl_engine_reductions {
    ($t:ty, $identity:ident, $fold:ident,
     $recv_contribs:ident, $linear_reduce:ident, $binomial_reduce:ident,
     $hier_gather:ident,
     $ring_allreduce:ident, $rd_allreduce:ident, $sag_allreduce:ident,
     $reduce:ident, $reduce_with:ident, $allreduce:ident, $allreduce_with:ident,
     $reduce_doc:expr, $allreduce_doc:expr) => {
        impl Comm {
            /// Receives one scheduled reduction payload and checks its
            /// element count.
            fn $recv_contribs(&self, src: usize, want: usize) -> MpiResult<Vec<$t>> {
                let bytes = self.recv_sched(src)?;
                let v: Vec<$t> = decode(&bytes)?;
                if v.len() != want {
                    return Err(MpiError::InvalidCounts(format!(
                        "scheduled reduction transfer carried {} elements, expected {want} \
                         (mismatched contribution lengths across ranks?)",
                        v.len()
                    )));
                }
                Ok(v)
            }

            /// Flat reduce: every rank sends its raw contribution to the
            /// root, which folds in ascending rank order.
            fn $linear_reduce(
                &self,
                contrib: &[$t],
                op: ReduceOp,
                root: usize,
                sent: &Cell<usize>,
            ) -> MpiResult<Option<Vec<$t>>> {
                let p = self.size();
                let me = self.rank();
                let n = contrib.len();
                if me != root {
                    // An empty contribution is not scheduled (and the root
                    // never receives it) — posting one would leak a stray
                    // envelope onto the collective plane.
                    if n > 0 {
                        self.post_sched(encode(contrib), root, sent)?;
                    }
                    return Ok(None);
                }
                let mut raw: Vec<Option<Vec<$t>>> = vec![None; p];
                for src in 0..p {
                    if src != root && n > 0 {
                        raw[src] = Some(self.$recv_contribs(src, n)?);
                    }
                }
                let mut acc = vec![op.$identity(); n];
                for origin in 0..p {
                    match &raw[origin] {
                        Some(v) => op.$fold(&mut acc, v),
                        None => op.$fold(&mut acc, contrib),
                    }
                }
                Ok(Some(acc))
            }

            /// Binomial raw-contribution gather: each sender forwards every
            /// contribution its subtree holds (concatenated in ascending
            /// relative-rank order), and only the root folds — in ascending
            /// absolute rank order, so the result is bit-identical to
            /// the linear variant.
            fn $binomial_reduce(
                &self,
                contrib: &[$t],
                op: ReduceOp,
                root: usize,
                sent: &Cell<usize>,
            ) -> MpiResult<Option<Vec<$t>>> {
                let p = self.size();
                let n = contrib.len();
                let rel = (self.rank() + p - root) % p;
                let abs = |r: usize| (r + root) % p;
                let mut held: Vec<Option<Vec<$t>>> = vec![None; p];
                held[rel] = Some(contrib.to_vec());
                let mut span = 1;
                while span < p {
                    if rel >= span && (rel - span) % (2 * span) == 0 {
                        let cnt = span.min(p - rel);
                        let mut payload = Vec::with_capacity(cnt * n);
                        for o in rel..rel + cnt {
                            payload.extend_from_slice(held[o].as_ref().expect("subtree held"));
                        }
                        if !payload.is_empty() {
                            self.post_sched(encode(&payload), abs(rel - span), sent)?;
                        }
                        return Ok(None); // a sender's part in the gather is over
                    }
                    if rel % (2 * span) == 0 && rel + span < p {
                        let src_rel = rel + span;
                        let cnt = span.min(p - src_rel);
                        if cnt * n > 0 {
                            let v = self.$recv_contribs(abs(src_rel), cnt * n)?;
                            for i in 0..cnt {
                                held[src_rel + i] = Some(v[i * n..(i + 1) * n].to_vec());
                            }
                        } else {
                            for i in 0..cnt {
                                held[src_rel + i] = Some(Vec::new());
                            }
                        }
                    }
                    span <<= 1;
                }
                if rel != 0 {
                    return Ok(None);
                }
                let mut acc = vec![op.$identity(); n];
                for abs_rank in 0..p {
                    let r = (abs_rank + p - root) % p;
                    op.$fold(&mut acc, held[r].as_ref().expect("root gathered everything"));
                }
                Ok(Some(acc))
            }

            /// Hierarchical raw-contribution gather: each transfer of the
            /// plan forwards exactly the contributions its sender holds
            /// (ascending origins), so only the root folds — in ascending
            /// absolute rank order, bit-identical to every flat algorithm.
            /// The send/skip filter mirrors [`HierPlan::xfer_rounds`]
            /// exactly, so the fault contract's poison counting and the
            /// pricer's replay both see the executed transfer sequence.
            fn $hier_gather(
                &self,
                plan: &HierPlan,
                contrib: &[$t],
                op: ReduceOp,
                root: usize,
                sent: &Cell<usize>,
            ) -> MpiResult<Option<Vec<$t>>> {
                let p = self.size();
                let me = self.rank();
                let n = contrib.len();
                let live = |g: &&GatherXfer| !g.origins.is_empty() && n > 0 && g.src != g.dst;
                let mut held: Vec<Option<Vec<$t>>> = vec![None; p];
                held[me] = Some(contrib.to_vec());
                for round in &plan.gather {
                    for g in round.iter().filter(|g| g.src == me).filter(live) {
                        let mut payload = Vec::with_capacity(g.origins.len() * n);
                        for &o in &g.origins {
                            payload.extend_from_slice(
                                held[o].as_ref().expect("plan sends only held origins"),
                            );
                        }
                        self.post_sched(encode(&payload), g.dst, sent)?;
                    }
                    for g in round.iter().filter(|g| g.dst == me).filter(live) {
                        let v = self.$recv_contribs(g.src, g.origins.len() * n)?;
                        for (i, &o) in g.origins.iter().enumerate() {
                            held[o] = Some(v[i * n..(i + 1) * n].to_vec());
                        }
                    }
                }
                if me != root {
                    return Ok(None);
                }
                let mut acc = vec![op.$identity(); n];
                for origin in 0..p {
                    op.$fold(
                        &mut acc,
                        held[origin]
                            .as_ref()
                            .expect("plan funnels every contribution to the root"),
                    );
                }
                Ok(Some(acc))
            }

            /// Pipelined ring allreduce: ascending-prefix partial folds
            /// travel the chain forward chunk by chunk, finished chunks
            /// travel it backward, both directions pipelined through shared
            /// global rounds (mirroring the schedule generator exactly).
            fn $ring_allreduce(
                &self,
                contrib: &[$t],
                op: ReduceOp,
                sent: &Cell<usize>,
            ) -> MpiResult<Vec<$t>> {
                let p = self.size();
                let r = self.rank();
                let n = contrib.len();
                let nchunks = p;
                let mut result = contrib.to_vec();
                let mut partial: Vec<Option<Vec<$t>>> = vec![None; nchunks];
                for g in 0..nchunks + 2 * p - 3 {
                    if r < p - 1 {
                        if let Some(c) = g.checked_sub(r) {
                            if c < nchunks {
                                let (lo, hi) = chunk_bounds(n, nchunks, c);
                                if hi > lo {
                                    let payload = if r == 0 {
                                        let mut acc = vec![op.$identity(); hi - lo];
                                        op.$fold(&mut acc, &contrib[lo..hi]);
                                        acc
                                    } else {
                                        partial[c].take().expect("folded last round")
                                    };
                                    self.post_sched(encode(&payload), r + 1, sent)?;
                                }
                            }
                        }
                    }
                    if r > 0 {
                        if let Some(c) = (g + r).checked_sub(2 * (p - 1)) {
                            if c < nchunks {
                                let (lo, hi) = chunk_bounds(n, nchunks, c);
                                if hi > lo {
                                    self.post_sched(encode(&result[lo..hi]), r - 1, sent)?;
                                }
                            }
                        }
                    }
                    if r > 0 {
                        if let Some(c) = g.checked_sub(r - 1) {
                            if c < nchunks {
                                let (lo, hi) = chunk_bounds(n, nchunks, c);
                                if hi > lo {
                                    let mut v = self.$recv_contribs(r - 1, hi - lo)?;
                                    op.$fold(&mut v, &contrib[lo..hi]);
                                    if r == p - 1 {
                                        result[lo..hi].copy_from_slice(&v);
                                    } else {
                                        partial[c] = Some(v);
                                    }
                                }
                            }
                        }
                    }
                    if r < p - 1 {
                        if let Some(c) = (g + r + 1).checked_sub(2 * (p - 1)) {
                            if c < nchunks {
                                let (lo, hi) = chunk_bounds(n, nchunks, c);
                                if hi > lo {
                                    let v = self.$recv_contribs(r + 1, hi - lo)?;
                                    result[lo..hi].copy_from_slice(&v);
                                }
                            }
                        }
                    }
                }
                Ok(result)
            }

            /// Recursive-doubling allreduce as a doubling raw-contribution
            /// gather: round `k` exchanges the `2^k` contributions each
            /// partner holds (aligned blocks), and every rank folds all `p`
            /// contributions locally in ascending rank order. Requires a
            /// power-of-two communicator.
            fn $rd_allreduce(
                &self,
                contrib: &[$t],
                op: ReduceOp,
                sent: &Cell<usize>,
            ) -> MpiResult<Vec<$t>> {
                let p = self.size();
                let r = self.rank();
                let n = contrib.len();
                let mut held: Vec<Option<Vec<$t>>> = vec![None; p];
                held[r] = Some(contrib.to_vec());
                let mut span = 1;
                while span < p {
                    let partner = r ^ span;
                    let base = r & !(span - 1);
                    if span * n > 0 {
                        let mut payload = Vec::with_capacity(span * n);
                        for o in base..base + span {
                            payload.extend_from_slice(held[o].as_ref().expect("aligned block"));
                        }
                        self.post_sched(encode(&payload), partner, sent)?;
                        let pbase = partner & !(span - 1);
                        let v = self.$recv_contribs(partner, span * n)?;
                        for i in 0..span {
                            held[pbase + i] = Some(v[i * n..(i + 1) * n].to_vec());
                        }
                    } else {
                        let pbase = partner & !(span - 1);
                        for i in 0..span {
                            held[pbase + i] = Some(Vec::new());
                        }
                    }
                    span <<= 1;
                }
                let mut acc = vec![op.$identity(); n];
                for o in 0..p {
                    op.$fold(&mut acc, held[o].as_ref().expect("gathered all blocks"));
                }
                Ok(acc)
            }

            /// Rabenseifner-style allreduce: a direct reduce-scatter of raw
            /// chunks (rank `j` folds every rank's copy of chunk `j`, in
            /// ascending rank order) followed by a direct allgather of the
            /// reduced chunks.
            fn $sag_allreduce(
                &self,
                contrib: &[$t],
                op: ReduceOp,
                sent: &Cell<usize>,
            ) -> MpiResult<Vec<$t>> {
                let p = self.size();
                let me = self.rank();
                let n = contrib.len();
                for dst in 0..p {
                    if dst != me {
                        let (lo, hi) = chunk_bounds(n, p, dst);
                        if hi > lo {
                            self.post_sched(encode(&contrib[lo..hi]), dst, sent)?;
                        }
                    }
                }
                let (mlo, mhi) = chunk_bounds(n, p, me);
                let mut raw: Vec<Option<Vec<$t>>> = vec![None; p];
                for src in 0..p {
                    if src != me && mhi > mlo {
                        raw[src] = Some(self.$recv_contribs(src, mhi - mlo)?);
                    }
                }
                let mut acc = vec![op.$identity(); mhi - mlo];
                for origin in 0..p {
                    match &raw[origin] {
                        Some(v) => op.$fold(&mut acc, v),
                        None => op.$fold(&mut acc, &contrib[mlo..mhi]),
                    }
                }
                let mut result = contrib.to_vec();
                result[mlo..mhi].copy_from_slice(&acc);
                for dst in 0..p {
                    if dst != me && mhi > mlo {
                        self.post_sched(encode(&acc), dst, sent)?;
                    }
                }
                for src in 0..p {
                    if src != me {
                        let (lo, hi) = chunk_bounds(n, p, src);
                        if hi > lo {
                            let v = self.$recv_contribs(src, hi - lo)?;
                            result[lo..hi].copy_from_slice(&v);
                        }
                    }
                }
                Ok(result)
            }

            #[doc = $reduce_doc]
            ///
            /// The result is always the identity-seeded fold of the
            /// contributions in ascending communicator-rank order,
            /// bit-identical across every algorithm.
            ///
            /// # Errors
            /// [`MpiError::InvalidRank`] for a bad root;
            /// [`MpiError::InvalidCounts`] for mismatched contribution
            /// lengths or an ineligible pinned algorithm;
            /// [`MpiError::NodeFailed`] if this rank's data path depends on
            /// a fail-stopped member (every survivor returns the complete
            /// result or that error, never a torn result).
            pub fn $reduce(
                &self,
                contrib: &[$t],
                op: ReduceOp,
                root: usize,
            ) -> MpiResult<Option<Vec<$t>>> {
                match self.resolve_exec(
                    CollectiveKind::Reduce,
                    None,
                    root,
                    contrib.len(),
                    std::mem::size_of::<$t>(),
                )? {
                    Execution::Flat(algo) => self.$reduce_with(algo, contrib, op, root),
                    Execution::Hier(plan) => {
                        let rounds = plan.xfer_rounds(contrib.len());
                        let start = self.clock.now();
                        let out = self.with_fault_contract(&rounds, |sent| {
                            self.$hier_gather(&plan, contrib, op, root, sent)
                        })?;
                        self.trace_collective(
                            CollectiveKind::Reduce,
                            CollectiveAlgo::Hierarchical,
                            contrib.len(),
                            std::mem::size_of::<$t>(),
                            start,
                        );
                        Ok(out)
                    }
                }
            }

            #[doc = concat!("[`Comm::", stringify!($reduce), "`] with an explicit algorithm.")]
            ///
            /// # Errors
            #[doc = concat!("As [`Comm::", stringify!($reduce), "`].")]
            pub fn $reduce_with(
                &self,
                algo: CollectiveAlgo,
                contrib: &[$t],
                op: ReduceOp,
                root: usize,
            ) -> MpiResult<Option<Vec<$t>>> {
                let p = self.size();
                if root >= p {
                    return Err(MpiError::InvalidRank {
                        rank: root as isize,
                        comm_size: p,
                    });
                }
                if !eligible(CollectiveKind::Reduce, algo, p) {
                    return Err(MpiError::InvalidCounts(format!(
                        "algorithm {} is not eligible for reduce over {p} rank(s)",
                        algo.name()
                    )));
                }
                let start = self.clock.now();
                let out = if p == 1 {
                    let mut acc = vec![op.$identity(); contrib.len()];
                    op.$fold(&mut acc, contrib);
                    Some(acc)
                } else {
                    let rounds =
                        schedule(CollectiveKind::Reduce, algo, p, root, contrib.len())
                            .expect("eligibility checked above");
                    self.with_fault_contract(&rounds, |sent| match algo {
                        CollectiveAlgo::Linear => {
                            self.$linear_reduce(contrib, op, root, sent)
                        }
                        CollectiveAlgo::Binomial => {
                            self.$binomial_reduce(contrib, op, root, sent)
                        }
                        _ => unreachable!("eligibility checked above"),
                    })?
                };
                self.trace_collective(
                    CollectiveKind::Reduce,
                    algo,
                    contrib.len(),
                    std::mem::size_of::<$t>(),
                    start,
                );
                Ok(out)
            }

            #[doc = $allreduce_doc]
            ///
            /// The result is always the identity-seeded fold of the
            /// contributions in ascending communicator-rank order,
            /// bit-identical across every algorithm.
            ///
            /// # Errors
            /// [`MpiError::InvalidCounts`] for mismatched contribution
            /// lengths or an ineligible pinned algorithm;
            /// [`MpiError::NodeFailed`] if this rank's data path depends on
            /// a fail-stopped member (every survivor returns the complete
            /// result or that error, never a torn result).
            pub fn $allreduce(&self, contrib: &[$t], op: ReduceOp) -> MpiResult<Vec<$t>> {
                match self.resolve_exec(
                    CollectiveKind::Allreduce,
                    None,
                    0,
                    contrib.len(),
                    std::mem::size_of::<$t>(),
                )? {
                    Execution::Flat(algo) => self.$allreduce_with(algo, contrib, op),
                    Execution::Hier(plan) => {
                        // Gather to rank 0 then broadcast the fold back out
                        // through the leader chain; one fault contract spans
                        // both phases (the transfer view concatenates them).
                        let n = contrib.len();
                        let rounds = plan.xfer_rounds(n);
                        let start = self.clock.now();
                        let out = self.with_fault_contract(&rounds, |sent| {
                            let red = self.$hier_gather(&plan, contrib, op, 0, sent)?;
                            let mut buf =
                                red.unwrap_or_else(|| vec![<$t>::default(); n]);
                            self.run_movement(&plan.movement, &mut buf, sent)?;
                            Ok(buf)
                        })?;
                        self.trace_collective(
                            CollectiveKind::Allreduce,
                            CollectiveAlgo::Hierarchical,
                            n,
                            std::mem::size_of::<$t>(),
                            start,
                        );
                        Ok(out)
                    }
                }
            }

            #[doc = concat!("[`Comm::", stringify!($allreduce), "`] with an explicit algorithm.")]
            ///
            /// # Errors
            #[doc = concat!("As [`Comm::", stringify!($allreduce), "`].")]
            pub fn $allreduce_with(
                &self,
                algo: CollectiveAlgo,
                contrib: &[$t],
                op: ReduceOp,
            ) -> MpiResult<Vec<$t>> {
                let p = self.size();
                if !eligible(CollectiveKind::Allreduce, algo, p) {
                    return Err(MpiError::InvalidCounts(format!(
                        "algorithm {} is not eligible for allreduce over {p} rank(s)",
                        algo.name()
                    )));
                }
                let start = self.clock.now();
                let out = if p == 1 {
                    let mut acc = vec![op.$identity(); contrib.len()];
                    op.$fold(&mut acc, contrib);
                    acc
                } else {
                    // The allreduce schedule (reduce rounds then bcast
                    // rounds for linear/binomial) is the poison reference:
                    // the send counter runs through both phases.
                    let all_rounds =
                        schedule(CollectiveKind::Allreduce, algo, p, 0, contrib.len())
                            .expect("eligibility checked above");
                    self.with_fault_contract(&all_rounds, |sent| match algo {
                        CollectiveAlgo::Linear | CollectiveAlgo::Binomial => {
                            // reduce-to-0 then bcast-from-0, both with the
                            // same algorithm, mirroring the schedule
                            // generator's concatenated rounds.
                            let red = match algo {
                                CollectiveAlgo::Linear => {
                                    self.$linear_reduce(contrib, op, 0, sent)?
                                }
                                _ => self.$binomial_reduce(contrib, op, 0, sent)?,
                            };
                            let mut buf = red
                                .unwrap_or_else(|| vec![<$t>::default(); contrib.len()]);
                            let rounds = schedule(
                                CollectiveKind::Bcast,
                                algo,
                                p,
                                0,
                                contrib.len(),
                            )
                            .expect("linear/binomial bcast is always eligible");
                            self.run_movement(&rounds, &mut buf, sent)?;
                            Ok(buf)
                        }
                        CollectiveAlgo::Ring => self.$ring_allreduce(contrib, op, sent),
                        CollectiveAlgo::RecursiveDoubling => {
                            self.$rd_allreduce(contrib, op, sent)
                        }
                        CollectiveAlgo::ScatterAllgather => {
                            self.$sag_allreduce(contrib, op, sent)
                        }
                        CollectiveAlgo::Hierarchical => {
                            unreachable!("eligibility checked above")
                        }
                    })?
                };
                self.trace_collective(
                    CollectiveKind::Allreduce,
                    algo,
                    contrib.len(),
                    std::mem::size_of::<$t>(),
                    start,
                );
                Ok(out)
            }
        }
    };
}

impl_engine_reductions!(
    f64,
    identity_f64,
    fold_f64,
    recv_contribs_f64,
    linear_reduce_f64,
    binomial_reduce_f64,
    hier_gather_f64,
    ring_allreduce_f64,
    rd_allreduce_f64,
    sag_allreduce_f64,
    reduce_eq_f64,
    reduce_eq_f64_with,
    allreduce_eq_f64,
    allreduce_eq_f64_with,
    "Engine reduce over equal-length `f64` contributions; the root receives the result.",
    "Engine allreduce over equal-length `f64` contributions."
);

impl_engine_reductions!(
    i64,
    identity_i64,
    fold_i64,
    recv_contribs_i64,
    linear_reduce_i64,
    binomial_reduce_i64,
    hier_gather_i64,
    ring_allreduce_i64,
    rd_allreduce_i64,
    sag_allreduce_i64,
    reduce_eq_i64,
    reduce_eq_i64_with,
    allreduce_eq_i64,
    allreduce_eq_i64_with,
    "Engine reduce over equal-length `i64` contributions; the root receives the result.",
    "Engine allreduce over equal-length `i64` contributions."
);
