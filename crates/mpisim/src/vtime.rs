//! Virtual time: per-rank logical clocks and deterministic contention
//! arbitration.
//!
//! Timing model (documented here once; everything else derives from it):
//!
//! * Each rank owns a [`LocalClock`]. Computation of `v` benchmark units on
//!   the rank's processor advances it by `v / speed(node, now)`.
//! * A message of `b` bytes from node `s` to node `d` costs
//!   `latency(s,d) + b / bandwidth(s,d)` on the wire. The *sender* is an
//!   eager, buffered sender (MPI `Bsend` semantics): its clock advances only
//!   by the link latency (the CPU-side injection overhead); the message is
//!   stamped with its **arrival time** `start + cost`. The *receiver's*
//!   clock becomes `max(own clock, arrival)` when the message is matched.
//! * Contention ([`hetsim::ContentionModel`]): with `ParallelLinks` (the
//!   paper's switched Ethernet) every transfer proceeds at full link speed;
//!   with `SerializedNic` the transfer must additionally wait for both
//!   endpoints' NICs to be free; with `SharedBus` for the single shared
//!   medium. A cluster may additionally model an intra-node *memory bus*
//!   ([`hetsim::Cluster::mem_bus`]): transfers between distinct ranks on
//!   the same node then serialise per node, under every network model.
//!
//! # Deterministic arbitration
//!
//! Contended transfers are arbitrated in two steps, both free of wall-clock
//! races:
//!
//! 1. **Sender-side grant** ([`NetFrontier::grant`]): the send is ordered
//!    against this rank's own *view* of the shared resource — the busy-until
//!    frontier advanced by the rank's previous sends and matched receives.
//!    The sender stamps the envelope with the granted `(start, cost)`
//!    window ([`WireXfer`]).
//! 2. **Receiver-side settlement** ([`NetFrontier::settle`]): when the
//!    receiver *matches* the envelope it replays the stamped window against
//!    its own frontier: the transfer starts no earlier than granted and no
//!    earlier than the receiver's view of the resource frees up. The
//!    settled arrival is what the receiver's clock merges, and it advances
//!    the receiver's frontier, so fan-in to one rank serialises in match
//!    order.
//!
//! Each rank's frontier is therefore mutated only by that rank's own
//! actions, in program order. By induction over each rank's deterministic
//! program, identical seeds produce bit-identical grants, settlements,
//! virtual times, verdicts, and traces on **every** contention model — no
//! matter how the OS schedules the rank threads. The old global
//! `NetworkState` (a mutex advanced in wall-clock arrival order) is gone.
//!
//! Grants on one resource are totally ordered by
//! `(quantum_of(ready), world_rank, seq)`: the matching layer uses the same
//! key to pick among simultaneously-arrived wildcard candidates, so ties
//! within one arbitration quantum resolve by rank, then by the sender's
//! per-rank send sequence — never by OS-thread arrival.
//!
//! The model is deliberately first-order — it is the same
//! latency/bandwidth/speed abstraction the HMPI runtime itself plans with,
//! which is the fidelity level the paper's experiments exercise.

use hetsim::{Cluster, ContentionModel, NodeId, SimTime};
use std::cell::Cell;
use std::rc::Rc;

/// Width of one arbitration quantum in seconds: virtual instants within the
/// same nanosecond count as simultaneous, and simultaneous grants are
/// ordered by `(world_rank, seq)` instead of sub-quantum noise.
pub const GRANT_QUANTUM: f64 = 1e-9;

/// The arbitration quantum containing virtual time `t`.
#[inline]
pub fn quantum_of(t: SimTime) -> u64 {
    (t.as_secs() / GRANT_QUANTUM).round() as u64
}

/// A rank-local virtual clock. Cheap to clone; clones share the same
/// underlying instant (the rank's communicators all tick one clock).
///
/// Not `Send`: a clock belongs to exactly one rank thread.
#[derive(Clone, Debug)]
pub struct LocalClock {
    now: Rc<Cell<SimTime>>,
}

impl LocalClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        LocalClock {
            now: Rc::new(Cell::new(SimTime::ZERO)),
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advances the clock by a duration.
    #[inline]
    pub fn advance(&self, dt: SimTime) {
        self.now.set(self.now.get() + dt);
    }

    /// Moves the clock forward to `t` if `t` is later (receiving a message
    /// stamped with its arrival time).
    #[inline]
    pub fn merge(&self, t: SimTime) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// Sets the clock to an absolute time (used by the runtime when starting
    /// a rank at a non-zero epoch).
    #[inline]
    pub fn set(&self, t: SimTime) {
        self.now.set(t);
    }
}

impl Default for LocalClock {
    fn default() -> Self {
        LocalClock::new()
    }
}

/// The shared resource a contended transfer occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireRes {
    /// Both endpoint NICs (`SerializedNic`).
    Nic {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
    },
    /// The single shared medium (`SharedBus`).
    Bus,
    /// One node's intra-node memory bus (co-located ranks).
    Mem {
        /// The node whose bus is occupied.
        node: NodeId,
    },
}

/// A granted reservation window, stamped on the envelope by the sender and
/// settled against the receiver's frontier at match time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireXfer {
    /// Transfer start after sender-side arbitration.
    pub start: SimTime,
    /// Wire occupancy (latency + bytes/bandwidth).
    pub cost: SimTime,
    /// The resource the transfer occupies.
    pub res: WireRes,
}

/// A rank's deterministic view of the shared network resources: busy-until
/// frontiers advanced only by this rank's own sends and matched receives.
///
/// Not `Send`: like [`LocalClock`], a frontier belongs to exactly one rank
/// thread (the rank's communicators share one frontier through an
/// `Rc<RefCell<_>>`).
#[derive(Debug)]
pub struct NetFrontier {
    contention: ContentionModel,
    /// Per-node NIC busy-until times, as observed by this rank.
    nic: Vec<SimTime>,
    /// Shared-medium busy-until time, as observed by this rank.
    bus: SimTime,
    /// Per-node memory-bus busy-until times, as observed by this rank.
    mem: Vec<SimTime>,
    /// Monotone per-rank send sequence (the wildcard tie-break key).
    next_seq: u64,
}

impl NetFrontier {
    /// A fresh frontier for a cluster of `n_nodes` computers.
    pub fn new(contention: ContentionModel, n_nodes: usize) -> Self {
        NetFrontier {
            contention,
            nic: vec![SimTime::ZERO; n_nodes],
            bus: SimTime::ZERO,
            mem: vec![SimTime::ZERO; n_nodes],
            next_seq: 0,
        }
    }

    /// The next per-rank send sequence number (monotone from 0).
    #[inline]
    pub fn take_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Sender-side grant for a transfer ready at `ready` that occupies the
    /// medium for `cost`. Returns the tentative arrival and, for contended
    /// transfers, the reservation window to stamp on the envelope (settled
    /// by the receiver via [`NetFrontier::settle`]).
    ///
    /// `src == dst` means two ranks co-located on one node: a positive cost
    /// there implies the cluster models a memory bus, which serialises per
    /// node under every network contention model. Zero-cost transfers
    /// (self-sends, free loopback) never contend.
    pub fn grant(
        &mut self,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
        cost: SimTime,
    ) -> (SimTime, Option<WireXfer>) {
        if cost.is_zero() {
            return (ready, None);
        }
        let (start, res) = if src == dst {
            let start = ready.max(self.mem[src.index()]);
            (start, WireRes::Mem { node: src })
        } else {
            match self.contention {
                ContentionModel::ParallelLinks => return (ready + cost, None),
                ContentionModel::SerializedNic => {
                    let start = ready
                        .max(self.nic[src.index()])
                        .max(self.nic[dst.index()]);
                    (start, WireRes::Nic { src, dst })
                }
                ContentionModel::SharedBus => (ready.max(self.bus), WireRes::Bus),
            }
        };
        let arrival = start + cost;
        self.occupy(res, arrival);
        (arrival, Some(WireXfer { start, cost, res }))
    }

    /// Receiver-side settlement of a stamped reservation, called on the
    /// receiver's own thread when the envelope is *matched*: the transfer
    /// starts no earlier than the sender granted and no earlier than the
    /// receiver's view of the resource frees up. Returns the settled
    /// arrival and advances this frontier, so fan-in serialises in match
    /// order.
    pub fn settle(&mut self, x: WireXfer) -> SimTime {
        let floor = match x.res {
            WireRes::Nic { src, dst } => {
                self.nic[src.index()].max(self.nic[dst.index()])
            }
            WireRes::Bus => self.bus,
            WireRes::Mem { node } => self.mem[node.index()],
        };
        let arrival = x.start.max(floor) + x.cost;
        self.occupy(x.res, arrival);
        arrival
    }

    fn occupy(&mut self, res: WireRes, until: SimTime) {
        match res {
            WireRes::Nic { src, dst } => {
                self.nic[src.index()] = until;
                self.nic[dst.index()] = until;
            }
            WireRes::Bus => self.bus = until,
            WireRes::Mem { node } => self.mem[node.index()] = until,
        }
    }
}

/// Computes the wire cost and sender overhead for a message, independent of
/// contention. Distinct ranks sharing a node price over the memory bus when
/// the cluster models one ([`Cluster::rank_link`]).
///
/// Returns `(sender_overhead, wire_cost)`: the sender's clock advances by the
/// overhead (the link latency — injection cost), and the message occupies the
/// medium for the wire cost.
pub fn message_costs(
    cluster: &Cluster,
    src: NodeId,
    dst: NodeId,
    bytes: usize,
) -> (SimTime, SimTime) {
    let link = cluster.rank_link(src, dst);
    let overhead = SimTime::from_secs(link.latency);
    let cost = link.transfer_time(bytes);
    (overhead, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn clock_advance_and_merge() {
        let c = LocalClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(t(2.0));
        assert_eq!(c.now(), t(2.0));
        c.merge(t(1.0)); // earlier: no effect
        assert_eq!(c.now(), t(2.0));
        c.merge(t(5.0));
        assert_eq!(c.now(), t(5.0));
    }

    #[test]
    fn clock_clones_share_time() {
        let a = LocalClock::new();
        let b = a.clone();
        a.advance(t(3.0));
        assert_eq!(b.now(), t(3.0));
    }

    #[test]
    fn parallel_links_do_not_contend() {
        let mut f = NetFrontier::new(ContentionModel::ParallelLinks, 4);
        let (a1, x1) = f.grant(NodeId(0), NodeId(1), t(0.0), t(1.0));
        let (a2, x2) = f.grant(NodeId(2), NodeId(3), t(0.0), t(1.0));
        let (a3, x3) = f.grant(NodeId(0), NodeId(1), t(0.0), t(1.0));
        assert_eq!(a1, t(1.0));
        assert_eq!(a2, t(1.0));
        assert_eq!(a3, t(1.0)); // even the same pair: switch model
        assert!(x1.is_none() && x2.is_none() && x3.is_none());
    }

    #[test]
    fn serialized_nic_queues_transfers_sharing_an_endpoint() {
        let mut f = NetFrontier::new(ContentionModel::SerializedNic, 4);
        let (a1, x1) = f.grant(NodeId(0), NodeId(1), t(0.0), t(1.0));
        assert_eq!(a1, t(1.0));
        assert!(x1.is_some());
        // Shares node 0's NIC: must wait.
        let (a2, _) = f.grant(NodeId(0), NodeId(2), t(0.0), t(1.0));
        assert_eq!(a2, t(2.0));
        // Disjoint pair: proceeds immediately.
        let (a3, _) = f.grant(NodeId(3), NodeId(2), t(2.0), t(1.0));
        assert_eq!(a3, t(3.0));
    }

    #[test]
    fn shared_bus_serialises_everything() {
        let mut f = NetFrontier::new(ContentionModel::SharedBus, 4);
        let (a1, _) = f.grant(NodeId(0), NodeId(1), t(0.0), t(1.0));
        let (a2, _) = f.grant(NodeId(2), NodeId(3), t(0.0), t(1.0));
        assert_eq!(a1, t(1.0));
        assert_eq!(a2, t(2.0));
    }

    #[test]
    fn zero_cost_transfers_never_contend() {
        let mut f = NetFrontier::new(ContentionModel::SharedBus, 2);
        let (a1, x1) = f.grant(NodeId(0), NodeId(0), t(3.0), SimTime::ZERO);
        let (a2, x2) = f.grant(NodeId(0), NodeId(0), t(3.0), SimTime::ZERO);
        assert_eq!(a1, t(3.0));
        assert_eq!(a2, t(3.0));
        assert!(x1.is_none() && x2.is_none());
    }

    #[test]
    fn mem_bus_serialises_co_located_ranks_under_any_model() {
        // A positive same-node cost means the cluster models a memory bus;
        // it serialises regardless of the network contention model.
        for model in [
            ContentionModel::ParallelLinks,
            ContentionModel::SerializedNic,
            ContentionModel::SharedBus,
        ] {
            let mut f = NetFrontier::new(model, 2);
            let (a1, x1) = f.grant(NodeId(0), NodeId(0), t(0.0), t(1.0));
            let (a2, _) = f.grant(NodeId(0), NodeId(0), t(0.0), t(1.0));
            assert_eq!(a1, t(1.0), "{model:?}");
            assert_eq!(a2, t(2.0), "{model:?}");
            assert_eq!(
                x1.unwrap().res,
                WireRes::Mem { node: NodeId(0) },
                "{model:?}"
            );
            // The other node's bus is untouched.
            let (b1, _) = f.grant(NodeId(1), NodeId(1), t(0.0), t(1.0));
            assert_eq!(b1, t(1.0), "{model:?}");
        }
    }

    #[test]
    fn settlement_serialises_fan_in_in_match_order() {
        // Two senders each grant against their own (empty) frontier: both
        // windows start at 0. The receiver settles them in match order and
        // its frontier serialises the bus deterministically.
        let mut s0 = NetFrontier::new(ContentionModel::SharedBus, 3);
        let mut s1 = NetFrontier::new(ContentionModel::SharedBus, 3);
        let (_, x0) = s0.grant(NodeId(0), NodeId(2), t(0.0), t(1.0));
        let (_, x1) = s1.grant(NodeId(1), NodeId(2), t(0.0), t(1.0));
        let mut recv = NetFrontier::new(ContentionModel::SharedBus, 3);
        let a0 = recv.settle(x0.unwrap());
        let a1 = recv.settle(x1.unwrap());
        assert_eq!(a0, t(1.0));
        assert_eq!(a1, t(2.0)); // queued behind the first settled window
        // The reverse match order yields the mirror serialisation: the
        // outcome depends only on match order, not on OS-thread arrival.
        let mut recv2 = NetFrontier::new(ContentionModel::SharedBus, 3);
        let (_, y0) = NetFrontier::new(ContentionModel::SharedBus, 3)
            .grant(NodeId(0), NodeId(2), t(0.0), t(1.0));
        let (_, y1) = NetFrontier::new(ContentionModel::SharedBus, 3)
            .grant(NodeId(1), NodeId(2), t(0.0), t(1.0));
        let b1 = recv2.settle(y1.unwrap());
        let b0 = recv2.settle(y0.unwrap());
        assert_eq!(b1, t(1.0));
        assert_eq!(b0, t(2.0));
    }

    #[test]
    fn settlement_does_not_double_charge_sequential_traffic() {
        // Ping-pong between two ranks: the sender's grant already accounts
        // for its own previous transfers; settlement takes the max, not the
        // sum, so sequential traffic costs exactly what the old global
        // arbiter charged.
        let mut a = NetFrontier::new(ContentionModel::SerializedNic, 2);
        let mut b = NetFrontier::new(ContentionModel::SerializedNic, 2);
        let (_, x) = a.grant(NodeId(0), NodeId(1), t(0.0), t(1.0));
        let arr = b.settle(x.unwrap());
        assert_eq!(arr, t(1.0));
        let (_, y) = b.grant(NodeId(1), NodeId(0), arr, t(1.0));
        let back = a.settle(y.unwrap());
        assert_eq!(back, t(2.0));
    }

    #[test]
    fn quantum_of_buckets_nanoseconds() {
        assert_eq!(quantum_of(SimTime::ZERO), 0);
        assert_eq!(quantum_of(t(1e-9)), 1);
        assert_eq!(quantum_of(t(1.0)), 1_000_000_000);
        // Sub-quantum noise lands in the same bucket.
        assert_eq!(quantum_of(t(1.0 + 2e-10)), quantum_of(t(1.0)));
    }

    #[test]
    fn take_seq_is_monotone() {
        let mut f = NetFrontier::new(ContentionModel::ParallelLinks, 1);
        assert_eq!(f.take_seq(), 0);
        assert_eq!(f.take_seq(), 1);
        assert_eq!(f.take_seq(), 2);
    }

    #[test]
    fn message_costs_follow_link_model() {
        let cluster = Cluster::paper_lan_em3d();
        let (overhead, cost) = message_costs(&cluster, NodeId(0), NodeId(1), 11_000_000);
        assert!((overhead.as_secs() - 150e-6).abs() < 1e-9);
        assert!((cost.as_secs() - (150e-6 + 1.0)).abs() < 0.01);
    }

    /// Two transfers ready at the identical instant on the same shared
    /// resource: the grant issued first occupies the resource first, the
    /// second queues behind it. The tie falls to *call order* — a rank's
    /// own program order — never to map iteration or host scheduling, on
    /// every contending resource kind.
    #[test]
    fn grant_ties_resolve_in_call_order() {
        // Shared bus.
        let mut f = NetFrontier::new(ContentionModel::SharedBus, 3);
        let (a1, _) = f.grant(NodeId(0), NodeId(1), t(1.0), t(0.5));
        let (a2, _) = f.grant(NodeId(0), NodeId(2), t(1.0), t(0.5));
        assert_eq!((a1, a2), (t(1.5), t(2.0)));
        // Serialized NIC, same endpoint pair.
        let mut f = NetFrontier::new(ContentionModel::SerializedNic, 3);
        let (a1, _) = f.grant(NodeId(0), NodeId(1), t(1.0), t(0.5));
        let (a2, _) = f.grant(NodeId(0), NodeId(1), t(1.0), t(0.5));
        assert_eq!((a1, a2), (t(1.5), t(2.0)));
        // Memory bus: co-located ranks contend per node, call order again.
        let mut f = NetFrontier::new(ContentionModel::ParallelLinks, 3);
        let (a1, _) = f.grant(NodeId(2), NodeId(2), t(1.0), t(0.5));
        let (a2, _) = f.grant(NodeId(2), NodeId(2), t(1.0), t(0.5));
        assert_eq!((a1, a2), (t(1.5), t(2.0)));
    }

    /// Settlement ties at the receiver: two stamps with the identical
    /// granted start settle in match order, and the settled arrivals are
    /// a pure function of (stamps, match order) — re-settling the same
    /// sequence on a fresh frontier reproduces them bit-for-bit.
    #[test]
    fn settle_ties_resolve_in_match_order_reproducibly() {
        let stamp = |start: f64| WireXfer {
            start: t(start),
            cost: t(0.25),
            res: WireRes::Bus,
        };
        let run = || {
            let mut f = NetFrontier::new(ContentionModel::SharedBus, 2);
            [f.settle(stamp(1.0)), f.settle(stamp(1.0)), f.settle(stamp(1.0))]
        };
        let first = run();
        assert_eq!(first, [t(1.25), t(1.5), t(1.75)]);
        assert_eq!(first, run(), "settlement must be schedule-independent");
    }
}
