//! Virtual time: per-rank logical clocks and network contention state.
//!
//! Timing model (documented here once; everything else derives from it):
//!
//! * Each rank owns a [`LocalClock`]. Computation of `v` benchmark units on
//!   the rank's processor advances it by `v / speed(node, now)`.
//! * A message of `b` bytes from node `s` to node `d` costs
//!   `latency(s,d) + b / bandwidth(s,d)` on the wire. The *sender* is an
//!   eager, buffered sender (MPI `Bsend` semantics): its clock advances only
//!   by the link latency (the CPU-side injection overhead); the message is
//!   stamped with its **arrival time** `start + cost`, where `start` is the
//!   sender's clock possibly delayed by contention (see below). The
//!   *receiver's* clock becomes `max(own clock, arrival)` when the message is
//!   matched.
//! * Contention ([`hetsim::ContentionModel`]): with `ParallelLinks` (the
//!   paper's switched Ethernet) every transfer proceeds at full link speed;
//!   with `SerializedNic` the transfer must additionally wait for both
//!   endpoints' NICs to be free; with `SharedBus` for the single shared
//!   medium. [`NetworkState::reserve`] implements the reservation.
//!
//! The model is deliberately first-order — it is the same
//! latency/bandwidth/speed abstraction the HMPI runtime itself plans with,
//! which is the fidelity level the paper's experiments exercise.

use hetsim::{Cluster, ContentionModel, NodeId, SimTime};
use parking_lot::Mutex;
use std::cell::Cell;
use std::rc::Rc;

/// A rank-local virtual clock. Cheap to clone; clones share the same
/// underlying instant (the rank's communicators all tick one clock).
///
/// Not `Send`: a clock belongs to exactly one rank thread.
#[derive(Clone, Debug)]
pub struct LocalClock {
    now: Rc<Cell<SimTime>>,
}

impl LocalClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        LocalClock {
            now: Rc::new(Cell::new(SimTime::ZERO)),
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advances the clock by a duration.
    #[inline]
    pub fn advance(&self, dt: SimTime) {
        self.now.set(self.now.get() + dt);
    }

    /// Moves the clock forward to `t` if `t` is later (receiving a message
    /// stamped with its arrival time).
    #[inline]
    pub fn merge(&self, t: SimTime) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// Sets the clock to an absolute time (used by the runtime when starting
    /// a rank at a non-zero epoch).
    #[inline]
    pub fn set(&self, t: SimTime) {
        self.now.set(t);
    }
}

impl Default for LocalClock {
    fn default() -> Self {
        LocalClock::new()
    }
}

/// Shared contention state for a running universe.
#[derive(Debug)]
pub struct NetworkState {
    contention: ContentionModel,
    /// Per-node NIC busy-until times (used by `SerializedNic`).
    nic_busy: Mutex<Vec<SimTime>>,
    /// Shared-medium busy-until time (used by `SharedBus`).
    bus_busy: Mutex<SimTime>,
}

impl NetworkState {
    /// Fresh state for a cluster of `n_nodes` computers.
    pub fn new(contention: ContentionModel, n_nodes: usize) -> Self {
        NetworkState {
            contention,
            nic_busy: Mutex::new(vec![SimTime::ZERO; n_nodes]),
            bus_busy: Mutex::new(SimTime::ZERO),
        }
    }

    /// Reserves network capacity for a transfer that is ready to start at
    /// `ready` and occupies the medium for `cost`. Returns the arrival time.
    ///
    /// Same-node transfers (`src == dst`) never contend.
    pub fn reserve(
        &self,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
        cost: SimTime,
    ) -> SimTime {
        if src == dst || cost.is_zero() {
            return ready + cost;
        }
        match self.contention {
            ContentionModel::ParallelLinks => ready + cost,
            ContentionModel::SerializedNic => {
                let mut busy = self.nic_busy.lock();
                let start = ready.max(busy[src.index()]).max(busy[dst.index()]);
                let arrival = start + cost;
                busy[src.index()] = arrival;
                busy[dst.index()] = arrival;
                arrival
            }
            ContentionModel::SharedBus => {
                let mut busy = self.bus_busy.lock();
                let start = ready.max(*busy);
                let arrival = start + cost;
                *busy = arrival;
                arrival
            }
        }
    }
}

/// Computes the wire cost and sender overhead for a message, independent of
/// contention.
///
/// Returns `(sender_overhead, wire_cost)`: the sender's clock advances by the
/// overhead (the link latency — injection cost), and the message occupies the
/// medium for the wire cost.
pub fn message_costs(
    cluster: &Cluster,
    src: NodeId,
    dst: NodeId,
    bytes: usize,
) -> (SimTime, SimTime) {
    let link = cluster.link(src, dst);
    let overhead = SimTime::from_secs(link.latency);
    let cost = link.transfer_time(bytes);
    (overhead, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn clock_advance_and_merge() {
        let c = LocalClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(t(2.0));
        assert_eq!(c.now(), t(2.0));
        c.merge(t(1.0)); // earlier: no effect
        assert_eq!(c.now(), t(2.0));
        c.merge(t(5.0));
        assert_eq!(c.now(), t(5.0));
    }

    #[test]
    fn clock_clones_share_time() {
        let a = LocalClock::new();
        let b = a.clone();
        a.advance(t(3.0));
        assert_eq!(b.now(), t(3.0));
    }

    #[test]
    fn parallel_links_do_not_contend() {
        let net = NetworkState::new(ContentionModel::ParallelLinks, 4);
        let a1 = net.reserve(NodeId(0), NodeId(1), t(0.0), t(1.0));
        let a2 = net.reserve(NodeId(2), NodeId(3), t(0.0), t(1.0));
        let a3 = net.reserve(NodeId(0), NodeId(1), t(0.0), t(1.0));
        assert_eq!(a1, t(1.0));
        assert_eq!(a2, t(1.0));
        assert_eq!(a3, t(1.0)); // even the same pair: switch model
    }

    #[test]
    fn serialized_nic_queues_transfers_sharing_an_endpoint() {
        let net = NetworkState::new(ContentionModel::SerializedNic, 4);
        let a1 = net.reserve(NodeId(0), NodeId(1), t(0.0), t(1.0));
        assert_eq!(a1, t(1.0));
        // Shares node 0's NIC: must wait.
        let a2 = net.reserve(NodeId(0), NodeId(2), t(0.0), t(1.0));
        assert_eq!(a2, t(2.0));
        // Disjoint pair: proceeds immediately.
        let a3 = net.reserve(NodeId(3), NodeId(3), t(0.0), t(1.0));
        assert_eq!(a3, t(1.0));
    }

    #[test]
    fn shared_bus_serialises_everything() {
        let net = NetworkState::new(ContentionModel::SharedBus, 4);
        let a1 = net.reserve(NodeId(0), NodeId(1), t(0.0), t(1.0));
        let a2 = net.reserve(NodeId(2), NodeId(3), t(0.0), t(1.0));
        assert_eq!(a1, t(1.0));
        assert_eq!(a2, t(2.0));
    }

    #[test]
    fn same_node_transfers_never_contend() {
        let net = NetworkState::new(ContentionModel::SharedBus, 2);
        let a1 = net.reserve(NodeId(0), NodeId(0), t(0.0), t(1.0));
        let a2 = net.reserve(NodeId(0), NodeId(0), t(0.0), t(1.0));
        assert_eq!(a1, t(1.0));
        assert_eq!(a2, t(1.0));
    }

    #[test]
    fn message_costs_follow_link_model() {
        let cluster = Cluster::paper_lan_em3d();
        let (overhead, cost) = message_costs(&cluster, NodeId(0), NodeId(1), 11_000_000);
        assert!((overhead.as_secs() - 150e-6).abs() < 1e-9);
        assert!((cost.as_secs() - (150e-6 + 1.0)).abs() < 0.01);
    }
}
