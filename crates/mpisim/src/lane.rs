//! Per-(sender, receiver) eager lanes with a dirty-lane index.
//!
//! The old mailbox funnelled every sender through one mutex and one
//! `Vec<Envelope>`; under fan-in, senders serialised against each other
//! *and* against the receiver's O(queue) scans. A [`LaneSet`] gives each
//! sender its own lane: a producer touches only its lane's lock (never
//! contended by other senders, and by the consumer only during a drain)
//! plus two atomics, so concurrent senders to one receiver scale
//! independently.
//!
//! Consumers don't poll `n` lanes — a producer flags its lane on a
//! lock-free Treiber stack of lane indices (`dirty`), and the consumer
//! drains exactly the flagged lanes. The flag-clearing order closes the
//! classic lost-wakeup race:
//!
//! * producer: lock lane → push → unlock → `queued.swap(true)`; if the
//!   swap returned `false`, push the lane index onto the dirty stack
//!   (and ring the owner's doorbell);
//! * consumer: pop the whole dirty stack; for each lane **clear `queued`
//!   first**, then drain the lane. A producer racing in after the clear
//!   re-flags the lane, so its item is seen by this drain or the next —
//!   never lost.
//!
//! Lanes are allocated lazily (`OnceLock`) so a `p`-rank world costs
//! `O(p)` pointers per mailbox, not `O(p)` queues — at 1024 ranks the
//! per-universe overhead is a few tens of MB of indices rather than
//! gigabytes of preallocated rings.
//!
//! Memory-ordering note: all flag/stack operations are `SeqCst`. The
//! quiescence detector's soundness argument (DESIGN.md §13) needs
//! "a message whose sender has reached `block()` is visible to any
//! subsequent drain", which follows because the producer's mark is
//! sequenced before its `block()` and the consumer's drain reads the
//! mark under `SeqCst`.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Sentinel for "no entry" in the dirty stack's intrusive links.
const NONE: usize = usize::MAX;

/// One sender's private queue into a receiver.
#[derive(Debug)]
struct Lane<T> {
    queue: Mutex<VecDeque<T>>,
    /// True while the lane sits on the dirty stack (or is being drained).
    queued: AtomicBool,
}

impl<T> Default for Lane<T> {
    fn default() -> Self {
        Lane {
            queue: Mutex::new(VecDeque::new()),
            queued: AtomicBool::new(false),
        }
    }
}

/// A receiver's set of per-sender lanes plus the dirty-lane stack.
#[derive(Debug)]
pub(crate) struct LaneSet<T> {
    lanes: Box<[OnceLock<Box<Lane<T>>>]>,
    /// Head of the Treiber stack of dirty lane indices ([`NONE`] = empty).
    dirty_head: AtomicUsize,
    /// Intrusive next-links, one slot per lane.
    dirty_next: Box<[AtomicUsize]>,
}

impl<T> LaneSet<T> {
    /// Lanes for `n` senders (world ranks `0..n`).
    pub(crate) fn new(n: usize) -> Self {
        LaneSet {
            lanes: (0..n).map(|_| OnceLock::new()).collect(),
            dirty_head: AtomicUsize::new(NONE),
            dirty_next: (0..n).map(|_| AtomicUsize::new(NONE)).collect(),
        }
    }

    /// Number of sender slots.
    pub(crate) fn senders(&self) -> usize {
        self.lanes.len()
    }

    /// Producer side: queue `item` on sender `src`'s lane.
    ///
    /// Returns `true` when the lane was newly flagged dirty — the caller
    /// should then ring the receiver's doorbell. (A `false` return means
    /// an earlier un-drained push already flagged it, so the receiver is
    /// provably not asleep past its pre-sleep drain.)
    pub(crate) fn push(&self, src: usize, item: T) -> bool {
        let lane = self.lanes[src].get_or_init(Box::default);
        lane.queue.lock().push_back(item);
        if lane.queued.swap(true, Ordering::SeqCst) {
            return false;
        }
        // Newly dirty: link onto the stack.
        let mut head = self.dirty_head.load(Ordering::SeqCst);
        loop {
            self.dirty_next[src].store(head, Ordering::SeqCst);
            match self.dirty_head.compare_exchange(
                head,
                src,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(h) => head = h,
            }
        }
    }

    /// Cheap consumer-side check: is any lane flagged dirty?
    pub(crate) fn any_dirty(&self) -> bool {
        self.dirty_head.load(Ordering::SeqCst) != NONE
    }

    /// Consumer side: drain every dirty lane into `sink(src, item)`,
    /// preserving each lane's FIFO order.
    ///
    /// Only one consumer may drain at a time (the mailbox store lock
    /// serialises callers).
    pub(crate) fn drain_into(&self, mut sink: impl FnMut(usize, T)) {
        loop {
            // Detach the whole stack at once.
            let mut cur = self.dirty_head.swap(NONE, Ordering::SeqCst);
            if cur == NONE {
                return;
            }
            while cur != NONE {
                let next = self.dirty_next[cur].swap(NONE, Ordering::SeqCst);
                let lane = self.lanes[cur].get_or_init(Box::default);
                // Clear-then-drain: a producer racing in after this store
                // re-flags the lane and re-links it, so nothing is lost.
                lane.queued.store(false, Ordering::SeqCst);
                let drained: Vec<T> = {
                    let mut q = lane.queue.lock();
                    q.drain(..).collect()
                };
                for item in drained {
                    sink(cur, item);
                }
                cur = next;
            }
            // Re-check: producers may have re-flagged lanes mid-drain.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_then_drain_preserves_per_lane_fifo() {
        let set: LaneSet<u32> = LaneSet::new(3);
        assert!(set.push(1, 10));
        assert!(!set.push(1, 11), "second push finds the lane flagged");
        assert!(set.push(2, 20));
        let mut seen = Vec::new();
        set.drain_into(|src, v| seen.push((src, v)));
        let lane1: Vec<u32> = seen.iter().filter(|(s, _)| *s == 1).map(|(_, v)| *v).collect();
        assert_eq!(lane1, vec![10, 11]);
        assert!(seen.contains(&(2, 20)));
        assert!(!set.any_dirty());
    }

    #[test]
    fn drain_on_empty_is_noop() {
        let set: LaneSet<u32> = LaneSet::new(2);
        let mut n = 0;
        set.drain_into(|_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn redirty_after_drain_flags_again() {
        let set: LaneSet<u32> = LaneSet::new(1);
        assert!(set.push(0, 1));
        set.drain_into(|_, _| {});
        assert!(set.push(0, 2), "a drained lane flags dirty again");
        let mut seen = Vec::new();
        set.drain_into(|_, v| seen.push(v));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn concurrent_producers_never_lose_items() {
        let set: Arc<LaneSet<usize>> = Arc::new(LaneSet::new(8));
        let per = 2000;
        std::thread::scope(|s| {
            for src in 0..8 {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    for i in 0..per {
                        set.push(src, i);
                    }
                });
            }
            let set2 = Arc::clone(&set);
            s.spawn(move || {
                let mut got = vec![Vec::new(); 8];
                while got.iter().map(Vec::len).sum::<usize>() < 8 * per {
                    set2.drain_into(|src, v| got[src].push(v));
                    std::thread::yield_now();
                }
                for lane in &got {
                    let sorted: Vec<usize> = (0..per).collect();
                    assert_eq!(lane, &sorted, "per-lane FIFO violated");
                }
            });
        });
    }
}
