//! ULFM-style agreement (`MPI_Comm_agree` analogue) over shared memory.
//!
//! Agreement is the primitive that lets survivors of a failed collective
//! reach a *consistent* verdict: every live member deposits a boolean
//! contribution into a per-round slot keyed by `(collective context, round
//! sequence)`, and the round completes once every member has either
//! deposited or been observed dead. The outcome — the AND-fold of the
//! deposited flags, the exact set of members that never deposited, and the
//! round's virtual completion time — is computed from the slot alone, so
//! every survivor reads the *same* outcome by construction (unanimity is
//! structural, not negotiated).
//!
//! Determinism: whether a member deposits or dies first is decided by the
//! fault plan in virtual time, not by thread scheduling, so the same seed
//! always yields the same verdict and failed set. Real time only affects
//! *when* the outcome is observed, never *what* it is.

use hetsim::SimTime;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Key of one agreement round: `(collective-plane context id, sequence)`.
pub(crate) type AgreeKey = (u64, u64);

/// The agreed outcome of one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agreement {
    /// AND-fold of every deposited contribution.
    pub flag: bool,
    /// World ranks of members that never deposited (observed dead instead),
    /// in ascending order. A member that deposited and died *afterwards*
    /// still counts as agreed — its contribution was made.
    pub failed: Vec<usize>,
    /// Virtual completion time: the maximum deposit time. Every survivor
    /// merges its clock to this, so the round is also a synchronisation
    /// point among the survivors.
    pub at: SimTime,
}

/// One round's shared slot.
#[derive(Debug)]
struct AgreeSlot {
    /// Member world ranks, in communicator-rank order.
    members: Vec<usize>,
    /// Per-member deposit `(flag, deposit virtual time)`, by comm rank.
    deposits: Vec<Option<(bool, SimTime)>>,
    /// Context-id pair reserved for a communicator built on this round's
    /// verdict ([`crate::Comm::shrink`]); allocated by the first depositor.
    ctx: u64,
}

/// The universe-wide agreement registry: `(ctx, seq)` → slot.
#[derive(Debug, Default)]
pub(crate) struct AgreeTable {
    inner: Mutex<HashMap<AgreeKey, AgreeSlot>>,
}

impl AgreeTable {
    pub(crate) fn new() -> Self {
        AgreeTable::default()
    }

    /// Records `me`'s contribution for round `key`, creating the slot on
    /// first touch. `alloc_ctx` is invoked exactly once per round, by the
    /// first depositor, to reserve the shrink context. Idempotent per member
    /// (a re-deposit keeps the first value).
    pub(crate) fn deposit(
        &self,
        key: AgreeKey,
        members: &[usize],
        me: usize,
        flag: bool,
        now: SimTime,
        alloc_ctx: impl FnOnce() -> u64,
    ) {
        let mut t = self.inner.lock();
        let slot = t.entry(key).or_insert_with(|| AgreeSlot {
            members: members.to_vec(),
            deposits: vec![None; members.len()],
            ctx: alloc_ctx(),
        });
        let rank = slot
            .members
            .iter()
            .position(|&w| w == me)
            .expect("depositor is a member of the agreeing communicator");
        if slot.deposits[rank].is_none() {
            slot.deposits[rank] = Some((flag, now));
        }
    }

    /// The round's outcome (plus the reserved shrink context), if every
    /// member has deposited or is dead per `is_dead`. `None` while some
    /// live member has yet to arrive.
    pub(crate) fn try_outcome(
        &self,
        key: AgreeKey,
        is_dead: impl Fn(usize) -> bool,
    ) -> Option<(Agreement, u64)> {
        let t = self.inner.lock();
        let slot = t.get(&key)?;
        let mut flag = true;
        let mut failed = Vec::new();
        let mut at = SimTime::ZERO;
        for (i, &w) in slot.members.iter().enumerate() {
            match slot.deposits[i] {
                Some((f, vt)) => {
                    flag &= f;
                    at = at.max(vt);
                }
                None if is_dead(w) => failed.push(w),
                None => return None,
            }
        }
        Some((Agreement { flag, failed, at }, slot.ctx))
    }

    /// World ranks of *live* members still missing from round `key` — the
    /// ranks whose deposit the round is genuinely waiting on. Dead
    /// non-depositors do not block completion, so they are excluded. Used
    /// by the quiescence classifier to build exact wait edges.
    pub(crate) fn pending_live(
        &self,
        key: AgreeKey,
        is_dead: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        let t = self.inner.lock();
        let Some(slot) = t.get(&key) else {
            return Vec::new();
        };
        slot.members
            .iter()
            .enumerate()
            .filter(|&(i, &w)| slot.deposits[i].is_none() && !is_dead(w))
            .map(|(_, &w)| w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_when_all_deposit() {
        let t = AgreeTable::new();
        let members = [3usize, 5, 7];
        let key = (11, 0);
        t.deposit(key, &members, 5, true, SimTime::from_secs(1.0), || 100);
        assert!(t.try_outcome(key, |_| false).is_none());
        t.deposit(key, &members, 3, true, SimTime::from_secs(2.0), || 999);
        t.deposit(key, &members, 7, false, SimTime::from_secs(1.5), || 999);
        let (a, ctx) = t.try_outcome(key, |_| false).unwrap();
        assert_eq!(ctx, 100, "first depositor's allocation wins");
        assert!(!a.flag, "AND-fold over contributions");
        assert!(a.failed.is_empty());
        assert_eq!(a.at, SimTime::from_secs(2.0));
    }

    #[test]
    fn dead_members_do_not_block_completion() {
        let t = AgreeTable::new();
        let members = [0usize, 1, 2];
        let key = (13, 4);
        t.deposit(key, &members, 0, true, SimTime::from_secs(1.0), || 10);
        t.deposit(key, &members, 2, true, SimTime::from_secs(3.0), || 10);
        assert!(t.try_outcome(key, |_| false).is_none());
        assert_eq!(t.pending_live(key, |w| w == 1), Vec::<usize>::new());
        let (a, _) = t.try_outcome(key, |w| w == 1).unwrap();
        assert!(a.flag);
        assert_eq!(a.failed, vec![1]);
        assert_eq!(a.at, SimTime::from_secs(3.0));
    }

    #[test]
    fn deposit_then_death_still_counts_as_agreed() {
        let t = AgreeTable::new();
        let members = [0usize, 1];
        let key = (2, 0);
        t.deposit(key, &members, 0, false, SimTime::from_secs(1.0), || 4);
        t.deposit(key, &members, 1, true, SimTime::from_secs(2.0), || 4);
        // Member 1 deposited, then died: its contribution stands.
        let (a, _) = t.try_outcome(key, |w| w == 1).unwrap();
        assert!(!a.flag);
        assert!(a.failed.is_empty());
    }
}
