//! The SPMD runtime: launching ranks as threads over a simulated cluster.

use crate::agree::AgreeTable;
use crate::comm::Comm;
use crate::engine::CollectivePolicy;
use crate::error::{MpiError, MpiResult};
use crate::p2p::{Mailbox, DEADLOCK_TIMEOUT, DEFAULT_EAGER_LIMIT, INLINE_CAP};
use crate::pool::{BufferPool, PoolReport};
use crate::quiesce::Registry;
use crate::vtime::LocalClock;
use hetsim::trace::{Trace, TraceEvent, TraceKind, Tracer};
use hetsim::{Cluster, NodeId, SimTime, Topology};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the failure detector knows about one world rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum RankState {
    /// Still running (as far as anyone can tell).
    Alive,
    /// The rank's node fail-stopped at the given virtual time and the rank
    /// observed it. Sticky: a later thread exit does not overwrite this.
    Failed(SimTime),
    /// The rank's closure returned (or panicked) without a node crash.
    Terminated,
}

/// State shared by every rank of a running universe.
#[derive(Debug)]
pub(crate) struct SharedState {
    pub(crate) cluster: Arc<Cluster>,
    /// `placement[world_rank]` = the cluster node hosting that rank.
    pub(crate) placement: Vec<NodeId>,
    pub(crate) mailboxes: Vec<Arc<Mailbox>>,
    /// Per-world-rank liveness, the substrate of failure detection: blocked
    /// receives consult it to avoid waiting forever on a dead peer.
    liveness: Mutex<Vec<RankState>>,
    /// Allocator for communicator context ids. Each communicator takes two
    /// consecutive ids (point-to-point plane and collective plane); the world
    /// communicator owns ids 0 and 1.
    next_ctx: AtomicU64,
    /// Context agreement for [`Comm::dup_local`]: `(parent ctx, seq)` →
    /// the allocated context. The first member to ask allocates; the rest
    /// read the same id, so agreement needs no communication.
    local_dups: Mutex<std::collections::HashMap<(u64, u64), u64>>,
    /// Virtual-time event collector, present only when the universe was
    /// built with [`UniverseConfig::tracing`]. Every instrumentation site
    /// costs exactly one `Option` discriminant check when absent.
    pub(crate) tracer: Option<Arc<Tracer>>,
    /// How the collective engine picks an algorithm per call (see
    /// [`UniverseConfig::collective_policy`]).
    pub(crate) coll_policy: CollectivePolicy,
    /// The virtual-time quiescence detector (see [`crate::quiesce`]).
    pub(crate) quiesce: Arc<Registry>,
    /// Agreement rounds ([`Comm::agree`] / [`Comm::shrink`]).
    pub(crate) agreements: Arc<AgreeTable>,
    /// Wall-clock backstop behind the quiescence detector: how long a
    /// blocked receive waits in real time before giving up anyway.
    pub(crate) watchdog: Duration,
    /// `doom[world_rank]` = that rank's node's crash time under the fault
    /// plan, if it is doomed. Resolved once at launch so receive paths do
    /// not hit the cluster model on every call.
    pub(crate) doom: Vec<Option<SimTime>>,
    /// The rendezvous payload arena (see [`crate::pool`]).
    pub(crate) pool: Arc<BufferPool>,
    /// Eager/rendezvous protocol split, bytes (≤ [`INLINE_CAP`]).
    pub(crate) eager_limit: usize,
}

impl SharedState {
    /// Allocates a fresh context-id pair, returning the base id.
    pub(crate) fn alloc_ctx_pair(&self) -> u64 {
        self.next_ctx.fetch_add(2, Ordering::Relaxed)
    }

    /// The agreed context for the `seq`-th local dup of the communicator
    /// with context `parent_ctx` (see [`Comm::dup_local`]).
    pub(crate) fn ctx_for_local_dup(&self, parent_ctx: u64, seq: u64) -> u64 {
        let mut m = self.local_dups.lock();
        *m.entry((parent_ctx, seq)).or_insert_with(|| self.alloc_ctx_pair())
    }

    /// The failure detector's current view of a world rank.
    pub(crate) fn rank_state(&self, world_rank: usize) -> RankState {
        self.liveness.lock()[world_rank]
    }

    /// Records that `world_rank`'s node fail-stopped at virtual time `at`
    /// (idempotent) and wakes every blocked receive so it re-checks.
    pub(crate) fn mark_failed(&self, world_rank: usize, at: SimTime) {
        {
            let mut l = self.liveness.lock();
            if !matches!(l[world_rank], RankState::Failed(_)) {
                l[world_rank] = RankState::Failed(at);
            }
        }
        self.quiesce.mark_dead(world_rank);
        self.wake_all();
    }

    /// Records that `world_rank`'s thread exited. Does not overwrite a
    /// `Failed` mark (the crash is the more precise cause of death).
    pub(crate) fn mark_terminated(&self, world_rank: usize) {
        {
            let mut l = self.liveness.lock();
            if l[world_rank] == RankState::Alive {
                l[world_rank] = RankState::Terminated;
            }
        }
        self.quiesce.mark_dead(world_rank);
        self.wake_all();
    }

    fn wake_all(&self) {
        for mb in &self.mailboxes {
            mb.wake_all();
        }
    }
}

/// Marks a rank `Terminated` when its thread unwinds — normally or by panic —
/// so peers blocked on it observe [`MpiError::PeerTerminated`] instead of
/// deadlocking.
struct TerminationGuard {
    world_rank: usize,
    shared: Arc<SharedState>,
}

impl Drop for TerminationGuard {
    fn drop(&mut self) {
        self.shared.mark_terminated(self.world_rank);
        // The thread no longer counts as active: if it was the last one
        // running, its exit may be the moment of quiescence.
        self.shared.quiesce.done(self.world_rank);
    }
}

/// Typed, consolidated configuration for a [`Universe`]: one value covering
/// what used to be six separately-chained `with_*` builders (placement,
/// deadlock timeout, collective policy, stack size, eager limit, tracing).
/// Build one with the fluent setters and hand it to
/// [`Universe::with_config`] or [`Universe::from_topology`]; the default
/// value reproduces `Universe::new` exactly.
///
/// ```
/// use hetsim::Cluster;
/// use mpisim::{CollectivePolicy, Universe, UniverseConfig};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let u = Universe::with_config(
///     Arc::new(Cluster::paper_lan_em3d()),
///     UniverseConfig::new()
///         .collective_policy(CollectivePolicy::Auto)
///         .deadlock_timeout(Duration::from_secs(5))
///         .tracing(true),
/// );
/// assert_eq!(u.size(), 9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct UniverseConfig {
    placement: Option<Vec<NodeId>>,
    deadlock_timeout: Option<Duration>,
    collective_policy: CollectivePolicy,
    stack_size: Option<usize>,
    eager_limit: Option<usize>,
    tracing: bool,
}

impl UniverseConfig {
    /// The default configuration: one rank per cluster node, default
    /// watchdog/stack/eager limits, [`CollectivePolicy::Auto`], no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explicit placement: `placement[world_rank]` is the hosting node.
    /// Unset, the universe runs one rank per cluster node, rank `i` on
    /// node `i` — the paper's "one process per processor" configuration.
    pub fn placement(mut self, placement: Vec<NodeId>) -> Self {
        self.placement = Some(placement);
        self
    }

    /// The wall-clock watchdog: the real-time backstop a blocked operation
    /// waits before giving up with a typed error. The virtual-time
    /// quiescence detector classifies stuck states in milliseconds, so the
    /// watchdog should never fire in practice — shorten it in tests that
    /// deliberately defeat the detector, or lengthen it for heavily
    /// oversubscribed hosts. Defaults to the `MPISIM_DEADLOCK_TIMEOUT`
    /// environment variable (seconds, fractional allowed) when set, else
    /// [`DEADLOCK_TIMEOUT`].
    pub fn deadlock_timeout(mut self, timeout: Duration) -> Self {
        self.deadlock_timeout = Some(timeout);
        self
    }

    /// The collective engine's algorithm policy:
    /// [`CollectivePolicy::Auto`] (the default) prices every eligible flat
    /// algorithm plus the topology's hierarchical plan per call and runs
    /// the predicted-cheapest; [`CollectivePolicy::FlatAuto`] restricts
    /// the choice to flat algorithms; [`CollectivePolicy::Fixed`] pins one
    /// algorithm for every engine collective.
    pub fn collective_policy(mut self, policy: CollectivePolicy) -> Self {
        self.collective_policy = policy;
        self
    }

    /// The stack size (bytes) of the per-rank OS threads spawned by
    /// [`Universe::run`]. Large worlds (1k+ ranks) exhaust address space
    /// quickly at the platform-default 8 MiB per thread; the rank closures
    /// used by the benches and tests run comfortably in a few hundred KiB.
    /// Defaults to the `MPISIM_STACK_SIZE` environment variable (bytes)
    /// when set, else the platform default.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// The eager/rendezvous protocol split: payloads of at most `bytes`
    /// travel inline through the eager lanes, larger ones lease an arena
    /// buffer. Clamped to [`INLINE_CAP`] (the envelope's inline slot
    /// capacity). Defaults to the `MPISIM_EAGER_LIMIT` environment
    /// variable (bytes) when set, else [`DEFAULT_EAGER_LIMIT`].
    pub fn eager_limit(mut self, bytes: usize) -> Self {
        self.eager_limit = Some(bytes.min(INLINE_CAP));
        self
    }

    /// Virtual-time tracing: when enabled, runs record compute spans,
    /// sends, receives (with their idle-wait split) and higher-level
    /// events into a shared [`Tracer`] returned in [`RunReport::trace`].
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }
}

/// A universe describes how many ranks run and where they are placed on the
/// cluster; [`Universe::run`] executes an SPMD closure across them.
///
/// ```
/// use hetsim::{ClusterBuilder, Link, Protocol};
/// use mpisim::{ReduceOp, Universe};
/// use std::sync::Arc;
///
/// let cluster = Arc::new(
///     ClusterBuilder::new()
///         .node("a", 100.0)
///         .node("b", 50.0)
///         .all_to_all(Link::with_defaults(Protocol::Tcp))
///         .build(),
/// );
/// let report = Universe::new(cluster).run(|proc| {
///     let world = proc.world();
///     proc.compute(100.0); // 1 s on "a", 2 s on "b" (virtual time)
///     world.allreduce_one_i64(world.rank() as i64, ReduceOp::Sum).unwrap()
/// });
/// assert_eq!(report.results, vec![1, 1]);
/// assert!(report.makespan.as_secs() >= 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct Universe {
    cluster: Arc<Cluster>,
    placement: Vec<NodeId>,
    tracer: Option<Arc<Tracer>>,
    coll_policy: CollectivePolicy,
    watchdog: Option<Duration>,
    stack_size: Option<usize>,
    eager_limit: Option<usize>,
}

impl Universe {
    /// One rank per cluster node, rank `i` on node `i` — the paper's
    /// "one process per processor" configuration. Shorthand for
    /// [`Universe::with_config`] with the default [`UniverseConfig`].
    pub fn new(cluster: Arc<Cluster>) -> Self {
        Universe::with_config(cluster, UniverseConfig::new())
    }

    /// A universe from a consolidated [`UniverseConfig`] — the one
    /// constructor every knob flows through.
    ///
    /// # Panics
    /// Panics if the configured placement is empty, references a node
    /// outside the cluster, or exceeds a node's slot count.
    pub fn with_config(cluster: Arc<Cluster>, config: UniverseConfig) -> Self {
        let placement = config
            .placement
            .unwrap_or_else(|| cluster.node_ids().collect());
        assert!(!placement.is_empty(), "universe needs at least one rank");
        let mut used = vec![0usize; cluster.len()];
        for &n in &placement {
            assert!(
                n.index() < cluster.len(),
                "placement references node {n:?} outside cluster of {} nodes",
                cluster.len()
            );
            used[n.index()] += 1;
        }
        for (i, &u) in used.iter().enumerate() {
            let slots = cluster.node(NodeId(i)).slots;
            assert!(
                u <= slots,
                "node {i} hosts {u} ranks but has only {slots} slot(s)"
            );
        }
        Universe {
            cluster,
            placement,
            tracer: config.tracing.then(|| Arc::new(Tracer::new())),
            coll_policy: config.collective_policy,
            watchdog: config.deadlock_timeout,
            stack_size: config.stack_size,
            eager_limit: config.eager_limit,
        }
    }

    /// A universe from a built [`hetsim::Topology`]: the topology's cluster
    /// and placement, plus everything else from `config`. An explicit
    /// [`UniverseConfig::placement`] overrides the topology's own placement
    /// (it must still fit the cluster).
    ///
    /// # Panics
    /// As [`Universe::with_config`].
    pub fn from_topology(topology: Topology, config: UniverseConfig) -> Self {
        let (cluster, placement) = topology.into_parts();
        let config = match config.placement {
            Some(_) => config,
            None => config.placement(placement),
        };
        Universe::with_config(Arc::new(cluster), config)
    }

    /// Explicit placement: `placement[world_rank]` is the hosting node.
    ///
    /// # Panics
    /// Panics if any node id is out of range or a node's slot count is
    /// exceeded.
    #[deprecated(
        since = "0.9.0",
        note = "use Universe::with_config(cluster, UniverseConfig::new().placement(...))"
    )]
    pub fn with_placement(cluster: Arc<Cluster>, placement: Vec<NodeId>) -> Self {
        Universe::with_config(cluster, UniverseConfig::new().placement(placement))
    }

    /// Sets the wall-clock watchdog for subsequent runs: the real-time
    /// backstop a blocked operation waits before giving up with a typed
    /// error. The virtual-time quiescence detector classifies stuck states
    /// in milliseconds, so the watchdog should never fire in practice —
    /// shorten it in tests that deliberately defeat the detector, or
    /// lengthen it for heavily oversubscribed hosts. Defaults to the
    /// `MPISIM_DEADLOCK_TIMEOUT` environment variable (seconds, fractional
    /// allowed) when set, else [`DEADLOCK_TIMEOUT`].
    #[deprecated(since = "0.9.0", note = "use UniverseConfig::deadlock_timeout")]
    pub fn with_deadlock_timeout(mut self, timeout: Duration) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Sets the collective engine's algorithm policy for subsequent runs:
    /// [`CollectivePolicy::Auto`] (the default) prices every eligible
    /// algorithm per call and picks the predicted-cheapest;
    /// [`CollectivePolicy::Fixed`] pins one algorithm for every engine
    /// collective (calls for which it is ineligible fail with
    /// [`MpiError::InvalidCounts`]).
    #[deprecated(since = "0.9.0", note = "use UniverseConfig::collective_policy")]
    pub fn with_collective_policy(mut self, policy: CollectivePolicy) -> Self {
        self.coll_policy = policy;
        self
    }

    /// Sets the stack size (bytes) of the per-rank OS threads spawned by
    /// [`Universe::run`]. Large worlds (1k+ ranks) exhaust address space
    /// quickly at the platform-default 8 MiB per thread; the rank
    /// closures used by the benches and tests run comfortably in a few
    /// hundred KiB. Defaults to the `MPISIM_STACK_SIZE` environment
    /// variable (bytes) when set, else the platform default.
    #[deprecated(since = "0.9.0", note = "use UniverseConfig::stack_size")]
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// Sets the eager/rendezvous protocol split for subsequent runs:
    /// payloads of at most `bytes` travel inline through the eager lanes,
    /// larger ones lease an arena buffer. Clamped to [`INLINE_CAP`]
    /// (the envelope's inline slot capacity). Defaults to the
    /// `MPISIM_EAGER_LIMIT` environment variable (bytes) when set, else
    /// [`DEFAULT_EAGER_LIMIT`].
    #[deprecated(since = "0.9.0", note = "use UniverseConfig::eager_limit")]
    pub fn with_eager_limit(mut self, bytes: usize) -> Self {
        self.eager_limit = Some(bytes.min(INLINE_CAP));
        self
    }

    /// Enables virtual-time tracing for subsequent runs: compute spans,
    /// sends, receives (with their idle-wait split) and higher-level
    /// events are recorded into a shared [`Tracer`] and returned in
    /// [`RunReport::trace`].
    #[deprecated(since = "0.9.0", note = "use UniverseConfig::tracing")]
    pub fn with_tracing(mut self) -> Self {
        self.tracer = Some(Arc::new(Tracer::new()));
        self
    }

    /// The installed tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.placement.len()
    }

    /// The cluster the ranks run on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The placement vector.
    pub fn placement(&self) -> &[NodeId] {
        &self.placement
    }

    /// Runs `f` on every rank concurrently (one OS thread per rank) and
    /// collects the per-rank results and final virtual clocks.
    ///
    /// # Panics
    /// Propagates the first rank panic (with its rank number) after all
    /// other ranks have been joined or abandoned.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&Process) -> R + Sync,
    {
        let n = self.size();
        let mailboxes: Vec<Arc<Mailbox>> = (0..n).map(|_| Arc::new(Mailbox::for_world(n))).collect();
        let agreements = Arc::new(AgreeTable::new());
        let watchdog = self.watchdog.unwrap_or_else(|| {
            std::env::var("MPISIM_DEADLOCK_TIMEOUT")
                .ok()
                .and_then(|s| s.trim().parse::<f64>().ok())
                .filter(|s| *s > 0.0)
                .map(Duration::from_secs_f64)
                .unwrap_or(DEADLOCK_TIMEOUT)
        });
        let stack_size = self.stack_size.or_else(|| {
            std::env::var("MPISIM_STACK_SIZE")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|s| *s > 0)
        });
        let eager_limit = self
            .eager_limit
            .or_else(|| {
                std::env::var("MPISIM_EAGER_LIMIT")
                    .ok()
                    .and_then(|s| s.trim().parse::<usize>().ok())
            })
            .unwrap_or(DEFAULT_EAGER_LIMIT)
            .min(INLINE_CAP);
        let shared = Arc::new(SharedState {
            cluster: self.cluster.clone(),
            placement: self.placement.clone(),
            quiesce: Arc::new(Registry::new(mailboxes.clone(), agreements.clone())),
            doom: {
                let times = self.cluster.crash_times();
                self.placement
                    .iter()
                    .map(|&node| times[node.index()])
                    .collect()
            },
            mailboxes,
            liveness: Mutex::new(vec![RankState::Alive; n]),
            next_ctx: AtomicU64::new(2),
            local_dups: Mutex::new(std::collections::HashMap::new()),
            tracer: self.tracer.clone(),
            coll_policy: self.coll_policy,
            agreements,
            watchdog,
            pool: BufferPool::new(),
            eager_limit,
        });

        let mut slots: Vec<Option<(R, SimTime)>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let shared = shared.clone();
                    let f = &f;
                    let mut builder = std::thread::Builder::new().name(format!("rank{rank}"));
                    if let Some(bytes) = stack_size {
                        builder = builder.stack_size(bytes);
                    }
                    builder
                        .spawn_scoped(scope, move || {
                            let _guard = TerminationGuard {
                                world_rank: rank,
                                shared: shared.clone(),
                            };
                            let proc = Process::new(rank, shared);
                            let out = f(&proc);
                            (out, proc.clock().now())
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pair) => slots[rank] = Some(pair),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!("rank {rank} panicked: {msg}");
                    }
                }
            }
        });

        let mut results = Vec::with_capacity(n);
        let mut clocks = Vec::with_capacity(n);
        for s in slots {
            let (r, c) = s.expect("all ranks joined successfully");
            results.push(r);
            clocks.push(c);
        }
        let makespan = clocks.iter().copied().fold(SimTime::ZERO, SimTime::max);
        // Drain undelivered messages (fault scenarios leave some behind) so
        // their pooled payloads return to the arena; after this, a nonzero
        // `outstanding` in the pool report is a genuine leak.
        for mb in &shared.mailboxes {
            mb.drain_all();
        }
        RunReport {
            results,
            rank_times: clocks,
            makespan,
            trace: self.tracer.as_ref().map(|t| t.drain()),
            predicted: None,
            pool: shared.pool.report(),
        }
    }
}

/// What a completed universe run produced.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, in world-rank order.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub rank_times: Vec<SimTime>,
    /// The program's virtual execution time: the maximum final clock.
    pub makespan: SimTime,
    /// The run's virtual-time trace, when the universe was built with
    /// [`UniverseConfig::tracing`].
    pub trace: Option<Trace>,
    /// The `HMPI_Timeof` prediction for this run in virtual seconds, when
    /// the driver obtained one. Filled in by callers (the simulator cannot
    /// know what the planner predicted); compared against [`Self::makespan`]
    /// by [`RunReport::prediction_report`].
    pub predicted: Option<f64>,
    /// Snapshot of the rendezvous buffer arena after the run drained:
    /// [`PoolReport::outstanding`] must be zero (simcheck's leak
    /// invariant), and the reuse counters feed the throughput bench.
    pub pool: PoolReport,
}

impl<R> RunReport<R> {
    /// Prediction-vs-actual accuracy report: the `timeof` prediction next
    /// to the measured makespan, with the per-rank compute/comm/wait
    /// breakdown. `None` unless both a prediction and a trace are present.
    pub fn prediction_report(&self) -> Option<hetsim::PredictionReport> {
        let predicted = self.predicted?;
        let trace = self.trace.as_ref()?;
        Some(hetsim::PredictionReport::new(
            predicted,
            self.makespan,
            trace,
            self.rank_times.len(),
        ))
    }
}

/// A rank's handle to the running universe. Not `Send`: it lives on its
/// rank's thread.
#[derive(Debug)]
pub struct Process {
    world_rank: usize,
    shared: Arc<SharedState>,
    clock: LocalClock,
}

impl Process {
    pub(crate) fn new(world_rank: usize, shared: Arc<SharedState>) -> Self {
        Process {
            world_rank,
            shared,
            clock: LocalClock::new(),
        }
    }

    /// This rank's world rank.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Total number of ranks in the universe.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.shared.placement.len()
    }

    /// The cluster node hosting this rank.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.shared.placement[self.world_rank]
    }

    /// The cluster node hosting an arbitrary world rank.
    #[inline]
    pub fn node_of(&self, world_rank: usize) -> NodeId {
        self.shared.placement[world_rank]
    }

    /// The full placement vector: `placement[world_rank] = node`.
    #[inline]
    pub fn placement(&self) -> &[NodeId] {
        &self.shared.placement
    }

    /// The universe's tracer, when tracing was enabled with
    /// [`UniverseConfig::tracing`] — lets layers above mpisim (e.g. the HMPI
    /// runtime) record their own spans into the same event stream.
    #[inline]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.shared.tracer.as_ref()
    }

    /// The cluster model.
    #[inline]
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.shared.cluster
    }

    /// This rank's virtual clock.
    #[inline]
    pub fn clock(&self) -> &LocalClock {
        &self.clock
    }

    /// Performs `units` benchmark units of computation: advances the clock by
    /// `units / speed(node, now)`.
    ///
    /// # Panics
    /// Panics if this rank's node has fail-stopped (its delivered speed is
    /// zero). Fault-aware programs use [`Process::try_compute`].
    pub fn compute(&self, units: f64) {
        let start = self.clock.now();
        let dt = self.shared.cluster.compute_time(self.node(), units, start);
        self.clock.advance(dt);
        if let Some(tracer) = &self.shared.tracer {
            let mut ev = TraceEvent::new(self.world_rank, TraceKind::Compute, "compute", start);
            ev.dur = dt;
            tracer.record(ev);
        }
    }

    /// Failure-aware computation: like [`Process::compute`] but if this
    /// rank's node fail-stops before the work completes, the clock is clamped
    /// to the crash time, the failure is published to the other ranks, and
    /// [`MpiError::NodeFailed`] (with this rank's own world rank) is
    /// returned. The caller should unwind — this process is dead.
    pub fn try_compute(&self, units: f64) -> MpiResult<()> {
        let node = self.node();
        let now = self.clock.now();
        if let Some(tc) = self.shared.cluster.crash_time(node) {
            if now >= tc {
                self.shared.mark_failed(self.world_rank, tc);
                return Err(MpiError::NodeFailed {
                    world_rank: self.world_rank,
                });
            }
            let dt = self.shared.cluster.compute_time(node, units, now);
            if now + dt >= tc {
                self.clock.set(tc);
                self.shared.mark_failed(self.world_rank, tc);
                return Err(MpiError::NodeFailed {
                    world_rank: self.world_rank,
                });
            }
            self.clock.advance(dt);
            if let Some(tracer) = &self.shared.tracer {
                let mut ev = TraceEvent::new(self.world_rank, TraceKind::Compute, "compute", now);
                ev.dur = dt;
                tracer.record(ev);
            }
            return Ok(());
        }
        self.compute(units);
        Ok(())
    }

    /// True if the failure detector still considers `world_rank` alive —
    /// neither fail-stopped nor exited. A rank is trivially alive to itself.
    pub fn rank_alive(&self, world_rank: usize) -> bool {
        world_rank == self.world_rank
            || self.shared.rank_state(world_rank) == RankState::Alive
    }

    /// True if the failure detector has seen `world_rank` fail-stop. A rank
    /// that merely exited its SPMD closure is *not* failed.
    pub fn rank_failed(&self, world_rank: usize) -> bool {
        matches!(self.shared.rank_state(world_rank), RankState::Failed(_))
    }

    /// World ranks the failure detector has seen fail-stop, in rank order.
    pub fn failed_ranks(&self) -> Vec<usize> {
        let l = self.shared.liveness.lock();
        l.iter()
            .enumerate()
            .filter_map(|(w, s)| matches!(s, RankState::Failed(_)).then_some(w))
            .collect()
    }

    /// The world communicator (`MPI_COMM_WORLD`). Context ids 0/1.
    pub fn world(&self) -> Comm {
        Comm::world(self.world_rank, self.shared.clone(), self.clock.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::ClusterBuilder;

    fn tiny_cluster() -> Arc<Cluster> {
        Arc::new(
            ClusterBuilder::new()
                .node("a", 100.0)
                .node("b", 50.0)
                .node("c", 25.0)
                .build(),
        )
    }

    #[test]
    fn ranks_see_their_identity() {
        let u = Universe::new(tiny_cluster());
        let report = u.run(|p| (p.world_rank(), p.world_size(), p.node().index()));
        assert_eq!(report.results, vec![(0, 3, 0), (1, 3, 1), (2, 3, 2)]);
    }

    #[test]
    fn compute_advances_clock_by_speed() {
        let u = Universe::new(tiny_cluster());
        let report = u.run(|p| {
            p.compute(100.0);
            p.clock().now().as_secs()
        });
        // speeds 100, 50, 25 -> times 1, 2, 4
        assert_eq!(report.results, vec![1.0, 2.0, 4.0]);
        assert_eq!(report.makespan.as_secs(), 4.0);
        assert_eq!(report.rank_times[1].as_secs(), 2.0);
    }

    #[test]
    fn custom_placement_reuses_nodes() {
        let cluster = Arc::new(
            ClusterBuilder::new()
                .processor(hetsim::Processor::new("smp", 100.0).with_slots(2))
                .node("b", 50.0)
                .build(),
        );
        let u = Universe::with_config(
            cluster,
            UniverseConfig::new().placement(vec![NodeId(0), NodeId(0), NodeId(1)]),
        );
        let report = u.run(|p| p.node().index());
        assert_eq!(report.results, vec![0, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn placement_overflowing_slots_rejected() {
        let cluster = tiny_cluster();
        let _ = Universe::with_config(
            cluster,
            UniverseConfig::new().placement(vec![NodeId(0), NodeId(0)]),
        );
    }

    #[test]
    fn untraced_runs_carry_no_trace() {
        let u = Universe::new(tiny_cluster());
        let report = u.run(|p| p.compute(10.0));
        assert!(report.trace.is_none());
        assert!(report.predicted.is_none());
        assert!(report.prediction_report().is_none());
    }

    #[test]
    fn traced_run_records_compute_and_messages() {
        let u = Universe::with_config(tiny_cluster(), UniverseConfig::new().tracing(true));
        let report = u.run(|p| {
            let world = p.world();
            p.compute(100.0);
            if p.world_rank() == 0 {
                world.send(&[1.0f64, 2.0], 1, 7).unwrap();
            } else if p.world_rank() == 1 {
                let _ = world.recv::<f64>(0, 7).unwrap();
            }
        });
        let trace = report.trace.expect("tracing was enabled");
        assert!(!trace.is_empty());
        let phases = trace.phases(3);
        // speeds 100, 50, 25 -> compute times 1, 2, 4
        assert!((phases[0].compute.as_secs() - 1.0).abs() < 1e-12);
        assert!((phases[2].compute.as_secs() - 4.0).abs() < 1e-12);
        let stats = trace.message_stats(3);
        assert_eq!(stats[0].sent, 1);
        assert_eq!(stats[1].received, 1);
        assert_eq!(stats[0].bytes_sent, 16);
        // A 16-byte payload rides the eager protocol, and the trace says so.
        assert_eq!(stats[0].eager_sent, 1);
        assert_eq!(stats[0].rendezvous_sent, 0);
        let json = trace.to_chrome_json();
        assert!(json.contains("\"cat\":\"send\""));
        assert!(json.contains("\"cat\":\"recv\""));
    }

    #[test]
    fn prediction_report_compares_against_makespan() {
        let u = Universe::with_config(tiny_cluster(), UniverseConfig::new().tracing(true));
        let mut report = u.run(|p| p.compute(100.0));
        report.predicted = Some(report.makespan.as_secs() * 1.1);
        let pr = report.prediction_report().expect("trace and prediction");
        assert!((pr.error_pct() - 10.0).abs() < 1e-9);
        assert_eq!(pr.phases.len(), 3);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panics_propagate_with_rank() {
        let u = Universe::new(tiny_cluster());
        u.run(|p| {
            if p.world_rank() == 1 {
                panic!("boom");
            }
        });
    }
}
