//! Communicators.
//!
//! A [`Comm`] binds a [`Group`] to a pair of context ids (one for
//! point-to-point traffic, one for collectives, so a collective can never
//! intercept an application message) and carries the calling rank's virtual
//! clock. Constructors mirror MPI: [`Comm::dup`], [`Comm::split`],
//! [`Comm::create`].

use crate::datatype::{decode, decode_into, encode, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::group::Group;
use crate::p2p::{Envelope, Pattern, Status, DEADLOCK_TIMEOUT, TIMEOUT_GRACE};
use crate::runtime::{RankState, SharedState};
use crate::vtime::LocalClock;
use hetsim::trace::{TraceEvent, TraceKind};
use hetsim::{NodeId, SimTime};
use std::sync::Arc;
use std::time::Duration;

/// A communicator: an isolated communication context over a group of ranks.
///
/// `Comm` is rank-local (not `Send`): each rank holds its own handle, all
/// handles of one rank share that rank's clock.
#[derive(Debug, Clone)]
pub struct Comm {
    pub(crate) shared: Arc<SharedState>,
    group: Arc<Group>,
    /// Base context id; `ctx` is the p2p plane, `ctx + 1` the collective one.
    ctx: u64,
    /// Calling process's rank within this communicator.
    rank: usize,
    pub(crate) clock: LocalClock,
}

impl Comm {
    pub(crate) fn world(world_rank: usize, shared: Arc<SharedState>, clock: LocalClock) -> Comm {
        let n = shared.placement.len();
        Comm {
            shared,
            group: Arc::new(Group::world(n)),
            ctx: 0,
            rank: world_rank,
            clock,
        }
    }

    /// This process's rank in the communicator (`MPI_Comm_rank`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator (`MPI_Comm_size`).
    #[inline]
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// The communicator's group (`MPI_Comm_group`).
    #[inline]
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The world rank behind a communicator rank.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    #[inline]
    pub fn world_rank_of(&self, rank: usize) -> usize {
        self.group.world_rank_of(rank)
    }

    /// The calling process's world rank.
    #[inline]
    pub fn my_world_rank(&self) -> usize {
        self.group.world_rank_of(self.rank)
    }

    /// The cluster node hosting a communicator rank.
    #[inline]
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.shared.placement[self.world_rank_of(rank)]
    }

    /// This rank's virtual clock.
    #[inline]
    pub fn clock(&self) -> &LocalClock {
        &self.clock
    }

    /// Performs `units` benchmark units of computation on the calling rank's
    /// processor, advancing its clock.
    ///
    /// # Panics
    /// Panics if this rank's node has fail-stopped. Fault-aware programs use
    /// [`Comm::try_compute`].
    pub fn compute(&self, units: f64) {
        let node = self.node_of(self.rank);
        let start = self.clock.now();
        let dt = self.shared.cluster.compute_time(node, units, start);
        self.clock.advance(dt);
        self.trace_compute(start, dt);
    }

    /// Records a compute span when tracing is enabled (one `Option` check
    /// otherwise).
    fn trace_compute(&self, start: SimTime, dur: SimTime) {
        if let Some(tracer) = &self.shared.tracer {
            let mut ev =
                TraceEvent::new(self.my_world_rank(), TraceKind::Compute, "compute", start);
            ev.dur = dur;
            tracer.record(ev);
        }
    }

    /// Failure-aware computation: if this rank's node fail-stops before the
    /// work completes, the clock is clamped to the crash time, the failure is
    /// published, and [`MpiError::NodeFailed`] (with the caller's own world
    /// rank) is returned.
    pub fn try_compute(&self, units: f64) -> MpiResult<()> {
        let me = self.my_world_rank();
        let node = self.shared.placement[me];
        let now = self.clock.now();
        if let Some(tc) = self.shared.cluster.crash_time(node) {
            if now >= tc {
                self.shared.mark_failed(me, tc);
                return Err(MpiError::NodeFailed { world_rank: me });
            }
            let dt = self.shared.cluster.compute_time(node, units, now);
            if now + dt >= tc {
                self.clock.set(tc);
                self.shared.mark_failed(me, tc);
                return Err(MpiError::NodeFailed { world_rank: me });
            }
            self.clock.advance(dt);
            self.trace_compute(now, dt);
            return Ok(());
        }
        self.compute(units);
        Ok(())
    }

    /// True if the failure detector still considers the communicator rank
    /// `rank` alive — neither fail-stopped nor exited. A rank is trivially
    /// alive to itself.
    pub fn rank_alive(&self, rank: usize) -> bool {
        let w = self.world_rank_of(rank);
        w == self.my_world_rank() || self.shared.rank_state(w) == RankState::Alive
    }

    /// Errors with [`MpiError::NodeFailed`] (own world rank) if the calling
    /// rank's node has fail-stopped by its current virtual time, publishing
    /// the failure as a side effect.
    fn check_self_alive(&self) -> MpiResult<()> {
        let me = self.my_world_rank();
        let node = self.shared.placement[me];
        if let Some(tc) = self.shared.cluster.crash_time(node) {
            if self.clock.now() >= tc {
                self.shared.mark_failed(me, tc);
                return Err(MpiError::NodeFailed { world_rank: me });
            }
        }
        Ok(())
    }

    /// The abort condition a blocked receive re-checks: is the peer (or, for
    /// a collective, any group member) known to be dead?
    ///
    /// Point-to-point receives abort only when the awaited sender itself is
    /// dead (`ANY_SOURCE`: when *every* other member is), so p2p between
    /// live ranks keeps working during recovery. Collective receives abort
    /// as soon as *any* member has fail-stopped — one dead participant makes
    /// the collective impossible to complete, and aborting everywhere is
    /// what propagates the failure to ranks not directly blocked on it.
    fn peer_abort(&self, src_world: Option<usize>, collective: bool) -> Option<MpiError> {
        let me = self.my_world_rank();
        if collective {
            for &w in self.group.world_ranks() {
                if w != me {
                    if let RankState::Failed(_) = self.shared.rank_state(w) {
                        return Some(MpiError::NodeFailed { world_rank: w });
                    }
                }
            }
        }
        match src_world {
            Some(s) => match self.shared.rank_state(s) {
                RankState::Alive => None,
                RankState::Failed(_) => Some(MpiError::NodeFailed { world_rank: s }),
                RankState::Terminated => Some(MpiError::PeerTerminated { world_rank: s }),
            },
            None => {
                let mut verdict = None;
                for &w in self.group.world_ranks() {
                    if w == me {
                        continue;
                    }
                    match self.shared.rank_state(w) {
                        RankState::Alive => return None,
                        RankState::Failed(_) => {
                            verdict = Some(MpiError::NodeFailed { world_rank: w });
                        }
                        RankState::Terminated => {
                            verdict = verdict
                                .or(Some(MpiError::PeerTerminated { world_rank: w }));
                        }
                    }
                }
                verdict
            }
        }
    }

    fn check_rank(&self, rank: usize) -> MpiResult<()> {
        if rank >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: rank as isize,
                comm_size: self.size(),
            });
        }
        Ok(())
    }

    // ----- point-to-point ---------------------------------------------------

    /// Internal transport: posts `bytes` to `dest` (a comm rank) on the given
    /// context plane, advancing the sender clock by the injection overhead
    /// and stamping the envelope with its arrival time.
    ///
    /// Failure semantics (all judged in deterministic virtual time):
    /// [`MpiError::NodeFailed`] if the sender's own node has crashed (own
    /// world rank) or the destination's node has crashed by the sender's
    /// current time (destination world rank); [`MpiError::LinkDown`] if the
    /// fault plan has dropped the link.
    pub(crate) fn post_bytes(
        &self,
        plane: u64,
        bytes: Vec<u8>,
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        self.check_self_alive()?;
        let src_world = self.my_world_rank();
        let dst_world = self.world_rank_of(dest);
        let src_node = self.shared.placement[src_world];
        let dst_node = self.shared.placement[dst_world];
        let now = self.clock.now();
        if let Some(tc) = self.shared.cluster.crash_time(dst_node) {
            if now >= tc {
                return Err(MpiError::NodeFailed {
                    world_rank: dst_world,
                });
            }
        }
        let link = self.shared.cluster.link(src_node, dst_node);
        let overhead = SimTime::from_secs(link.latency);
        let cost = self
            .shared
            .cluster
            .transfer_time_at(src_node, dst_node, bytes.len(), now)
            .ok_or(MpiError::LinkDown {
                from: src_node.index(),
                to: dst_node.index(),
            })?;
        let arrival = self.shared.network.reserve(src_node, dst_node, now, cost);
        self.clock.advance(overhead);
        if let Some(tracer) = &self.shared.tracer {
            let mut ev = TraceEvent::new(src_world, TraceKind::Send, "send", now);
            ev.dur = overhead;
            ev.bytes = bytes.len() as u64;
            ev.peer = Some(dst_world);
            // Context-id pairs have an even p2p plane and an odd collective
            // plane (the allocator hands out even bases).
            ev.collective = plane & 1 == 1;
            tracer.record(ev);
        }
        self.shared.mailboxes[dst_world].post(Envelope {
            ctx: plane,
            src_world,
            tag,
            data: bytes,
            sent_at: now,
            arrival,
        });
        Ok(())
    }

    /// Internal transport: blocking matched receive on a context plane.
    pub(crate) fn recv_bytes(
        &self,
        plane: u64,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<(Vec<u8>, Status)> {
        self.recv_bytes_deadline(plane, src, tag, None, DEADLOCK_TIMEOUT)
    }

    /// Internal transport: matched receive with failure detection and an
    /// optional virtual-time deadline.
    ///
    /// * A message already queued from a now-dead sender is still delivered
    ///   (it was sent before the sender died).
    /// * Blocked with the awaited peer dead → [`MpiError::NodeFailed`] /
    ///   [`MpiError::PeerTerminated`]; on the collective plane any dead group
    ///   member aborts the wait (see [`Comm::peer_abort`]).
    /// * `deadline` exceeded → [`MpiError::Timeout`], with the clock advanced
    ///   to the deadline and any late message left queued.
    /// * If the matched message would arrive after this rank's own node
    ///   crashes, the rank dies first: clock clamps to the crash time and
    ///   [`MpiError::NodeFailed`] (own rank) is returned.
    /// * A rank whose own node is doomed never waits past its death: the
    ///   crash time acts as an implicit deadline on every blocking receive
    ///   (a fail-stopped machine cannot sit in `MPI_Recv` forever), so a
    ///   message that will never come resolves as the rank's own failure
    ///   rather than a deadlock.
    pub(crate) fn recv_bytes_deadline(
        &self,
        plane: u64,
        src: Option<usize>,
        tag: Option<i32>,
        deadline: Option<SimTime>,
        grace: Duration,
    ) -> MpiResult<(Vec<u8>, Status)> {
        self.check_self_alive()?;
        let my_world = self.my_world_rank();
        let my_node = self.shared.placement[my_world];
        let pat = Pattern {
            ctx: plane,
            src_world: src.map(|r| self.world_rank_of(r)),
            tag,
        };
        let collective = plane == self.coll_plane();
        let own_tc = self.shared.cluster.crash_time(my_node);
        let death_binding = own_tc.is_some_and(|tc| deadline.is_none_or(|d| tc <= d));
        let (eff_deadline, eff_grace) = if death_binding {
            // Waiting unbounded on a doomed node would deadlock; give the
            // awaited message a real-time grace to materialise, then die.
            let g = if deadline.is_none() {
                TIMEOUT_GRACE + TIMEOUT_GRACE
            } else {
                grace
            };
            (own_tc, g)
        } else {
            (deadline, grace)
        };
        let env = match self.shared.mailboxes[my_world].recv_match_guarded(
            pat,
            eff_deadline,
            eff_grace,
            || self.peer_abort(pat.src_world, collective),
        ) {
            Ok(env) => env,
            Err(MpiError::Timeout) => {
                if death_binding {
                    // Nothing can reach this rank before its node dies.
                    let tc = own_tc.expect("death_binding implies a crash time");
                    self.clock.merge(tc);
                    self.shared.mark_failed(my_world, tc);
                    return Err(MpiError::NodeFailed {
                        world_rank: my_world,
                    });
                }
                if let Some(d) = deadline {
                    self.clock.merge(d);
                }
                return Err(MpiError::Timeout);
            }
            Err(e) => return Err(e),
        };
        if let Some(tc) = own_tc {
            if env.arrival >= tc {
                self.clock.merge(tc);
                self.shared.mark_failed(my_world, tc);
                return Err(MpiError::NodeFailed {
                    world_rank: my_world,
                });
            }
        }
        let before = self.clock.now();
        self.clock.merge(env.arrival);
        if let Some(tracer) = &self.shared.tracer {
            let dur = env.arrival.max(before) - before;
            let mut ev = TraceEvent::new(my_world, TraceKind::Recv, "recv", before);
            ev.dur = dur;
            // The idle part of the span: time spent blocked before the
            // sender had even reached its send.
            ev.wait = (env.sent_at.max(before) - before).min(dur);
            ev.bytes = env.data.len() as u64;
            ev.peer = Some(env.src_world);
            ev.collective = collective;
            tracer.record(ev);
        }
        let source = self
            .group
            .rank_of_world(env.src_world)
            .expect("sender is in this communicator by construction");
        let status = Status {
            source,
            tag: env.tag,
            bytes: env.data.len(),
        };
        Ok((env.data, status))
    }

    /// Standard-mode send (`MPI_Send`; eager/buffered, never blocks).
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] if `dest` is outside the communicator;
    /// [`MpiError::NodeFailed`] if the destination's node (or the caller's
    /// own) has fail-stopped; [`MpiError::LinkDown`] if the link is dropped.
    pub fn send<T: MpiType>(&self, data: &[T], dest: usize, tag: i32) -> MpiResult<()> {
        self.check_rank(dest)?;
        self.post_bytes(self.ctx, encode(data), dest, tag)
    }

    /// Blocking receive of a whole message from a specific source and tag.
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] for a bad source;
    /// [`MpiError::TypeMismatch`] if the payload is not a whole number of
    /// `T` elements; [`MpiError::NodeFailed`] / [`MpiError::PeerTerminated`]
    /// if the awaited sender is dead and nothing from it is queued.
    pub fn recv<T: MpiType>(&self, src: usize, tag: i32) -> MpiResult<(Vec<T>, Status)> {
        self.check_rank(src)?;
        let (bytes, status) = self.recv_bytes(self.ctx, Some(src), Some(tag))?;
        Ok((decode(&bytes)?, status))
    }

    /// Blocking receive that gives up at a virtual-time `deadline`: if no
    /// matching message has arrival time `<= deadline`, returns
    /// [`MpiError::Timeout`] with the clock advanced to the deadline (a late
    /// message stays queued for a later receive). Peer death is still
    /// reported as [`MpiError::NodeFailed`] / [`MpiError::PeerTerminated`].
    ///
    /// Because virtual and real time are decoupled, "no message by the
    /// deadline" is concluded after [`TIMEOUT_GRACE`] of real time without a
    /// qualifying arrival.
    ///
    /// # Errors
    /// As [`Comm::recv`], plus [`MpiError::Timeout`].
    pub fn recv_deadline<T: MpiType>(
        &self,
        src: usize,
        tag: i32,
        deadline: SimTime,
    ) -> MpiResult<(Vec<T>, Status)> {
        self.check_rank(src)?;
        let (bytes, status) = self.recv_bytes_deadline(
            self.ctx,
            Some(src),
            Some(tag),
            Some(deadline),
            TIMEOUT_GRACE,
        )?;
        Ok((decode(&bytes)?, status))
    }

    /// [`Comm::recv_deadline`] with the deadline expressed as a duration from
    /// the caller's current virtual time.
    ///
    /// # Errors
    /// As [`Comm::recv_deadline`].
    pub fn recv_timeout<T: MpiType>(
        &self,
        src: usize,
        tag: i32,
        timeout: SimTime,
    ) -> MpiResult<(Vec<T>, Status)> {
        self.recv_deadline(src, tag, self.clock.now() + timeout)
    }

    /// Blocking receive with optional wildcards (`None` = `MPI_ANY_SOURCE` /
    /// `MPI_ANY_TAG`).
    ///
    /// # Errors
    /// As [`Comm::recv`].
    pub fn recv_any<T: MpiType>(
        &self,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<(Vec<T>, Status)> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let (bytes, status) = self.recv_bytes(self.ctx, src, tag)?;
        Ok((decode(&bytes)?, status))
    }

    /// Blocking receive into a caller-supplied buffer, with truncation
    /// checking (`MPI_Recv` proper). Returns the element count received.
    ///
    /// # Errors
    /// [`MpiError::Truncated`] if the message exceeds the buffer.
    pub fn recv_into<T: MpiType>(
        &self,
        buf: &mut [T],
        src: usize,
        tag: i32,
    ) -> MpiResult<(usize, Status)> {
        self.check_rank(src)?;
        let (bytes, status) = self.recv_bytes(self.ctx, Some(src), Some(tag))?;
        let n = decode_into(&bytes, buf)?;
        Ok((n, status))
    }

    /// Combined send and receive (`MPI_Sendrecv`). Never deadlocks because
    /// sends are eager.
    ///
    /// # Errors
    /// As [`Comm::send`] / [`Comm::recv`].
    pub fn sendrecv<T: MpiType, U: MpiType>(
        &self,
        send_data: &[T],
        dest: usize,
        send_tag: i32,
        src: usize,
        recv_tag: i32,
    ) -> MpiResult<(Vec<U>, Status)> {
        self.send(send_data, dest, send_tag)?;
        self.recv(src, recv_tag)
    }

    /// Nonblocking send (`MPI_Isend`). Under the eager model the send is
    /// already complete when this returns; the request exists for API parity.
    ///
    /// # Errors
    /// As [`Comm::send`].
    pub fn isend<T: MpiType>(&self, data: &[T], dest: usize, tag: i32) -> MpiResult<SendRequest> {
        self.send(data, dest, tag)?;
        Ok(SendRequest { _priv: () })
    }

    /// Nonblocking receive (`MPI_Irecv`): returns a request to be completed
    /// with [`RecvRequest::wait`] or polled with [`RecvRequest::test`].
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] for a bad explicit source.
    pub fn irecv(&self, src: Option<usize>, tag: Option<i32>) -> MpiResult<RecvRequest> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        Ok(RecvRequest {
            src,
            tag,
            done: None,
        })
    }

    /// Blocking probe (`MPI_Probe`): metadata of the next matching message
    /// without receiving it. Advances the clock to the message arrival.
    pub fn probe(&self, src: Option<usize>, tag: Option<i32>) -> MpiResult<Status> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let my_world = self.my_world_rank();
        let pat = Pattern {
            ctx: self.ctx,
            src_world: src.map(|r| self.world_rank_of(r)),
            tag,
        };
        let (src_world, tag, bytes, arrival) = self.shared.mailboxes[my_world].probe_match(pat);
        self.clock.merge(arrival);
        Ok(Status {
            source: self
                .group
                .rank_of_world(src_world)
                .expect("sender is a member"),
            tag,
            bytes,
        })
    }

    /// Nonblocking probe (`MPI_Iprobe`).
    pub fn iprobe(&self, src: Option<usize>, tag: Option<i32>) -> MpiResult<Option<Status>> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let my_world = self.my_world_rank();
        let pat = Pattern {
            ctx: self.ctx,
            src_world: src.map(|r| self.world_rank_of(r)),
            tag,
        };
        Ok(self.shared.mailboxes[my_world].try_probe(pat).map(
            |(src_world, tag, bytes, _)| Status {
                source: self
                    .group
                    .rank_of_world(src_world)
                    .expect("sender is a member"),
                tag,
                bytes,
            },
        ))
    }

    // ----- communicator constructors ---------------------------------------

    /// The collective context plane.
    #[inline]
    pub(crate) fn coll_plane(&self) -> u64 {
        self.ctx + 1
    }

    /// Duplicates the communicator with a fresh context (`MPI_Comm_dup`).
    /// Collective over all members.
    ///
    /// # Errors
    /// Propagates transport errors from the internal broadcast.
    pub fn dup(&self) -> MpiResult<Comm> {
        let ctx = self.agree_ctx()?;
        Ok(Comm {
            shared: self.shared.clone(),
            group: self.group.clone(),
            ctx,
            rank: self.rank,
            clock: self.clock.clone(),
        })
    }

    /// Duplicates the communicator **without communicating**: context
    /// agreement goes through the universe's shared context registry, so
    /// the call cannot block or fail even while nodes are crashing — a
    /// collective [`Comm::dup`] would abort on the first dead relay in
    /// its broadcast tree. Intended for control planes set up at init
    /// time, before any failure can be tolerated.
    ///
    /// Every member must call it with the same `seq`; calls with equal
    /// `(parent, seq)` yield the *same* communicator, distinct `seq`s
    /// yield distinct ones. (Real MPI has no equivalent; this leans on
    /// the simulator's shared memory the way `MPI_Comm_idup` leans on
    /// deferred agreement.)
    pub fn dup_local(&self, seq: u64) -> Comm {
        let ctx = self.shared.ctx_for_local_dup(self.ctx, seq);
        Comm {
            shared: self.shared.clone(),
            group: self.group.clone(),
            ctx,
            rank: self.rank,
            clock: self.clock.clone(),
        }
    }

    /// Rank 0 allocates a context-id pair and broadcasts it.
    fn agree_ctx(&self) -> MpiResult<u64> {
        let mut v = if self.rank == 0 {
            vec![self.shared.alloc_ctx_pair() as i64]
        } else {
            Vec::new()
        };
        self.bcast(&mut v, 0)?;
        Ok(v[0] as u64)
    }

    /// Creates a communicator over a subgroup (`MPI_Comm_create`).
    /// Collective over **all** members of `self`; members of `group` receive
    /// `Some(comm)`, others `None`.
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] if `group` is not a subset of this
    /// communicator's group.
    pub fn create(&self, group: &Group) -> MpiResult<Option<Comm>> {
        for &w in group.world_ranks() {
            if !self.group.contains_world(w) {
                return Err(MpiError::InvalidGroup(format!(
                    "world rank {w} is not in the parent communicator"
                )));
            }
        }
        let ctx = self.agree_ctx()?;
        Ok(group.rank_of_world(self.my_world_rank()).map(|rank| Comm {
            shared: self.shared.clone(),
            group: Arc::new(group.clone()),
            ctx,
            rank,
            clock: self.clock.clone(),
        }))
    }

    /// Allocates a fresh context-id pair from the universe's allocator
    /// *without* any communication. Building block for runtimes layered on
    /// mpisim (HMPI's group-create protocol has one coordinator allocate the
    /// context and distribute it point-to-point).
    pub fn alloc_ctx(&self) -> u64 {
        self.shared.alloc_ctx_pair()
    }

    /// Constructs a communicator over `group` with an externally agreed
    /// context id (from [`Comm::alloc_ctx`] on some coordinator), without
    /// collective communication. Returns `None` if the caller is not in
    /// `group`. All members must use the same `ctx` or their messages will
    /// never match — that agreement is the caller's protocol's business.
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] if `group` is not a subset of this
    /// communicator's group.
    pub fn subset_with_ctx(&self, group: &Group, ctx: u64) -> MpiResult<Option<Comm>> {
        for &w in group.world_ranks() {
            if !self.group.contains_world(w) {
                return Err(MpiError::InvalidGroup(format!(
                    "world rank {w} is not in the parent communicator"
                )));
            }
        }
        Ok(group.rank_of_world(self.my_world_rank()).map(|rank| Comm {
            shared: self.shared.clone(),
            group: Arc::new(group.clone()),
            ctx,
            rank,
            clock: self.clock.clone(),
        }))
    }

    /// Partitions the communicator by color (`MPI_Comm_split`). `None` color
    /// (`MPI_UNDEFINED`) yields `Ok(None)`. Within a color, ranks are ordered
    /// by `(key, rank in parent)`.
    ///
    /// # Errors
    /// Propagates transport errors from the internal gather/scatter.
    pub fn split(&self, color: Option<i32>, key: i32) -> MpiResult<Option<Comm>> {
        const UNDEF: i64 = i64::MIN;
        let contrib = [
            color.map_or(UNDEF, |c| c as i64),
            key as i64,
        ];
        let gathered = self.gather(&contrib, 0)?;

        // Root computes each color's member list (world ranks, ordered by
        // (key, parent rank)) and allocates a context pair per color.
        let mut parts: Vec<Vec<i64>> = vec![Vec::new(); self.size()];
        if let Some(rows) = gathered {
            let mut colors: Vec<i32> = rows
                .iter()
                .filter(|r| r[0] != UNDEF)
                .map(|r| r[0] as i32)
                .collect();
            colors.sort_unstable();
            colors.dedup();
            for color in colors {
                let mut members: Vec<(i64, usize)> = rows
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r[0] != UNDEF && r[0] as i32 == color)
                    .map(|(parent_rank, r)| (r[1], parent_rank))
                    .collect();
                members.sort_unstable();
                let ctx = self.shared.alloc_ctx_pair() as i64;
                let world_members: Vec<i64> = members
                    .iter()
                    .map(|&(_, pr)| self.world_rank_of(pr) as i64)
                    .collect();
                for &(_, parent_rank) in &members {
                    let mut msg = vec![ctx];
                    msg.extend_from_slice(&world_members);
                    parts[parent_rank] = msg;
                }
            }
        }

        let mine = self.scatter(if self.rank == 0 { Some(&parts) } else { None }, 0)?;
        if mine.is_empty() {
            return Ok(None);
        }
        let ctx = mine[0] as u64;
        let members: Vec<usize> = mine[1..].iter().map(|&w| w as usize).collect();
        let group = Group::from_world_ranks(members)?;
        let rank = group
            .rank_of_world(self.my_world_rank())
            .expect("split member lists include the contributing rank");
        Ok(Some(Comm {
            shared: self.shared.clone(),
            group: Arc::new(group),
            ctx,
            rank,
            clock: self.clock.clone(),
        }))
    }
}

/// Completes a set of outstanding receives in order (`MPI_Waitall`).
///
/// # Errors
/// Propagates the first decode error.
pub fn wait_all<T: MpiType>(
    reqs: Vec<RecvRequest>,
    comm: &Comm,
) -> MpiResult<Vec<(Vec<T>, Status)>> {
    reqs.into_iter().map(|r| r.wait(comm)).collect()
}

/// Completes exactly one of the outstanding receives (`MPI_Waitany`),
/// returning its index, payload and status plus the still-pending requests.
/// Polls fairly across the requests, yielding between sweeps.
///
/// # Errors
/// Propagates decode errors.
///
/// # Panics
/// Panics if `reqs` is empty.
pub fn wait_any<T: MpiType>(
    mut reqs: Vec<RecvRequest>,
    comm: &Comm,
) -> MpiResult<(usize, Vec<T>, Status, Vec<RecvRequest>)> {
    assert!(!reqs.is_empty(), "wait_any needs at least one request");
    loop {
        for i in 0..reqs.len() {
            if reqs[i].test(comm) {
                let req = reqs.remove(i);
                let (data, status) = req.wait(comm)?;
                return Ok((i, data, status, reqs));
            }
        }
        std::thread::yield_now();
    }
}

/// Completed-at-creation send request (eager model). Exists for API parity
/// with `MPI_Isend`.
#[derive(Debug)]
pub struct SendRequest {
    _priv: (),
}

impl SendRequest {
    /// Completes immediately.
    pub fn wait(self) {}

    /// Always true.
    pub fn test(&self) -> bool {
        true
    }
}

/// An outstanding nonblocking receive.
#[derive(Debug)]
pub struct RecvRequest {
    src: Option<usize>,
    tag: Option<i32>,
    done: Option<(Vec<u8>, Status)>,
}

impl RecvRequest {
    /// Completes the receive, blocking if necessary.
    ///
    /// # Errors
    /// [`MpiError::TypeMismatch`] if the payload is not whole elements of `T`.
    pub fn wait<T: MpiType>(mut self, comm: &Comm) -> MpiResult<(Vec<T>, Status)> {
        if let Some((bytes, status)) = self.done.take() {
            return Ok((decode(&bytes)?, status));
        }
        let (bytes, status) = comm.recv_bytes(comm.ctx, self.src, self.tag)?;
        Ok((decode(&bytes)?, status))
    }

    /// Polls for completion without blocking; after `test` returns true,
    /// `wait` returns instantly.
    pub fn test(&mut self, comm: &Comm) -> bool {
        if self.done.is_some() {
            return true;
        }
        let my_world = comm.my_world_rank();
        let pat = Pattern {
            ctx: comm.ctx,
            src_world: self.src.map(|r| comm.world_rank_of(r)),
            tag: self.tag,
        };
        if let Some(env) = comm.shared.mailboxes[my_world].try_recv_match(pat) {
            let before = comm.clock.now();
            comm.clock.merge(env.arrival);
            if let Some(tracer) = &comm.shared.tracer {
                let dur = env.arrival.max(before) - before;
                let mut ev = TraceEvent::new(my_world, TraceKind::Recv, "recv", before);
                ev.dur = dur;
                ev.wait = (env.sent_at.max(before) - before).min(dur);
                ev.bytes = env.data.len() as u64;
                ev.peer = Some(env.src_world);
                tracer.record(ev);
            }
            let source = comm
                .group
                .rank_of_world(env.src_world)
                .expect("sender is a member");
            self.done = Some((
                env.data.clone(),
                Status {
                    source,
                    tag: env.tag,
                    bytes: env.data.len(),
                },
            ));
            true
        } else {
            false
        }
    }
}
