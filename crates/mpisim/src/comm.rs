//! Communicators.
//!
//! A [`Comm`] binds a [`Group`] to a pair of context ids (one for
//! point-to-point traffic, one for collectives, so a collective can never
//! intercept an application message) and carries the calling rank's virtual
//! clock. Constructors mirror MPI: [`Comm::dup`], [`Comm::split`],
//! [`Comm::create`].

use crate::agree::Agreement;
use crate::datatype::{decode, decode_into, encode_payload, MpiType};
use crate::error::{MpiError, MpiResult, WaitGraph};
use crate::group::Group;
use crate::p2p::{Claim, Envelope, Msg, Pattern, Payload, Status, WAKE_BACKSTOP};
use crate::quiesce::{WaitKind, WaitRecord};
use crate::runtime::{RankState, SharedState};
use crate::vtime::{LocalClock, NetFrontier};
use hetsim::trace::{TraceEvent, TraceKind};
use hetsim::{NodeId, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// A communicator: an isolated communication context over a group of ranks.
///
/// `Comm` is rank-local (not `Send`): each rank holds its own handle, all
/// handles of one rank share that rank's clock.
#[derive(Debug, Clone)]
pub struct Comm {
    pub(crate) shared: Arc<SharedState>,
    group: Arc<Group>,
    /// Base context id; `ctx` is the p2p plane, `ctx + 1` the collective one.
    ctx: u64,
    /// Calling process's rank within this communicator.
    rank: usize,
    pub(crate) clock: LocalClock,
    /// This rank's deterministic view of the shared network resources
    /// ([`NetFrontier`]): sender-side grants and receiver-side settlements
    /// both run against it, in the rank's own program order. Like the
    /// clock, shared by every communicator handle of one rank.
    pub(crate) frontier: Rc<RefCell<NetFrontier>>,
    /// Rank-local count of [`Comm::agree`] rounds issued on this
    /// communicator; every member counts its own calls, so the `n`-th call
    /// on each member lands in the same shared agreement slot. Shared
    /// between clones of one handle (cloning a communicator does not fork
    /// its round numbering).
    agree_seq: Rc<Cell<u64>>,
}

impl Comm {
    pub(crate) fn world(world_rank: usize, shared: Arc<SharedState>, clock: LocalClock) -> Comm {
        let n = shared.placement.len();
        let frontier = NetFrontier::new(shared.cluster.contention(), shared.cluster.len());
        Comm {
            shared,
            group: Arc::new(Group::world(n)),
            ctx: 0,
            rank: world_rank,
            clock,
            frontier: Rc::new(RefCell::new(frontier)),
            agree_seq: Rc::new(Cell::new(0)),
        }
    }

    /// This process's rank in the communicator (`MPI_Comm_rank`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator (`MPI_Comm_size`).
    #[inline]
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// The communicator's group (`MPI_Comm_group`).
    #[inline]
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The world rank behind a communicator rank.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    #[inline]
    pub fn world_rank_of(&self, rank: usize) -> usize {
        self.group.world_rank_of(rank)
    }

    /// The calling process's world rank.
    #[inline]
    pub fn my_world_rank(&self) -> usize {
        self.group.world_rank_of(self.rank)
    }

    /// The cluster node hosting a communicator rank.
    #[inline]
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.shared.placement[self.world_rank_of(rank)]
    }

    /// This rank's virtual clock.
    #[inline]
    pub fn clock(&self) -> &LocalClock {
        &self.clock
    }

    /// Performs `units` benchmark units of computation on the calling rank's
    /// processor, advancing its clock.
    ///
    /// # Panics
    /// Panics if this rank's node has fail-stopped. Fault-aware programs use
    /// [`Comm::try_compute`].
    pub fn compute(&self, units: f64) {
        let node = self.node_of(self.rank);
        let start = self.clock.now();
        let dt = self.shared.cluster.compute_time(node, units, start);
        self.clock.advance(dt);
        self.trace_compute(start, dt);
    }

    /// Records a compute span when tracing is enabled (one `Option` check
    /// otherwise).
    fn trace_compute(&self, start: SimTime, dur: SimTime) {
        if let Some(tracer) = &self.shared.tracer {
            let mut ev =
                TraceEvent::new(self.my_world_rank(), TraceKind::Compute, "compute", start);
            ev.dur = dur;
            tracer.record(ev);
        }
    }

    /// Failure-aware computation: if this rank's node fail-stops before the
    /// work completes, the clock is clamped to the crash time, the failure is
    /// published, and [`MpiError::NodeFailed`] (with the caller's own world
    /// rank) is returned.
    pub fn try_compute(&self, units: f64) -> MpiResult<()> {
        let me = self.my_world_rank();
        let node = self.shared.placement[me];
        let now = self.clock.now();
        if let Some(tc) = self.shared.cluster.crash_time(node) {
            if now >= tc {
                self.shared.mark_failed(me, tc);
                return Err(MpiError::NodeFailed { world_rank: me });
            }
            let dt = self.shared.cluster.compute_time(node, units, now);
            if now + dt >= tc {
                self.clock.set(tc);
                self.shared.mark_failed(me, tc);
                return Err(MpiError::NodeFailed { world_rank: me });
            }
            self.clock.advance(dt);
            self.trace_compute(now, dt);
            return Ok(());
        }
        self.compute(units);
        Ok(())
    }

    /// True if the failure detector still considers the communicator rank
    /// `rank` alive — neither fail-stopped nor exited. A rank is trivially
    /// alive to itself.
    pub fn rank_alive(&self, rank: usize) -> bool {
        let w = self.world_rank_of(rank);
        w == self.my_world_rank() || self.shared.rank_state(w) == RankState::Alive
    }

    /// Errors with [`MpiError::NodeFailed`] (own world rank) if the calling
    /// rank's node has fail-stopped by its current virtual time, publishing
    /// the failure as a side effect.
    fn check_self_alive(&self) -> MpiResult<()> {
        let me = self.my_world_rank();
        let node = self.shared.placement[me];
        if let Some(tc) = self.shared.cluster.crash_time(node) {
            if self.clock.now() >= tc {
                self.shared.mark_failed(me, tc);
                return Err(MpiError::NodeFailed { world_rank: me });
            }
        }
        Ok(())
    }

    /// The abort condition a blocked receive re-checks: is the peer (or, for
    /// a collective, any group member) known to be dead?
    ///
    /// Point-to-point receives abort only when the awaited sender itself is
    /// dead (`ANY_SOURCE`: when *every* other member is), so p2p between
    /// live ranks keeps working during recovery. Collective receives abort
    /// as soon as *any* member has fail-stopped — one dead participant makes
    /// the collective impossible to complete, and aborting everywhere is
    /// what propagates the failure to ranks not directly blocked on it.
    fn peer_abort(&self, src_world: Option<usize>, collective: bool) -> Option<MpiError> {
        let me = self.my_world_rank();
        if collective {
            for &w in self.group.world_ranks() {
                if w != me {
                    if let RankState::Failed(_) = self.shared.rank_state(w) {
                        return Some(MpiError::NodeFailed { world_rank: w });
                    }
                }
            }
        }
        match src_world {
            Some(s) => match self.shared.rank_state(s) {
                RankState::Alive => None,
                RankState::Failed(_) => Some(MpiError::NodeFailed { world_rank: s }),
                RankState::Terminated => Some(MpiError::PeerTerminated { world_rank: s }),
            },
            None => {
                let mut verdict = None;
                for &w in self.group.world_ranks() {
                    if w == me {
                        continue;
                    }
                    match self.shared.rank_state(w) {
                        RankState::Alive => return None,
                        RankState::Failed(_) => {
                            verdict = Some(MpiError::NodeFailed { world_rank: w });
                        }
                        RankState::Terminated => {
                            verdict = verdict
                                .or(Some(MpiError::PeerTerminated { world_rank: w }));
                        }
                    }
                }
                verdict
            }
        }
    }

    fn check_rank(&self, rank: usize) -> MpiResult<()> {
        if rank >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: rank as isize,
                comm_size: self.size(),
            });
        }
        Ok(())
    }

    // ----- point-to-point ---------------------------------------------------

    /// Internal transport: posts `bytes` to `dest` (a comm rank) on the given
    /// context plane. Legacy `Vec<u8>` entry point — small payloads are
    /// repacked inline (eager); larger ones ride as heap payloads.
    pub(crate) fn post_bytes(
        &self,
        plane: u64,
        bytes: Vec<u8>,
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        let payload = Payload::from_vec(bytes, self.shared.eager_limit);
        self.post_payload(plane, payload, dest, tag)
    }

    /// Internal transport: encodes `data` straight into its protocol
    /// representation — inline (no allocation) under the eager limit, an
    /// arena lease above it — and posts it. The preferred send path.
    pub(crate) fn post_typed<T: MpiType>(
        &self,
        plane: u64,
        data: &[T],
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        let payload = encode_payload(data, self.shared.eager_limit, &self.shared.pool);
        self.post_payload(plane, payload, dest, tag)
    }

    /// Internal transport core: posts a ready payload to `dest` (a comm
    /// rank) on the given context plane, advancing the sender clock by the
    /// injection overhead and stamping the envelope with its arrival time.
    /// Delivery goes through the sender's eager lane into the destination
    /// mailbox, so concurrent senders never contend on a shared lock.
    ///
    /// Failure semantics (all judged in deterministic virtual time):
    /// [`MpiError::NodeFailed`] if the sender's own node has crashed (own
    /// world rank) or the destination's node has crashed by the sender's
    /// current time (destination world rank); [`MpiError::LinkDown`] if the
    /// fault plan has dropped the link.
    pub(crate) fn post_payload(
        &self,
        plane: u64,
        payload: Payload,
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        self.check_self_alive()?;
        let src_world = self.my_world_rank();
        let dst_world = self.world_rank_of(dest);
        let src_node = self.shared.placement[src_world];
        let dst_node = self.shared.placement[dst_world];
        let now = self.clock.now();
        if let Some(tc) = self.shared.cluster.crash_time(dst_node) {
            if now >= tc {
                return Err(MpiError::NodeFailed {
                    world_rank: dst_world,
                });
            }
        }
        let (overhead, cost) = if src_world == dst_world {
            // Self-sends stay on the free loopback even when a memory bus
            // is modelled; only distinct co-located ranks fight for it.
            (SimTime::ZERO, SimTime::ZERO)
        } else {
            let link = self.shared.cluster.rank_link(src_node, dst_node);
            let cost = self
                .shared
                .cluster
                .rank_transfer_time_at(src_node, dst_node, payload.len(), now)
                .ok_or(MpiError::LinkDown {
                    from: src_node.index(),
                    to: dst_node.index(),
                })?;
            (SimTime::from_secs(link.latency), cost)
        };
        // Sender-side arbitration against this rank's own frontier; the
        // receiver settles the stamped window at match time (see
        // `crate::vtime` — the two steps make contention deterministic).
        let (arrival, xfer, seq) = {
            let mut f = self.frontier.borrow_mut();
            let (arrival, xfer) = f.grant(src_node, dst_node, now, cost);
            (arrival, xfer, f.take_seq())
        };
        self.clock.advance(overhead);
        if let Some(tracer) = &self.shared.tracer {
            let mut ev = TraceEvent::new(src_world, TraceKind::Send, "send", now);
            ev.dur = overhead;
            ev.bytes = payload.len() as u64;
            ev.protocol = Some(payload.protocol());
            ev.peer = Some(dst_world);
            // Context-id pairs have an even p2p plane and an odd collective
            // plane (the allocator hands out even bases).
            ev.collective = plane & 1 == 1;
            tracer.record(ev);
        }
        self.shared.mailboxes[dst_world].post_lane(Envelope {
            ctx: plane,
            src_world,
            tag,
            payload,
            sent_at: now,
            arrival,
            seq,
            xfer,
        });
        Ok(())
    }

    /// Settles a matched envelope's contended-wire reservation against this
    /// rank's frontier (the receiver-side arbitration step), returning the
    /// final arrival time. Runs on the receiving rank's own thread at the
    /// moment the envelope is consumed; uncontended envelopes pass their
    /// stamped arrival through unchanged.
    fn settle_arrival(&self, env: &Envelope) -> SimTime {
        match env.xfer {
            Some(x) => self.frontier.borrow_mut().settle(x),
            None => env.arrival,
        }
    }

    /// Internal transport: blocking matched receive on a context plane.
    pub(crate) fn recv_bytes(
        &self,
        plane: u64,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<(Msg, Status)> {
        let collective = plane == self.coll_plane();
        self.recv_bytes_opts(plane, src, tag, None, collective)
    }

    /// [`Comm::recv_bytes`] with *point-to-point* abort semantics even on
    /// the collective plane: the wait aborts only when the awaited sender
    /// itself is dead, not when any group member is. The schedule engine
    /// uses this so a fault propagates along schedule edges — a rank whose
    /// data path does not touch the dead rank finishes its receives and
    /// learns of the failure deterministically, at its next dependence on
    /// the failure, rather than via a real-time race.
    pub(crate) fn recv_bytes_from(
        &self,
        plane: u64,
        src: usize,
        tag: Option<i32>,
    ) -> MpiResult<(Msg, Status)> {
        self.recv_bytes_opts(plane, Some(src), tag, None, false)
    }

    /// Resolution of a provably-missed receive deadline: a doomed rank dies
    /// (the crash time was the binding deadline); otherwise the clock
    /// advances to the deadline and [`MpiError::Timeout`] is returned.
    fn resolve_timeout(
        &self,
        death_binding: bool,
        own_tc: Option<SimTime>,
        deadline: Option<SimTime>,
    ) -> MpiError {
        let my_world = self.my_world_rank();
        if death_binding {
            // Nothing can reach this rank before its node dies.
            let tc = own_tc.expect("death_binding implies a crash time");
            self.clock.merge(tc);
            self.shared.mark_failed(my_world, tc);
            MpiError::NodeFailed {
                world_rank: my_world,
            }
        } else {
            if let Some(d) = deadline {
                self.clock.merge(d);
            }
            MpiError::Timeout
        }
    }

    /// Internal transport: matched receive with failure detection and an
    /// optional virtual-time deadline.
    ///
    /// * A message already queued from a now-dead sender is still delivered
    ///   (it was sent before the sender died).
    /// * Blocked with the awaited peer dead → [`MpiError::NodeFailed`] /
    ///   [`MpiError::PeerTerminated`]; with `collective_abort` any dead
    ///   group member aborts the wait (see [`Comm::peer_abort`]).
    /// * `deadline` exceeded → [`MpiError::Timeout`], with the clock advanced
    ///   to the deadline and any late message left queued. The miss is
    ///   concluded *exactly*: either a provably-late message is queued
    ///   (specific source, non-overtaking), or the quiescence detector
    ///   proves no qualifying message can be sent any more. The deadline
    ///   bounds the *wire* arrival stamped by the sender; a message on the
    ///   wire in time is delivered even if receiver-side contention
    ///   settlement pushes its final arrival past the deadline.
    /// * If the matched message would arrive after this rank's own node
    ///   crashes, the rank dies first: clock clamps to the crash time and
    ///   [`MpiError::NodeFailed`] (own rank) is returned.
    /// * A rank whose own node is doomed never waits past its death: the
    ///   crash time acts as an implicit deadline on every blocking receive
    ///   (a fail-stopped machine cannot sit in `MPI_Recv` forever), so a
    ///   message that will never come resolves as the rank's own failure
    ///   rather than a deadlock.
    ///
    /// While blocked, the rank is registered with the quiescence detector
    /// ([`crate::quiesce`]); if the whole universe is stuck, classification
    /// delivers a typed verdict ([`MpiError::Timeout`],
    /// [`MpiError::NodeFailed`], or [`MpiError::Deadlock`] with the wait
    /// graph) in milliseconds. The universe's wall-clock watchdog remains as
    /// a backstop.
    pub(crate) fn recv_bytes_opts(
        &self,
        plane: u64,
        src: Option<usize>,
        tag: Option<i32>,
        deadline: Option<SimTime>,
        collective_abort: bool,
    ) -> MpiResult<(Msg, Status)> {
        self.check_self_alive()?;
        let my_world = self.my_world_rank();
        let pat = Pattern {
            ctx: plane,
            src_world: src.map(|r| self.world_rank_of(r)),
            tag,
        };
        let own_tc = self.shared.doom[my_world];
        let death_binding = own_tc.is_some_and(|tc| deadline.is_none_or(|d| tc <= d));
        let eff_deadline = if death_binding { own_tc } else { deadline };
        let mb = &self.shared.mailboxes[my_world];
        let reg = &self.shared.quiesce;

        // The registry record: who could unblock us, and whether one death
        // among them (or only all of them) aborts the wait. Must mirror
        // `peer_abort` exactly, or the quiescence stability check diverges
        // from what this loop actually does.
        let others = || -> Vec<usize> {
            self.group
                .world_ranks()
                .iter()
                .copied()
                .filter(|&w| w != my_world)
                .collect()
        };
        let (waiting_on, abort_any) = if collective_abort {
            (others(), true)
        } else {
            match pat.src_world {
                Some(s) => (vec![s], true),
                None => (others(), false),
            }
        };

        let env = 'matched: {
            // Fast path: deliverable (or provably late) message already queued.
            match mb.claim(pat, eff_deadline) {
                Claim::Matched(env) => break 'matched env,
                Claim::DeadlineMissed => {
                    return Err(self.resolve_timeout(death_binding, own_tc, deadline))
                }
                Claim::Nothing => {}
            }
            if let Some(err) = self.peer_abort(pat.src_world, collective_abort) {
                // A sender may have posted its message and *then* died;
                // the queued match wins over the abort.
                match mb.claim(pat, eff_deadline) {
                    Claim::Matched(env) => break 'matched env,
                    Claim::DeadlineMissed => {
                        return Err(self.resolve_timeout(death_binding, own_tc, deadline))
                    }
                    Claim::Nothing => return Err(err),
                }
            }
            let rec = WaitRecord {
                waiting_on: waiting_on.clone(),
                abort_any,
                deadline: eff_deadline,
                kind: WaitKind::Mailbox { pats: vec![pat] },
            };
            let start = Instant::now();
            // Classification triggered by our own block may verdict us
            // immediately (taking the verdict resets us to Active).
            if let Some(v) = reg.block(my_world, rec) {
                return Err(match v {
                    MpiError::Timeout => self.resolve_timeout(death_binding, own_tc, deadline),
                    other => other,
                });
            }
            loop {
                mb.wait_deliverable(std::slice::from_ref(&pat), eff_deadline, WAKE_BACKSTOP);
                // Claim atomically with the registry so the classifier can
                // never see us blocked *after* we consumed our message.
                match reg.claim_for(my_world, pat, eff_deadline) {
                    Claim::Matched(env) => break 'matched env,
                    Claim::DeadlineMissed => {
                        return Err(self.resolve_timeout(death_binding, own_tc, deadline));
                    }
                    Claim::Nothing => {}
                }
                if let Some(v) = reg.check(my_world) {
                    return Err(match v {
                        MpiError::Timeout => {
                            self.resolve_timeout(death_binding, own_tc, deadline)
                        }
                        other => other,
                    });
                }
                if let Some(err) = self.peer_abort(pat.src_world, collective_abort) {
                    // A sender may have posted its message and *then* died;
                    // the queued match wins over the abort.
                    match reg.claim_for(my_world, pat, eff_deadline) {
                        Claim::Matched(env) => break 'matched env,
                        Claim::DeadlineMissed => {
                            return Err(self.resolve_timeout(death_binding, own_tc, deadline));
                        }
                        Claim::Nothing => {
                            reg.unblock(my_world);
                            return Err(err);
                        }
                    }
                }
                if start.elapsed() >= self.shared.watchdog {
                    // Belt-and-braces backstop: the quiescence detector
                    // should have classified this state long ago.
                    reg.unblock(my_world);
                    return Err(match eff_deadline {
                        Some(_) => self.resolve_timeout(death_binding, own_tc, deadline),
                        None => MpiError::Deadlock {
                            waiting: my_world,
                            on: waiting_on.clone(),
                            graph: WaitGraph {
                                edges: vec![(my_world, waiting_on)],
                            },
                        },
                    });
                }
            }
        };
        let arrival = self.settle_arrival(&env);
        if let Some(tc) = own_tc {
            if arrival >= tc {
                self.clock.merge(tc);
                self.shared.mark_failed(my_world, tc);
                return Err(MpiError::NodeFailed {
                    world_rank: my_world,
                });
            }
        }
        let before = self.clock.now();
        self.clock.merge(arrival);
        if let Some(tracer) = &self.shared.tracer {
            let dur = arrival.max(before) - before;
            let mut ev = TraceEvent::new(my_world, TraceKind::Recv, "recv", before);
            ev.dur = dur;
            // The idle part of the span: time spent blocked before the
            // sender had even reached its send.
            ev.wait = (env.sent_at.max(before) - before).min(dur);
            ev.bytes = env.len() as u64;
            ev.protocol = Some(env.payload.protocol());
            ev.peer = Some(env.src_world);
            ev.collective = plane & 1 == 1;
            tracer.record(ev);
        }
        let source = self
            .group
            .rank_of_world(env.src_world)
            .expect("sender is in this communicator by construction");
        let status = Status {
            source,
            tag: env.tag,
            bytes: env.len(),
        };
        Ok((env.into_msg(), status))
    }

    /// Standard-mode send (`MPI_Send`; eager/buffered, never blocks).
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] if `dest` is outside the communicator;
    /// [`MpiError::NodeFailed`] if the destination's node (or the caller's
    /// own) has fail-stopped; [`MpiError::LinkDown`] if the link is dropped.
    pub fn send<T: MpiType>(&self, data: &[T], dest: usize, tag: i32) -> MpiResult<()> {
        self.check_rank(dest)?;
        self.post_typed(self.ctx, data, dest, tag)
    }

    /// Blocking receive of a whole message from a specific source and tag.
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] for a bad source;
    /// [`MpiError::TypeMismatch`] if the payload is not a whole number of
    /// `T` elements; [`MpiError::NodeFailed`] / [`MpiError::PeerTerminated`]
    /// if the awaited sender is dead and nothing from it is queued.
    pub fn recv<T: MpiType>(&self, src: usize, tag: i32) -> MpiResult<(Vec<T>, Status)> {
        self.check_rank(src)?;
        let (bytes, status) = self.recv_bytes(self.ctx, Some(src), Some(tag))?;
        Ok((decode(&bytes)?, status))
    }

    /// Blocking receive that gives up at a virtual-time `deadline`: if no
    /// matching message has arrival time `<= deadline`, returns
    /// [`MpiError::Timeout`] with the clock advanced to the deadline (a late
    /// message stays queued for a later receive). Peer death is still
    /// reported as [`MpiError::NodeFailed`] / [`MpiError::PeerTerminated`].
    ///
    /// The miss is concluded *exactly* in virtual time: either a queued
    /// later message proves the deadline unreachable (non-overtaking), or
    /// the quiescence detector proves no qualifying message can be sent any
    /// more. Real elapsed time plays no part, so a slow host cannot turn a
    /// would-be delivery into a timeout.
    ///
    /// # Errors
    /// As [`Comm::recv`], plus [`MpiError::Timeout`].
    pub fn recv_deadline<T: MpiType>(
        &self,
        src: usize,
        tag: i32,
        deadline: SimTime,
    ) -> MpiResult<(Vec<T>, Status)> {
        self.check_rank(src)?;
        let (bytes, status) =
            self.recv_bytes_opts(self.ctx, Some(src), Some(tag), Some(deadline), false)?;
        Ok((decode(&bytes)?, status))
    }

    /// [`Comm::recv_deadline`] with the deadline expressed as a duration from
    /// the caller's current virtual time.
    ///
    /// # Errors
    /// As [`Comm::recv_deadline`].
    pub fn recv_timeout<T: MpiType>(
        &self,
        src: usize,
        tag: i32,
        timeout: SimTime,
    ) -> MpiResult<(Vec<T>, Status)> {
        self.recv_deadline(src, tag, self.clock.now() + timeout)
    }

    /// Blocking receive with optional wildcards (`None` = `MPI_ANY_SOURCE` /
    /// `MPI_ANY_TAG`).
    ///
    /// # Errors
    /// As [`Comm::recv`].
    pub fn recv_any<T: MpiType>(
        &self,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<(Vec<T>, Status)> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let (bytes, status) = self.recv_bytes(self.ctx, src, tag)?;
        Ok((decode(&bytes)?, status))
    }

    /// Blocking receive into a caller-supplied buffer, with truncation
    /// checking (`MPI_Recv` proper). Returns the element count received.
    ///
    /// # Errors
    /// [`MpiError::Truncated`] if the message exceeds the buffer.
    pub fn recv_into<T: MpiType>(
        &self,
        buf: &mut [T],
        src: usize,
        tag: i32,
    ) -> MpiResult<(usize, Status)> {
        self.check_rank(src)?;
        let (bytes, status) = self.recv_bytes(self.ctx, Some(src), Some(tag))?;
        let n = decode_into(&bytes, buf)?;
        Ok((n, status))
    }

    /// Combined send and receive (`MPI_Sendrecv`). Never deadlocks because
    /// sends are eager.
    ///
    /// # Errors
    /// As [`Comm::send`] / [`Comm::recv`].
    pub fn sendrecv<T: MpiType, U: MpiType>(
        &self,
        send_data: &[T],
        dest: usize,
        send_tag: i32,
        src: usize,
        recv_tag: i32,
    ) -> MpiResult<(Vec<U>, Status)> {
        self.send(send_data, dest, send_tag)?;
        self.recv(src, recv_tag)
    }

    /// Nonblocking send (`MPI_Isend`). Under the eager model the send is
    /// already complete when this returns; the request exists for API parity.
    ///
    /// # Errors
    /// As [`Comm::send`].
    pub fn isend<T: MpiType>(&self, data: &[T], dest: usize, tag: i32) -> MpiResult<SendRequest> {
        self.send(data, dest, tag)?;
        Ok(SendRequest { _priv: () })
    }

    /// Nonblocking receive (`MPI_Irecv`): returns a request to be completed
    /// with [`RecvRequest::wait`] or polled with [`RecvRequest::test`].
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] for a bad explicit source.
    pub fn irecv(&self, src: Option<usize>, tag: Option<i32>) -> MpiResult<RecvRequest> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        Ok(RecvRequest {
            src,
            tag,
            done: None,
        })
    }

    /// Blocking probe (`MPI_Probe`): metadata of the next matching message
    /// without receiving it. Advances the clock to the message's *wire*
    /// arrival; receiver-side contention settlement is charged only when
    /// the message is actually received (a probe consumes nothing, so it
    /// must not advance the frontier).
    ///
    /// Failure-aware like [`Comm::recv`]: a dead awaited peer (or, for a
    /// doomed caller, its own crash) resolves the wait with a typed error
    /// instead of hanging, and the wait is registered with the quiescence
    /// detector.
    pub fn probe(&self, src: Option<usize>, tag: Option<i32>) -> MpiResult<Status> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        self.check_self_alive()?;
        let my_world = self.my_world_rank();
        let pat = Pattern {
            ctx: self.ctx,
            src_world: src.map(|r| self.world_rank_of(r)),
            tag,
        };
        let own_tc = self.shared.doom[my_world];
        let mb = &self.shared.mailboxes[my_world];
        let reg = &self.shared.quiesce;
        let (waiting_on, abort_any) = match pat.src_world {
            Some(s) => (vec![s], true),
            None => (
                self.group
                    .world_ranks()
                    .iter()
                    .copied()
                    .filter(|&w| w != my_world)
                    .collect(),
                false,
            ),
        };
        let hit = 'found: {
            if let Some(hit) = mb.try_probe(pat) {
                break 'found hit;
            }
            if let Some(err) = self.peer_abort(pat.src_world, false) {
                match mb.try_probe(pat) {
                    Some(hit) => break 'found hit,
                    None => return Err(err),
                }
            }
            let rec = WaitRecord {
                waiting_on: waiting_on.clone(),
                abort_any,
                deadline: own_tc,
                kind: WaitKind::Mailbox { pats: vec![pat] },
            };
            let start = Instant::now();
            let mut verdict = reg.block(my_world, rec);
            loop {
                if let Some(v) = verdict.take() {
                    return Err(match v {
                        MpiError::Timeout => self.resolve_timeout(true, own_tc, None),
                        other => other,
                    });
                }
                if let Some(hit) = mb.wait_or_peek(pat, WAKE_BACKSTOP) {
                    reg.unblock(my_world);
                    break 'found hit;
                }
                if let Some(err) = self.peer_abort(pat.src_world, false) {
                    let late = mb.try_probe(pat);
                    reg.unblock(my_world);
                    match late {
                        Some(hit) => break 'found hit,
                        None => return Err(err),
                    }
                }
                if start.elapsed() >= self.shared.watchdog {
                    reg.unblock(my_world);
                    return Err(MpiError::Deadlock {
                        waiting: my_world,
                        on: waiting_on.clone(),
                        graph: WaitGraph {
                            edges: vec![(my_world, waiting_on)],
                        },
                    });
                }
                verdict = reg.check(my_world);
            }
        };
        let (src_world, tag, bytes, arrival) = hit;
        if let Some(tc) = own_tc {
            if arrival >= tc {
                self.clock.merge(tc);
                self.shared.mark_failed(my_world, tc);
                return Err(MpiError::NodeFailed {
                    world_rank: my_world,
                });
            }
        }
        self.clock.merge(arrival);
        Ok(Status {
            source: self
                .group
                .rank_of_world(src_world)
                .expect("sender is a member"),
            tag,
            bytes,
        })
    }

    /// Nonblocking probe (`MPI_Iprobe`).
    pub fn iprobe(&self, src: Option<usize>, tag: Option<i32>) -> MpiResult<Option<Status>> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let my_world = self.my_world_rank();
        let pat = Pattern {
            ctx: self.ctx,
            src_world: src.map(|r| self.world_rank_of(r)),
            tag,
        };
        Ok(self.shared.mailboxes[my_world].try_probe(pat).map(
            |(src_world, tag, bytes, _)| Status {
                source: self
                    .group
                    .rank_of_world(src_world)
                    .expect("sender is a member"),
                tag,
                bytes,
            },
        ))
    }

    // ----- communicator constructors ---------------------------------------

    /// The collective context plane.
    #[inline]
    pub(crate) fn coll_plane(&self) -> u64 {
        self.ctx + 1
    }

    /// Duplicates the communicator with a fresh context (`MPI_Comm_dup`).
    /// Collective over all members.
    ///
    /// # Errors
    /// Propagates transport errors from the internal broadcast.
    pub fn dup(&self) -> MpiResult<Comm> {
        let ctx = self.agree_ctx()?;
        Ok(Comm {
            shared: self.shared.clone(),
            group: self.group.clone(),
            ctx,
            rank: self.rank,
            clock: self.clock.clone(),
            frontier: self.frontier.clone(),
            agree_seq: Rc::new(Cell::new(0)),
        })
    }

    /// Duplicates the communicator **without communicating**: context
    /// agreement goes through the universe's shared context registry, so
    /// the call cannot block or fail even while nodes are crashing — a
    /// collective [`Comm::dup`] would abort on the first dead relay in
    /// its broadcast tree. Intended for control planes set up at init
    /// time, before any failure can be tolerated.
    ///
    /// Every member must call it with the same `seq`; calls with equal
    /// `(parent, seq)` yield the *same* communicator, distinct `seq`s
    /// yield distinct ones. (Real MPI has no equivalent; this leans on
    /// the simulator's shared memory the way `MPI_Comm_idup` leans on
    /// deferred agreement.)
    pub fn dup_local(&self, seq: u64) -> Comm {
        let ctx = self.shared.ctx_for_local_dup(self.ctx, seq);
        Comm {
            shared: self.shared.clone(),
            group: self.group.clone(),
            ctx,
            rank: self.rank,
            clock: self.clock.clone(),
            frontier: self.frontier.clone(),
            agree_seq: Rc::new(Cell::new(0)),
        }
    }

    /// Rank 0 allocates a context-id pair and broadcasts it.
    fn agree_ctx(&self) -> MpiResult<u64> {
        let mut v = if self.rank == 0 {
            vec![self.shared.alloc_ctx_pair() as i64]
        } else {
            Vec::new()
        };
        self.bcast(&mut v, 0)?;
        Ok(v[0] as u64)
    }

    /// Creates a communicator over a subgroup (`MPI_Comm_create`).
    /// Collective over **all** members of `self`; members of `group` receive
    /// `Some(comm)`, others `None`.
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] if `group` is not a subset of this
    /// communicator's group.
    pub fn create(&self, group: &Group) -> MpiResult<Option<Comm>> {
        for &w in group.world_ranks() {
            if !self.group.contains_world(w) {
                return Err(MpiError::InvalidGroup(format!(
                    "world rank {w} is not in the parent communicator"
                )));
            }
        }
        let ctx = self.agree_ctx()?;
        Ok(group.rank_of_world(self.my_world_rank()).map(|rank| Comm {
            shared: self.shared.clone(),
            group: Arc::new(group.clone()),
            ctx,
            rank,
            clock: self.clock.clone(),
            frontier: self.frontier.clone(),
            agree_seq: Rc::new(Cell::new(0)),
        }))
    }

    /// Allocates a fresh context-id pair from the universe's allocator
    /// *without* any communication. Building block for runtimes layered on
    /// mpisim (HMPI's group-create protocol has one coordinator allocate the
    /// context and distribute it point-to-point).
    pub fn alloc_ctx(&self) -> u64 {
        self.shared.alloc_ctx_pair()
    }

    /// Constructs a communicator over `group` with an externally agreed
    /// context id (from [`Comm::alloc_ctx`] on some coordinator), without
    /// collective communication. Returns `None` if the caller is not in
    /// `group`. All members must use the same `ctx` or their messages will
    /// never match — that agreement is the caller's protocol's business.
    ///
    /// # Errors
    /// [`MpiError::InvalidGroup`] if `group` is not a subset of this
    /// communicator's group.
    pub fn subset_with_ctx(&self, group: &Group, ctx: u64) -> MpiResult<Option<Comm>> {
        for &w in group.world_ranks() {
            if !self.group.contains_world(w) {
                return Err(MpiError::InvalidGroup(format!(
                    "world rank {w} is not in the parent communicator"
                )));
            }
        }
        Ok(group.rank_of_world(self.my_world_rank()).map(|rank| Comm {
            shared: self.shared.clone(),
            group: Arc::new(group.clone()),
            ctx,
            rank,
            clock: self.clock.clone(),
            frontier: self.frontier.clone(),
            agree_seq: Rc::new(Cell::new(0)),
        }))
    }

    /// Partitions the communicator by color (`MPI_Comm_split`). `None` color
    /// (`MPI_UNDEFINED`) yields `Ok(None)`. Within a color, ranks are ordered
    /// by `(key, rank in parent)`.
    ///
    /// # Errors
    /// Propagates transport errors from the internal gather/scatter.
    pub fn split(&self, color: Option<i32>, key: i32) -> MpiResult<Option<Comm>> {
        const UNDEF: i64 = i64::MIN;
        let contrib = [
            color.map_or(UNDEF, |c| c as i64),
            key as i64,
        ];
        let gathered = self.gather(&contrib, 0)?;

        // Root computes each color's member list (world ranks, ordered by
        // (key, parent rank)) and allocates a context pair per color.
        let mut parts: Vec<Vec<i64>> = vec![Vec::new(); self.size()];
        if let Some(rows) = gathered {
            let mut colors: Vec<i32> = rows
                .iter()
                .filter(|r| r[0] != UNDEF)
                .map(|r| r[0] as i32)
                .collect();
            colors.sort_unstable();
            colors.dedup();
            for color in colors {
                let mut members: Vec<(i64, usize)> = rows
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r[0] != UNDEF && r[0] as i32 == color)
                    .map(|(parent_rank, r)| (r[1], parent_rank))
                    .collect();
                members.sort_unstable();
                let ctx = self.shared.alloc_ctx_pair() as i64;
                let world_members: Vec<i64> = members
                    .iter()
                    .map(|&(_, pr)| self.world_rank_of(pr) as i64)
                    .collect();
                for &(_, parent_rank) in &members {
                    let mut msg = vec![ctx];
                    msg.extend_from_slice(&world_members);
                    parts[parent_rank] = msg;
                }
            }
        }

        let mine = self.scatter(if self.rank == 0 { Some(&parts) } else { None }, 0)?;
        if mine.is_empty() {
            return Ok(None);
        }
        let ctx = mine[0] as u64;
        let members: Vec<usize> = mine[1..].iter().map(|&w| w as usize).collect();
        let group = Group::from_world_ranks(members)?;
        let rank = group
            .rank_of_world(self.my_world_rank())
            .expect("split member lists include the contributing rank");
        Ok(Some(Comm {
            shared: self.shared.clone(),
            group: Arc::new(group),
            ctx,
            rank,
            clock: self.clock.clone(),
            frontier: self.frontier.clone(),
            agree_seq: Rc::new(Cell::new(0)),
        }))
    }

    // ----- fault-tolerant agreement -----------------------------------------

    /// ULFM-style agreement (`MPIX_Comm_agree`): every *live* member
    /// contributes a boolean; the call returns the AND-fold of the
    /// contributions plus the exact set of members that died without
    /// contributing. Unlike the data collectives, agreement **tolerates
    /// failures mid-flight**: dead members are excluded rather than
    /// aborting the round, so it is the primitive survivors use to reach a
    /// consistent verdict after a failed collective.
    ///
    /// Guarantees:
    /// * every survivor returns the *same* [`Agreement`] — the outcome is
    ///   computed from one shared round slot, so unanimity is structural;
    /// * a member that deposited and died afterwards still counts as agreed
    ///   (its contribution was made); `failed` lists only members that died
    ///   *without* contributing;
    /// * the round is a virtual-time synchronisation point among survivors:
    ///   the caller's clock advances to the latest deposit time;
    /// * deterministic: whether a member deposits or dies first is decided
    ///   by the fault plan in virtual time, so the same seed yields the
    ///   same verdict and failed set.
    ///
    /// Every member must call `agree` the same number of times on a given
    /// communicator (the `n`-th calls form one round).
    ///
    /// # Errors
    /// [`MpiError::NodeFailed`] (own rank) if the caller's node crashes
    /// before the round completes.
    pub fn agree(&self, flag: bool) -> MpiResult<Agreement> {
        self.agree_inner(flag).map(|(a, _)| a)
    }

    fn agree_inner(&self, flag: bool) -> MpiResult<(Agreement, u64)> {
        self.check_self_alive()?;
        let my_world = self.my_world_rank();
        let seq = self.agree_seq.get();
        self.agree_seq.set(seq + 1);
        let key = (self.coll_plane(), seq);
        let members = self.group.world_ranks();
        let table = &self.shared.agreements;
        let reg = &self.shared.quiesce;
        let mb = &self.shared.mailboxes[my_world];
        let own_tc = self.shared.doom[my_world];
        table.deposit(key, members, my_world, flag, self.clock.now(), || {
            self.shared.alloc_ctx_pair()
        });
        // Members blocked in their own poll sleep on their mailboxes.
        for &w in members {
            self.shared.mailboxes[w].wake_all();
        }
        let is_dead =
            |w: usize| w != my_world && self.shared.rank_state(w) != RankState::Alive;
        let finish = |a: Agreement, ctx: u64| -> MpiResult<(Agreement, u64)> {
            if let Some(tc) = own_tc {
                if a.at >= tc {
                    // The round completed after this rank's own death.
                    self.clock.merge(tc);
                    self.shared.mark_failed(my_world, tc);
                    return Err(MpiError::NodeFailed {
                        world_rank: my_world,
                    });
                }
            }
            self.clock.merge(a.at);
            Ok((a, ctx))
        };
        if let Some((a, ctx)) = table.try_outcome(key, is_dead) {
            return finish(a, ctx);
        }
        let start = Instant::now();
        let mut verdict = None;
        loop {
            let rec = WaitRecord {
                waiting_on: table.pending_live(key, is_dead),
                abort_any: false,
                deadline: own_tc,
                kind: WaitKind::Agreement { key },
            };
            if verdict.is_none() {
                verdict = reg.block(my_world, rec);
            }
            if let Some(v) = verdict.take() {
                return Err(match v {
                    MpiError::Timeout => self.resolve_timeout(true, own_tc, None),
                    other => other,
                });
            }
            mb.wait_deliverable(&[], None, WAKE_BACKSTOP);
            verdict = reg.check(my_world);
            if let Some((a, ctx)) = table.try_outcome(key, is_dead) {
                reg.unblock(my_world);
                return finish(a, ctx);
            }
            if start.elapsed() >= self.shared.watchdog {
                let on = table.pending_live(key, is_dead);
                reg.unblock(my_world);
                return Err(MpiError::Deadlock {
                    waiting: my_world,
                    on: on.clone(),
                    graph: WaitGraph {
                        edges: vec![(my_world, on)],
                    },
                });
            }
        }
    }

    /// Shrinks the communicator to its survivors (`MPIX_Comm_shrink`): runs
    /// an agreement round and builds a new communicator over exactly the
    /// members that completed it. Every survivor gets a handle over the
    /// *same* group with the *same* (pre-reserved) context, so the result
    /// is immediately usable for collectives — the recovery step after a
    /// failed collective.
    ///
    /// # Errors
    /// [`MpiError::NodeFailed`] (own rank) if the caller dies during the
    /// round.
    pub fn shrink(&self) -> MpiResult<Comm> {
        let (agreement, ctx) = self.agree_inner(true)?;
        let survivors: Vec<usize> = self
            .group
            .world_ranks()
            .iter()
            .copied()
            .filter(|w| !agreement.failed.contains(w))
            .collect();
        let group = Group::from_world_ranks(survivors)?;
        let rank = group
            .rank_of_world(self.my_world_rank())
            .expect("a completed agreement includes the caller among survivors");
        Ok(Comm {
            shared: self.shared.clone(),
            group: Arc::new(group),
            ctx,
            rank,
            clock: self.clock.clone(),
            frontier: self.frontier.clone(),
            agree_seq: Rc::new(Cell::new(0)),
        })
    }
}

/// Completes a set of outstanding receives in order (`MPI_Waitall`).
///
/// # Errors
/// Propagates the first decode error.
pub fn wait_all<T: MpiType>(
    reqs: Vec<RecvRequest>,
    comm: &Comm,
) -> MpiResult<Vec<(Vec<T>, Status)>> {
    reqs.into_iter().map(|r| r.wait(comm)).collect()
}

/// Completes exactly one of the outstanding receives (`MPI_Waitany`),
/// returning its index, payload and status plus the still-pending requests.
/// Polls fairly across the requests.
///
/// Failure-aware: if *every* request is dead-ended (its awaited sender —
/// or, for `ANY_SOURCE`, every other member — is dead with nothing queued),
/// the first request's abort error is returned instead of spinning forever.
/// While blocked, the rank is registered with the quiescence detector, so a
/// universe-wide stuck state resolves with a typed verdict in milliseconds.
///
/// # Errors
/// Propagates decode errors and failure-detector errors.
///
/// # Panics
/// Panics if `reqs` is empty.
pub fn wait_any<T: MpiType>(
    mut reqs: Vec<RecvRequest>,
    comm: &Comm,
) -> MpiResult<(usize, Vec<T>, Status, Vec<RecvRequest>)> {
    assert!(!reqs.is_empty(), "wait_any needs at least one request");
    let my_world = comm.my_world_rank();
    let mb = &comm.shared.mailboxes[my_world];
    let reg = &comm.shared.quiesce;
    let own_tc = comm.shared.doom[my_world];
    let pats: Vec<Pattern> = reqs
        .iter()
        .map(|r| Pattern {
            ctx: comm.ctx,
            src_world: r.src.map(|s| comm.world_rank_of(s)),
            tag: r.tag,
        })
        .collect();
    // Union of every request's awaited set; the wait dead-ends only when
    // all of them are gone, so `abort_any` is false.
    let mut waiting_on: Vec<usize> = Vec::new();
    for p in &pats {
        match p.src_world {
            Some(s) => {
                if s != my_world && !waiting_on.contains(&s) {
                    waiting_on.push(s);
                }
            }
            None => {
                for &w in comm.group.world_ranks() {
                    if w != my_world && !waiting_on.contains(&w) {
                        waiting_on.push(w);
                    }
                }
            }
        }
    }
    waiting_on.sort_unstable();
    let start = Instant::now();
    loop {
        // The sweep runs while registered Active, so the classifier never
        // misreads a consumed message as a stuck wait.
        comm.check_self_alive()?;
        for i in 0..reqs.len() {
            if reqs[i].done.is_some() {
                let req = reqs.remove(i);
                let (data, status) = req.wait(comm)?;
                return Ok((i, data, status, reqs));
            }
            match mb.claim(pats[i], own_tc) {
                Claim::Matched(env) => {
                    let arrival = comm.settle_arrival(&env);
                    if let Some(tc) = own_tc {
                        if arrival >= tc {
                            comm.clock.merge(tc);
                            comm.shared.mark_failed(my_world, tc);
                            return Err(MpiError::NodeFailed {
                                world_rank: my_world,
                            });
                        }
                    }
                    let before = comm.clock.now();
                    comm.clock.merge(arrival);
                    if let Some(tracer) = &comm.shared.tracer {
                        let dur = arrival.max(before) - before;
                        let mut ev =
                            TraceEvent::new(my_world, TraceKind::Recv, "recv", before);
                        ev.dur = dur;
                        ev.wait = (env.sent_at.max(before) - before).min(dur);
                        ev.bytes = env.len() as u64;
                        ev.protocol = Some(env.payload.protocol());
                        ev.peer = Some(env.src_world);
                        tracer.record(ev);
                    }
                    let source = comm
                        .group
                        .rank_of_world(env.src_world)
                        .expect("sender is a member");
                    let status = Status {
                        source,
                        tag: env.tag,
                        bytes: env.len(),
                    };
                    reqs.remove(i);
                    return Ok((i, decode(&env.into_msg())?, status, reqs));
                }
                Claim::DeadlineMissed => {
                    // The awaited message arrives only after our own node's
                    // crash: the rank dies first.
                    return Err(comm.resolve_timeout(true, own_tc, None));
                }
                Claim::Nothing => {}
            }
        }
        // Dead-ended: every request's awaited sender (or, for ANY_SOURCE,
        // every other member) is dead with nothing queued.
        let mut dead_end = None;
        let mut all_dead = true;
        for r in &reqs {
            let src_world = r.src.map(|s| comm.world_rank_of(s));
            match comm.peer_abort(src_world, false) {
                Some(err) => dead_end = dead_end.or(Some(err)),
                None => {
                    all_dead = false;
                    break;
                }
            }
        }
        if all_dead {
            if let Some(err) = dead_end {
                return Err(err);
            }
        }
        let rec = WaitRecord {
            waiting_on: waiting_on.clone(),
            abort_any: false,
            deadline: own_tc,
            kind: WaitKind::Mailbox { pats: pats.clone() },
        };
        if let Some(v) = reg.block(my_world, rec) {
            return Err(match v {
                MpiError::Timeout => comm.resolve_timeout(true, own_tc, None),
                other => other,
            });
        }
        mb.wait_deliverable(&pats, own_tc, WAKE_BACKSTOP);
        if let Some(v) = reg.check(my_world) {
            return Err(match v {
                MpiError::Timeout => comm.resolve_timeout(true, own_tc, None),
                other => other,
            });
        }
        // Back to Active for the next sweep.
        reg.unblock(my_world);
        if start.elapsed() >= comm.shared.watchdog {
            return Err(MpiError::Deadlock {
                waiting: my_world,
                on: waiting_on.clone(),
                graph: WaitGraph {
                    edges: vec![(my_world, waiting_on)],
                },
            });
        }
    }
}

/// Completed-at-creation send request (eager model). Exists for API parity
/// with `MPI_Isend`.
#[derive(Debug)]
pub struct SendRequest {
    _priv: (),
}

impl SendRequest {
    /// Completes immediately.
    pub fn wait(self) {}

    /// Always true.
    pub fn test(&self) -> bool {
        true
    }
}

/// An outstanding nonblocking receive.
#[derive(Debug)]
pub struct RecvRequest {
    src: Option<usize>,
    tag: Option<i32>,
    done: Option<(Msg, Status)>,
}

impl RecvRequest {
    /// Completes the receive, blocking if necessary.
    ///
    /// # Errors
    /// [`MpiError::TypeMismatch`] if the payload is not whole elements of `T`.
    pub fn wait<T: MpiType>(mut self, comm: &Comm) -> MpiResult<(Vec<T>, Status)> {
        if let Some((msg, status)) = self.done.take() {
            return Ok((decode(&msg)?, status));
        }
        let (msg, status) = comm.recv_bytes(comm.ctx, self.src, self.tag)?;
        Ok((decode(&msg)?, status))
    }

    /// Polls for completion without blocking; after `test` returns true,
    /// `wait` returns instantly.
    ///
    /// A doomed rank never completes a receive whose message arrives at or
    /// after its own node's crash time — such a message is left queued (or
    /// dropped) and `test` stays false; the blocking paths then report the
    /// rank's own failure.
    pub fn test(&mut self, comm: &Comm) -> bool {
        if self.done.is_some() {
            return true;
        }
        let my_world = comm.my_world_rank();
        let own_tc = comm.shared.doom[my_world];
        if own_tc.is_some_and(|tc| comm.clock.now() >= tc) {
            return false;
        }
        let pat = Pattern {
            ctx: comm.ctx,
            src_world: self.src.map(|r| comm.world_rank_of(r)),
            tag: self.tag,
        };
        let claimed = match comm.shared.mailboxes[my_world].claim(pat, own_tc) {
            Claim::Matched(env) => {
                let arrival = comm.settle_arrival(&env);
                own_tc.is_none_or(|tc| arrival < tc).then_some((env, arrival))
            }
            _ => None,
        };
        if let Some((env, arrival)) = claimed {
            let before = comm.clock.now();
            comm.clock.merge(arrival);
            if let Some(tracer) = &comm.shared.tracer {
                let dur = arrival.max(before) - before;
                let mut ev = TraceEvent::new(my_world, TraceKind::Recv, "recv", before);
                ev.dur = dur;
                ev.wait = (env.sent_at.max(before) - before).min(dur);
                ev.bytes = env.len() as u64;
                ev.protocol = Some(env.payload.protocol());
                ev.peer = Some(env.src_world);
                tracer.record(ev);
            }
            let source = comm
                .group
                .rank_of_world(env.src_world)
                .expect("sender is a member");
            let status = Status {
                source,
                tag: env.tag,
                bytes: env.len(),
            };
            self.done = Some((env.into_msg(), status));
            true
        } else {
            false
        }
    }
}
