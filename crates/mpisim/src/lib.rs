//! # mpisim — an in-process MPI-subset message-passing substrate
//!
//! HMPI is "a small set of extensions to MPI"; reproducing it therefore needs
//! an MPI to extend. Real MPI implementations (and the thin `rsmpi` binding)
//! are unavailable/unsuitable here, so this crate implements the subset of
//! MPI that HMPI and the paper's two applications rest on, from scratch:
//!
//! * **ranks as threads** — [`Universe::run`] spawns one OS thread per rank,
//!   each executing the same SPMD closure with its own [`Process`] handle;
//! * **groups** ([`Group`]) with the full set/range constructor family
//!   (`union`, `intersection`, `difference`, `incl`, `excl`, `range_incl`,
//!   `range_excl`, `translate_ranks`, `compare`);
//! * **communicators** ([`Comm`]) with `dup`, `split` and `create`, each with
//!   its own context id so messages never cross communicators;
//! * **point-to-point** typed `send`/`recv`/`sendrecv`/`isend`/`irecv`/
//!   `probe` with `ANY_SOURCE`/`ANY_TAG` wildcards and MPI's per-pair
//!   non-overtaking guarantee;
//! * **collectives** built *on top of* point-to-point (binomial-tree
//!   broadcast and reduce; gather(v), scatter(v), allgather(v), alltoall,
//!   allreduce, scan, barrier, reduce_scatter_block) so their cost model
//!   emerges from the link model rather than being postulated;
//! * **virtual time** — every rank carries a logical clock
//!   ([`LocalClock`]); [`Process::compute`] advances it by
//!   `volume / speed(node, now)` against the [`hetsim::Cluster`] the ranks
//!   are placed on, and every message carries its arrival time
//!   `send_time + latency + bytes/bandwidth` (plus contention, if the
//!   cluster's [`hetsim::ContentionModel`] serialises NICs or the bus). The
//!   receiver's clock advances to `max(own, arrival)`. The reported program
//!   time is the maximum final clock over all ranks.
//!
//! The result is a *functionally real* message-passing program — the EM3D
//! fields and matrix products computed through this crate are checked against
//! serial references — whose *timing* is a deterministic model of the
//! paper's heterogeneous LAN.

#![warn(missing_docs)]

pub mod agree;
pub mod cart;
pub mod collective;
pub mod comm;
pub mod datatype;
pub mod engine;
pub mod error;
pub mod group;
mod lane;
pub mod op;
pub mod p2p;
pub mod pool;
mod quiesce;
pub mod runtime;
pub mod vtime;

pub use agree::Agreement;
pub use cart::{dims_create, CartComm};
pub use comm::{wait_all, wait_any, Comm, RecvRequest, SendRequest};
pub use datatype::MpiType;
pub use engine::CollectivePolicy;
pub use error::{MpiError, MpiResult, WaitGraph};
pub use perfmodel::collective::{CollectiveAlgo, CollectiveKind};
pub use group::{Group, GroupCompare};
pub use op::ReduceOp;
pub use p2p::{Msg, Payload, Status, ANY_SOURCE, ANY_TAG, DEADLOCK_TIMEOUT, DEFAULT_EAGER_LIMIT};
pub use pool::{BufferPool, PoolReport};
pub use runtime::{Process, RunReport, Universe, UniverseConfig};
pub use vtime::LocalClock;
