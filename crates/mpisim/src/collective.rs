//! Collective operations, built on point-to-point.
//!
//! Every collective here is implemented in terms of [`Comm`]'s transport
//! primitives on the communicator's *collective context plane*, so (a)
//! collectives can never intercept application point-to-point traffic, and
//! (b) their virtual-time cost emerges from the link model rather than being
//! postulated: a binomial-tree broadcast over 9 hosts takes ⌈log₂ 9⌉ = 4
//! link traversals of critical path, a linear gather takes `p − 1` messages
//! into the root's NIC, and so on.

use crate::comm::Comm;
use crate::datatype::{decode, encode, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::op::ReduceOp;

// Collective opcodes, used as tags on the collective plane. Two successive
// collectives of the same kind pair up correctly thanks to the per-(source,
// context) non-overtaking guarantee.
const TAG_BARRIER_UP: i32 = 1;
const TAG_BARRIER_DOWN: i32 = 2;
const TAG_BCAST: i32 = 3;
const TAG_GATHER: i32 = 4;
const TAG_SCATTER: i32 = 5;
const TAG_ALLTOALL: i32 = 6;
const TAG_REDUCE: i32 = 7;
const TAG_SCAN: i32 = 8;

impl Comm {
    fn check_root(&self, root: usize) -> MpiResult<()> {
        if root >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root as isize,
                comm_size: self.size(),
            });
        }
        Ok(())
    }

    /// Broadcast raw bytes along a binomial tree rooted at `root`.
    ///
    /// Like every collective here, a fault surfacing anywhere in the tree
    /// (dead parent, dead child, dropped link) propagates as an `Err` on
    /// every participant instead of deadlocking: ranks blocked on the dead
    /// member abort directly, and the collective-plane abort check (see
    /// `Comm::peer_abort`) aborts everyone else.
    fn bcast_bytes(&self, mut bytes: Vec<u8>, root: usize, tag: i32) -> MpiResult<Vec<u8>> {
        let size = self.size();
        let rank = self.rank();
        if size == 1 {
            return Ok(bytes);
        }
        let rel = (rank + size - root) % size;

        // Receive phase: wait for the subtree parent.
        let mut mask = 1usize;
        while mask < size {
            if rel & mask != 0 {
                let src = (rel - mask + root) % size;
                let (data, _) = self.recv_bytes(self.coll_plane(), Some(src), Some(tag))?;
                bytes = data.into_vec();
                break;
            }
            mask <<= 1;
        }
        // Send phase: fan out to children.
        mask >>= 1;
        while mask > 0 {
            if rel + mask < size {
                let dst = (rel + mask + root) % size;
                self.post_bytes(self.coll_plane(), bytes.clone(), dst, tag)?;
            }
            mask >>= 1;
        }
        Ok(bytes)
    }

    /// Broadcast (`MPI_Bcast`): `data` is the payload at `root` and is
    /// replaced with the broadcast value everywhere else.
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] for a bad root; [`MpiError::TypeMismatch`]
    /// on decode (cannot happen for matched types).
    pub fn bcast<T: MpiType>(&self, data: &mut Vec<T>, root: usize) -> MpiResult<()> {
        self.check_root(root)?;
        let bytes = if self.rank() == root {
            encode(&*data)
        } else {
            Vec::new()
        };
        let out = self.bcast_bytes(bytes, root, TAG_BCAST)?;
        *data = decode(&out)?;
        Ok(())
    }

    /// Broadcasts a single value from `root`.
    ///
    /// # Errors
    /// As [`Comm::bcast`].
    pub fn bcast_one<T: MpiType + Default>(&self, value: T, root: usize) -> MpiResult<T> {
        let mut v = if self.rank() == root {
            vec![value]
        } else {
            Vec::new()
        };
        self.bcast(&mut v, root)?;
        Ok(v[0])
    }

    /// Barrier (`MPI_Barrier`): an empty-payload binomial reduce to rank 0
    /// followed by an empty broadcast. On return, every rank's clock is at
    /// least the time at which the last rank entered the barrier plus the
    /// tree traversal cost.
    ///
    /// # Errors
    /// Propagates transport errors (none under normal operation).
    pub fn barrier(&self) -> MpiResult<()> {
        let size = self.size();
        let rank = self.rank();
        if size == 1 {
            return Ok(());
        }
        // Up phase: binomial reduce of nothing.
        let mut mask = 1usize;
        while mask < size {
            if rank & mask == 0 {
                let src = rank | mask;
                if src < size {
                    self.recv_bytes(self.coll_plane(), Some(src), Some(TAG_BARRIER_UP))?;
                }
            } else {
                let dst = rank & !mask;
                self.post_bytes(self.coll_plane(), Vec::new(), dst, TAG_BARRIER_UP)?;
                break;
            }
            mask <<= 1;
        }
        // Down phase: empty bcast from 0.
        self.bcast_bytes(Vec::new(), 0, TAG_BARRIER_DOWN)?;
        Ok(())
    }

    /// Gather (`MPI_Gatherv`-style): every rank contributes a slice (lengths
    /// may differ); `root` receives `Some(vec_of_contributions)` in rank
    /// order, everyone else `None`.
    ///
    /// # Errors
    /// [`MpiError::InvalidRank`] for a bad root.
    pub fn gather<T: MpiType>(&self, contrib: &[T], root: usize) -> MpiResult<Option<Vec<Vec<T>>>> {
        self.check_root(root)?;
        if self.rank() != root {
            self.post_bytes(self.coll_plane(), encode(contrib), root, TAG_GATHER)?;
            return Ok(None);
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(contrib.to_vec());
            } else {
                let (bytes, _) = self.recv_bytes(self.coll_plane(), Some(src), Some(TAG_GATHER))?;
                out.push(decode(&bytes)?);
            }
        }
        Ok(Some(out))
    }

    /// Gather with equal contribution lengths, flattened in rank order
    /// (`MPI_Gather`).
    ///
    /// # Errors
    /// [`MpiError::InvalidCounts`] if contributions differ in length.
    pub fn gather_flat<T: MpiType>(
        &self,
        contrib: &[T],
        root: usize,
    ) -> MpiResult<Option<Vec<T>>> {
        let per = contrib.len();
        match self.gather(contrib, root)? {
            None => Ok(None),
            Some(parts) => {
                if parts.iter().any(|p| p.len() != per) {
                    return Err(MpiError::InvalidCounts(
                        "gather_flat requires equal contribution lengths".into(),
                    ));
                }
                Ok(Some(parts.into_iter().flatten().collect()))
            }
        }
    }

    /// Scatter (`MPI_Scatterv`-style): `root` supplies one vector per rank
    /// (`parts.len() == size`); each rank receives its part.
    ///
    /// # Errors
    /// [`MpiError::InvalidCounts`] if root's `parts` has the wrong arity;
    /// [`MpiError::InvalidRank`] for a bad root.
    pub fn scatter<T: MpiType>(
        &self,
        parts: Option<&[Vec<T>]>,
        root: usize,
    ) -> MpiResult<Vec<T>> {
        self.check_root(root)?;
        if self.rank() == root {
            let parts = parts.ok_or_else(|| {
                MpiError::InvalidCounts("root must supply scatter parts".into())
            })?;
            if parts.len() != self.size() {
                return Err(MpiError::InvalidCounts(format!(
                    "scatter needs {} parts, got {}",
                    self.size(),
                    parts.len()
                )));
            }
            for (dst, part) in parts.iter().enumerate() {
                if dst != root {
                    self.post_bytes(self.coll_plane(), encode(part), dst, TAG_SCATTER)?;
                }
            }
            Ok(parts[root].clone())
        } else {
            let (bytes, _) = self.recv_bytes(self.coll_plane(), Some(root), Some(TAG_SCATTER))?;
            decode(&bytes)
        }
    }

    /// Allgather (`MPI_Allgatherv`-style): every rank receives every rank's
    /// contribution, in rank order. Implemented as gather-to-0 plus two
    /// broadcasts (lengths, then the flattened payload).
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn allgather<T: MpiType>(&self, contrib: &[T]) -> MpiResult<Vec<Vec<T>>> {
        let gathered = self.gather(contrib, 0)?;
        let (mut lens, mut flat): (Vec<usize>, Vec<T>) = match gathered {
            Some(parts) => (
                parts.iter().map(Vec::len).collect(),
                parts.into_iter().flatten().collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        self.bcast(&mut lens, 0)?;
        self.bcast(&mut flat, 0)?;
        let mut out = Vec::with_capacity(lens.len());
        let mut off = 0;
        for len in lens {
            out.push(flat[off..off + len].to_vec());
            off += len;
        }
        Ok(out)
    }

    /// All-to-all personalised exchange (`MPI_Alltoallv`-style): rank `i`'s
    /// `sends[j]` is delivered as rank `j`'s result `[i]`.
    ///
    /// # Errors
    /// [`MpiError::InvalidCounts`] if `sends.len() != size`.
    pub fn alltoall<T: MpiType>(&self, sends: &[Vec<T>]) -> MpiResult<Vec<Vec<T>>> {
        if sends.len() != self.size() {
            return Err(MpiError::InvalidCounts(format!(
                "alltoall needs {} send vectors, got {}",
                self.size(),
                sends.len()
            )));
        }
        let rank = self.rank();
        for (dst, payload) in sends.iter().enumerate() {
            if dst != rank {
                self.post_bytes(self.coll_plane(), encode(payload), dst, TAG_ALLTOALL)?;
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == rank {
                out.push(sends[rank].clone());
            } else {
                let (bytes, _) =
                    self.recv_bytes(self.coll_plane(), Some(src), Some(TAG_ALLTOALL))?;
                out.push(decode(&bytes)?);
            }
        }
        Ok(out)
    }
}

macro_rules! impl_typed_reductions {
    ($t:ty, $fold:ident, $identity:ident, $check_operand:ident, $reduce:ident,
     $allreduce:ident, $scan:ident, $exscan:ident, $reduce_scatter_block:ident,
     $reduce_one:ident, $allreduce_one:ident) => {
        impl Comm {
            /// Checks that a reduction operand decoded off the wire matches
            /// the local contribution length, so mismatched calls surface as
            /// [`MpiError::InvalidCounts`] instead of a panic inside the
            /// elementwise fold.
            fn $check_operand(rhs: &[$t], want: usize) -> MpiResult<()> {
                if rhs.len() != want {
                    return Err(MpiError::InvalidCounts(format!(
                        "reduction operand has {} elements, local contribution has {want} \
                         (ranks called the collective with different lengths?)",
                        rhs.len()
                    )));
                }
                Ok(())
            }

            /// Binomial-tree reduction to `root` (`MPI_Reduce`); `Some` at
            /// root, `None` elsewhere.
            ///
            /// # Errors
            /// [`MpiError::InvalidRank`] for a bad root;
            /// [`MpiError::InvalidCounts`] if ranks contribute different
            /// lengths.
            pub fn $reduce(
                &self,
                contrib: &[$t],
                op: ReduceOp,
                root: usize,
            ) -> MpiResult<Option<Vec<$t>>> {
                self.check_root(root)?;
                let size = self.size();
                let rel = (self.rank() + size - root) % size;
                let mut acc = contrib.to_vec();
                let mut mask = 1usize;
                while mask < size {
                    if rel & mask == 0 {
                        let src_rel = rel | mask;
                        if src_rel < size {
                            let src = (src_rel + root) % size;
                            let (bytes, _) =
                                self.recv_bytes(self.coll_plane(), Some(src), Some(TAG_REDUCE))?;
                            let rhs: Vec<$t> = decode(&bytes)?;
                            Self::$check_operand(&rhs, acc.len())?;
                            op.$fold(&mut acc, &rhs);
                        }
                    } else {
                        let dst = ((rel & !mask) + root) % size;
                        self.post_bytes(self.coll_plane(), encode(&acc), dst, TAG_REDUCE)?;
                        return Ok(None);
                    }
                    mask <<= 1;
                }
                Ok(Some(acc))
            }

            /// Reduce + broadcast (`MPI_Allreduce`).
            ///
            /// # Errors
            /// Propagates transport errors.
            pub fn $allreduce(&self, contrib: &[$t], op: ReduceOp) -> MpiResult<Vec<$t>> {
                let reduced = self.$reduce(contrib, op, 0)?;
                let mut data = reduced.unwrap_or_default();
                self.bcast(&mut data, 0)?;
                Ok(data)
            }

            /// Inclusive prefix reduction (`MPI_Scan`): rank `i` receives the
            /// reduction of contributions from ranks `0..=i`. Implemented as
            /// a linear chain.
            ///
            /// # Errors
            /// Propagates transport errors.
            pub fn $scan(&self, contrib: &[$t], op: ReduceOp) -> MpiResult<Vec<$t>> {
                let rank = self.rank();
                let mut acc = contrib.to_vec();
                if rank > 0 {
                    let (bytes, _) =
                        self.recv_bytes(self.coll_plane(), Some(rank - 1), Some(TAG_SCAN))?;
                    let prefix: Vec<$t> = decode(&bytes)?;
                    Self::$check_operand(&prefix, acc.len())?;
                    let mut merged = prefix;
                    op.$fold(&mut merged, &acc);
                    acc = merged;
                }
                if rank + 1 < self.size() {
                    self.post_bytes(self.coll_plane(), encode(&acc), rank + 1, TAG_SCAN)?;
                }
                Ok(acc)
            }

            /// Exclusive prefix reduction (`MPI_Exscan`): rank `i` receives
            /// the reduction of contributions from ranks `0..i`; rank 0
            /// receives the identity.
            ///
            /// # Errors
            /// Propagates transport errors.
            pub fn $exscan(&self, contrib: &[$t], op: ReduceOp) -> MpiResult<Vec<$t>> {
                let rank = self.rank();
                let prefix: Vec<$t> = if rank == 0 {
                    vec![op.$identity(); contrib.len()]
                } else {
                    let (bytes, _) =
                        self.recv_bytes(self.coll_plane(), Some(rank - 1), Some(TAG_SCAN))?;
                    let prefix: Vec<$t> = decode(&bytes)?;
                    Self::$check_operand(&prefix, contrib.len())?;
                    prefix
                };
                if rank + 1 < self.size() {
                    let mut inclusive = prefix.clone();
                    op.$fold(&mut inclusive, contrib);
                    self.post_bytes(
                        self.coll_plane(),
                        encode(&inclusive),
                        rank + 1,
                        TAG_SCAN,
                    )?;
                }
                Ok(prefix)
            }

            /// Reduce-scatter with equal block sizes
            /// (`MPI_Reduce_scatter_block`): the elementwise reduction of
            /// every rank's `contrib` (length `size * block`) is computed and
            /// rank `i` receives elements `i*block .. (i+1)*block`.
            ///
            /// # Errors
            /// [`MpiError::InvalidCounts`] if the contribution length is not
            /// `size * block`.
            pub fn $reduce_scatter_block(
                &self,
                contrib: &[$t],
                block: usize,
                op: ReduceOp,
            ) -> MpiResult<Vec<$t>> {
                if block == 0 {
                    return Err(MpiError::InvalidCounts(
                        "reduce_scatter_block needs a non-zero block size".into(),
                    ));
                }
                if contrib.len() != self.size() * block {
                    return Err(MpiError::InvalidCounts(format!(
                        "reduce_scatter_block needs {} elements, got {}",
                        self.size() * block,
                        contrib.len()
                    )));
                }
                let reduced = self.$reduce(contrib, op, 0)?;
                let parts: Option<Vec<Vec<$t>>> = reduced
                    .map(|full| full.chunks(block).map(<[$t]>::to_vec).collect());
                self.scatter(parts.as_deref(), 0)
            }

            /// Scalar reduce convenience.
            ///
            /// # Errors
            /// As the vector form.
            pub fn $reduce_one(
                &self,
                value: $t,
                op: ReduceOp,
                root: usize,
            ) -> MpiResult<Option<$t>> {
                Ok(self.$reduce(&[value], op, root)?.map(|v| v[0]))
            }

            /// Scalar allreduce convenience.
            ///
            /// # Errors
            /// As the vector form.
            pub fn $allreduce_one(&self, value: $t, op: ReduceOp) -> MpiResult<$t> {
                Ok(self.$allreduce(&[value], op)?[0])
            }
        }
    };
}

impl_typed_reductions!(
    f64, fold_f64, identity_f64, check_operand_f64, reduce_f64, allreduce_f64,
    scan_f64, exscan_f64, reduce_scatter_block_f64, reduce_one_f64, allreduce_one_f64
);
impl_typed_reductions!(
    i64, fold_i64, identity_i64, check_operand_i64, reduce_i64, allreduce_i64,
    scan_i64, exscan_i64, reduce_scatter_block_i64, reduce_one_i64, allreduce_one_i64
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use hetsim::{Cluster, ClusterBuilder, Link, Protocol};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn cluster(n: usize) -> Arc<Cluster> {
        let mut b = ClusterBuilder::new();
        for i in 0..n {
            b = b.node(format!("h{i}"), 50.0 + 10.0 * i as f64);
        }
        Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
    }

    fn op_strategy() -> BoxedStrategy<ReduceOp> {
        prop_oneof![
            Just(ReduceOp::Sum),
            Just(ReduceOp::Prod),
            Just(ReduceOp::Max),
            Just(ReduceOp::Min),
        ]
    }

    // Mixed magnitudes so that f64 rounding exposes any re-association:
    // (a + b) + c and a + (b + c) differ in the low bits for these ranges.
    fn value_strategy() -> BoxedStrategy<f64> {
        prop_oneof![-1e3..1e3f64, 1e9..1e12f64, -1e-6..1e-6f64]
    }

    /// The serial reference for `scan`: the left fold in strict rank order
    /// that the linear chain performs. Returned per rank; bit-exact.
    fn serial_inclusive_prefixes(contribs: &[Vec<f64>], op: ReduceOp) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(contribs.len());
        for (i, c) in contribs.iter().enumerate() {
            let acc = if i == 0 {
                c.clone()
            } else {
                let mut merged = out[i - 1].clone();
                op.fold_f64(&mut merged, c);
                merged
            };
            out.push(acc);
        }
        out
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn chunked(flat: &[f64], len: usize) -> Vec<Vec<f64>> {
        if len == 0 {
            // Zero-length contributions: one empty vector per rank.
            return vec![Vec::new(); flat.len().max(1)];
        }
        flat.chunks(len).map(<[f64]>::to_vec).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        // `scan` must reproduce the serial left fold *bit for bit*: the
        // chain is ordered, and floating-point addition is not associative,
        // so any re-association inside the implementation shows up here.
        #[test]
        fn scan_matches_serial_left_fold_bitwise(
            n in 1usize..7,
            len in 1usize..4,
            op in op_strategy(),
            flat in proptest::collection::vec(value_strategy(), 18),
        ) {
            let contribs: Vec<Vec<f64>> = chunked(&flat[..n * len], len);
            let expect = serial_inclusive_prefixes(&contribs, op);
            let u = Universe::new(cluster(n));
            let per_rank = contribs.clone();
            let report = u.run(move |p| {
                let world = p.world();
                world.scan_f64(&per_rank[world.rank()], op).unwrap()
            });
            for (rank, got) in report.results.iter().enumerate() {
                prop_assert_eq!(bits(got), bits(&expect[rank]), "rank {}", rank);
            }
        }

        // `exscan` is the scan shifted by one rank: rank 0 receives the
        // operation's identity, rank i > 0 receives the inclusive prefix of
        // ranks 0..i — again bit-exact against the serial left fold.
        #[test]
        fn exscan_is_scan_shifted_by_one_rank(
            n in 1usize..7,
            len in 1usize..4,
            op in op_strategy(),
            flat in proptest::collection::vec(value_strategy(), 18),
        ) {
            let contribs: Vec<Vec<f64>> = chunked(&flat[..n * len], len);
            let expect = serial_inclusive_prefixes(&contribs, op);
            let u = Universe::new(cluster(n));
            let per_rank = contribs.clone();
            let report = u.run(move |p| {
                let world = p.world();
                world.exscan_f64(&per_rank[world.rank()], op).unwrap()
            });
            for (rank, got) in report.results.iter().enumerate() {
                if rank == 0 {
                    prop_assert_eq!(got.len(), len);
                    for x in got {
                        prop_assert_eq!(x.to_bits(), op.identity_f64().to_bits());
                    }
                } else {
                    prop_assert_eq!(bits(got), bits(&expect[rank - 1]), "rank {}", rank);
                }
            }
        }

        // `reduce_scatter_block` over i64, where every op is exact: the
        // concatenation of the per-rank blocks must equal the elementwise
        // reduction of all contributions, regardless of the tree order the
        // binomial reduce uses. Values stay small so Prod cannot overflow.
        #[test]
        fn reduce_scatter_block_matches_serial_reduction(
            n in 1usize..7,
            block in 1usize..4,
            op in op_strategy(),
            flat in proptest::collection::vec(-4i64..5, 108),
        ) {
            let contribs: Vec<Vec<i64>> = flat[..n * n * block]
                .chunks(n * block)
                .map(<[i64]>::to_vec)
                .collect();
            let mut expect = contribs[0].clone();
            for c in &contribs[1..] {
                op.fold_i64(&mut expect, c);
            }
            let u = Universe::new(cluster(n));
            let per_rank = contribs.clone();
            let report = u.run(move |p| {
                let world = p.world();
                world
                    .reduce_scatter_block_i64(&per_rank[world.rank()], block, op)
                    .unwrap()
            });
            let mut rejoined = Vec::new();
            for got in &report.results {
                prop_assert_eq!(got.len(), block);
                rejoined.extend_from_slice(got);
            }
            prop_assert_eq!(rejoined, expect);
        }

        // A single-rank communicator must make every prefix/reduce-scatter
        // collective the identity operation on the local contribution.
        #[test]
        fn single_rank_collectives_are_local_identities(
            len in 0usize..5,
            op in op_strategy(),
            flat in proptest::collection::vec(value_strategy(), 4),
        ) {
            let contrib = flat[..len].to_vec();
            let u = Universe::new(cluster(1));
            let c = contrib.clone();
            let report = u.run(move |p| {
                let world = p.world();
                let scan = world.scan_f64(&c, op).unwrap();
                let exscan = world.exscan_f64(&c, op).unwrap();
                let rsb = world.reduce_scatter_block_f64(&c, c.len(), op);
                (scan, exscan, rsb)
            });
            let (scan, exscan, rsb) = &report.results[0];
            prop_assert_eq!(bits(scan), bits(&contrib));
            for x in exscan {
                prop_assert_eq!(x.to_bits(), op.identity_f64().to_bits());
            }
            if len > 0 {
                prop_assert_eq!(bits(rsb.as_ref().unwrap()), bits(&contrib));
            } else {
                // A zero block size is a caller error, not a panic.
                prop_assert!(matches!(rsb, Err(MpiError::InvalidCounts(_))));
            }
        }
    }
}
