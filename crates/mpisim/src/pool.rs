//! Size-classed buffer arena backing the rendezvous protocol.
//!
//! Messages larger than the eager limit carry their payload in a buffer
//! *leased* from a per-universe [`BufferPool`] instead of a fresh
//! `Vec<u8>` per message. Buffers live in power-of-two size classes; a
//! lease pops from the class's free list (or allocates on a cold miss)
//! and the buffer returns to the list when the receiver drops the payload
//! — so a steady-state exchange of large messages performs **zero**
//! allocations after warm-up, and repeated leases reuse already-faulted
//! pages (the dominant cost of fresh multi-megabyte allocations).
//!
//! The pool also doubles as a leak detector: [`BufferPool::outstanding`]
//! counts live leases, and a finished [`Universe::run`](crate::Universe)
//! drains every mailbox before snapshotting [`PoolReport`] into the run
//! report, so `outstanding != 0` after a run means a payload escaped the
//! envelope lifecycle. simcheck asserts this on every scenario.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Smallest size class, bytes. Leases below this round up; anything at or
/// under the eager limit never reaches the pool in the first place.
const MIN_CLASS: usize = 512;

/// Largest size class the pool *caches*. Bigger leases are served (exact
/// power-of-two) but their buffers are freed on return instead of cached,
/// bounding the pool's idle footprint.
const MAX_CACHED_CLASS: usize = 1 << 22; // 4 MiB

/// Free-list depth per size class; returns beyond this free the buffer.
const PER_CLASS_CAP: usize = 32;

/// Number of cached classes: 512 B .. 4 MiB inclusive.
const N_CLASSES: usize = (MAX_CACHED_CLASS.ilog2() - MIN_CLASS.ilog2() + 1) as usize;

/// A size-classed free-list arena for rendezvous payload buffers.
///
/// Thread-safe; ranks lease concurrently. Each class has its own lock so
/// leases of different sizes never contend.
#[derive(Debug)]
pub struct BufferPool {
    classes: [Mutex<Vec<Vec<u8>>>; N_CLASSES],
    leased: AtomicU64,
    reused: AtomicU64,
    outstanding: AtomicUsize,
    high_water: AtomicUsize,
    outstanding_bytes: AtomicUsize,
    high_water_bytes: AtomicUsize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool {
            classes: std::array::from_fn(|_| Mutex::new(Vec::new())),
            leased: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            outstanding_bytes: AtomicUsize::new(0),
            high_water_bytes: AtomicUsize::new(0),
        }
    }
}

/// Rounds `len` up to its size class (a power of two, at least
/// [`MIN_CLASS`]).
fn class_of(len: usize) -> usize {
    len.max(MIN_CLASS).next_power_of_two()
}

/// Index into the cached-class array, or `None` for oversized classes.
fn class_index(class: usize) -> Option<usize> {
    if class > MAX_CACHED_CLASS {
        None
    } else {
        Some((class.ilog2() - MIN_CLASS.ilog2()) as usize)
    }
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(BufferPool::default())
    }

    /// Leases an empty buffer with capacity for at least `len` bytes.
    ///
    /// The returned [`Lease`] dereferences to a `Vec<u8>` (starting
    /// empty); dropping it returns the buffer to its size class.
    pub fn lease(self: &Arc<Self>, len: usize) -> Lease {
        let class = class_of(len);
        let cached = class_index(class)
            .and_then(|i| self.classes[i].lock().pop());
        self.leased.fetch_add(1, Ordering::Relaxed);
        let buf = match cached {
            Some(mut b) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                b.clear();
                b
            }
            None => Vec::with_capacity(class),
        };
        let live = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(live, Ordering::Relaxed);
        let live_b = self.outstanding_bytes.fetch_add(class, Ordering::Relaxed) + class;
        self.high_water_bytes.fetch_max(live_b, Ordering::Relaxed);
        Lease {
            buf,
            class,
            pool: Arc::clone(self),
        }
    }

    fn give_back(&self, mut buf: Vec<u8>, class: usize) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.outstanding_bytes.fetch_sub(class, Ordering::Relaxed);
        if let Some(i) = class_index(class) {
            let mut list = self.classes[i].lock();
            if list.len() < PER_CLASS_CAP {
                buf.clear();
                list.push(buf);
            }
        }
    }

    /// Number of leases currently live (not yet returned).
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Snapshot of the pool's counters.
    pub fn report(&self) -> PoolReport {
        PoolReport {
            leased: self.leased.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            outstanding: self.outstanding.load(Ordering::Relaxed),
            high_water: self.high_water.load(Ordering::Relaxed),
            high_water_bytes: self.high_water_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Counter snapshot of a [`BufferPool`], carried in
/// [`RunReport`](crate::RunReport) so harnesses (simcheck's leak
/// invariant, the throughput bench) can assert on arena behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolReport {
    /// Total leases over the pool's lifetime.
    pub leased: u64,
    /// Leases served from a free list (no allocation).
    pub reused: u64,
    /// Leases still live at snapshot time; zero after a drained run.
    pub outstanding: usize,
    /// Maximum simultaneously-live leases.
    pub high_water: usize,
    /// Maximum simultaneously-live lease bytes (size-class rounded).
    pub high_water_bytes: usize,
}

/// A buffer leased from a [`BufferPool`]; returns on drop.
pub struct Lease {
    buf: Vec<u8>,
    class: usize,
    pool: Arc<BufferPool>,
}

impl Lease {
    /// The filled payload bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable access for filling the buffer.
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("len", &self.buf.len())
            .field("class", &self.class)
            .finish()
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.pool.give_back(buf, self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_rounds_up_to_class() {
        let pool = BufferPool::new();
        let l = pool.lease(700);
        assert!(l.buf.capacity() >= 1024);
        assert_eq!(l.bytes().len(), 0);
    }

    #[test]
    fn drop_returns_and_reuses() {
        let pool = BufferPool::new();
        {
            let mut l = pool.lease(600);
            l.buf_mut().extend_from_slice(&[1, 2, 3]);
        }
        assert_eq!(pool.outstanding(), 0);
        let l2 = pool.lease(600);
        let r = pool.report();
        assert_eq!(r.leased, 2);
        assert_eq!(r.reused, 1, "second lease must come from the free list");
        assert_eq!(l2.bytes().len(), 0, "reused buffers come back cleared");
    }

    #[test]
    fn oversized_leases_are_served_but_not_cached() {
        let pool = BufferPool::new();
        drop(pool.lease(MAX_CACHED_CLASS * 2));
        assert_eq!(pool.outstanding(), 0);
        let r = pool.report();
        assert_eq!(r.reused, 0);
        drop(pool.lease(MAX_CACHED_CLASS * 2));
        assert_eq!(pool.report().reused, 0, "oversized buffers are freed, not cached");
    }

    #[test]
    fn high_water_tracks_concurrent_leases() {
        let pool = BufferPool::new();
        let a = pool.lease(1000);
        let b = pool.lease(1000);
        drop(a);
        drop(b);
        let r = pool.report();
        assert_eq!(r.high_water, 2);
        assert_eq!(r.outstanding, 0);
        assert!(r.high_water_bytes >= 2048);
    }

    #[test]
    fn free_list_depth_is_bounded() {
        let pool = BufferPool::new();
        let many: Vec<_> = (0..PER_CLASS_CAP + 8).map(|_| pool.lease(600)).collect();
        drop(many);
        // All returned; only PER_CLASS_CAP were cached. Lease again and
        // count reuses.
        let again: Vec<_> = (0..PER_CLASS_CAP + 8).map(|_| pool.lease(600)).collect();
        drop(again);
        assert_eq!(pool.report().reused as usize, PER_CLASS_CAP);
    }
}
