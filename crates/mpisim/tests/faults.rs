//! Fault-injection tests: failure-aware point-to-point, deadline receives,
//! collective failure propagation, and deterministic fault-plan replay.
//!
//! The invariant under test (the PR's acceptance bar): a blocked operation
//! involving a crashed peer *returns an error or times out* — it never hangs
//! and it never silently succeeds.

use hetsim::{ClusterBuilder, FaultEvent, FaultPlan, Link, NodeId, Protocol, SimTime};
use mpisim::{MpiError, ReduceOp, Universe};
use std::sync::Arc;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// A homogeneous cluster of `n` nodes (speed 100, 1 ms / 1 MB/s links) with
/// the given fault plan.
fn cluster_with(n: usize, faults: FaultPlan) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 100.0);
    }
    Arc::new(
        b.all_to_all(Link::new(1e-3, 1e6, Protocol::Tcp))
            .faults(faults)
            .build(),
    )
}

#[test]
fn crashed_rank_discovers_its_own_death_in_compute() {
    // Node 1 crashes at t=1.5; its rank computes 100 units (1 s) twice.
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(1),
        at: t(1.5),
    });
    let report = cluster_with(2, plan).pipe(Universe::new).run(|p| {
        let mut completed = 0u32;
        for _ in 0..3 {
            match p.try_compute(100.0) {
                Ok(()) => completed += 1,
                Err(e) => return (completed, Some(e)),
            }
        }
        (completed, None)
    });
    // Rank 0 finishes all three; rank 1 dies during its second unit.
    assert_eq!(report.results[0], (3, None));
    assert_eq!(
        report.results[1],
        (1, Some(MpiError::NodeFailed { world_rank: 1 }))
    );
    // The dead rank's clock is clamped to the crash time.
    assert_eq!(report.rank_times[1], t(1.5));
}

#[test]
fn recv_from_crashed_peer_returns_node_failed() {
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(1),
        at: t(0.5),
    });
    let report = cluster_with(2, plan).pipe(Universe::new).run(|p| {
        let world = p.world();
        if p.world_rank() == 1 {
            // Dies before ever sending.
            return p.try_compute(100.0).err();
        }
        world.recv::<i64>(1, 7).err()
    });
    assert_eq!(
        report.results[0],
        Some(MpiError::NodeFailed { world_rank: 1 })
    );
    assert_eq!(
        report.results[1],
        Some(MpiError::NodeFailed { world_rank: 1 })
    );
}

#[test]
fn send_to_crashed_peer_returns_node_failed() {
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(1),
        at: t(0.5),
    });
    let report = cluster_with(2, plan).pipe(Universe::new).run(|p| {
        let world = p.world();
        if p.world_rank() == 0 {
            // Advance past the peer's crash time, then try to send to it.
            p.compute(100.0); // 1 s > 0.5 s
            return world.send(&[1i64], 1, 7).err();
        }
        p.try_compute(100.0).err()
    });
    assert_eq!(
        report.results[0],
        Some(MpiError::NodeFailed { world_rank: 1 })
    );
}

#[test]
fn message_queued_before_crash_is_still_delivered() {
    // Sender posts at t≈0, then dies at t=1. Receiver computes 2 s first,
    // then receives: the queued message must still be delivered.
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(0),
        at: t(1.0),
    });
    let report = cluster_with(2, plan).pipe(Universe::new).run(|p| {
        let world = p.world();
        if p.world_rank() == 0 {
            world.send(&[42i64], 1, 7).unwrap();
            return Ok(vec![0]);
        }
        p.compute(200.0); // 2 s: sender is long dead by now
        world.recv::<i64>(0, 7).map(|(v, _)| v)
    });
    assert_eq!(report.results[1], Ok(vec![42]));
}

#[test]
fn recv_from_terminated_peer_returns_peer_terminated() {
    let report = cluster_with(2, FaultPlan::none())
        .pipe(Universe::new)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 1 {
                return None; // exits immediately, never sends
            }
            world.recv::<i64>(1, 7).err()
        });
    assert_eq!(
        report.results[0],
        Some(MpiError::PeerTerminated { world_rank: 1 })
    );
}

#[test]
fn recv_deadline_times_out_and_advances_clock() {
    let report = cluster_with(2, FaultPlan::none())
        .pipe(Universe::new)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 1 {
                // Sends far too late for the deadline.
                p.compute(500.0); // 5 s
                world.send(&[1i64], 0, 7).unwrap();
                return None;
            }
            let err = world.recv_deadline::<i64>(1, 7, t(2.0)).err();
            assert_eq!(p.clock().now(), t(2.0), "timeout advances to deadline");
            // The late message is left queued: a later unbounded receive
            // still finds it.
            let (v, _) = world.recv::<i64>(1, 7).unwrap();
            assert_eq!(v, vec![1]);
            err
        });
    assert_eq!(report.results[0], Some(MpiError::Timeout));
}

#[test]
fn recv_deadline_delivers_message_arriving_in_time() {
    let report = cluster_with(2, FaultPlan::none())
        .pipe(Universe::new)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 1 {
                world.send(&[9i64], 0, 7).unwrap();
                return Vec::new();
            }
            let (v, _) = world.recv_deadline::<i64>(1, 7, t(2.0)).unwrap();
            v
        });
    assert_eq!(report.results[0], vec![9]);
}

#[test]
fn recv_timeout_measures_from_current_clock() {
    let report = cluster_with(2, FaultPlan::none())
        .pipe(Universe::new)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 1 {
                // Sends at virtual t=5, long after the receiver's deadline.
                p.compute(500.0);
                world.send(&[1i64], 0, 7).unwrap();
                return None;
            }
            p.compute(100.0); // now = 1 s
            let err = world.recv_timeout::<i64>(1, 7, t(0.5)).err();
            assert_eq!(p.clock().now(), t(1.5));
            err
        });
    assert_eq!(report.results[0], Some(MpiError::Timeout));
}

#[test]
fn deadline_recv_on_dead_peer_reports_the_death_not_the_timeout() {
    // Peer death is more informative than a timeout, so it takes precedence.
    let report = cluster_with(2, FaultPlan::none())
        .pipe(Universe::new)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 1 {
                return None; // terminates immediately
            }
            world.recv_deadline::<i64>(1, 7, t(1000.0)).err()
        });
    assert_eq!(
        report.results[0],
        Some(MpiError::PeerTerminated { world_rank: 1 })
    );
}

#[test]
fn collective_propagates_failure_to_all_participants() {
    // 4 ranks allreduce in a loop; node 2 dies at t=2.5. Every survivor's
    // collective must surface an error — nobody hangs.
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(2),
        at: t(2.5),
    });
    let report = cluster_with(4, plan).pipe(Universe::new).run(|p| {
        let world = p.world();
        for round in 0..4 {
            if p.try_compute(100.0).is_err() {
                return Err(round);
            }
            if world.allreduce_one_i64(1, ReduceOp::Sum).is_err() {
                return Err(round);
            }
        }
        Ok(())
    });
    // Rank 2 dies during round 2's compute (t goes 2 -> 3 across 2.5);
    // everyone else errors out of a collective that round or the next.
    for (rank, res) in report.results.iter().enumerate() {
        assert!(
            res.is_err(),
            "rank {rank} should have observed the failure, got {res:?}"
        );
    }
}

#[test]
fn barrier_aborts_when_a_member_dies() {
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(3),
        at: t(0.5),
    });
    let report = cluster_with(4, plan).pipe(Universe::new).run(|p| {
        let world = p.world();
        if p.world_rank() == 3 {
            return p.try_compute(100.0).is_err();
        }
        world.barrier().is_err()
    });
    assert!(report.results.iter().all(|&aborted| aborted));
}

#[test]
fn link_drop_fails_the_send() {
    let plan = FaultPlan::none().with(FaultEvent::LinkDrop {
        from: NodeId(0),
        to: NodeId(1),
        at: t(0.0),
    });
    let report = cluster_with(2, plan).pipe(Universe::new).run(|p| {
        let world = p.world();
        if p.world_rank() == 0 {
            return world.send(&[1i64], 1, 7).err();
        }
        None
    });
    assert_eq!(report.results[0], Some(MpiError::LinkDown { from: 0, to: 1 }));
}

#[test]
fn link_degradation_slows_the_transfer() {
    // 1 MB/s link degraded to 25% from t=0: 1 MB takes ~4 s instead of ~1 s.
    let degraded = FaultPlan::none().with(FaultEvent::LinkDegrade {
        from: NodeId(0),
        to: NodeId(1),
        at: t(0.0),
        bandwidth_factor: 0.25,
    });
    let run = |plan: FaultPlan| {
        cluster_with(2, plan)
            .pipe(Universe::new)
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 0 {
                    world.send(&vec![0u8; 1_000_000], 1, 7).unwrap();
                    return SimTime::ZERO;
                }
                let _ = world.recv::<u8>(0, 7).unwrap();
                p.clock().now()
            })
            .results[1]
    };
    let healthy = run(FaultPlan::none());
    let slow = run(degraded);
    assert!((healthy.as_secs() - 1.0).abs() < 0.1, "healthy ~1 s: {healthy:?}");
    assert!((slow.as_secs() - 4.0).abs() < 0.1, "degraded ~4 s: {slow:?}");
}

#[test]
fn transient_slowdown_stretches_compute() {
    let plan = FaultPlan::none().with(FaultEvent::NodeSlowdown {
        node: NodeId(0),
        from: t(0.0),
        until: t(100.0),
        factor: 0.5,
    });
    let report = cluster_with(1, plan).pipe(Universe::new).run(|p| {
        p.try_compute(100.0).unwrap();
        p.clock().now()
    });
    assert_eq!(report.results[0], t(2.0)); // 100 units at 50 u/s
}

#[test]
fn same_seed_same_fault_plan_same_makespan() {
    let run = |seed: u64| {
        let plan = FaultPlan::random_crashes(seed, (0..6).map(NodeId), 0.4, t(10.0));
        let survivors_only = plan.clone();
        let report = cluster_with(6, survivors_only).pipe(Universe::new).run(|p| {
            let mut rounds = 0u32;
            for _ in 0..8 {
                if p.try_compute(100.0).is_err() {
                    break;
                }
                rounds += 1;
            }
            rounds
        });
        (plan, report.results, report.makespan)
    };
    let (plan_a, rounds_a, span_a) = run(12345);
    let (plan_b, rounds_b, span_b) = run(12345);
    assert_eq!(plan_a, plan_b, "same seed must replay the same plan");
    assert_eq!(rounds_a, rounds_b);
    assert_eq!(span_a, span_b);
    let (plan_c, _, _) = run(54321);
    assert_ne!(plan_a, plan_c, "different seed should differ");
}

/// `Arc<Cluster> -> Universe` plumbing helper so tests read top-down.
trait Pipe: Sized {
    fn pipe<T>(self, f: impl FnOnce(Self) -> T) -> T {
        f(self)
    }
}
impl Pipe for Arc<hetsim::Cluster> {}
