//! Virtual-time *shape* tests: the collective cost model must emerge from
//! the link model with the expected asymptotics (binomial trees are
//! logarithmic, chains are linear, contention serialises).

use hetsim::{Cluster, ClusterBuilder, ContentionModel, Link, Protocol};
use mpisim::{ReduceOp, Universe};
use std::sync::Arc;

const LAT: f64 = 1e-3;

fn cluster(n: usize, contention: ContentionModel) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 1e9); // compute is free
    }
    Arc::new(
        b.all_to_all(Link::new(LAT, 1e12, Protocol::Tcp))
            .contention(contention)
            .build(),
    )
}

/// Makespan of a tiny-payload broadcast across `n` ranks.
fn bcast_makespan(n: usize) -> f64 {
    let u = Universe::new(cluster(n, ContentionModel::ParallelLinks));
    let report = u.run(|p| {
        let world = p.world();
        let mut v = if world.rank() == 0 { vec![1u8] } else { vec![] };
        world.bcast(&mut v, 0).unwrap();
        world.clock().now().as_secs()
    });
    report.makespan.as_secs()
}

#[test]
fn binomial_bcast_is_logarithmic() {
    // With negligible payload, the critical path of a binomial broadcast is
    // ceil(log2(n)) link latencies.
    for (n, hops) in [(2usize, 1.0f64), (4, 2.0), (8, 3.0), (9, 4.0), (16, 4.0)] {
        let t = bcast_makespan(n);
        let expect = hops * LAT;
        assert!(
            (t - expect).abs() < 0.35 * expect,
            "bcast over {n}: {t:.4}s vs expected ~{expect:.4}s"
        );
    }
    // And it grows strictly slower than linear.
    assert!(bcast_makespan(16) < 8.0 * LAT);
}

#[test]
fn scan_chain_is_linear() {
    let times: Vec<f64> = [4usize, 8, 16]
        .iter()
        .map(|&n| {
            let u = Universe::new(cluster(n, ContentionModel::ParallelLinks));
            let report = u.run(|p| {
                let world = p.world();
                world.scan_i64(&[1], ReduceOp::Sum).unwrap();
                world.clock().now().as_secs()
            });
            report.makespan.as_secs()
        })
        .collect();
    // Linear chain: n-1 hops. Doubling n should roughly double the time.
    let r1 = times[1] / times[0];
    let r2 = times[2] / times[1];
    assert!(r1 > 1.7 && r1 < 2.6, "4->8 ratio {r1:.2}");
    assert!(r2 > 1.7 && r2 < 2.6, "8->16 ratio {r2:.2}");
}

#[test]
fn bandwidth_term_dominates_large_payloads() {
    // 1 MB over a 1 MB/s link: ~1 s per hop regardless of latency.
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("a", 1e9)
            .node("b", 1e9)
            .all_to_all(Link::new(LAT, 1e6, Protocol::Tcp))
            .build(),
    );
    let u = Universe::new(cluster);
    let report = u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            world.send(&vec![0u8; 1_000_000], 1, 0).unwrap();
        } else {
            let _ = world.recv::<u8>(0, 0).unwrap();
        }
        world.clock().now().as_secs()
    });
    let t = report.results[1];
    assert!((t - 1.0).abs() < 0.01, "1 MB at 1 MB/s took {t:.3}s");
}

#[test]
fn shared_bus_serialises_a_fan_in() {
    // Everyone sends to rank 0 simultaneously. On the switch the arrivals
    // overlap (makespan ~ one transfer); on a shared bus they serialise
    // (makespan ~ (n-1) transfers).
    let n = 6;
    let payload = 100_000usize; // 0.1 s per transfer at 1 MB/s
    let run = |contention| {
        let mut b = ClusterBuilder::new();
        for i in 0..n {
            b = b.node(format!("h{i}"), 1e9);
        }
        let cluster = Arc::new(
            b.all_to_all(Link::new(1e-5, 1e6, Protocol::Tcp))
                .contention(contention)
                .build(),
        );
        let u = Universe::new(cluster);
        let report = u.run(move |p| {
            let world = p.world();
            if world.rank() == 0 {
                for _ in 1..n {
                    let _ = world.recv_any::<u8>(None, Some(0)).unwrap();
                }
            } else {
                world.send(&vec![0u8; payload], 0, 0).unwrap();
            }
            world.clock().now().as_secs()
        });
        report.makespan.as_secs()
    };
    let switch = run(ContentionModel::ParallelLinks);
    let bus = run(ContentionModel::SharedBus);
    assert!((switch - 0.1).abs() < 0.02, "switch fan-in {switch:.3}s");
    assert!(
        (bus - 0.5).abs() < 0.05,
        "bus fan-in should serialise 5 transfers: {bus:.3}s"
    );
}

#[test]
fn reduce_and_bcast_have_symmetric_cost() {
    // A binomial reduce is the mirror of a binomial bcast; with symmetric
    // links their makespans match.
    let n = 8;
    let u = Universe::new(cluster(n, ContentionModel::ParallelLinks));
    let reduce_t = u
        .run(|p| {
            let world = p.world();
            world.reduce_one_f64(1.0, ReduceOp::Sum, 0).unwrap();
            world.clock().now().as_secs()
        })
        .makespan
        .as_secs();
    let bcast_t = bcast_makespan(n);
    assert!(
        (reduce_t - bcast_t).abs() < 0.3 * bcast_t,
        "reduce {reduce_t:.4} vs bcast {bcast_t:.4}"
    );
}

#[test]
fn loaded_processor_slows_only_its_own_rank() {
    use hetsim::{LoadModel, Processor, SimTime};
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("fast", 100.0)
            .processor(Processor::new("busy", 100.0).with_load(LoadModel::Constant {
                fraction: 0.75,
            }))
            .all_to_all(Link::new(1e-6, 1e12, Protocol::Tcp))
            .build(),
    );
    let u = Universe::new(cluster);
    let report = u.run(|p| {
        p.compute(100.0);
        p.clock().now()
    });
    assert_eq!(report.results[0], SimTime::from_secs(1.0));
    assert_eq!(report.results[1], SimTime::from_secs(4.0));
}
