//! Property coverage for `mpisim::cart`: rank/coordinate translation is a
//! bijection on arbitrary grids, shifts are antisymmetric and respect
//! periodicity, `dims_create` factorisations are exact and balanced, and
//! `cart_sub` slices carve the grid into consistent subcommunicators.

use hetsim::{ClusterBuilder, Link, Protocol};
use mpisim::cart::{dims_create, CartComm};
use mpisim::{MpiError, Universe};
use proptest::prelude::*;
use std::sync::Arc;

fn cluster(n: usize) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 100.0);
    }
    Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
}

/// Small grids: 1–3 dimensions, extents 1–3, so worlds stay ≤ 27 ranks.
fn dims_strategy() -> BoxedStrategy<Vec<usize>> {
    proptest::collection::vec(1usize..4, 1..4).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn dims_create_products_and_ordering(nnodes in 1usize..120, ndims in 1usize..5) {
        let dims = dims_create(nnodes, ndims);
        prop_assert_eq!(dims.len(), ndims);
        prop_assert_eq!(dims.iter().product::<usize>(), nnodes);
        prop_assert!(dims.windows(2).all(|w| w[0] >= w[1]), "not sorted: {:?}", dims);
        // "As square as possible" in the exact sense MPI promises: no
        // factor of the largest dim can move to the smallest and reduce
        // the spread... pinned loosely: max/min ratio no worse than nnodes.
        prop_assert!(dims[0] <= nnodes.max(1));
    }

    #[test]
    fn rank_coords_bijection_and_shift_antisymmetry(
        dims in dims_strategy(),
        periodic_bits in 0usize..8,
        disp in -3isize..4,
    ) {
        let p: usize = dims.iter().product();
        let periodic: Vec<bool> =
            (0..dims.len()).map(|d| periodic_bits >> d & 1 == 1).collect();
        let u = Universe::new(cluster(p));
        let dims2 = dims.clone();
        let report = u.run(move |proc| {
            let cart = CartComm::new(proc.world(), &dims2, &periodic).unwrap();
            // Bijection: every rank's coordinates map back to it, distinct
            // ranks get distinct coordinates.
            let mut seen = std::collections::HashSet::new();
            for r in 0..p {
                let c = cart.coords_of(r);
                assert!(
                    c.iter().zip(cart.dims()).all(|(&x, &e)| x < e),
                    "coords {c:?} outside dims {:?}",
                    cart.dims()
                );
                assert!(seen.insert(c.clone()), "duplicate coords {c:?}");
                let signed: Vec<isize> = c.iter().map(|&x| x as isize).collect();
                assert_eq!(cart.rank_of(&signed).unwrap(), r);
            }
            // Shift antisymmetry: whom I receive from at +disp is whom I
            // send to at -disp, per dimension.
            for d in 0..cart.ndims() {
                let (src_pos, dst_pos) = cart.shift(d, disp);
                let (src_neg, dst_neg) = cart.shift(d, -disp);
                assert_eq!(src_pos, dst_neg, "dim {d} disp {disp}");
                assert_eq!(dst_pos, src_neg, "dim {d} disp {disp}");
            }
            // Periodic dimensions never hit an edge.
            for d in 0..cart.ndims() {
                let (src, dst) = cart.shift(d, 1);
                if cart.dims()[d] > 1 {
                    let periodic_d = periodic_bits >> d & 1 == 1;
                    if periodic_d {
                        assert!(src.is_some() && dst.is_some());
                    }
                } else if periodic_bits >> d & 1 == 1 {
                    // Extent-1 periodic dim: everyone is its own neighbour.
                    assert_eq!(src, Some(cart.comm().rank()));
                    assert_eq!(dst, Some(cart.comm().rank()));
                }
            }
        });
        prop_assert_eq!(report.results.len(), p);
    }

    #[test]
    fn cart_sub_slices_partition_the_grid(
        dims in dims_strategy(),
        keep_bits in 0usize..8,
    ) {
        let p: usize = dims.iter().product();
        let keep: Vec<bool> = (0..dims.len()).map(|d| keep_bits >> d & 1 == 1).collect();
        let kept_product: usize = dims
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&d, _)| d)
            .product();
        let u = Universe::new(cluster(p));
        let (dims2, keep2) = (dims.clone(), keep.clone());
        let report = u.run(move |proc| {
            let flags = vec![false; dims2.len()];
            let cart = CartComm::new(proc.world(), &dims2, &flags).unwrap();
            let sub = cart.sub(&keep2).unwrap();
            // The slice keeps exactly the kept extents; my dropped
            // coordinates identify the slice, so gather them for checking.
            let my_dropped: Vec<usize> = cart
                .coords()
                .iter()
                .zip(&keep2)
                .filter(|(_, &k)| !k)
                .map(|(&c, _)| c)
                .collect();
            (sub.comm().size(), sub.comm().rank(), my_dropped)
        });
        let mut slices = std::collections::HashMap::new();
        for (size, sub_rank, dropped) in &report.results {
            assert_eq!(*size, kept_product.max(1), "wrong slice size");
            let ranks: &mut Vec<usize> = slices.entry(dropped.clone()).or_default();
            ranks.push(*sub_rank);
        }
        // Each slice holds each sub-rank exactly once.
        for (dropped, mut ranks) in slices {
            ranks.sort_unstable();
            prop_assert_eq!(
                ranks,
                (0..kept_product.max(1)).collect::<Vec<_>>(),
                "slice {:?} mis-ranked",
                dropped
            );
        }
    }
}

#[test]
fn rank_of_rejects_bad_arity_and_range() {
    let u = Universe::new(cluster(6));
    u.run(|proc| {
        let cart = CartComm::new(proc.world(), &[2, 3], &[false, true]).unwrap();
        // Arity mismatch is a typed error.
        assert!(matches!(
            cart.rank_of(&[0]).unwrap_err(),
            MpiError::InvalidCounts(_)
        ));
        // Out of range on the non-periodic dimension.
        assert!(matches!(
            cart.rank_of(&[2, 0]).unwrap_err(),
            MpiError::InvalidRank { rank: 2, comm_size: 2 }
        ));
        assert!(matches!(
            cart.rank_of(&[-1, 0]).unwrap_err(),
            MpiError::InvalidRank { rank: -1, .. }
        ));
        // The periodic dimension wraps instead.
        assert_eq!(cart.rank_of(&[0, -1]).unwrap(), 2);
        assert_eq!(cart.rank_of(&[1, 4]).unwrap(), 4);
    });
}

#[test]
fn degenerate_grids_work() {
    // 1x1 grid: a single rank is its own row, column and neighbour set.
    let u = Universe::new(cluster(1));
    u.run(|proc| {
        let cart = CartComm::new(proc.world(), &[1, 1], &[true, true]).unwrap();
        assert_eq!(cart.coords(), vec![0, 0]);
        assert_eq!(cart.shift(0, 1), (Some(0), Some(0)));
        let sub = cart.sub(&[false, false]).unwrap();
        assert_eq!(sub.comm().size(), 1);
        assert_eq!(sub.dims(), &[1]);
    });
}
