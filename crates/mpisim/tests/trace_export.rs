//! The Chrome `trace_event` exporter, validated by actually reading the
//! JSON back (via `hetsim::json`): the document parses, every event
//! carries the `ph`/`pid`/`tid`/`ts`/`dur` fields Perfetto expects,
//! timestamps are monotone per rank, and spans nest rather than partially
//! overlap. Exercised over a real traced run mixing compute, p2p and
//! engine collectives.

use hetsim::json::{parse, JsonValue};
use hetsim::trace::{Trace, TraceEvent, TraceKind};
use hetsim::{ClusterBuilder, Link, Protocol, SimTime};
use mpisim::{ReduceOp, Universe, UniverseConfig};
use std::sync::Arc;

fn cluster(n: usize) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 80.0 + 15.0 * i as f64);
    }
    Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
}

/// A traced run with a bit of everything in it.
fn traced_run(p: usize) -> Trace {
    let u = Universe::with_config(cluster(p), UniverseConfig::new().tracing(true));
    let report = u.run(move |proc| {
        let world = proc.world();
        proc.compute(10.0 * (world.rank() + 1) as f64);
        // Ring sendrecv.
        let right = (world.rank() + 1) % p;
        let left = (world.rank() + p - 1) % p;
        world
            .sendrecv::<i64, i64>(&[world.rank() as i64], right, 5, left, 5)
            .unwrap();
        // Engine collectives (spans plus inner transfers).
        let mut buf = vec![world.rank() as f64; 64];
        world.bcast_into(&mut buf, 0).unwrap();
        world.allreduce_eq_f64(&buf, ReduceOp::Sum).unwrap();
    });
    report.trace.expect("tracing was enabled")
}

#[test]
fn chrome_export_parses_and_is_well_formed() {
    let p = 4;
    let trace = traced_run(p);
    assert!(!trace.events.is_empty());
    let doc = parse(&trace.to_chrome_json()).expect("exporter must emit valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.events.len());

    let mut last_ts = vec![0.0f64; p];
    let mut global_last = 0.0f64;
    for ev in events {
        // The complete-event fields Perfetto requires.
        assert_eq!(ev.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(ev.get("pid").and_then(JsonValue::as_f64), Some(0.0));
        assert!(!ev.get("name").unwrap().as_str().unwrap().is_empty());
        assert!(!ev.get("cat").unwrap().as_str().unwrap().is_empty());
        let tid = ev.get("tid").and_then(JsonValue::as_f64).unwrap();
        assert_eq!(tid.fract(), 0.0, "tid must be an integer rank");
        let tid = tid as usize;
        assert!(tid < p, "tid {tid} outside 0..{p}");
        let ts = ev.get("ts").and_then(JsonValue::as_f64).unwrap();
        let dur = ev.get("dur").and_then(JsonValue::as_f64).unwrap();
        assert!(ts >= 0.0 && dur >= 0.0, "negative time: ts={ts} dur={dur}");
        // Events are drained sorted by (start, rank): timestamps are
        // monotone globally, hence per rank too.
        assert!(ts >= global_last, "ts {ts} went backwards (global)");
        assert!(ts >= last_ts[tid], "ts {ts} went backwards on rank {tid}");
        global_last = ts;
        last_ts[tid] = ts;
    }
}

#[test]
fn spans_nest_per_rank() {
    let p = 4;
    let trace = traced_run(p);
    // Within a rank, two spans either touch disjointly or nest (a
    // collective span contains its inner transfers); partial overlap
    // would render as garbage in Perfetto and signals a broken clock.
    // The exporter drains by (start, rank) only, so a container and its
    // first child can tie on start with the child emitted first —
    // canonicalise ties to container-first before checking nesting.
    let eps = 1e-9;
    for rank in 0..p {
        let mut spans: Vec<(f64, f64)> = trace
            .events
            .iter()
            .filter(|e| e.rank == rank)
            .map(|e| (e.start.as_secs(), (e.start + e.dur).as_secs()))
            .collect();
        assert!(!spans.is_empty(), "rank {rank} traced nothing");
        spans.sort_by(|a, b| {
            a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1))
        });
        let mut open: Vec<(f64, f64)> = Vec::new();
        for &(s, e) in &spans {
            while let Some(&(_, oe)) = open.last() {
                if s >= oe - eps {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, oe)) = open.last() {
                assert!(
                    e <= oe + eps,
                    "rank {rank}: span [{s}, {e}] partially overlaps [.., {oe}]"
                );
            }
            open.push((s, e));
        }
    }
}

#[test]
fn exporter_escapes_hostile_strings() {
    // A hand-built trace with every character class the escaper handles:
    // quotes, backslashes, newlines, tabs and raw control bytes.
    let nasty = "he said \"hi\\\" then\nleft\tquickly\u{1}";
    let mut ev = TraceEvent::new(0, TraceKind::Marker, "marker", SimTime::ZERO);
    ev.dur = SimTime::from_secs(1.0);
    ev.info = Some(nasty.to_string());
    ev.bytes = 17;
    ev.peer = Some(3);
    ev.wait = SimTime::from_secs(0.25);
    let trace = Trace { events: vec![ev] };

    let doc = parse(&trace.to_chrome_json()).expect("hostile strings must still parse");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    let args = events[0].get("args").unwrap();
    // The decoded string round-trips exactly.
    assert_eq!(args.get("info").and_then(JsonValue::as_str), Some(nasty));
    assert_eq!(args.get("bytes").and_then(JsonValue::as_f64), Some(17.0));
    assert_eq!(args.get("peer").and_then(JsonValue::as_f64), Some(3.0));
    assert_eq!(
        args.get("wait_us").and_then(JsonValue::as_f64),
        Some(0.25e6)
    );
}

#[test]
fn untraced_runs_export_nothing() {
    let u = Universe::new(cluster(2));
    let report = u.run(|proc| proc.compute(1.0));
    assert!(report.trace.is_none(), "tracing must be strictly opt-in");

    // An empty trace still exports a valid document.
    let doc = parse(&Trace { events: vec![] }.to_chrome_json()).unwrap();
    assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
}
