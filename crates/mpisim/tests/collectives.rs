//! Collective semantics across real rank threads.

use hetsim::{Cluster, ClusterBuilder, Link, Protocol};
use mpisim::{ReduceOp, Universe};
use std::sync::Arc;

fn cluster(n: usize) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 100.0);
    }
    Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
}

#[test]
fn bcast_from_every_root() {
    for n in [1, 2, 3, 5, 8, 9] {
        for root in [0, n - 1, n / 2] {
            let u = Universe::new(cluster(n));
            let report = u.run(move |p| {
                let world = p.world();
                let mut data = if world.rank() == root {
                    vec![3.5f64, -1.0, root as f64]
                } else {
                    Vec::new()
                };
                world.bcast(&mut data, root).unwrap();
                data
            });
            for r in report.results {
                assert_eq!(r, vec![3.5, -1.0, root as f64], "n={n} root={root}");
            }
        }
    }
}

#[test]
fn bcast_one_scalar() {
    let u = Universe::new(cluster(4));
    let report = u.run(|p| {
        let world = p.world();
        world.bcast_one(world.rank() as i64 + 100, 2).unwrap()
    });
    assert_eq!(report.results, vec![102; 4]);
}

#[test]
fn gather_collects_in_rank_order_with_ragged_sizes() {
    let u = Universe::new(cluster(4));
    let report = u.run(|p| {
        let world = p.world();
        let me = world.rank();
        let contrib: Vec<i64> = (0..=me as i64).collect(); // rank r sends r+1 elems
        world.gather(&contrib, 1).unwrap()
    });
    assert!(report.results[0].is_none());
    let at_root = report.results[1].as_ref().unwrap();
    assert_eq!(at_root.len(), 4);
    for (r, part) in at_root.iter().enumerate() {
        assert_eq!(part, &(0..=r as i64).collect::<Vec<_>>());
    }
}

#[test]
fn gather_flat_requires_equal_counts() {
    let u = Universe::new(cluster(3));
    let report = u.run(|p| {
        let world = p.world();
        let contrib = [world.rank() as f64; 2];
        world.gather_flat(&contrib, 0).unwrap()
    });
    assert_eq!(
        report.results[0].as_ref().unwrap(),
        &vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]
    );
}

#[test]
fn scatter_distributes_parts() {
    let u = Universe::new(cluster(3));
    let report = u.run(|p| {
        let world = p.world();
        let parts: Option<Vec<Vec<i64>>> = if world.rank() == 0 {
            Some(vec![vec![0], vec![10, 11], vec![20, 21, 22]])
        } else {
            None
        };
        world.scatter(parts.as_deref(), 0).unwrap()
    });
    assert_eq!(report.results[0], vec![0]);
    assert_eq!(report.results[1], vec![10, 11]);
    assert_eq!(report.results[2], vec![20, 21, 22]);
}

#[test]
fn allgather_everyone_sees_everything() {
    let u = Universe::new(cluster(5));
    let report = u.run(|p| {
        let world = p.world();
        let me = world.rank() as i64;
        world.allgather(&[me, me * me]).unwrap()
    });
    for r in report.results {
        for (src, part) in r.iter().enumerate() {
            assert_eq!(part, &vec![src as i64, (src * src) as i64]);
        }
    }
}

#[test]
fn alltoall_transposes() {
    let n = 4;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank() as i64;
        let sends: Vec<Vec<i64>> = (0..n as i64).map(|dst| vec![me * 100 + dst]).collect();
        world.alltoall(&sends).unwrap()
    });
    for (me, recvd) in report.results.iter().enumerate() {
        for (src, part) in recvd.iter().enumerate() {
            assert_eq!(part, &vec![(src * 100 + me) as i64]);
        }
    }
}

#[test]
fn reduce_sum_and_max_at_root() {
    let n = 7;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank() as f64;
        let sum = world.reduce_f64(&[me, 1.0], ReduceOp::Sum, 3).unwrap();
        let max = world.reduce_one_f64(me, ReduceOp::Max, 3).unwrap();
        (sum, max)
    });
    for (r, (sum, max)) in report.results.iter().enumerate() {
        if r == 3 {
            let expect: f64 = (0..n as i64).map(|x| x as f64).sum();
            assert_eq!(sum.as_ref().unwrap(), &vec![expect, n as f64]);
            assert_eq!(max.unwrap(), (n - 1) as f64);
        } else {
            assert!(sum.is_none());
            assert!(max.is_none());
        }
    }
}

#[test]
fn allreduce_min_prod() {
    let u = Universe::new(cluster(5));
    let report = u.run(|p| {
        let world = p.world();
        let me = world.rank() as i64 + 1;
        let min = world.allreduce_one_i64(me, ReduceOp::Min).unwrap();
        let prod = world.allreduce_one_i64(me, ReduceOp::Prod).unwrap();
        (min, prod)
    });
    for (min, prod) in report.results {
        assert_eq!(min, 1);
        assert_eq!(prod, 120); // 5!
    }
}

#[test]
fn scan_inclusive_prefix() {
    let n = 6;
    let u = Universe::new(cluster(n));
    let report = u.run(|p| {
        let world = p.world();
        let me = world.rank() as i64;
        world.scan_i64(&[me], ReduceOp::Sum).unwrap()[0]
    });
    let mut prefix = 0;
    for (r, got) in report.results.iter().enumerate() {
        prefix += r as i64;
        assert_eq!(*got, prefix);
    }
}

#[test]
fn barrier_synchronises_clocks() {
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("fast", 100.0)
            .node("slow", 10.0)
            .all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp))
            .build(),
    );
    let u = Universe::new(cluster);
    let report = u.run(|p| {
        p.compute(100.0); // fast: 1 s, slow: 10 s
        let world = p.world();
        world.barrier().unwrap();
        world.clock().now().as_secs()
    });
    // After the barrier, nobody can be earlier than the slow rank's entry.
    assert!(report.results[0] >= 10.0);
    assert!(report.results[1] >= 10.0);
    // And the barrier itself costs only microseconds.
    assert!(report.results[0] < 10.01);
}

#[test]
fn collectives_compose_back_to_back() {
    // Two identical collectives in a row must pair up correctly.
    let u = Universe::new(cluster(4));
    let report = u.run(|p| {
        let world = p.world();
        let a = world.allreduce_one_i64(1, ReduceOp::Sum).unwrap();
        let b = world.allreduce_one_i64(10, ReduceOp::Sum).unwrap();
        let mut v = vec![world.rank() as i64];
        world.bcast(&mut v, 0).unwrap();
        (a, b, v[0])
    });
    for r in report.results {
        assert_eq!(r, (4, 40, 0));
    }
}

#[test]
fn single_rank_collectives_are_identity() {
    let u = Universe::new(cluster(1));
    let report = u.run(|p| {
        let world = p.world();
        world.barrier().unwrap();
        let mut v = vec![1.5f64];
        world.bcast(&mut v, 0).unwrap();
        let g = world.gather(&v, 0).unwrap().unwrap();
        let ar = world.allreduce_one_f64(2.0, ReduceOp::Sum).unwrap();
        (v[0], g.len(), ar)
    });
    assert_eq!(report.results[0], (1.5, 1, 2.0));
}

#[test]
fn exscan_exclusive_prefix() {
    let n = 5;
    let u = Universe::new(cluster(n));
    let report = u.run(|p| {
        let world = p.world();
        let me = world.rank() as i64;
        world.exscan_i64(&[me + 1], ReduceOp::Sum).unwrap()[0]
    });
    // Rank i gets sum of (1..=i) (exclusive of its own i+1).
    let mut acc = 0;
    for (r, got) in report.results.iter().enumerate() {
        assert_eq!(*got, acc, "rank {r}");
        acc += r as i64 + 1;
    }
}

#[test]
fn exscan_rank_zero_gets_identity() {
    let u = Universe::new(cluster(3));
    let report = u.run(|p| {
        let world = p.world();
        let prod = world.exscan_f64(&[2.0], ReduceOp::Prod).unwrap()[0];
        let min = world.exscan_f64(&[world.rank() as f64], ReduceOp::Min).unwrap()[0];
        (prod, min)
    });
    assert_eq!(report.results[0].0, 1.0); // Prod identity
    assert_eq!(report.results[0].1, f64::INFINITY); // Min identity
    assert_eq!(report.results[2].0, 4.0); // 2*2 from ranks 0,1
}

#[test]
fn reduce_scatter_block_distributes_reduction() {
    let n = 4;
    let block = 2;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        // Every rank contributes [rank; 8]; the sum is [0+1+2+3; 8] = [6; 8];
        // rank i receives elements [2i, 2i+1].
        let contrib = vec![world.rank() as i64; n * block];
        world
            .reduce_scatter_block_i64(&contrib, block, ReduceOp::Sum)
            .unwrap()
    });
    for r in report.results {
        assert_eq!(r, vec![6, 6]);
    }
}

#[test]
fn reduce_scatter_block_rejects_wrong_length() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        let err = world
            .reduce_scatter_block_f64(&[1.0; 3], 2, ReduceOp::Sum)
            .unwrap_err();
        assert!(matches!(err, mpisim::MpiError::InvalidCounts(_)));
    });
}
