//! Point-to-point semantics across real rank threads.

use hetsim::{Cluster, ClusterBuilder, Link, Protocol, SimTime};
use mpisim::{MpiError, Universe};
use std::sync::Arc;

fn cluster(n: usize) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 100.0);
    }
    Arc::new(b.all_to_all(Link::new(1e-3, 1e6, Protocol::Tcp)).build())
}

#[test]
fn ping_pong_roundtrip() {
    let u = Universe::new(cluster(2));
    let report = u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            world.send(&[1.0f64, 2.0, 3.0], 1, 0).unwrap();
            let (back, st) = world.recv::<f64>(1, 1).unwrap();
            assert_eq!(st.source, 1);
            back
        } else {
            let (data, st) = world.recv::<f64>(0, 0).unwrap();
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 0);
            let doubled: Vec<f64> = data.iter().map(|x| x * 2.0).collect();
            world.send(&doubled, 0, 1).unwrap();
            doubled
        }
    });
    assert_eq!(report.results[0], vec![2.0, 4.0, 6.0]);
}

#[test]
fn messages_between_many_pairs() {
    let n = 6;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank();
        // Everyone sends its rank to everyone else, then sums what it gets.
        for dst in 0..n {
            if dst != me {
                world.send(&[me as i64], dst, 7).unwrap();
            }
        }
        let mut sum = 0i64;
        for src in 0..n {
            if src != me {
                let (v, _) = world.recv::<i64>(src, 7).unwrap();
                sum += v[0];
            }
        }
        sum
    });
    let total: i64 = (0..n as i64).sum();
    for (me, &s) in report.results.iter().enumerate() {
        assert_eq!(s, total - me as i64);
    }
}

#[test]
fn any_source_any_tag_wildcards() {
    let u = Universe::new(cluster(3));
    let report = u.run(|p| {
        let world = p.world();
        match world.rank() {
            0 => {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (v, st) = world.recv_any::<i64>(None, None).unwrap();
                    seen.push((st.source, st.tag, v[0]));
                }
                seen.sort_unstable();
                seen
            }
            r => {
                world.send(&[r as i64 * 10], 0, r as i32).unwrap();
                Vec::new()
            }
        }
    });
    assert_eq!(report.results[0], vec![(1, 1, 10), (2, 2, 20)]);
}

#[test]
fn non_overtaking_order_per_pair() {
    let u = Universe::new(cluster(2));
    let report = u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            for i in 0..10i64 {
                world.send(&[i], 1, 0).unwrap();
            }
            Vec::new()
        } else {
            (0..10)
                .map(|_| world.recv::<i64>(0, 0).unwrap().0[0])
                .collect::<Vec<_>>()
        }
    });
    assert_eq!(report.results[1], (0..10).collect::<Vec<i64>>());
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    let u = Universe::new(cluster(2));
    let report = u.run(|p| {
        let world = p.world();
        let me = world.rank();
        let other = 1 - me;
        let (got, _) = world
            .sendrecv::<i64, i64>(&[me as i64], other, 0, other, 0)
            .unwrap();
        got[0]
    });
    assert_eq!(report.results, vec![1, 0]);
}

#[test]
fn recv_into_reports_truncation() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            world.send(&[1.0f64; 8], 1, 0).unwrap();
        } else {
            let mut small = [0.0f64; 4];
            let err = world.recv_into(&mut small, 0, 0).unwrap_err();
            assert!(matches!(err, MpiError::Truncated { .. }));
        }
    });
}

#[test]
fn invalid_rank_errors() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        let err = world.send(&[0i64], 5, 0).unwrap_err();
        assert!(matches!(err, MpiError::InvalidRank { rank: 5, .. }));
    });
}

#[test]
fn probe_then_sized_receive() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            world.send(&[9.0f64; 5], 1, 42).unwrap();
        } else {
            let st = world.probe(None, None).unwrap();
            assert_eq!(st.tag, 42);
            assert_eq!(st.bytes, 40);
            let mut buf = vec![0.0f64; st.bytes / 8];
            let (n, _) = world.recv_into(&mut buf, st.source, st.tag).unwrap();
            assert_eq!(n, 5);
            assert_eq!(buf, vec![9.0; 5]);
        }
    });
}

#[test]
fn iprobe_nonblocking() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        if world.rank() == 1 {
            // Nothing sent to us with tag 99.
            assert!(world.iprobe(Some(0), Some(99)).unwrap().is_none());
            // Drain the real message so rank 0 isn't left hanging (eager
            // sends don't need draining, but be tidy).
            let (_, st) = world.recv_any::<u8>(None, None).unwrap();
            assert_eq!(st.tag, 1);
        } else {
            world.send(&[1u8], 1, 1).unwrap();
        }
    });
}

#[test]
fn irecv_wait_and_test() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            world.send(&[5i64], 1, 3).unwrap();
        } else {
            let mut req = world.irecv(Some(0), Some(3)).unwrap();
            // Spin on test until it completes (the send is eager so this
            // terminates promptly).
            while !req.test(&world) {
                std::thread::yield_now();
            }
            let (v, st) = req.wait::<i64>(&world).unwrap();
            assert_eq!(v, vec![5]);
            assert_eq!(st.source, 0);
        }
    });
}

#[test]
fn virtual_time_message_costs_propagate() {
    // 1 ms latency, 1 MB/s: an 8000-byte message (1000 f64) costs
    // 1e-3 + 8e-3 = 9 ms on the wire.
    let u = Universe::new(cluster(2));
    let report = u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            world.send(&vec![0.0f64; 1000], 1, 0).unwrap();
        } else {
            let _ = world.recv::<f64>(0, 0).unwrap();
        }
        world.clock().now()
    });
    // Sender paid only the injection overhead (latency).
    assert!((report.results[0].as_secs() - 1e-3).abs() < 1e-9);
    // Receiver advanced to the arrival time.
    assert!((report.results[1].as_secs() - 9e-3).abs() < 1e-9);
    assert_eq!(report.makespan, SimTime::from_secs(report.results[1].as_secs()));
}

#[test]
fn virtual_time_compute_heterogeneity() {
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("fast", 176.0)
            .node("slow", 9.0)
            .all_to_all(Link::with_defaults(Protocol::Tcp))
            .build(),
    );
    let u = Universe::new(cluster);
    let report = u.run(|p| {
        p.compute(176.0 * 9.0); // work divisible by both speeds
        p.clock().now().as_secs()
    });
    assert!((report.results[0] - 9.0).abs() < 1e-9);
    assert!((report.results[1] - 176.0).abs() < 1e-9);
}

#[test]
fn self_send_is_free_and_matches() {
    let u = Universe::new(cluster(1));
    let report = u.run(|p| {
        let world = p.world();
        world.send(&[7i64], 0, 0).unwrap();
        let (v, _) = world.recv::<i64>(0, 0).unwrap();
        (v[0], world.clock().now().as_secs())
    });
    assert_eq!(report.results[0].0, 7);
    assert_eq!(report.results[0].1, 0.0);
}

#[test]
fn wait_all_completes_in_request_order() {
    let u = Universe::new(cluster(3));
    u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            let reqs = vec![
                world.irecv(Some(1), Some(0)).unwrap(),
                world.irecv(Some(2), Some(0)).unwrap(),
            ];
            let done = mpisim::wait_all::<i64>(reqs, &world).unwrap();
            assert_eq!(done[0].0, vec![10]);
            assert_eq!(done[1].0, vec![20]);
        } else {
            let v = world.rank() as i64 * 10;
            world.send(&[v], 0, 0).unwrap();
        }
    });
}

#[test]
fn wait_any_returns_a_completed_request() {
    let u = Universe::new(cluster(3));
    u.run(|p| {
        let world = p.world();
        if world.rank() == 0 {
            let reqs = vec![
                world.irecv(Some(1), Some(7)).unwrap(),
                world.irecv(Some(2), Some(7)).unwrap(),
            ];
            let (idx, data, st, rest) = mpisim::wait_any::<i64>(reqs, &world).unwrap();
            assert_eq!(rest.len(), 1);
            assert_eq!(data[0] as usize, st.source * 100);
            // Drain the remaining request too.
            let done = mpisim::wait_all::<i64>(rest, &world).unwrap();
            assert_eq!(done.len(), 1);
            let _ = idx;
        } else {
            world.send(&[world.rank() as i64 * 100], 0, 7).unwrap();
        }
    });
}
