//! Hierarchical topology-aware collectives, end to end.
//!
//! A multi-site testbed built with [`hetsim::TopologyBuilder`] (slow WAN
//! between sites, fast LAN within, serialized NICs) must make the
//! hierarchy-aware `Auto` selector leave the flat algorithm family: one
//! WAN crossing per remote site instead of a root NIC queueing a WAN
//! transfer per remote rank. The hierarchical schedules are held to the
//! same contracts as the flat ones — bit-identical reduction values,
//! bit-exact `timeof` parity between prediction and execution, and
//! fault-shaped errors — while flat clusters must stay *bit-identical*
//! to their pre-topology behaviour under the hierarchy-aware selector.

use hetsim::{
    ClusterBuilder, ContentionModel, FaultEvent, FaultPlan, Link, NodeId, Protocol, SimTime,
    TopologyBuilder,
};
use mpisim::{
    CollectiveAlgo, CollectiveKind, CollectivePolicy, MpiError, ReduceOp, Universe,
    UniverseConfig,
};
use std::sync::Arc;

/// Three sites of three workstations each: ~100 MB/s LAN inside a site,
/// a ~1 MB/s 50 ms WAN between sites. Nine ranks misalign with the flat
/// binomial tree's power-of-two structure, so flat schedules cross the
/// WAN repeatedly where a hierarchical schedule crosses it once per
/// remote site.
fn three_site_topology(cont: ContentionModel) -> hetsim::Topology {
    let lan = Link::new(1e-4, 100e6, Protocol::Tcp);
    let wan = Link::new(50e-3, 1e6, Protocol::Tcp);
    let mut b = TopologyBuilder::new()
        .intra_switch(lan)
        .inter_site(wan)
        .contention(cont);
    for site in 0..3 {
        b = b.site();
        for i in 0..3 {
            b = b.node(format!("s{site}n{i}"), 80.0 + 15.0 * i as f64);
        }
    }
    b.build()
}

fn universe(cont: ContentionModel, policy: CollectivePolicy, tracing: bool) -> Universe {
    Universe::from_topology(
        three_site_topology(cont),
        UniverseConfig::new().collective_policy(policy).tracing(tracing),
    )
}

/// Per-rank contribution with rank- and index-dependent bits.
fn contrib(rank: usize, n: usize) -> Vec<f64> {
    (0..n).map(|i| ((rank * 31 + i) % 23) as f64 * 0.75 + 1.0).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

const KINDS: [CollectiveKind; 4] = [
    CollectiveKind::Bcast,
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Allgather,
];

/// The kind/contention pairs where the hierarchical plan must win on
/// the three-site testbed at 64 KiB. (Flat binomial already crosses the
/// WAN near-optimally for a serialized-NIC bcast, and the free-fan-in
/// linear reduce is unbeatable under parallel links — hierarchy is an
/// *option* the selector prices, not a mandate.)
const HIER_WINS: [(CollectiveKind, ContentionModel); 4] = [
    (CollectiveKind::Bcast, ContentionModel::ParallelLinks),
    (CollectiveKind::Reduce, ContentionModel::SerializedNic),
    (CollectiveKind::Allreduce, ContentionModel::SerializedNic),
    (CollectiveKind::Allgather, ContentionModel::SerializedNic),
];

/// On the three-site testbed the selector must route every collective
/// kind through a hierarchical schedule (under the contention model
/// where the flat family leaves room), strictly cheaper than the best
/// flat algorithm — and it must never do *worse* than the flat-only
/// selector on any kind under any model.
#[test]
fn auto_predicts_hierarchical_and_beats_flat_on_multi_site() {
    let elems = (64 * 1024) / 8; // 64 KiB of f64
    for cont in [ContentionModel::SerializedNic, ContentionModel::ParallelLinks] {
        for kind in KINDS {
            let predict = |policy: CollectivePolicy| {
                universe(cont, policy, false)
                    .run(move |proc| proc.world().predict_collective(kind, 0, elems, 8).unwrap())
                    .results[0]
            };
            let (algo, t_hier) = predict(CollectivePolicy::Auto);
            let (flat_algo, t_flat) = predict(CollectivePolicy::FlatAuto);
            assert_ne!(flat_algo, CollectiveAlgo::Hierarchical);
            assert!(
                t_hier <= t_flat,
                "{}/{cont:?}: hierarchy-aware Auto regressed: {t_hier:.6e}s vs {t_flat:.6e}s",
                kind.name()
            );
            if HIER_WINS.contains(&(kind, cont)) {
                assert_eq!(
                    algo,
                    CollectiveAlgo::Hierarchical,
                    "{}/{cont:?}: expected the hierarchical plan to win",
                    kind.name()
                );
                assert!(
                    t_hier < t_flat,
                    "{}/{cont:?}: hierarchical {t_hier:.6e}s must beat flat {t_flat:.6e}s",
                    kind.name()
                );
            }
        }
    }
}

/// Predicted == measured for hierarchical schedules: the pricer replays
/// the exact gather/movement schedule with the transport's grant/settle
/// arbitration, so fault-free parity is bit-exact (same bar as the flat
/// pricing-parity tests).
#[test]
fn hierarchical_prediction_matches_measured_makespan() {
    let elems = (64 * 1024) / 8;
    for (kind, cont) in HIER_WINS {
        let u = universe(cont, CollectivePolicy::Auto, true);
        let report = u.run(move |proc| {
            let world = proc.world();
            let me = world.rank();
            // Allgather's predictor prices the total gathered payload, so
            // round to an exact per-rank contribution first.
            let n_contrib = match kind {
                CollectiveKind::Allgather => elems / world.size(),
                _ => elems,
            };
            let pred_elems = match kind {
                CollectiveKind::Allgather => n_contrib * world.size(),
                _ => elems,
            };
            let (algo, predicted) = world.predict_collective(kind, 0, pred_elems, 8).unwrap();
            let mine = contrib(me, n_contrib);
            match kind {
                CollectiveKind::Bcast => {
                    let mut buf = contrib(0, elems);
                    world.bcast_into(&mut buf, 0).unwrap();
                }
                CollectiveKind::Reduce => {
                    world.reduce_eq_f64(&mine, ReduceOp::Sum, 0).unwrap();
                }
                CollectiveKind::Allreduce => {
                    world.allreduce_eq_f64(&mine, ReduceOp::Sum).unwrap();
                }
                CollectiveKind::Allgather => {
                    world.allgather_eq(&mine).unwrap();
                }
            }
            (algo, predicted)
        });
        let (algo, predicted) = report.results[0];
        assert_eq!(algo, CollectiveAlgo::Hierarchical, "{}", kind.name());
        let measured = report.makespan.as_secs();
        let rel = (predicted - measured).abs() / measured;
        assert!(
            rel < 1e-9,
            "{}: predicted {predicted:.9e}s vs measured {measured:.9e}s (rel {rel:.2e})",
            kind.name()
        );
        // The executed spans must name the hierarchical schedule.
        let trace = report.trace.expect("tracing enabled");
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.collective && e.name == "hierarchical"),
            "{}: no hierarchical span in trace",
            kind.name()
        );
    }
}

/// Reduction results are deterministic across algorithm families: the
/// hierarchy-aware selector must hand back bitwise the same values as
/// the flat-only selector (identity-seeded ascending-rank fold on both
/// paths), for every kind.
#[test]
fn hierarchical_values_bitwise_match_flat_selector() {
    let elems = (64 * 1024) / 8;
    let run = |policy: CollectivePolicy| {
        let u = universe(ContentionModel::SerializedNic, policy, false);
        u.run(move |proc| {
            let world = proc.world();
            let me = world.rank();
            let mine = contrib(me, elems);
            let mut b = contrib(0, elems);
            world.bcast_into(&mut b, 0).unwrap();
            let r = world.reduce_eq_f64(&mine, ReduceOp::Sum, 0).unwrap();
            let ar = world.allreduce_eq_f64(&mine, ReduceOp::Prod).unwrap();
            let ag = world.allgather_eq(&mine).unwrap();
            (
                bits(&b),
                r.map(|v| bits(&v)),
                bits(&ar),
                bits(&ag),
            )
        })
    };
    let hier = run(CollectivePolicy::Auto);
    let flat = run(CollectivePolicy::FlatAuto);
    assert_eq!(hier.results, flat.results);
}

/// Flat clusters stay bit-identical under the hierarchy-aware selector:
/// with no declared topology and no latency structure to infer, `Auto`
/// and `FlatAuto` produce the same virtual times to the bit.
#[test]
fn flat_cluster_auto_is_bit_identical_to_flat_auto() {
    let cluster = || {
        let mut b = ClusterBuilder::new();
        for i in 0..6 {
            b = b.node(format!("h{i}"), 50.0 + 10.0 * i as f64);
        }
        Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
    };
    let run = |policy: CollectivePolicy| {
        let u = Universe::with_config(
            cluster(),
            UniverseConfig::new().collective_policy(policy),
        );
        u.run(|proc| {
            let world = proc.world();
            let mine = contrib(world.rank(), 256);
            let ar = world.allreduce_eq_f64(&mine, ReduceOp::Sum).unwrap();
            let ag = world.allgather_eq(&mine).unwrap();
            (bits(&ar), bits(&ag))
        })
    };
    let auto = run(CollectivePolicy::Auto);
    let flat = run(CollectivePolicy::FlatAuto);
    assert_eq!(auto.results, flat.results);
    assert_eq!(
        auto.makespan.as_secs().to_bits(),
        flat.makespan.as_secs().to_bits(),
        "virtual time diverged on a flat cluster"
    );
}

/// A one-level `TopologyBuilder` build is the same universe as the
/// equivalent `ClusterBuilder` + placement: same links, same virtual
/// times to the bit.
#[test]
fn one_level_topology_matches_flat_cluster_bitwise() {
    let link = Link::new(2e-4, 5e6, Protocol::Tcp);
    let speeds = [46.0, 176.0, 106.0, 9.0];
    let mut tb = TopologyBuilder::new().intra_switch(link.clone());
    let mut cb = ClusterBuilder::new();
    for (i, &s) in speeds.iter().enumerate() {
        tb = tb.node(format!("ws{i}"), s);
        cb = cb.node(format!("ws{i}"), s);
    }
    let topo = tb.build();
    assert!(topo.cluster().topology().is_none(), "flat stays undeclared");
    let workload = |proc: &mpisim::Process| {
        let world = proc.world();
        let mine = contrib(world.rank(), 128);
        let sum = world.allreduce_eq_f64(&mine, ReduceOp::Sum).unwrap();
        let (rx, _) = world
            .sendrecv::<f64, f64>(
                &mine,
                (world.rank() + 1) % world.size(),
                5,
                (world.rank() + world.size() - 1) % world.size(),
                5,
            )
            .unwrap();
        (bits(&sum), bits(&rx))
    };
    let from_topo = Universe::from_topology(topo, UniverseConfig::new()).run(workload);
    let from_flat = Universe::with_config(
        Arc::new(cb.all_to_all(link).build()),
        UniverseConfig::new(),
    )
    .run(workload);
    assert_eq!(from_topo.results, from_flat.results);
    assert_eq!(
        from_topo.makespan.as_secs().to_bits(),
        from_flat.makespan.as_secs().to_bits()
    );
}

/// A node crash mid-collective surfaces as fault-shaped typed errors on
/// the ranks a hierarchical schedule strands, never as a hang or a
/// silent wrong answer.
#[test]
fn hierarchical_collectives_keep_the_fault_contract() {
    let lan = Link::new(1e-4, 100e6, Protocol::Tcp);
    let wan = Link::new(50e-3, 1e6, Protocol::Tcp);
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(5),
        at: SimTime::from_secs(1e-3),
    });
    let mut b = TopologyBuilder::new()
        .intra_switch(lan)
        .inter_site(wan)
        .contention(ContentionModel::SerializedNic)
        .faults(plan);
    for site in 0..3 {
        b = b.site();
        for i in 0..3 {
            b = b.node(format!("s{site}n{i}"), 100.0);
        }
    }
    let u = Universe::from_topology(b.build(), UniverseConfig::new());
    let elems = (64 * 1024) / 8;
    let report = u.run(move |proc| {
        let world = proc.world();
        // The schedule must be hierarchical for the contract to be about
        // the hierarchical executor at all.
        let picked = world.predict_collective(CollectiveKind::Allreduce, 0, elems, 8);
        let mine = contrib(world.rank(), elems);
        let out = world.allreduce_eq_f64(&mine, ReduceOp::Sum);
        (picked.map(|(a, _)| a), out.err())
    });
    let (picked, _) = &report.results[0];
    assert_eq!(*picked, Ok(CollectiveAlgo::Hierarchical));
    let mut failures = 0;
    for (rank, (_, err)) in report.results.iter().enumerate() {
        if let Some(e) = err {
            failures += 1;
            assert!(
                matches!(e, MpiError::NodeFailed { .. } | MpiError::LinkDown { .. }),
                "rank {rank}: non-fault-shaped error {e:?}"
            );
        }
    }
    assert!(failures > 0, "the dead node must strand someone");
}
