//! The collective engine's contract, end to end:
//!
//! * every selectable algorithm is **bit-exact** against the linear
//!   reference — data-movement collectives reproduce the source buffer
//!   verbatim, reductions reproduce the identity-seeded ascending-rank
//!   left fold regardless of algorithm (proptests with mixed-magnitude
//!   values so f64 re-association cannot hide);
//! * virtual-time predictions match measured virtual time exactly under
//!   parallel links (the pricing-parity claim of DESIGN.md §10);
//! * a node failure mid-collective propagates as [`MpiError::NodeFailed`]
//!   on every rank — no hangs;
//! * engine calls emit per-algorithm [`TraceKind::Collective`] spans;
//! * mismatched buffer lengths across ranks surface as
//!   [`MpiError::InvalidCounts`], not a panic or a hang.

use hetsim::trace::TraceKind;
use hetsim::{Cluster, ClusterBuilder, FaultEvent, FaultPlan, Link, NodeId, Protocol, SimTime};
use mpisim::{
    CollectiveAlgo, CollectiveKind, CollectivePolicy, MpiError, ReduceOp, Universe,
    UniverseConfig,
};
use perfmodel::collective::algos_for;
use proptest::prelude::*;
use std::sync::Arc;

fn cluster(n: usize) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 50.0 + 10.0 * i as f64);
    }
    Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The one true reduction semantics every algorithm must reproduce:
/// element `i` is the identity-seeded left fold of `contribs[0][i]`,
/// `contribs[1][i]`, ... in ascending rank order.
fn reference_fold(contribs: &[Vec<f64>], op: ReduceOp) -> Vec<f64> {
    let n = contribs[0].len();
    let mut acc = vec![op.identity_f64(); n];
    for c in contribs {
        op.fold_f64(&mut acc, c);
    }
    acc
}

fn op_strategy() -> BoxedStrategy<ReduceOp> {
    prop_oneof![
        Just(ReduceOp::Sum),
        Just(ReduceOp::Prod),
        Just(ReduceOp::Max),
        Just(ReduceOp::Min),
    ]
}

// Mixed magnitudes: any re-association or tree-shaped partial fold inside
// an algorithm shifts the low bits for these ranges.
fn value_strategy() -> BoxedStrategy<f64> {
    prop_oneof![-1e3..1e3f64, 1e9..1e12f64, -1e-6..1e-6f64]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bcast_all_algorithms_deliver_root_buffer_bitwise(
        p in 2usize..10,
        len in 0usize..33,
        root_pick in 0usize..100,
        flat in proptest::collection::vec(value_strategy(), 33),
    ) {
        let root = root_pick % p;
        let payload = flat[..len].to_vec();
        for algo in algos_for(CollectiveKind::Bcast, p) {
            let u = Universe::new(cluster(p));
            let sent = payload.clone();
            let report = u.run(move |proc| {
                let world = proc.world();
                let mut buf = if world.rank() == root {
                    sent.clone()
                } else {
                    vec![0.0; sent.len()]
                };
                world.bcast_into_with(algo, &mut buf, root).unwrap();
                buf
            });
            for (rank, got) in report.results.iter().enumerate() {
                prop_assert_eq!(
                    bits(got),
                    bits(&payload),
                    "{} p={} root={} rank={}",
                    algo.name(), p, root, rank
                );
            }
        }
    }

    #[test]
    fn allgather_all_algorithms_concatenate_in_rank_order(
        p in 2usize..10,
        per in 0usize..5,
        flat in proptest::collection::vec(value_strategy(), 45),
    ) {
        let contribs: Vec<Vec<f64>> =
            (0..p).map(|r| flat[r * per..(r + 1) * per].to_vec()).collect();
        let expect: Vec<f64> = contribs.iter().flatten().copied().collect();
        for algo in algos_for(CollectiveKind::Allgather, p) {
            let u = Universe::new(cluster(p));
            let contribs = contribs.clone();
            let report = u.run(move |proc| {
                let world = proc.world();
                world
                    .allgather_eq_with(algo, &contribs[world.rank()])
                    .unwrap()
            });
            for (rank, got) in report.results.iter().enumerate() {
                prop_assert_eq!(
                    bits(got),
                    bits(&expect),
                    "{} p={} rank={}",
                    algo.name(), p, rank
                );
            }
        }
    }

    // Every reduce algorithm must produce the identity-seeded
    // ascending-rank left fold, bit for bit, at every root.
    #[test]
    fn reduce_all_algorithms_match_reference_fold_bitwise(
        p in 2usize..10,
        len in 1usize..5,
        root_pick in 0usize..100,
        op in op_strategy(),
        flat in proptest::collection::vec(value_strategy(), 45),
    ) {
        let root = root_pick % p;
        let contribs: Vec<Vec<f64>> =
            (0..p).map(|r| flat[r * len..(r + 1) * len].to_vec()).collect();
        let expect = reference_fold(&contribs, op);
        for algo in algos_for(CollectiveKind::Reduce, p) {
            let u = Universe::new(cluster(p));
            let contribs = contribs.clone();
            let report = u.run(move |proc| {
                let world = proc.world();
                world
                    .reduce_eq_f64_with(algo, &contribs[world.rank()], op, root)
                    .unwrap()
            });
            for (rank, got) in report.results.iter().enumerate() {
                if rank == root {
                    let got = got.as_ref().expect("root gets the result");
                    prop_assert_eq!(
                        bits(got),
                        bits(&expect),
                        "{} p={} root={}",
                        algo.name(), p, root
                    );
                } else {
                    prop_assert!(got.is_none());
                }
            }
        }
    }

    // The same fold contract for every allreduce algorithm — including
    // ring's pipelined partials, recursive doubling's block gather (at
    // power-of-two sizes) and scatter-allgather's per-chunk folds.
    #[test]
    fn allreduce_all_algorithms_match_reference_fold_bitwise(
        p in 2usize..10,
        len in 0usize..7,
        op in op_strategy(),
        flat in proptest::collection::vec(value_strategy(), 63),
    ) {
        let contribs: Vec<Vec<f64>> =
            (0..p).map(|r| flat[r * len..(r + 1) * len].to_vec()).collect();
        let expect = reference_fold(&contribs, op);
        for algo in algos_for(CollectiveKind::Allreduce, p) {
            let u = Universe::new(cluster(p));
            let contribs = contribs.clone();
            let report = u.run(move |proc| {
                let world = proc.world();
                world
                    .allreduce_eq_f64_with(algo, &contribs[world.rank()], op)
                    .unwrap()
            });
            for (rank, got) in report.results.iter().enumerate() {
                prop_assert_eq!(
                    bits(got),
                    bits(&expect),
                    "{} p={} rank={}",
                    algo.name(), p, rank
                );
            }
        }
    }
}

#[test]
fn i64_engine_reductions_are_exact() {
    let p = 5;
    let contribs: Vec<Vec<i64>> = (0..p as i64).map(|r| vec![r + 1, -r, 3 * r]).collect();
    for algo in algos_for(CollectiveKind::Allreduce, p) {
        let u = Universe::new(cluster(p));
        let contribs = contribs.clone();
        let report = u.run(move |proc| {
            let world = proc.world();
            world
                .allreduce_eq_i64_with(algo, &contribs[world.rank()], ReduceOp::Sum)
                .unwrap()
        });
        for got in &report.results {
            assert_eq!(got, &vec![15, -10, 30], "{}", algo.name());
        }
    }
}

/// The pricing-parity claim: under parallel links, the predicted virtual
/// time of every selectable algorithm equals the measured makespan of a
/// run that executes exactly that collective.
#[test]
fn predictions_match_measured_virtual_time_under_parallel_links() {
    let p = 9;
    let elems = 1000usize;
    for kind in [
        CollectiveKind::Bcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Allgather,
    ] {
        for algo in algos_for(kind, p) {
            let u = Universe::new(cluster(p));
            let report = u.run(move |proc| {
                let world = proc.world();
                // Allgather prices the total payload, which the driver
                // derives from the per-rank contribution — keep them equal.
                let total = match kind {
                    CollectiveKind::Allgather => (elems / p) * p,
                    _ => elems,
                };
                let predicted = world
                    .predict_collective_with(kind, algo, 0, total, 8)
                    .unwrap();
                match kind {
                    CollectiveKind::Bcast => {
                        let mut buf = vec![1.5f64; elems];
                        world.bcast_into_with(algo, &mut buf, 0).unwrap();
                    }
                    CollectiveKind::Reduce => {
                        let contrib = vec![1.5f64; elems];
                        world
                            .reduce_eq_f64_with(algo, &contrib, ReduceOp::Sum, 0)
                            .unwrap();
                    }
                    CollectiveKind::Allreduce => {
                        let contrib = vec![1.5f64; elems];
                        world
                            .allreduce_eq_f64_with(algo, &contrib, ReduceOp::Sum)
                            .unwrap();
                    }
                    CollectiveKind::Allgather => {
                        let contrib = vec![1.5f64; elems / p];
                        world.allgather_eq_with(algo, &contrib).unwrap();
                    }
                }
                predicted
            });
            let predicted = report.results[0];
            let measured = report.makespan.as_secs();
            let err = (predicted - measured).abs() / measured.max(1e-30);
            assert!(
                err < 1e-9,
                "{} {}: predicted {predicted} vs measured {measured} (rel err {err:e})",
                kind.name(),
                algo.name()
            );
        }
    }
}

/// Allgather predictions price the *total* payload; the driver passes
/// `contrib.len() * p`, so use a multiple of p above. This test pins the
/// selector itself: Auto must pick the predicted-cheapest and beat linear
/// at large sizes on the paper-style LAN.
#[test]
fn auto_selection_beats_linear_at_large_sizes() {
    let p = 9;
    let elems = 8192; // 64 KiB of f64
    let u = Universe::new(cluster(p));
    let report = u.run(move |proc| {
        let world = proc.world();
        let (bcast_algo, bcast_t) = world
            .predict_collective(CollectiveKind::Bcast, 0, elems, 8)
            .unwrap();
        let (ar_algo, ar_t) = world
            .predict_collective(CollectiveKind::Allreduce, 0, elems, 8)
            .unwrap();
        let lin_bcast = world
            .predict_collective_with(CollectiveKind::Bcast, CollectiveAlgo::Linear, 0, elems, 8)
            .unwrap();
        let lin_ar = world
            .predict_collective_with(
                CollectiveKind::Allreduce,
                CollectiveAlgo::Linear,
                0,
                elems,
                8,
            )
            .unwrap();
        (bcast_algo, bcast_t, lin_bcast, ar_algo, ar_t, lin_ar)
    });
    let (bcast_algo, bcast_t, lin_bcast, ar_algo, ar_t, lin_ar) = report.results[0];
    assert_ne!(bcast_algo, CollectiveAlgo::Linear);
    assert!(bcast_t < lin_bcast, "{bcast_t} vs linear {lin_bcast}");
    assert_ne!(ar_algo, CollectiveAlgo::Linear);
    assert!(ar_t < lin_ar, "{ar_t} vs linear {lin_ar}");
}

#[test]
fn fixed_policy_pins_the_algorithm_and_rejects_ineligible_calls() {
    // Ring pinned: the trace must show ring spans.
    let u = Universe::with_config(
        cluster(4),
        UniverseConfig::new()
            .collective_policy(CollectivePolicy::Fixed(CollectiveAlgo::Ring))
            .tracing(true),
    );
    let report = u.run(|proc| {
        let world = proc.world();
        world.allreduce_eq_f64(&[1.0, 2.0], ReduceOp::Sum).unwrap()
    });
    let trace = report.trace.expect("tracing enabled");
    let spans: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::Collective)
        .collect();
    assert_eq!(spans.len(), 4, "one span per rank");
    assert!(spans.iter().all(|e| e.name == "ring"));
    assert!(spans.iter().all(|e| e.collective));
    assert!(spans
        .iter()
        .all(|e| e.info.as_deref() == Some("allreduce p=4 elems=2")));

    // Recursive doubling pinned on a non-power-of-two communicator: every
    // call fails fast with InvalidCounts instead of running something else.
    let u = Universe::with_config(
        cluster(3),
        UniverseConfig::new()
            .collective_policy(CollectivePolicy::Fixed(CollectiveAlgo::RecursiveDoubling)),
    );
    let report = u.run(|proc| {
        let world = proc.world();
        world.allreduce_eq_f64(&[1.0], ReduceOp::Sum)
    });
    for res in &report.results {
        assert!(matches!(res, Err(MpiError::InvalidCounts(_))), "{res:?}");
    }
}

#[test]
fn engine_collectives_emit_spans_that_do_not_double_count_phases() {
    let u = Universe::with_config(cluster(3), UniverseConfig::new().tracing(true));
    let report = u.run(|proc| {
        let world = proc.world();
        let mut buf = vec![1.0f64; 64];
        world
            .bcast_into_with(CollectiveAlgo::Binomial, &mut buf, 0)
            .unwrap();
    });
    let trace = report.trace.expect("tracing enabled");
    // The collective span wraps inner sends/receives already counted by
    // phases(); the per-rank phase totals must not exceed the makespan.
    for (rank, ph) in trace.phases(3).iter().enumerate() {
        assert!(
            ph.total() <= report.makespan,
            "rank {rank} phase total {:?} exceeds makespan {:?}",
            ph.total(),
            report.makespan
        );
    }
    assert!(trace
        .events
        .iter()
        .any(|e| e.kind == TraceKind::Collective && e.name == "binomial"));
}

/// A node dying mid-collective must surface as NodeFailed on every rank —
/// for every algorithm — with nobody hanging.
#[test]
fn node_failure_propagates_through_every_algorithm() {
    for algo in algos_for(CollectiveKind::Allreduce, 4) {
        let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
            node: NodeId(2),
            at: SimTime::from_secs(2.5),
        });
        let mut b = ClusterBuilder::new();
        for i in 0..4 {
            b = b.node(format!("h{i}"), 100.0);
        }
        let cluster = Arc::new(
            b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp))
                .faults(plan)
                .build(),
        );
        let report = Universe::new(cluster).run(move |proc| {
            let world = proc.world();
            let contrib = vec![1.0f64; 256];
            for round in 0..4 {
                if proc.try_compute(100.0).is_err() {
                    return Err(round);
                }
                if world
                    .allreduce_eq_f64_with(algo, &contrib, ReduceOp::Sum)
                    .is_err()
                {
                    return Err(round);
                }
            }
            Ok(())
        });
        for (rank, res) in report.results.iter().enumerate() {
            assert!(
                res.is_err(),
                "{}: rank {rank} should observe the failure, got {res:?}",
                algo.name()
            );
        }
    }
}

#[test]
fn mismatched_buffer_lengths_error_instead_of_hanging() {
    // bcast: rank 1 sized its buffer wrong.
    let report = Universe::new(cluster(2)).run(|proc| {
        let world = proc.world();
        let mut buf = if world.rank() == 0 {
            vec![1.0f64; 8]
        } else {
            vec![0.0f64; 5]
        };
        world.bcast_into_with(CollectiveAlgo::Linear, &mut buf, 0)
    });
    assert!(report.results[0].is_ok());
    assert!(matches!(
        &report.results[1],
        Err(MpiError::InvalidCounts(_))
    ));

    // allreduce: contributions disagree; at least the fold side must error
    // with InvalidCounts and nobody may hang.
    let report = Universe::new(cluster(2)).run(|proc| {
        let world = proc.world();
        let contrib = vec![1.0f64; if world.rank() == 0 { 8 } else { 5 }];
        world.allreduce_eq_f64_with(CollectiveAlgo::Linear, &contrib, ReduceOp::Sum)
    });
    assert!(report.results.iter().any(|r| matches!(
        r,
        Err(MpiError::InvalidCounts(_))
    )));
    assert!(report.results.iter().all(|r| r.is_err()));
}

#[test]
fn single_rank_and_empty_payload_edge_cases() {
    let report = Universe::new(cluster(1)).run(|proc| {
        let world = proc.world();
        let mut buf = vec![7.0f64; 3];
        world.bcast_into(&mut buf, 0).unwrap();
        let ag = world.allgather_eq(&buf).unwrap();
        let red = world.reduce_eq_f64(&buf, ReduceOp::Sum, 0).unwrap();
        let ar = world.allreduce_eq_f64(&buf, ReduceOp::Max).unwrap();
        (buf, ag, red, ar)
    });
    let (buf, ag, red, ar) = &report.results[0];
    assert_eq!(buf, &vec![7.0; 3]);
    assert_eq!(ag, &vec![7.0; 3]);
    assert_eq!(red.as_ref().unwrap(), &vec![7.0; 3]);
    assert_eq!(ar, &vec![7.0; 3]);

    // Empty payloads complete instantly on every algorithm.
    for algo in algos_for(CollectiveKind::Allreduce, 4) {
        let report = Universe::new(cluster(4)).run(move |proc| {
            let world = proc.world();
            world
                .allreduce_eq_f64_with(algo, &[], ReduceOp::Sum)
                .unwrap()
        });
        assert!(report.results.iter().all(Vec::is_empty), "{}", algo.name());
    }
}

/// Out-of-range roots are typed errors everywhere the engine accepts a
/// root — including the `Auto` paths that price algorithms before running
/// (an unvalidated root used to reach `perfmodel::collective::select` and
/// panic there).
#[test]
fn bad_root_is_invalid_rank_not_a_panic() {
    let report = Universe::new(cluster(3)).run(|proc| {
        let world = proc.world();
        let bad = world.size(); // first out-of-range rank
        let as_invalid = |e: MpiError| match e {
            MpiError::InvalidRank { rank, comm_size } => (rank, comm_size),
            other => panic!("expected InvalidRank, got {other:?}"),
        };
        let mut seen = Vec::new();
        // Auto dispatch (selection runs before execution).
        let mut buf = [1.0f64; 4];
        seen.push(as_invalid(world.bcast_into(&mut buf, bad).unwrap_err()));
        seen.push(as_invalid(
            world
                .reduce_eq_f64(&buf, ReduceOp::Sum, bad)
                .unwrap_err(),
        ));
        seen.push(as_invalid(
            world
                .reduce_eq_i64(&[1, 2], ReduceOp::Sum, bad)
                .unwrap_err(),
        ));
        // Prediction entry points.
        seen.push(as_invalid(
            world
                .predict_collective(CollectiveKind::Bcast, bad, 4, 8)
                .unwrap_err(),
        ));
        seen.push(as_invalid(
            world
                .predict_collective_with(CollectiveKind::Bcast, CollectiveAlgo::Linear, bad, 4, 8)
                .unwrap_err(),
        ));
        seen
    });
    for r in &report.results {
        for &(rank, comm_size) in r {
            assert_eq!((rank, comm_size), (3, 3));
        }
    }
}
