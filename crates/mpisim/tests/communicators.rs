//! Communicator constructors: dup, split, create — the machinery the paper's
//! Figure 3 MPI program (`MPI_Comm_split` on `is_executing_algo`) relies on.

use hetsim::{Cluster, ClusterBuilder, Link, Protocol};
use mpisim::{Group, ReduceOp, Universe};
use std::sync::Arc;

fn cluster(n: usize) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 100.0);
    }
    Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
}

#[test]
fn dup_isolates_contexts() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        let dup = world.dup().unwrap();
        if world.rank() == 0 {
            world.send(&[1i64], 1, 0).unwrap();
            dup.send(&[2i64], 1, 0).unwrap();
        } else {
            // Receive from the dup first: the world message must not match.
            let (v, _) = dup.recv::<i64>(0, 0).unwrap();
            assert_eq!(v, vec![2]);
            let (v, _) = world.recv::<i64>(0, 0).unwrap();
            assert_eq!(v, vec![1]);
        }
    });
}

#[test]
fn split_by_parity() {
    let n = 7;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank();
        let color = (me % 2) as i32;
        let sub = world.split(Some(color), 0).unwrap().unwrap();
        // Sum the world ranks within each parity class.
        let sum = sub
            .allreduce_one_i64(me as i64, ReduceOp::Sum)
            .unwrap();
        (sub.rank(), sub.size(), sum)
    });
    // Evens: 0,2,4,6 (4 ranks, sum 12); odds: 1,3,5 (3 ranks, sum 9).
    for me in 0..n {
        let (sub_rank, sub_size, sum) = report.results[me];
        if me % 2 == 0 {
            assert_eq!(sub_size, 4);
            assert_eq!(sum, 12);
            assert_eq!(sub_rank, me / 2);
        } else {
            assert_eq!(sub_size, 3);
            assert_eq!(sum, 9);
            assert_eq!(sub_rank, me / 2);
        }
    }
}

#[test]
fn split_with_undefined_color_returns_none() {
    // This is exactly the paper's Figure 3 pattern: processes with
    // is_executing_algo == MPI_UNDEFINED drop out of em3dcomm.
    let n = 5;
    let p_active = 3;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank();
        let color = if me < p_active { Some(1) } else { None };
        let sub = world.split(color, 1).unwrap();
        match sub {
            Some(c) => {
                c.barrier().unwrap();
                Some((c.rank(), c.size()))
            }
            None => None,
        }
    });
    for me in 0..n {
        if me < p_active {
            assert_eq!(report.results[me], Some((me, p_active)));
        } else {
            assert_eq!(report.results[me], None);
        }
    }
}

#[test]
fn split_key_reorders_ranks() {
    let n = 4;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank();
        // Reverse order: higher world rank gets lower key.
        let key = (n - me) as i32;
        let sub = world.split(Some(0), key).unwrap().unwrap();
        (me, sub.rank())
    });
    for (me, sub_rank) in report.results {
        assert_eq!(sub_rank, n - 1 - me);
    }
}

#[test]
fn create_from_group_subset() {
    let n = 6;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let group = world.group().incl(&[1, 3, 5]).unwrap();
        let sub = world.create(&group).unwrap();
        match sub {
            Some(c) => {
                let sum = c
                    .allreduce_one_i64(world.rank() as i64, ReduceOp::Sum)
                    .unwrap();
                Some((c.rank(), c.size(), sum))
            }
            None => None,
        }
    });
    assert_eq!(report.results[0], None);
    assert_eq!(report.results[1], Some((0, 3, 9)));
    assert_eq!(report.results[3], Some((1, 3, 9)));
    assert_eq!(report.results[5], Some((2, 3, 9)));
}

#[test]
fn create_rejects_non_subset() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        let sub = world.split(Some(i32::from(world.rank() == 0)), 0).unwrap();
        if let Some(c) = sub {
            if c.size() == 1 {
                // A group naming a world rank outside this communicator.
                let bad = Group::from_world_ranks(vec![0, 1]).unwrap();
                assert!(c.create(&bad).is_err());
            }
        }
    });
}

#[test]
fn nested_splits() {
    // Split world into halves, then split each half again: a 2-level
    // decomposition as a 2x2 grid would use for row/column communicators.
    let n = 4;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank();
        let row = world.split(Some((me / 2) as i32), 0).unwrap().unwrap();
        let col = world.split(Some((me % 2) as i32), 0).unwrap().unwrap();
        let row_sum = row.allreduce_one_i64(me as i64, ReduceOp::Sum).unwrap();
        let col_sum = col.allreduce_one_i64(me as i64, ReduceOp::Sum).unwrap();
        (row_sum, col_sum)
    });
    assert_eq!(report.results[0], (1, 2)); // row {0,1}, col {0,2}
    assert_eq!(report.results[1], (1, 4)); // row {0,1}, col {1,3}
    assert_eq!(report.results[2], (5, 2));
    assert_eq!(report.results[3], (5, 4));
}

#[test]
fn group_accessors_through_comm() {
    let u = Universe::new(cluster(3));
    u.run(|p| {
        let world = p.world();
        let g = world.group();
        assert_eq!(g.size(), 3);
        assert_eq!(world.world_rank_of(2), 2);
        assert_eq!(world.my_world_rank(), world.rank());
    });
}

#[test]
fn split_groups_are_disjoint_partition() {
    let n = 9;
    let u = Universe::new(cluster(n));
    let report = u.run(move |p| {
        let world = p.world();
        let me = world.rank();
        let sub = world.split(Some((me % 3) as i32), 0).unwrap().unwrap();
        sub.group().world_ranks().to_vec()
    });
    // Union of all distinct groups must be 0..9 without overlap.
    let mut all: Vec<usize> = report.results.into_iter().flatten().collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all, (0..n).collect::<Vec<_>>());
}

#[test]
fn split_all_undefined_yields_none_everywhere() {
    let u = Universe::new(cluster(3));
    let report = u.run(|p| {
        let world = p.world();
        world.split(None, 0).unwrap().is_none()
    });
    assert_eq!(report.results, vec![true; 3]);
}

#[test]
fn create_with_empty_group_yields_none_everywhere() {
    let u = Universe::new(cluster(3));
    let report = u.run(|p| {
        let world = p.world();
        let empty = Group::empty();
        world.create(&empty).unwrap().is_none()
    });
    assert_eq!(report.results, vec![true; 3]);
}

#[test]
fn dup_of_dup_is_isolated_from_both_ancestors() {
    let u = Universe::new(cluster(2));
    u.run(|p| {
        let world = p.world();
        let d1 = world.dup().unwrap();
        let d2 = d1.dup().unwrap();
        if world.rank() == 0 {
            world.send(&[1i64], 1, 0).unwrap();
            d1.send(&[2i64], 1, 0).unwrap();
            d2.send(&[3i64], 1, 0).unwrap();
        } else {
            assert_eq!(d2.recv::<i64>(0, 0).unwrap().0, vec![3]);
            assert_eq!(d1.recv::<i64>(0, 0).unwrap().0, vec![2]);
            assert_eq!(world.recv::<i64>(0, 0).unwrap().0, vec![1]);
        }
    });
}

#[test]
fn split_single_member_color_gives_singleton_comm() {
    let u = Universe::new(cluster(4));
    let report = u.run(|p| {
        let world = p.world();
        // Every rank its own color: four singleton communicators.
        let sub = world
            .split(Some(world.rank() as i32), 0)
            .unwrap()
            .unwrap();
        (sub.rank(), sub.size())
    });
    for r in report.results {
        assert_eq!(r, (0, 1));
    }
}

#[test]
fn dup_local_agrees_without_communicating() {
    let u = Universe::new(cluster(3));
    u.run(|p| {
        let world = p.world();
        let a = world.dup_local(0);
        let b = world.dup_local(1);
        // Same (parent, seq) on every rank lands on the same context;
        // distinct seqs are isolated from each other and from the parent.
        if world.rank() == 0 {
            world.send(&[1i64], 1, 0).unwrap();
            a.send(&[2i64], 1, 0).unwrap();
            b.send(&[3i64], 1, 0).unwrap();
        } else if world.rank() == 1 {
            assert_eq!(b.recv::<i64>(0, 0).unwrap().0, vec![3]);
            assert_eq!(a.recv::<i64>(0, 0).unwrap().0, vec![2]);
            assert_eq!(world.recv::<i64>(0, 0).unwrap().0, vec![1]);
        }
    });
}

#[test]
fn dup_local_works_while_a_node_is_dead() {
    use hetsim::{FaultEvent, FaultPlan, NodeId, SimTime};
    let mut b = ClusterBuilder::new();
    for i in 0..3 {
        b = b.node(format!("h{i}"), 100.0);
    }
    let cluster = Arc::new(
        b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp))
            .faults(FaultPlan::new(vec![FaultEvent::NodeCrash {
                node: NodeId(2),
                at: SimTime::from_secs(0.0),
            }]))
            .build(),
    );
    let report = Universe::new(cluster).run(|p| {
        let world = p.world();
        // A collective dup would need rank 2's cooperation; the local dup
        // must succeed on the survivors regardless.
        let control = world.dup_local(0);
        if world.rank() == 0 {
            control.send(&[7i64], 1, 0).map(|_| 7)
        } else if world.rank() == 1 {
            control.recv::<i64>(0, 0).map(|(v, _)| v[0])
        } else {
            Ok(0)
        }
    });
    assert_eq!(*report.results[0].as_ref().unwrap(), 7);
    assert_eq!(*report.results[1].as_ref().unwrap(), 7);
}
