//! The fault-tolerant collective contract (DESIGN.md §12), end to end:
//!
//! * **Survivor contract** — when a node crashes mid-collective, every
//!   rank returns either the *complete, bit-exact* result (identical to
//!   the fault-free reference fold / source buffer) or a typed
//!   fault-shaped error ([`MpiError::NodeFailed`] and friends) — never a
//!   torn buffer, never a hang, for every engine algorithm and for crash
//!   times before, inside and after the collective's virtual window;
//! * **Agreement unanimity** — the post-collective ULFM-style
//!   [`Comm::agree`] round yields the *same* verdict on every survivor:
//!   identical flag, identical failed set (a subset of the actually
//!   crashed ranks), identical completion time, and a flag equal to the
//!   AND of the depositors' collective outcomes;
//! * **Determinism** — under `ParallelLinks` (transfer timing free of
//!   host-schedule-ordered arbitration) the same cluster and fault plan
//!   replay the identical per-rank error surface, agreement verdicts and
//!   virtual makespan, run after run.
//!
//! [`Comm::agree`]: mpisim::Comm::agree

use hetsim::{ClusterBuilder, FaultEvent, FaultPlan, Link, NodeId, Protocol, SimTime};
use mpisim::{Agreement, CollectiveAlgo, CollectiveKind, MpiError, ReduceOp, Universe};
use perfmodel::collective::algos_for;
use proptest::prelude::*;
use std::sync::Arc;

/// One rank's observation: the collective's outcome (normalised to an
/// optional payload) and the agreement verdict that followed it.
type Outcome = (
    Result<Option<Vec<f64>>, MpiError>,
    Result<Agreement, MpiError>,
);

/// The errors a fault is allowed to surface as. Anything else (a value
/// error, a panic, an `InvalidCounts`) is a contract violation under a
/// pure crash plan.
fn fault_shaped(e: &MpiError) -> bool {
    matches!(
        e,
        MpiError::NodeFailed { .. }
            | MpiError::PeerTerminated { .. }
            | MpiError::LinkDown { .. }
            | MpiError::Timeout
            | MpiError::Deadlock { .. }
    )
}

/// Heterogeneous `n`-node cluster on parallel links with one crash.
fn crashy_cluster(n: usize, crash: usize, at: f64) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 40.0 + 15.0 * i as f64);
    }
    Arc::new(
        b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp))
            .faults(FaultPlan::none().with(FaultEvent::NodeCrash {
                node: NodeId(crash),
                at: SimTime::from_secs(at),
            }))
            .build(),
    )
}

/// Per-rank contribution with mixed magnitudes so any re-association or
/// partial fold an algorithm might do shifts low bits.
fn contrib(rank: usize, elems: usize) -> Vec<f64> {
    (0..elems)
        .map(|i| ((rank * 31 + i * 7 + 1) as f64) * 1e3f64.powi((i % 3) as i32 - 1))
        .collect()
}

/// The identity-seeded ascending-rank left fold every reduction must hit.
fn reference_fold(p: usize, elems: usize, op: ReduceOp) -> Vec<f64> {
    let mut acc = vec![op.identity_f64(); elems];
    for r in 0..p {
        op.fold_f64(&mut acc, &contrib(r, elems));
    }
    acc
}

/// The bit-exact payload rank `r` must observe on success, or `None`
/// where the kind leaves that rank without output (non-root reduce).
fn expected_payload(
    kind: CollectiveKind,
    p: usize,
    elems: usize,
    root: usize,
    r: usize,
) -> Option<Vec<f64>> {
    match kind {
        CollectiveKind::Bcast => Some(contrib(root, elems)),
        CollectiveKind::Reduce => {
            (r == root).then(|| reference_fold(p, elems, ReduceOp::Sum))
        }
        CollectiveKind::Allreduce => Some(reference_fold(p, elems, ReduceOp::Sum)),
        CollectiveKind::Allgather => {
            Some((0..p).flat_map(|s| contrib(s, elems)).collect())
        }
    }
}

/// Runs `kind` with a pinned `algo` on every rank of a crashy cluster,
/// following it with an agreement round on the collective's outcome.
/// Returns the per-rank observations and the run's virtual makespan.
fn run_crashy(
    kind: CollectiveKind,
    algo: CollectiveAlgo,
    p: usize,
    elems: usize,
    root: usize,
    crash: usize,
    at: f64,
) -> (Vec<Outcome>, SimTime) {
    let u = Universe::new(crashy_cluster(p, crash, at));
    let report = u.run(move |proc| -> Outcome {
        let world = proc.world();
        let r = world.rank();
        let coll = match kind {
            CollectiveKind::Bcast => {
                let mut buf = if r == root {
                    contrib(root, elems)
                } else {
                    vec![0.0; elems]
                };
                world.bcast_into_with(algo, &mut buf, root).map(|()| Some(buf))
            }
            CollectiveKind::Reduce => {
                world.reduce_eq_f64_with(algo, &contrib(r, elems), ReduceOp::Sum, root)
            }
            CollectiveKind::Allreduce => world
                .allreduce_eq_f64_with(algo, &contrib(r, elems), ReduceOp::Sum)
                .map(Some),
            CollectiveKind::Allgather => {
                world.allgather_eq_with(algo, &contrib(r, elems)).map(Some)
            }
        };
        let agreement = world.agree(coll.is_ok());
        (coll, agreement)
    });
    (report.results, report.makespan)
}

/// Every `(kind, algo)` pair the engine can run over `p` ranks.
fn all_pairs(p: usize) -> Vec<(CollectiveKind, CollectiveAlgo)> {
    [
        CollectiveKind::Bcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Allgather,
    ]
    .into_iter()
    .flat_map(|kind| algos_for(kind, p).into_iter().map(move |a| (kind, a)))
    .collect()
}

/// Checks the full contract on one run's observations; `label` prefixes
/// every assertion message with the scenario coordinates.
fn assert_contract(
    kind: CollectiveKind,
    p: usize,
    elems: usize,
    root: usize,
    crash: usize,
    outcomes: &[Outcome],
    label: &str,
) {
    // Survivor contract: bit-exact payload or fault-shaped error.
    for (r, (coll, _)) in outcomes.iter().enumerate() {
        match coll {
            Ok(got) => {
                let want = expected_payload(kind, p, elems, root, r);
                let bits = |v: &Option<Vec<f64>>| -> Option<Vec<u64>> {
                    v.as_ref().map(|v| v.iter().map(|x| x.to_bits()).collect())
                };
                assert_eq!(
                    bits(got),
                    bits(&want),
                    "{label}: rank {r} returned a torn or wrong result"
                );
            }
            Err(e) => assert!(
                fault_shaped(e),
                "{label}: rank {r} surfaced a non-fault error {e:?}"
            ),
        }
    }

    // Agreement unanimity: every completed verdict is identical, its
    // failed set only ever names the crashed rank, and the flag is the
    // AND of the depositors' collective outcomes.
    let verdicts: Vec<(usize, &Agreement)> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(r, (_, a))| a.as_ref().ok().map(|a| (r, a)))
        .collect();
    for (r, a) in &verdicts {
        assert_eq!(
            Some(a),
            verdicts.first().map(|(_, a)| a),
            "{label}: rank {r} disagrees with rank {}",
            verdicts[0].0
        );
        assert!(
            a.failed.iter().all(|f| *f == crash),
            "{label}: failed set {:?} names a live rank",
            a.failed
        );
        let expected_flag = outcomes
            .iter()
            .enumerate()
            .filter(|(dep, _)| !a.failed.contains(dep))
            .all(|(_, (coll, _))| coll.is_ok());
        assert_eq!(
            a.flag, expected_flag,
            "{label}: flag does not AND the depositors' outcomes"
        );
    }
    // A crash can wedge at most the dead rank's own agreement; survivors
    // always reach a verdict (the round completes once the dead member is
    // observed) — so at most one rank may lack one.
    assert!(
        verdicts.len() >= p - 1,
        "{label}: {} rank(s) never reached an agreement verdict",
        p - verdicts.len()
    );
    for (r, (_, a)) in outcomes.iter().enumerate() {
        if let Err(e) = a {
            assert_eq!(
                r, crash,
                "{label}: live rank {r} failed its agreement round: {e:?}"
            );
            assert!(fault_shaped(e), "{label}: {e:?}");
        }
    }
}

/// Crash times straddling the collective window on this cluster scale:
/// before the first send, inside the movement, and long after completion.
const CRASH_TIMES: [f64; 4] = [1e-7, 5e-4, 5e-3, 10.0];

#[test]
fn every_algorithm_meets_the_contract_across_crash_timings() {
    for p in [4usize, 6] {
        let root = p - 2;
        for (kind, algo) in all_pairs(p) {
            for crash in [0, root] {
                for at in CRASH_TIMES {
                    let label = format!(
                        "{}/{} p={p} crash={crash}@{at}",
                        kind.name(),
                        algo.name()
                    );
                    let (outcomes, _) = run_crashy(kind, algo, p, 8, root, crash, at);
                    assert_contract(kind, p, 8, root, crash, &outcomes, &label);
                }
            }
        }
    }
}

#[test]
fn a_late_crash_leaves_the_collective_and_agreement_clean() {
    // Crash far past the window: the collective and the agreement round
    // both complete on every rank, unanimously successful.
    for p in [4usize, 6] {
        for (kind, algo) in all_pairs(p) {
            let (outcomes, _) = run_crashy(kind, algo, p, 8, 0, p - 1, 1e6);
            for (r, (coll, agreement)) in outcomes.iter().enumerate() {
                assert!(coll.is_ok(), "rank {r}: {:?}", coll);
                let a = agreement.as_ref().unwrap_or_else(|e| {
                    panic!("{}/{} rank {r}: {e:?}", kind.name(), algo.name())
                });
                assert!(a.flag && a.failed.is_empty(), "rank {r}: {a:?}");
            }
        }
    }
}

#[test]
fn the_same_fault_plan_replays_the_same_surface_under_parallel_links() {
    for p in [4usize, 6] {
        for (kind, algo) in all_pairs(p) {
            for at in [5e-4, 5e-3] {
                let (a, ma) = run_crashy(kind, algo, p, 8, 0, p - 1, at);
                let (b, mb) = run_crashy(kind, algo, p, 8, 0, p - 1, at);
                let label = format!("{}/{} p={p} at={at}", kind.name(), algo.name());
                assert_eq!(a, b, "{label}: error surface diverged between runs");
                assert_eq!(ma, mb, "{label}: makespan diverged between runs");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random sizes, roots, crash ranks and timings: the contract holds
    /// for every selectable algorithm of a random kind, and the survivor
    /// set is identical across a replay.
    #[test]
    fn random_crashes_never_break_the_contract(
        p in 3usize..8,
        elems in 1usize..24,
        root_pick in 0usize..100,
        crash_pick in 0usize..100,
        kind_pick in 0usize..4,
        at_exp in -6.0f64..1.0,
    ) {
        let root = root_pick % p;
        let crash = crash_pick % p;
        let at = 10f64.powf(at_exp);
        let kind = [
            CollectiveKind::Bcast,
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
        ][kind_pick];
        for algo in algos_for(kind, p) {
            let label = format!(
                "{}/{} p={p} root={root} crash={crash}@{at:.2e}",
                kind.name(),
                algo.name()
            );
            let (outcomes, makespan) =
                run_crashy(kind, algo, p, elems, root, crash, at);
            assert_contract(kind, p, elems, root, crash, &outcomes, &label);
            let (replay, replay_makespan) =
                run_crashy(kind, algo, p, elems, root, crash, at);
            let survivors = |o: &[Outcome]| -> Vec<bool> {
                o.iter().map(|(c, _)| c.is_ok()).collect()
            };
            prop_assert_eq!(
                survivors(&outcomes),
                survivors(&replay),
                "{}: survivor set changed on replay",
                label
            );
            prop_assert_eq!(&outcomes, &replay, "{}: surface diverged", label);
            prop_assert_eq!(makespan, replay_makespan, "{}: makespan diverged", label);
        }
    }
}
