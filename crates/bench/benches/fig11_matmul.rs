//! Figure 11 bench: MM execution time and speedup across matrix sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use hmpi_bench::{fig11, render_table};
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let points = fig11::series(&[9, 12, 18]);
    println!(
        "\n{}",
        render_table(
            "Figure 11(a): MM execution time, HMPI vs homogeneous MPI",
            "matrix size",
            &points
        )
    );
    println!("# Figure 11(b): speedups");
    for p in &points {
        println!("  matrix size {:>6}: speedup {:.2}", p.x, p.speedup());
    }
    for p in &points {
        assert!(
            p.speedup() > 1.5,
            "reproduction regression: expected a large MM speedup at {}",
            p.x
        );
    }

    let mut g = c.benchmark_group("fig11_matmul");
    g.sample_size(10);
    g.bench_function("point_n9", |b| {
        b.iter(|| black_box(fig11::point(black_box(9))))
    });
    g.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
