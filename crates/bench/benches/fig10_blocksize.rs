//! Figure 10 bench: MM execution time vs generalised block size `l`.

use criterion::{criterion_group, criterion_main, Criterion};
use hmpi_bench::{fig10, render_table};
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let n = 9;
    let ls = [3usize, 4, 6, 9];
    let points = fig10::series(&ls, n);
    println!(
        "\n{}",
        render_table(
            &format!("Figure 10: MM time vs generalised block size (r = 8, n = {n} blocks)"),
            "l",
            &points
        )
    );
    let choice = fig10::timeof_choice(n);
    println!("HMPI_Timeof chooses l = {choice}");
    for p in &points {
        assert!(
            p.speedup() > 1.0,
            "reproduction regression: HMPI must win at l = {}",
            p.x
        );
    }

    let mut g = c.benchmark_group("fig10_blocksize");
    g.sample_size(10);
    g.bench_function("point_l9", |b| {
        b.iter(|| black_box(fig10::point(black_box(9), black_box(9))))
    });
    g.bench_function("timeof_choice", |b| {
        b.iter(|| black_box(fig10::timeof_choice(black_box(9))))
    });
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
