//! Ablation benches: selection algorithm, contention model and recon
//! freshness (the design choices DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, Criterion};
use hmpi_bench::ablation;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    println!("\n# Ablation: selection algorithm (EM3D, paper LAN)");
    for p in ablation::mapping_algorithms(60) {
        println!(
            "  {:>10}: measured {:.4}s predicted {:.4}s",
            p.algo, p.time, p.predicted
        );
    }
    println!("# Ablation: network contention (MM, l = 9)");
    for p in ablation::contention_models(9) {
        println!("  {:>16}: {:.4}s", p.model, p.hmpi);
    }
    println!("# Ablation: recon freshness (EM3D, loaded cluster)");
    for p in ablation::recon_staleness(60) {
        println!("  {:>18}: {:.4}s", p.scenario, p.time);
    }

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("mapping_algorithms", |b| {
        b.iter(|| black_box(ablation::mapping_algorithms(black_box(60))))
    });
    g.bench_function("contention_models", |b| {
        b.iter(|| black_box(ablation::contention_models(black_box(9))))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
