//! Microbenchmarks of the substrates the reproduction is built on: the
//! model-language pipeline (parse → instantiate → scheme interpretation)
//! and the mapping search — the pieces whose real CPU cost gates how fast
//! `HMPI_Timeof` sweeps and `HMPI_Group_create` selections run.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::{Cluster, SpeedEstimates};
use hmpi::{select_mapping, MappingAlgorithm, SelectionCtx};
use hmpi_apps::em3d::{em3d_model, Em3dConfig, Em3dSystem, EM3D_MODEL_SOURCE};
use hmpi_apps::matmul::{matmul_model, GeneralizedBlockDist, MATMUL_MODEL_SOURCE};
use perfmodel::{CompiledModel, CostModel, PerformanceModel};
use std::hint::black_box;

fn bench_perfmodel(c: &mut Criterion) {
    let mut g = c.benchmark_group("perfmodel");

    g.bench_function("parse_figure4", |b| {
        b.iter(|| black_box(CompiledModel::compile(black_box(EM3D_MODEL_SOURCE)).unwrap()))
    });
    g.bench_function("parse_figure7", |b| {
        b.iter(|| black_box(CompiledModel::compile(black_box(MATMUL_MODEL_SOURCE)).unwrap()))
    });

    let system = Em3dSystem::generate(&Em3dConfig::ramp(9, 200, 4.0, 1));
    g.bench_function("instantiate_em3d_p9", |b| {
        b.iter(|| black_box(em3d_model(black_box(&system), 10).unwrap()))
    });

    let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
    let dist = GeneralizedBlockDist::heterogeneous(3, 9, &speeds);
    let inst = matmul_model(&dist, 8, 18).unwrap();
    let cost = CostModel::homogeneous(9, 50.0, 150e-6, 11e6);
    g.bench_function("scheme_figure7_n18", |b| {
        b.iter(|| black_box(inst.predict_time(black_box(&cost)).unwrap()))
    });
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let cluster = Cluster::paper_lan_em3d();
    let placement: Vec<_> = cluster.node_ids().collect();
    let estimates = SpeedEstimates::from_base_speeds(&cluster);
    let system = Em3dSystem::generate(&Em3dConfig::ramp(9, 200, 4.0, 1));
    let model = em3d_model(&system, 10).unwrap();
    let ctx = SelectionCtx {
        cluster: &cluster,
        placement: &placement,
        estimates: &estimates,
        candidates: (0..9).collect(),
        pinned_parent: Some(0),
    };

    let mut g = c.benchmark_group("mapping");
    g.bench_function("greedy_p9", |b| {
        b.iter(|| black_box(select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap()))
    });
    g.bench_function("greedy_refined_p9", |b| {
        b.iter(|| {
            black_box(
                select_mapping(MappingAlgorithm::GreedyRefined { max_rounds: 64 }, &model, &ctx)
                    .unwrap(),
            )
        })
    });
    g.bench_function("annealing_p9_400", |b| {
        b.iter(|| {
            black_box(
                select_mapping(
                    MappingAlgorithm::Annealing {
                        seed: 7,
                        iters: 400,
                    },
                    &model,
                    &ctx,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_perfmodel, bench_mapping);
criterion_main!(benches);
