//! Figure 9 bench: regenerates the EM3D HMPI-vs-MPI series (printed once)
//! and Criterion-measures the harness cost of one representative point.

use criterion::{criterion_group, criterion_main, Criterion};
use hmpi_bench::{fig9, render_table};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    // Regenerate and print the figure series once, so `cargo bench`
    // reproduces the paper's rows alongside the timing statistics.
    let points = fig9::series(&[60, 150, 300]);
    println!(
        "\n{}",
        render_table(
            "Figure 9(a): EM3D execution time, HMPI vs MPI",
            "total nodes",
            &points
        )
    );
    println!("# Figure 9(b): speedups");
    for p in &points {
        println!("  total nodes {:>6}: speedup {:.2}", p.x, p.speedup());
    }
    for p in &points {
        assert!(
            p.speedup() > 1.0,
            "reproduction regression: HMPI must win at size {}",
            p.x
        );
    }

    let mut g = c.benchmark_group("fig9_em3d");
    g.sample_size(10);
    g.bench_function("point_base60", |b| {
        b.iter(|| black_box(fig9::point(black_box(60))))
    });
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
