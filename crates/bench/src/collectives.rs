//! Collective-engine benchmark: measured virtual time vs `timeof`
//! prediction for every selectable algorithm, plus the selector's win over
//! the linear baseline, on the paper's 9-machine LAN
//! (`figures -- collectives` → `BENCH_collectives.json`).
//!
//! Two claims are checked (and gated in CI):
//!
//! * **pricing parity** — for every (kind, algorithm, size) the engine's
//!   prediction replays the exact schedule the executor runs, so the
//!   prediction error stays under 5% (under the paper LAN's parallel-links
//!   contention it is exact up to float noise);
//! * **selection quality** — at ≥64 KiB the `Auto`-selected broadcast and
//!   allreduce beat the linear baseline in measured virtual time.

use hetsim::Cluster;
use mpisim::{CollectiveAlgo, CollectiveKind, ReduceOp, Universe};
use perfmodel::collective::algos_for;
use std::sync::Arc;

/// One (kind, algorithm, message size) measurement.
#[derive(Debug, Clone)]
pub struct CollPoint {
    /// Collective kind ("bcast" / "allreduce").
    pub kind: &'static str,
    /// Communicator size.
    pub p: usize,
    /// Message size in bytes (f64 elements × 8).
    pub bytes: usize,
    /// Algorithm name.
    pub algo: &'static str,
    /// `timeof`-style predicted virtual time, seconds.
    pub predicted_s: f64,
    /// Measured virtual makespan of a run executing only this collective.
    pub measured_s: f64,
    /// Whether the `Auto` selector would pick this algorithm at this size.
    pub selected: bool,
}

impl CollPoint {
    /// Relative prediction error, percent.
    pub fn error_pct(&self) -> f64 {
        if self.measured_s <= 0.0 {
            return 0.0;
        }
        (self.predicted_s - self.measured_s).abs() / self.measured_s * 100.0
    }

    /// Measured speedup of this algorithm over the same-size linear point.
    fn speedup_over(&self, linear_s: f64) -> f64 {
        if self.measured_s > 0.0 {
            linear_s / self.measured_s
        } else {
            f64::INFINITY
        }
    }
}

/// The whole benchmark.
#[derive(Debug, Clone)]
pub struct CollectivesBench {
    /// Every (kind, algorithm, size) point, in sweep order.
    pub points: Vec<CollPoint>,
}

impl CollectivesBench {
    /// Worst prediction error over all points, percent — the CI gate.
    pub fn max_error_pct(&self) -> f64 {
        self.points
            .iter()
            .map(CollPoint::error_pct)
            .fold(0.0, f64::max)
    }

    /// The linear baseline's measured time for a (kind, p, bytes) cell.
    fn linear_s(&self, kind: &str, p: usize, bytes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|c| c.kind == kind && c.p == p && c.bytes == bytes && c.algo == "linear")
            .map(|c| c.measured_s)
    }

    /// Measured speedup of the selector's pick over linear, for every
    /// (kind, p, bytes) cell: `(kind, p, bytes, algo, speedup)`.
    pub fn selector_wins(&self) -> Vec<(&'static str, usize, usize, &'static str, f64)> {
        self.points
            .iter()
            .filter(|c| c.selected)
            .filter_map(|c| {
                let lin = self.linear_s(c.kind, c.p, c.bytes)?;
                Some((c.kind, c.p, c.bytes, c.algo, c.speedup_over(lin)))
            })
            .collect()
    }
}

fn kind_name(kind: CollectiveKind) -> &'static str {
    kind.name()
}

/// Runs one collective of `elems` f64 elements with a pinned algorithm on
/// its own universe and returns `(predicted, measured)` virtual seconds.
fn measure(
    cluster: &Arc<Cluster>,
    kind: CollectiveKind,
    algo: CollectiveAlgo,
    elems: usize,
) -> (f64, f64) {
    let u = Universe::new(cluster.clone());
    let p = cluster.len();
    let report = u.run(move |proc| {
        let world = proc.world();
        let predicted = world
            .predict_collective_with(kind, algo, 0, elems, 8)
            .expect("eligible algorithm");
        match kind {
            CollectiveKind::Bcast => {
                let mut buf = vec![1.0f64; elems];
                world.bcast_into_with(algo, &mut buf, 0).expect("bcast");
            }
            CollectiveKind::Allreduce => {
                let contrib = vec![1.0f64; elems];
                world
                    .allreduce_eq_f64_with(algo, &contrib, ReduceOp::Sum)
                    .expect("allreduce");
            }
            CollectiveKind::Reduce => {
                let contrib = vec![1.0f64; elems];
                world
                    .reduce_eq_f64_with(algo, &contrib, ReduceOp::Sum, 0)
                    .expect("reduce");
            }
            CollectiveKind::Allgather => {
                let contrib = vec![1.0f64; elems / p];
                world.allgather_eq_with(algo, &contrib).expect("allgather");
            }
        }
        predicted
    });
    (report.results[0], report.makespan.as_secs())
}

/// The `Auto` selector's pick for a (kind, size) cell.
fn selected_algo(cluster: &Arc<Cluster>, kind: CollectiveKind, elems: usize) -> CollectiveAlgo {
    let u = Universe::new(cluster.clone());
    let report = u.run(move |proc| {
        proc.world()
            .predict_collective(kind, 0, elems, 8)
            .expect("root 0 is always valid")
            .0
    });
    report.results[0]
}

fn sweep(bench: &mut CollectivesBench, cluster: &Arc<Cluster>, sizes: &[usize]) {
    let p = cluster.len();
    for kind in [CollectiveKind::Bcast, CollectiveKind::Allreduce] {
        for &bytes in sizes {
            let elems = (bytes / 8).max(1);
            let chosen = selected_algo(cluster, kind, elems);
            for algo in algos_for(kind, p) {
                let (predicted_s, measured_s) = measure(cluster, kind, algo, elems);
                bench.points.push(CollPoint {
                    kind: kind_name(kind),
                    p,
                    bytes,
                    algo: algo.name(),
                    predicted_s,
                    measured_s,
                    selected: algo == chosen,
                });
            }
        }
    }
}

/// Runs the benchmark: the paper's 9-machine LAN at 1 B..512 KiB, plus an
/// 8-machine slice where recursive doubling becomes eligible.
pub fn run(quick: bool) -> CollectivesBench {
    let sizes: &[usize] = if quick {
        &[8, 65_536]
    } else {
        &[8, 8_192, 65_536, 524_288]
    };
    let mut bench = CollectivesBench { points: Vec::new() };
    let nine = Arc::new(Cluster::paper_lan_em3d());
    sweep(&mut bench, &nine, sizes);
    // Power-of-two communicator: recursive doubling joins the pool.
    let eight = Arc::new(Cluster::paper_lan(&hetsim::PAPER_EM3D_SPEEDS[..8]));
    sweep(&mut bench, &eight, if quick { &[65_536] } else { sizes });
    bench
}

/// Text-table rendering.
pub fn render(b: &CollectivesBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Collective engine: measured virtual time vs timeof prediction (paper LAN)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>3} {:>8} {:>18} {:>14} {:>14} {:>8} {:>5}",
        "collective", "p", "bytes", "algorithm", "measured [s]", "predicted [s]", "err [%]", "sel"
    );
    for c in &b.points {
        let _ = writeln!(
            out,
            "{:>10} {:>3} {:>8} {:>18} {:>14.6e} {:>14.6e} {:>8.3} {:>5}",
            c.kind,
            c.p,
            c.bytes,
            c.algo,
            c.measured_s,
            c.predicted_s,
            c.error_pct(),
            if c.selected { "*" } else { "" }
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "# Selector vs linear baseline (measured virtual time)");
    let _ = writeln!(
        out,
        "{:>10} {:>3} {:>8} {:>18} {:>8}",
        "collective", "p", "bytes", "chosen", "speedup"
    );
    for (kind, p, bytes, algo, speedup) in b.selector_wins() {
        let _ = writeln!(
            out,
            "{kind:>10} {p:>3} {bytes:>8} {algo:>18} {speedup:>8.2}"
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "max prediction error: {:.3}%", b.max_error_pct());
    out
}

/// Serialises the benchmark to JSON (hand-formatted; the workspace's serde
/// shim has no serializer).
pub fn to_json(b: &CollectivesBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"max_error_pct\": {:.4},", b.max_error_pct());
    let _ = writeln!(out, "  \"points\": [");
    let n = b.points.len();
    for (i, c) in b.points.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"p\": {}, \"bytes\": {}, \"algo\": \"{}\", \"predicted_s\": {:.9e}, \"measured_s\": {:.9e}, \"error_pct\": {:.4}, \"selected\": {}}}{comma}",
            c.kind, c.p, c.bytes, c.algo, c.predicted_s, c.measured_s, c.error_pct(), c.selected
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"selector_vs_linear\": [");
    let wins = b.selector_wins();
    let n = wins.len();
    for (i, (kind, p, bytes, algo, speedup)) in wins.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{kind}\", \"p\": {p}, \"bytes\": {bytes}, \"chosen\": \"{algo}\", \"speedup\": {speedup:.4}}}{comma}"
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_stay_within_five_percent() {
        let b = run(true);
        assert!(!b.points.is_empty());
        assert!(
            b.max_error_pct() < 5.0,
            "worst prediction error {:.3}% breaches the 5% gate",
            b.max_error_pct()
        );
    }

    #[test]
    fn selector_beats_linear_at_64kib() {
        let b = run(true);
        for (kind, p, bytes, algo, speedup) in b.selector_wins() {
            if bytes >= 65_536 {
                assert!(
                    speedup > 1.0,
                    "{kind} p={p} at {bytes} B: selector chose {algo} with speedup {speedup:.3}"
                );
                assert_ne!(algo, "linear", "{kind} p={p} at {bytes} B");
            }
        }
        // Both headline kinds are present at 64 KiB on the 9-node LAN.
        for want in ["bcast", "allreduce"] {
            assert!(
                b.selector_wins()
                    .iter()
                    .any(|(k, p, bytes, _, _)| *k == want && *p == 9 && *bytes == 65_536),
                "missing 64 KiB selector row for {want}"
            );
        }
    }

    #[test]
    fn recursive_doubling_appears_on_the_power_of_two_slice() {
        let b = run(true);
        assert!(
            b.points
                .iter()
                .any(|c| c.p == 8 && c.algo == "recursive-doubling"),
            "p=8 sweep must include recursive doubling"
        );
        assert!(
            !b.points
                .iter()
                .any(|c| c.p == 9 && c.algo == "recursive-doubling"),
            "recursive doubling is ineligible at p=9"
        );
    }
}
