//! Figure 9: EM3D execution times (a) and speedup (b), HMPI vs MPI.
//!
//! The paper plots execution time against problem size on the 9-workstation
//! LAN and reports HMPI "almost 1.5 times faster" than the standard MPI
//! program. We sweep the total node count of the decomposed object, keeping
//! the paper's 9 sub-bodies with an irregular size ramp.

use crate::{em3d_cluster, ComparisonPoint};
use hmpi_apps::em3d::{run_hmpi, run_mpi, Em3dConfig};

/// Default x-axis: base nodes per sub-body.
pub const DEFAULT_SIZES: &[usize] = &[50, 100, 200, 400, 800];

/// Sub-body count — the paper's 9-machine experiment.
pub const P: usize = 9;

/// Size spread of the irregular decomposition (largest / smallest body).
///
/// The paper does not publish its decomposition's size distribution; the
/// speedup of HMPI over rank-order MPI is governed by this spread (the MPI
/// worst case is the biggest body landing on the slowest machine, the HMPI
/// floor is the smallest body on the slowest machine). A spread of 1.6
/// lands in the paper's reported ≈1.5× band; crank it up to see the gap
/// widen.
pub const SPREAD: f64 = 1.6;

/// Iterations per run.
pub const NITER: usize = 5;

/// Recon benchmark size (the model's `k`).
pub const K: usize = 10;

/// Runs one problem size; `base` is the smallest sub-body's node count.
pub fn point(base: usize) -> ComparisonPoint {
    let cfg = Em3dConfig::ramp(P, base, SPREAD, 0xE3D + base as u64);
    let total_nodes = cfg.nodes_per_body.iter().sum();
    let mpi = run_mpi(em3d_cluster(), &cfg, NITER);
    let hmpi = run_hmpi(em3d_cluster(), &cfg, NITER, K);
    ComparisonPoint {
        x: total_nodes,
        mpi: mpi.time,
        hmpi: hmpi.time,
    }
}

/// The full Figure 9 series.
pub fn series(sizes: &[usize]) -> Vec<ComparisonPoint> {
    sizes.iter().map(|&b| point(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmpi_wins_at_every_size() {
        for p in series(&[60, 150]) {
            assert!(
                p.speedup() > 1.1,
                "size {}: speedup {:.2}",
                p.x,
                p.speedup()
            );
        }
    }

    #[test]
    fn speedup_is_paper_like() {
        // Paper: "almost 1.5 times faster". Accept a band around it.
        let p = point(150);
        assert!(
            (1.15..4.0).contains(&p.speedup()),
            "speedup {:.2} out of band",
            p.speedup()
        );
    }
}
