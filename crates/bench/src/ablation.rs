//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * [`mapping_algorithms`] — quality/robustness of the selection search:
//!   exhaustive vs greedy vs greedy+local-search vs annealing on the paper
//!   LAN with the EM3D model;
//! * [`contention_models`] — how the network contention model changes the
//!   figures (the paper's switch enables parallel pairwise communication;
//!   a shared bus or serialised NICs would not);
//! * [`recon_staleness`] — what stale speed estimates cost: group selection
//!   with fresh recon vs estimates measured before an external load
//!   appeared.

use hetsim::{Cluster, ClusterBuilder, ContentionModel, Link, LoadModel, Processor, Protocol,
             SimTime};
use hmpi::MappingAlgorithm;
use hmpi_apps::em3d::{run_hmpi_with, Em3dConfig};
use hmpi_apps::matmul;
use std::sync::Arc;

/// One row of the mapping-algorithm ablation.
#[derive(Debug, Clone)]
pub struct AlgoPoint {
    /// Algorithm label.
    pub algo: &'static str,
    /// Measured EM3D execution time under the produced mapping.
    pub time: f64,
    /// The runtime's own prediction for its selection.
    pub predicted: f64,
}

/// Runs the EM3D experiment under each selection algorithm.
pub fn mapping_algorithms(base: usize) -> Vec<AlgoPoint> {
    let cfg = Em3dConfig::ramp(9, base, 4.0, 0xAB1A);
    let cluster = Arc::new(Cluster::paper_lan_em3d());
    let algos: [(&'static str, MappingAlgorithm); 4] = [
        ("greedy", MappingAlgorithm::Greedy),
        ("greedy+ls", MappingAlgorithm::GreedyRefined { max_rounds: 64 }),
        ("exhaustive", MappingAlgorithm::Exhaustive),
        (
            "annealing",
            MappingAlgorithm::Annealing {
                seed: 42,
                iters: 400,
            },
        ),
    ];
    algos
        .into_iter()
        .map(|(name, algo)| {
            let run = run_hmpi_with(cluster.clone(), &cfg, 3, 10, algo);
            AlgoPoint {
                algo: name,
                time: run.time,
                predicted: run.predicted.unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// One row of the contention ablation.
#[derive(Debug, Clone)]
pub struct ContentionPoint {
    /// Contention model label.
    pub model: &'static str,
    /// MM execution time (HMPI, fixed l), virtual seconds.
    pub hmpi: f64,
}

fn paper_lan_with(contention: ContentionModel) -> Arc<Cluster> {
    let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
    let mut b = ClusterBuilder::new();
    for (i, &s) in speeds.iter().enumerate() {
        b = b.node(format!("ws{i:02}"), s);
    }
    Arc::new(
        b.all_to_all(Link::with_defaults(Protocol::Tcp))
            .contention(contention)
            .build(),
    )
}

/// Runs the MM experiment under each network contention model.
pub fn contention_models(n: usize) -> Vec<ContentionPoint> {
    [
        ("parallel-links", ContentionModel::ParallelLinks),
        ("serialized-nic", ContentionModel::SerializedNic),
        ("shared-bus", ContentionModel::SharedBus),
    ]
    .into_iter()
    .map(|(name, c)| {
        let run = matmul::run_hmpi(paper_lan_with(c), 3, n, 8, Some(9));
        ContentionPoint {
            model: name,
            hmpi: run.time,
        }
    })
    .collect()
}

/// One row of the recon-staleness ablation.
#[derive(Debug, Clone)]
pub struct StalenessPoint {
    /// Scenario label.
    pub scenario: &'static str,
    /// EM3D execution time, virtual seconds.
    pub time: f64,
}

/// A cluster whose fastest machine loses 90 % of its speed from t = 0 — so
/// base-speed estimates (what a runtime that never recons believes) are
/// badly wrong.
fn loaded_cluster() -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    b = b.node("host", 46.0);
    for i in 1..6 {
        b = b.node(format!("ws{i:02}"), 46.0);
    }
    b = b.processor(Processor::new("ws176", 176.0).with_load(LoadModel::Step {
        start: SimTime::ZERO,
        end: SimTime::from_secs(1e12),
        fraction: 0.9,
    }));
    b = b.node("ws106", 106.0).node("ws9", 9.0);
    Arc::new(b.all_to_all(Link::with_defaults(Protocol::Tcp)).build())
}

/// Compares a recon-refreshed selection against a stale-estimate one on the
/// loaded cluster. The stale run is emulated by an HMPI run whose recon
/// benchmark is zero-cost (so estimates stay at base speeds — exactly what
/// skipping `HMPI_Recon` would leave behind).
pub fn recon_staleness(base: usize) -> Vec<StalenessPoint> {
    let cfg = Em3dConfig::ramp(9, base, 4.0, 0x57A1E);

    // Fresh: the normal driver recons before selecting.
    let fresh = run_hmpi_with(
        loaded_cluster(),
        &cfg,
        3,
        10,
        MappingAlgorithm::default(),
    );

    // Stale: select with base-speed estimates by running the plain-MPI
    // style assignment on the loaded cluster... but that changes two things
    // at once. Instead, reuse the HMPI driver on a cluster whose *true*
    // speeds equal the stale beliefs for selection purposes is impossible —
    // so emulate directly: run with an estimates snapshot taken before the
    // load (base speeds) by using the mapping the unloaded LAN would get.
    let stale = {
        // Selection under the unloaded LAN's beliefs:
        let believed = run_hmpi_with(
            Arc::new(Cluster::paper_lan_em3d()),
            &cfg,
            3,
            10,
            MappingAlgorithm::default(),
        );
        // Execute that member->body assignment on the loaded cluster by
        // replaying through the MPI driver with a permuted config: body i
        // on world rank members[i]. The MPI driver assigns body b to rank
        // b, so permute the body sizes accordingly.
        let mut nodes = vec![0usize; 9];
        for (body, &world) in believed.members.iter().enumerate() {
            nodes[world] = cfg.nodes_per_body[body];
        }
        let permuted = Em3dConfig {
            nodes_per_body: nodes,
            ..cfg.clone()
        };
        hmpi_apps::em3d::run_mpi(loaded_cluster(), &permuted, 3)
    };

    vec![
        StalenessPoint {
            scenario: "fresh-recon",
            time: fresh.time,
        },
        StalenessPoint {
            scenario: "stale-estimates",
            time: stale.time,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_is_never_worse_predicted() {
        let pts = mapping_algorithms(60);
        let by_name = |n: &str| pts.iter().find(|p| p.algo == n).unwrap();
        let ex = by_name("exhaustive");
        for name in ["greedy", "greedy+ls", "annealing"] {
            assert!(
                ex.predicted <= by_name(name).predicted + 1e-9,
                "exhaustive predicted {} vs {name} {}",
                ex.predicted,
                by_name(name).predicted
            );
        }
    }

    #[test]
    fn contention_slows_things_down() {
        // Contended timing depends on real thread arrival order, so the two
        // contended models are not strictly ordered run-to-run; only the
        // uncontended switch is deterministic and must be the fastest.
        let pts = contention_models(9);
        let t = |n: &str| pts.iter().find(|p| p.model == n).unwrap().hmpi;
        assert!(t("parallel-links") <= t("serialized-nic") + 1e-9);
        assert!(t("parallel-links") <= t("shared-bus") + 1e-9);
    }

    #[test]
    fn fresh_recon_beats_stale_estimates() {
        let pts = recon_staleness(80);
        let t = |n: &str| pts.iter().find(|p| p.scenario == n).unwrap().time;
        assert!(
            t("fresh-recon") < t("stale-estimates"),
            "fresh {} vs stale {}",
            t("fresh-recon"),
            t("stale-estimates")
        );
    }
}
