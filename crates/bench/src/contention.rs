//! Contention-model benchmark: measured virtual time vs `timeof`
//! prediction on the *contended* network models — serialized NICs, the
//! shared bus, and the intra-node memory bus
//! (`figures -- contention` → `BENCH_contention.json`).
//!
//! The collectives bench gates pricing parity on the paper LAN's
//! parallel links, where transfers never queue. This bench gates the
//! harder half of the claim: the pricer replays the transport's
//! endpoint-causal grant/settle arbitration, so predictions stay within
//! 5% of the measured makespan even when every transfer contends for a
//! shared resource. A checked-in baseline additionally pins the summed
//! measured virtual time with a ±10% band — arbitration is
//! deterministic, so any drift beyond float noise means the contention
//! semantics changed.

use hetsim::{Cluster, ClusterBuilder, ContentionModel, Link, NodeId, Processor, Protocol,
             PAPER_EM3D_SPEEDS};
use mpisim::{CollectiveAlgo, CollectiveKind, ReduceOp, Universe, UniverseConfig};
use perfmodel::collective::algos_for;
use std::sync::Arc;

/// One (model, kind, algorithm, size) measurement.
#[derive(Debug, Clone)]
pub struct ContentionPoint {
    /// Contention domain label ("nic" / "bus" / "mem").
    pub model: &'static str,
    /// Collective kind ("bcast" / "allreduce").
    pub kind: &'static str,
    /// Communicator size (ranks).
    pub p: usize,
    /// Message size in bytes (f64 elements × 8).
    pub bytes: usize,
    /// Algorithm name.
    pub algo: &'static str,
    /// `timeof`-style predicted virtual time, seconds.
    pub predicted_s: f64,
    /// Measured virtual makespan of a run executing only this collective.
    pub measured_s: f64,
}

impl ContentionPoint {
    /// Relative prediction error, percent.
    pub fn error_pct(&self) -> f64 {
        if self.measured_s <= 0.0 {
            return 0.0;
        }
        (self.predicted_s - self.measured_s).abs() / self.measured_s * 100.0
    }
}

/// The whole benchmark.
#[derive(Debug, Clone)]
pub struct ContentionBench {
    /// Every (model, kind, algorithm, size) point, in sweep order.
    pub points: Vec<ContentionPoint>,
}

impl ContentionBench {
    /// Worst prediction error over all points, percent — the 5% CI gate.
    pub fn max_error_pct(&self) -> f64 {
        self.points
            .iter()
            .map(ContentionPoint::error_pct)
            .fold(0.0, f64::max)
    }

    /// Summed measured virtual time over all points, seconds — the
    /// baseline-banded drift metric. Virtual times are deterministic, so
    /// this only moves when the contention semantics themselves change.
    pub fn total_measured_s(&self) -> f64 {
        self.points.iter().map(|c| c.measured_s).sum()
    }
}

/// The paper's 9-workstation speeds over 100 Mbit Ethernet, with the
/// link-sharing mode under test.
fn paper_lan_with(contention: ContentionModel) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for (i, &s) in PAPER_EM3D_SPEEDS.iter().enumerate() {
        b = b.node(format!("ws{i:02}"), s);
    }
    Arc::new(
        b.all_to_all(Link::with_defaults(Protocol::Tcp))
            .contention(contention)
            .build(),
    )
}

/// Four dual-slot workstations with a modelled memory bus: eight ranks,
/// block-placed two per node, so half of every collective's traffic
/// crosses the intra-node memory bus instead of the wire.
fn mem_bus_cluster() -> (Arc<Cluster>, Vec<NodeId>) {
    let mut b = ClusterBuilder::new();
    for (i, &s) in PAPER_EM3D_SPEEDS[..4].iter().enumerate() {
        b = b.processor(Processor::new(format!("smp{i:02}"), s).with_slots(2));
    }
    let cluster = Arc::new(
        b.all_to_all(Link::with_defaults(Protocol::Tcp))
            .contention(ContentionModel::ParallelLinks)
            .mem_bus(Link::new(1e-6, 1e9, Protocol::SharedMemory))
            .build(),
    );
    let placement = (0..8).map(|r| NodeId(r / 2)).collect();
    (cluster, placement)
}

/// Runs one collective of `elems` f64 elements with a pinned algorithm on
/// its own universe and returns `(predicted, measured)` virtual seconds.
fn measure(
    cluster: &Arc<Cluster>,
    placement: &[NodeId],
    kind: CollectiveKind,
    algo: CollectiveAlgo,
    elems: usize,
) -> (f64, f64) {
    let u = Universe::with_config(
        cluster.clone(),
        UniverseConfig::new().placement(placement.to_vec()),
    );
    let p = placement.len();
    let report = u.run(move |proc| {
        let world = proc.world();
        let predicted = world
            .predict_collective_with(kind, algo, 0, elems, 8)
            .expect("eligible algorithm");
        match kind {
            CollectiveKind::Bcast => {
                let mut buf = vec![1.0f64; elems];
                world.bcast_into_with(algo, &mut buf, 0).expect("bcast");
            }
            CollectiveKind::Allreduce => {
                let contrib = vec![1.0f64; elems];
                world
                    .allreduce_eq_f64_with(algo, &contrib, ReduceOp::Sum)
                    .expect("allreduce");
            }
            CollectiveKind::Reduce => {
                let contrib = vec![1.0f64; elems];
                world
                    .reduce_eq_f64_with(algo, &contrib, ReduceOp::Sum, 0)
                    .expect("reduce");
            }
            CollectiveKind::Allgather => {
                let contrib = vec![1.0f64; elems / p];
                world.allgather_eq_with(algo, &contrib).expect("allgather");
            }
        }
        predicted
    });
    (report.results[0], report.makespan.as_secs())
}

fn sweep(
    bench: &mut ContentionBench,
    model: &'static str,
    cluster: &Arc<Cluster>,
    placement: &[NodeId],
    sizes: &[usize],
) {
    let p = placement.len();
    for kind in [CollectiveKind::Bcast, CollectiveKind::Allreduce] {
        for &bytes in sizes {
            let elems = (bytes / 8).max(1);
            for algo in algos_for(kind, p) {
                let (predicted_s, measured_s) = measure(cluster, placement, kind, algo, elems);
                bench.points.push(ContentionPoint {
                    model,
                    kind: kind.name(),
                    p,
                    bytes,
                    algo: algo.name(),
                    predicted_s,
                    measured_s,
                });
            }
        }
    }
}

/// Runs the benchmark: the paper LAN under serialized-NIC and shared-bus
/// link sharing, plus the dual-slot memory-bus testbed.
pub fn run(quick: bool) -> ContentionBench {
    let sizes: &[usize] = if quick {
        &[8, 65_536]
    } else {
        &[8, 8_192, 65_536, 524_288]
    };
    let mut bench = ContentionBench { points: Vec::new() };
    let identity: Vec<NodeId> = (0..PAPER_EM3D_SPEEDS.len()).map(NodeId).collect();
    let nic = paper_lan_with(ContentionModel::SerializedNic);
    sweep(&mut bench, "nic", &nic, &identity, sizes);
    let bus = paper_lan_with(ContentionModel::SharedBus);
    sweep(&mut bench, "bus", &bus, &identity, sizes);
    let (mem, placement) = mem_bus_cluster();
    sweep(&mut bench, "mem", &mem, &placement, sizes);
    bench
}

/// Text-table rendering.
pub fn render(b: &ContentionBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Contended timeof: measured virtual time vs prediction (NIC / bus / memory bus)"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>3} {:>8} {:>18} {:>14} {:>14} {:>8}",
        "model", "collective", "p", "bytes", "algorithm", "measured [s]", "predicted [s]",
        "err [%]"
    );
    for c in &b.points {
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>3} {:>8} {:>18} {:>14.6e} {:>14.6e} {:>8.3}",
            c.model,
            c.kind,
            c.p,
            c.bytes,
            c.algo,
            c.measured_s,
            c.predicted_s,
            c.error_pct(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "max prediction error: {:.3}%", b.max_error_pct());
    let _ = writeln!(out, "total measured virtual time: {:.6}s", b.total_measured_s());
    out
}

/// Serialises the benchmark to JSON (hand-formatted; the workspace's serde
/// shim has no serializer).
pub fn to_json(b: &ContentionBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"max_error_pct\": {:.4},", b.max_error_pct());
    let _ = writeln!(out, "  \"total_measured_s\": {:.9},", b.total_measured_s());
    let _ = writeln!(out, "  \"points\": [");
    let n = b.points.len();
    for (i, c) in b.points.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"model\": \"{}\", \"kind\": \"{}\", \"p\": {}, \"bytes\": {}, \"algo\": \"{}\", \"predicted_s\": {:.9e}, \"measured_s\": {:.9e}, \"error_pct\": {:.4}}}{comma}",
            c.model, c.kind, c.p, c.bytes, c.algo, c.predicted_s, c.measured_s, c.error_pct()
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_predictions_stay_within_five_percent() {
        let b = run(true);
        assert!(!b.points.is_empty());
        for want in ["nic", "bus", "mem"] {
            assert!(
                b.points.iter().any(|c| c.model == want),
                "missing {want} slice"
            );
        }
        assert!(
            b.max_error_pct() < 5.0,
            "worst contended prediction error {:.3}% breaches the 5% gate",
            b.max_error_pct()
        );
    }

    #[test]
    fn the_sweep_is_deterministic() {
        let (a, b) = (run(true), run(true));
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.measured_s.to_bits(), y.measured_s.to_bits(), "{x:?}");
            assert_eq!(x.predicted_s.to_bits(), y.predicted_s.to_bits(), "{x:?}");
        }
    }
}
