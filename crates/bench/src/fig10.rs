//! Figure 10: MM execution time against the generalised block size `l`,
//! for `r = 8`.
//!
//! The paper shows the HMPI execution time across generalised block sizes
//! (its optimum appeared at `r = l = 9`), against the flat MPI baseline.
//! Small `l` limits how finely areas can track speeds (integer rectangle
//! sides); large `l` makes the distribution coarse across the matrix. The
//! `HMPI_Timeof` sweep of the Figure 8 program automates exactly this
//! choice.

use crate::{matmul_cluster, ComparisonPoint};
use hmpi_apps::matmul::{run_hmpi, run_mpi};

/// Grid side (3 × 3 over the 9-machine LAN).
pub const M: usize = 3;

/// Block size in elements (the paper's Figure 10 uses r = 8).
pub const R: usize = 8;

/// Default matrix size in blocks.
pub const N: usize = 18;

/// Default `l` sweep.
pub const DEFAULT_LS: &[usize] = &[3, 4, 6, 9, 12, 18];

/// Runs one block-size point: HMPI with the given `l` vs the homogeneous
/// MPI baseline (which does not depend on `l`; its time is recomputed per
/// point for a self-contained row).
pub fn point(l: usize, n: usize) -> ComparisonPoint {
    let mpi = run_mpi(matmul_cluster(), M, n, R, Some(M));
    let hmpi = run_hmpi(matmul_cluster(), M, n, R, Some(l));
    ComparisonPoint {
        x: l,
        mpi: mpi.time,
        hmpi: hmpi.time,
    }
}

/// The full Figure 10 series.
pub fn series(ls: &[usize], n: usize) -> Vec<ComparisonPoint> {
    ls.iter().map(|&l| point(l, n)).collect()
}

/// The `l` the `HMPI_Timeof` sweep would choose for this configuration.
pub fn timeof_choice(n: usize) -> usize {
    run_hmpi(matmul_cluster(), M, n, R, None).l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmpi_beats_mpi_across_block_sizes() {
        for p in series(&[3, 9], 9) {
            assert!(p.speedup() > 1.0, "l = {}: speedup {:.2}", p.x, p.speedup());
        }
    }

    #[test]
    fn timeof_choice_is_within_sweep_range() {
        let l = timeof_choice(9);
        assert!((3..=9).contains(&l));
    }

    #[test]
    fn timeof_choice_is_near_the_measured_optimum() {
        let n = 9;
        let ls = [3usize, 4, 6, 9];
        let series = series(&ls, n);
        let measured_best = series
            .iter()
            .min_by(|a, b| a.hmpi.total_cmp(&b.hmpi))
            .unwrap();
        let chosen = timeof_choice(n);
        let chosen_time = series.iter().find(|p| p.x == chosen).map(|p| p.hmpi);
        if let Some(t) = chosen_time {
            assert!(
                t <= measured_best.hmpi * 1.25,
                "Timeof's l={chosen} at {t:.3}s vs best l={} at {:.3}s",
                measured_best.x,
                measured_best.hmpi
            );
        }
    }
}
