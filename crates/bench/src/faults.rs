//! Degradation curve: fault-tolerant EM3D under injected fail-stop faults.
//!
//! Beyond the paper's evaluation: we sweep the per-node crash probability,
//! inject seeded random fail-stop faults into the paper's 9-workstation
//! LAN, and run the fault-tolerant EM3D driver
//! ([`hmpi_apps::em3d::run_hmpi_ft`]). Each crash that hits a selected
//! process forces a `rebuild_group` shrink and a restart of the (smaller)
//! problem, so the curve shows how virtual execution time and the surviving
//! group size degrade as the network gets less reliable.
//!
//! Node 0 — the host, i.e. "the user's workstation" in HMPI terms — is
//! exempt from injection: losing the host is unrecoverable by design
//! (exactly like losing rank 0 of `MPI_COMM_WORLD`), so including it would
//! only dilute every point with runs that cannot complete. All other eight
//! machines crash independently with the given probability somewhere in the
//! injection window.
//!
//! The injected plans replay deterministically per seed; the recovery path,
//! however, aborts collectives as soon as a failure is *observed* in real
//! time, so the round an attempt dies in — and with it the aggregate
//! makespan — can shift slightly between reruns, like a real network.

use hetsim::{Cluster, FaultPlan, NodeId, SimTime, PAPER_EM3D_SPEEDS};
use hmpi_apps::em3d::{run_hmpi_ft, Em3dConfig};
use std::sync::Arc;

/// Default x-axis: per-node crash probability within the window.
pub const DEFAULT_RATES: &[f64] = &[0.0, 0.1, 0.2, 0.3, 0.5];

/// Trials (seeds) per rate.
pub const TRIALS: usize = 8;

/// Sub-body count — the paper's 9-machine experiment.
pub const P: usize = 9;

/// Base nodes of the smallest sub-body (fig9's mid-size problem).
pub const BASE: usize = 100;

/// Size spread of the irregular decomposition (as fig9).
pub const SPREAD: f64 = 1.6;

/// Iterations per run.
pub const NITER: usize = 5;

/// Recon benchmark size (the model's `k`).
pub const K: usize = 10;

/// Crashes are injected uniformly in `[0, HORIZON_SECS)` of virtual time —
/// sized to span recon, selection and most of the main loop.
pub const HORIZON_SECS: f64 = 40.0;

/// One rate's worth of seeded trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPoint {
    /// Per-node crash probability within the injection window.
    pub rate: f64,
    /// Trials attempted.
    pub trials: usize,
    /// Trials that completed (a feasible group survived to the end).
    pub completed: usize,
    /// Mean virtual makespan of the completed trials, seconds — this pays
    /// for aborted attempts and recovery, not just the final run.
    pub mean_makespan: f64,
    /// Mean size of the group that finished the computation.
    pub mean_survivors: f64,
    /// Mean number of `rebuild_group` shrinks per completed trial.
    pub mean_rebuilds: f64,
}

fn config() -> Em3dConfig {
    Em3dConfig::ramp(P, BASE, SPREAD, 0xFA17)
}

/// Runs `trials` seeded trials at one crash rate.
pub fn point(rate: f64, trials: usize) -> FaultPoint {
    let cfg = config();
    let mut completed = 0usize;
    let (mut makespan, mut survivors, mut rebuilds) = (0.0f64, 0.0f64, 0.0f64);
    for seed in 0..trials as u64 {
        let plan = FaultPlan::random_crashes(
            seed,
            (1..P).map(NodeId),
            rate,
            SimTime::from_secs(HORIZON_SECS),
        );
        let cluster = Arc::new(Cluster::paper_lan_with_faults(&PAPER_EM3D_SPEEDS, plan));
        if let Some(run) = run_hmpi_ft(cluster, &cfg, NITER, K) {
            completed += 1;
            makespan += run.makespan;
            survivors += run.final_members.len() as f64;
            rebuilds += run.rebuilds as f64;
        }
    }
    let n = completed.max(1) as f64;
    FaultPoint {
        rate,
        trials,
        completed,
        mean_makespan: makespan / n,
        mean_survivors: survivors / n,
        mean_rebuilds: rebuilds / n,
    }
}

/// The full degradation series.
pub fn series(rates: &[f64], trials: usize) -> Vec<FaultPoint> {
    rates.iter().map(|&r| point(r, trials)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_baseline_always_completes_with_nine_survivors() {
        let p = point(0.0, 2);
        assert_eq!(p.completed, 2);
        assert!((p.mean_survivors - 9.0).abs() < 1e-9);
        assert_eq!(p.mean_rebuilds, 0.0);
        assert!(p.mean_makespan > 0.0);
    }

    #[test]
    fn crashes_shrink_the_group_and_stretch_the_makespan() {
        let base = point(0.0, 2);
        // Certain death for every non-host node's independent coin flip:
        // each completed run must have lost someone and paid for recovery.
        let hurt = point(0.9, 3);
        assert!(hurt.completed >= 1, "some seeds must still complete");
        assert!(
            hurt.mean_survivors < 9.0,
            "survivor count must drop, got {}",
            hurt.mean_survivors
        );
        assert!(hurt.mean_rebuilds >= 1.0);
        assert!(
            hurt.mean_makespan > base.mean_makespan,
            "recovery is not free: {} vs baseline {}",
            hurt.mean_makespan,
            base.mean_makespan
        );
    }

    #[test]
    fn the_fault_free_point_is_exactly_reproducible() {
        // The injected plans replay deterministically (the hmpi seed-replay
        // proptest pins that down), and a fault-free run is pure virtual
        // time. A *crashy* run's recovery reacts to failures in real time —
        // which round an attempt aborts in can vary by one between reruns,
        // exactly like rerunning the experiment on a real network — so only
        // the fault-free point is bit-for-bit repeatable.
        let a = point(0.0, 2);
        let b = point(0.0, 2);
        assert_eq!(a, b);
    }
}
