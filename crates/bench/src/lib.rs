//! Benchmark harnesses regenerating the HMPI paper's evaluation (Section 5).
//!
//! The evaluation contains no tables; its results are Figures 9–11:
//!
//! * [`fig9`] — EM3D execution time, HMPI vs MPI, across problem sizes
//!   (Figure 9a), and the derived speedup (Figure 9b; paper: ≈1.5×);
//! * [`fig10`] — MM execution time vs the generalised block size `l` for
//!   `r = 8` (Figure 10), showing the interior optimum `HMPI_Timeof` finds;
//! * [`fig11`] — MM execution time, HMPI (heterogeneous distribution,
//!   Timeof-chosen `l`) vs MPI (homogeneous), across matrix sizes
//!   (Figure 11a) and the derived speedup (Figure 11b; paper: ≈3×);
//! * [`ablation`] — design-choice studies DESIGN.md calls out: selection
//!   algorithm, network contention model, and recon staleness;
//! * [`extension`] — the N-body workload (beyond the paper), showing the
//!   selection machinery generalises to a collective-heavy shape;
//! * [`faults`] — the degradation curve (beyond the paper): fault-tolerant
//!   EM3D under seeded random fail-stop crashes, virtual time and surviving
//!   group size versus the injected per-node failure rate;
//! * [`selection`] — the selection-engine microbenchmark (beyond the
//!   paper): compiled-evaluator and incremental-probe throughput vs the
//!   naive objective path, and end-to-end `select_mapping` wall times,
//!   written to `BENCH_selection.json`;
//! * [`deadlock`] — the robustness benchmark (beyond the paper): seeded
//!   wedges (receive cycles, crash-orphaned waits) measured from launch to
//!   every rank holding its typed verdict, gating the quiescence detector's
//!   sub-second wall-clock detection, written to `BENCH_deadlock.json`;
//! * [`throughput`] — the substrate benchmark (beyond the paper): the new
//!   eager/rendezvous mailbox (per-sender lanes, indexed matcher,
//!   pool-leased payloads) raced against a faithful replica of the legacy
//!   scan-and-remove mailbox over burst and steady traffic, gating the
//!   ≥5× eager msgs/sec and ≥2× rendezvous bytes/sec claims, written to
//!   `BENCH_throughput.json`;
//! * [`trace`] — the observability benchmark (beyond the paper): tracing
//!   overhead (disabled vs enabled) on the EM3D selection workload, and
//!   `HMPI_Timeof` prediction error with per-phase compute/comm/wait
//!   breakdowns for EM3D and MM, written to `BENCH_trace.json` alongside
//!   the Chrome trace `TRACE_em3d.json`.
//!
//! Each module returns plain series structs; `src/bin/figures.rs` prints
//! them as aligned tables/CSV, and `benches/` wraps representative points in
//! Criterion.
//!
//! Times are *virtual seconds* over the paper's 9-workstation LAN model
//! (speeds 46×6, 176, 106, 9; switched 100 Mbit Ethernet). Absolute values
//! are not comparable to the paper's wall-clock seconds; the shapes (who
//! wins, by what factor, where the optimum falls) are the reproduction
//! target.

#![warn(missing_docs)]

pub mod ablation;
pub mod collectives;
pub mod contention;
pub mod deadlock;
pub mod extension;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig9;
pub mod hierarchy;
pub mod selection;
pub mod throughput;
pub mod trace;

use hetsim::Cluster;
use std::sync::Arc;

/// The paper's 9-workstation LAN for EM3D experiments.
pub fn em3d_cluster() -> Arc<Cluster> {
    Arc::new(Cluster::paper_lan_em3d())
}

/// The paper's 9-workstation LAN for MM experiments.
pub fn matmul_cluster() -> Arc<Cluster> {
    Arc::new(Cluster::paper_lan_matmul())
}

/// One (x, MPI time, HMPI time) row of a comparison figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonPoint {
    /// The x-axis value (problem size, block size, ...).
    pub x: usize,
    /// Plain-MPI execution time, virtual seconds.
    pub mpi: f64,
    /// HMPI execution time, virtual seconds.
    pub hmpi: f64,
}

impl ComparisonPoint {
    /// Speedup of HMPI over MPI.
    pub fn speedup(&self) -> f64 {
        self.mpi / self.hmpi
    }
}

/// Renders comparison points as an aligned text table.
pub fn render_table(title: &str, x_label: &str, points: &[ComparisonPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{x_label:>12}  {:>14}  {:>14}  {:>8}",
        "MPI [s]", "HMPI [s]", "speedup"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>12}  {:>14.4}  {:>14.4}  {:>8.2}",
            p.x,
            p.mpi,
            p.hmpi,
            p.speedup()
        );
    }
    out
}

/// Renders comparison points as CSV.
pub fn render_csv(x_label: &str, points: &[ComparisonPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{x_label},mpi_s,hmpi_s,speedup");
    for p in points {
        let _ = writeln!(out, "{},{},{},{}", p.x, p.mpi, p.hmpi, p.speedup());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_ratio() {
        let p = ComparisonPoint {
            x: 1,
            mpi: 3.0,
            hmpi: 1.5,
        };
        assert_eq!(p.speedup(), 2.0);
    }

    #[test]
    fn render_table_contains_rows() {
        let pts = [ComparisonPoint {
            x: 100,
            mpi: 2.0,
            hmpi: 1.0,
        }];
        let t = render_table("Fig X", "size", &pts);
        assert!(t.contains("Fig X"));
        assert!(t.contains("100"));
        assert!(t.contains("2.00"));
    }

    #[test]
    fn render_csv_has_header_and_rows() {
        let pts = [ComparisonPoint {
            x: 5,
            mpi: 1.0,
            hmpi: 0.5,
        }];
        let c = render_csv("l", &pts);
        assert!(c.starts_with("l,mpi_s,hmpi_s,speedup\n"));
        assert!(c.contains("5,1,0.5,2"));
    }
}
