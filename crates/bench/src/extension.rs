//! Extension experiment beyond the paper: the N-body application.
//!
//! Demonstrates that the selection machinery generalises to a third
//! communication shape (all-to-all via allgather) the paper never
//! evaluated. See EXPERIMENTS.md §Extension.

use crate::{em3d_cluster, ComparisonPoint};
use hmpi_apps::nbody::{run_hmpi, run_mpi, NbodyConfig};

/// Number of body groups (one per machine of the paper LAN).
pub const P: usize = 9;

/// Group-size spread (largest / smallest).
pub const SPREAD: f64 = 3.0;

/// Integration steps per run.
pub const NITER: usize = 3;

/// Recon benchmark size in body-body interactions.
pub const K: usize = 10;

/// Default x-axis: bodies in the smallest group.
pub const DEFAULT_SIZES: &[usize] = &[10, 20, 40];

/// Runs one problem size.
pub fn point(base: usize) -> ComparisonPoint {
    let cfg = NbodyConfig::ramp(P, base, SPREAD, 0xB0D1 + base as u64);
    let total = cfg.total();
    let mpi = run_mpi(em3d_cluster(), &cfg, NITER, K);
    let hmpi = run_hmpi(em3d_cluster(), &cfg, NITER, K);
    ComparisonPoint {
        x: total,
        mpi: mpi.time,
        hmpi: hmpi.time,
    }
}

/// The full extension series.
pub fn series(sizes: &[usize]) -> Vec<ComparisonPoint> {
    sizes.iter().map(|&b| point(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmpi_wins_on_the_extension_workload() {
        let p = point(10);
        assert!(
            p.speedup() > 1.3,
            "N-body speedup {:.2} unexpectedly small",
            p.speedup()
        );
    }

    #[test]
    fn x_axis_is_the_true_total() {
        let p = point(10);
        let cfg = NbodyConfig::ramp(P, 10, SPREAD, 0xB0D1 + 10);
        assert_eq!(p.x, cfg.total());
    }
}
