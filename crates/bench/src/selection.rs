//! Selection-engine benchmark: compiled evaluator vs the naive objective.
//!
//! Measures, on the paper's 9-workstation LAN with a 16-abstract-processor
//! ring model written in the modelling language:
//!
//! * **objective throughput** — full evaluations per second through the
//!   naive path (`build_cost_model` plus scheme AST re-interpretation per
//!   call) vs the engine ([`hmpi::Evaluator::eval`], recorded cost program
//!   and table lookups) vs incremental probes ([`hmpi::Evaluator::probe`],
//!   re-pricing only segments touched by the move);
//! * **end-to-end search wall time** — `select_mapping` (engine) vs
//!   `select_mapping_naive` per [`MappingAlgorithm`], asserting the two
//!   return bit-identical mappings (same assignment, same predicted-time
//!   bits).
//!
//! `figures -- selection` renders the table; the non-`--quick` run also
//! writes `BENCH_selection.json`.

use hetsim::{NodeId, SpeedEstimates};
use hmpi::{
    predicted_time, select_mapping, select_mapping_naive, Evaluator, MappingAlgorithm,
    SelectionCtx,
};
use perfmodel::{CompiledModel, ModelInstance, ParamValue};
use std::time::Instant;

/// A 1-D ring pattern in the paper's modelling language: `n` steps, each a
/// par of neighbour transfers followed by a par of local updates. Sized by
/// the `p` parameter — the bench instantiates it with 16 processors.
pub const RING_MODEL_SOURCE: &str = r"
    algorithm Ring(int p, int n, int d[p]) {
        coord I=p;
        node {I>=0: bench*(d[I]);};
        link (L=p) {
            I>=0 && L==((I+1)%p) :
                length*(d[I]*1000*sizeof(double)) [I]->[L];
        };
        parent[0];
        scheme {
            int k, i;
            for (k = 0; k < n; k++) {
                par (i = 0; i < p; i++) (100/n)%%[i]->[(i+1)%p];
                par (i = 0; i < p; i++) (100/n)%%[i];
            }
        };
    }
";

/// A pairwise pipeline in the modelling language: per step, independent
/// per-processor half-updates around a transfer inside disjoint processor
/// pairs. Its top-level activities each touch only one or two processors,
/// so an incremental probe of a swap re-prices only the few segments the
/// moved processors appear in — the shape delta evaluation exists for
/// (the ring model's `par` blocks, by contrast, each touch every
/// processor, so nothing can be skipped there).
pub const PAIRS_MODEL_SOURCE: &str = r"
    algorithm Pairs(int p, int n, int d[p]) {
        coord I=p;
        node {I>=0: bench*(d[I]);};
        link (L=p) {
            I>=0 && L==I+1 && (I%2)==0 :
                length*(d[I]*1000*sizeof(double)) [I]->[L];
        };
        parent[0];
        scheme {
            int k, i;
            for (k = 0; k < n; k++) {
                for (i = 0; i < p; i++) (100/(2*n))%%[i];
                for (i = 0; i < p; i += 2) (100/n)%%[i]->[i+1];
                for (i = 0; i < p; i++) (100/(2*n))%%[i];
            }
        };
    }
";

fn instantiate(src: &str, what: &str, p: usize, n: i64) -> ModelInstance {
    let volumes: Vec<i64> = (0..p).map(|i| 60 + 17 * (i as i64 % 7)).collect();
    CompiledModel::compile(src)
        .unwrap_or_else(|e| panic!("{what} model parses: {e}"))
        .instantiate(&[
            ParamValue::Int(p as i64),
            ParamValue::Int(n),
            ParamValue::Array(volumes),
        ])
        .unwrap_or_else(|e| panic!("{what} model instantiates: {e}"))
}

/// Instantiates the ring model with `p` processors and `n` steps.
///
/// # Panics
/// Never in practice: the source is a compile-time constant covered by
/// tests.
pub fn ring_model(p: usize, n: i64) -> ModelInstance {
    instantiate(RING_MODEL_SOURCE, "ring", p, n)
}

/// Instantiates the pairwise-pipeline model with `p` processors and `n`
/// steps.
///
/// # Panics
/// As [`ring_model`].
pub fn pairs_model(p: usize, n: i64) -> ModelInstance {
    instantiate(PAIRS_MODEL_SOURCE, "pairs", p, n)
}

/// Objective-throughput measurements (full evals and incremental probes).
#[derive(Debug, Clone, Copy)]
pub struct ObjectiveRates {
    /// Ring model: naive-path full evaluations per second.
    pub naive_evals_per_sec: f64,
    /// Ring model: engine full evaluations per second.
    pub engine_evals_per_sec: f64,
    /// Ring model: engine incremental (swap-move) probes per second. The
    /// ring's `par` blocks touch every processor, so delta evaluation
    /// degenerates to a full re-price here — this is the probe *floor*.
    pub engine_probes_per_sec: f64,
    /// Pairs model: naive-path full evaluations per second.
    pub pairs_naive_evals_per_sec: f64,
    /// Pairs model: engine incremental probes per second — the sparse
    /// per-processor segment structure delta evaluation exploits.
    pub pairs_probes_per_sec: f64,
}

impl ObjectiveRates {
    /// Engine full-evaluation speedup over the naive path (ring model).
    pub fn eval_speedup(&self) -> f64 {
        self.engine_evals_per_sec / self.naive_evals_per_sec
    }
    /// Incremental-probe speedup over the naive path (ring model).
    pub fn probe_speedup(&self) -> f64 {
        self.engine_probes_per_sec / self.naive_evals_per_sec
    }
    /// Incremental-probe speedup over the naive path (pairs model).
    pub fn pairs_probe_speedup(&self) -> f64 {
        self.pairs_probes_per_sec / self.pairs_naive_evals_per_sec
    }
}

/// One end-to-end search comparison.
#[derive(Debug, Clone)]
pub struct AlgoPoint {
    /// Algorithm label.
    pub algo: String,
    /// Abstract processors in the model searched.
    pub processors: usize,
    /// `select_mapping_naive` wall time, milliseconds.
    pub naive_ms: f64,
    /// `select_mapping` (engine) wall time, milliseconds.
    pub engine_ms: f64,
    /// Whether both paths returned bit-identical mappings.
    pub identical: bool,
}

impl AlgoPoint {
    /// Wall-time speedup of the engine search over the naive search.
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.engine_ms
    }
}

/// The full selection benchmark result.
#[derive(Debug, Clone)]
pub struct SelectionBench {
    /// Cluster size (nodes).
    pub nodes: usize,
    /// World ranks (selection candidates).
    pub world_ranks: usize,
    /// Abstract processors of the throughput model.
    pub processors: usize,
    /// Flat cost ops in the recorded program.
    pub ops: usize,
    /// Objective throughput numbers.
    pub rates: ObjectiveRates,
    /// Per-algorithm end-to-end comparisons.
    pub algos: Vec<AlgoPoint>,
}

/// Deterministic xorshift for assignment shuffles (no RNG dependency).
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// `count` random injective assignments of `p` processors onto `world`
/// ranks, abs 0 kept on rank 0 (the pinned parent).
fn sample_assignments(count: usize, p: usize, world: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = XorShift(seed | 1);
    (0..count)
        .map(|_| {
            let mut pool: Vec<usize> = (0..world).collect();
            for i in 1..p {
                let j = i + rng.below(pool.len() - i);
                pool.swap(i, j);
            }
            pool.truncate(p);
            pool
        })
        .collect()
}

fn time_per_call(mut f: impl FnMut(), calls: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..calls {
        f();
    }
    start.elapsed().as_secs_f64() / calls as f64
}

/// Runs the benchmark. `quick` shrinks iteration counts for CI smoke runs;
/// the reported speedups remain meaningful, just noisier.
pub fn run(quick: bool) -> SelectionBench {
    let cluster = hetsim::Cluster::paper_lan_matmul();
    let nodes = cluster.len();
    let world = 16;
    let placement: Vec<NodeId> = (0..world).map(|r| NodeId(r % nodes)).collect();
    let estimates = SpeedEstimates::from_base_speeds(&cluster);
    let p = 16;
    let model = ring_model(p, 8);
    let ctx = SelectionCtx {
        cluster: &cluster,
        placement: &placement,
        estimates: &estimates,
        candidates: (0..world).collect(),
        pinned_parent: Some(0),
    };

    // --- objective throughput ---------------------------------------------
    let assignments = sample_assignments(64, p, world, 0xB0B5);
    let (naive_calls, engine_calls) = if quick { (60, 600) } else { (1_500, 60_000) };

    let mut k = 0usize;
    let mut sink = 0.0f64;
    let naive_s = time_per_call(
        || {
            let a = &assignments[k % assignments.len()];
            k += 1;
            sink += predicted_time(&model, a, &cluster, &placement, &estimates)
                .unwrap_or(f64::INFINITY);
        },
        naive_calls,
    );

    let mut ev = Evaluator::new(&model, &ctx);
    let ops = ev.num_ops();
    k = 0;
    let engine_s = time_per_call(
        || {
            let a = &assignments[k % assignments.len()];
            k += 1;
            sink += ev.eval(a);
        },
        engine_calls,
    );

    // Probe throughput: swap moves against a fixed baseline.
    let mut current = assignments[0].clone();
    ev.rebase(&current);
    let mut rng = XorShift(0xFEED);
    let probe_s = time_per_call(
        || {
            let i = 1 + rng.below(p - 1);
            let mut j = 1 + rng.below(p - 1);
            if i == j {
                j = 1 + (j % (p - 1));
            }
            current.swap(i, j);
            sink += ev.probe(&current, &[i, j]);
            current.swap(i, j);
        },
        engine_calls,
    );

    // The pairs model: sparse per-processor segments, where an incremental
    // probe skips most of the program.
    let pairs = pairs_model(p, 8);
    k = 0;
    let pairs_naive_s = time_per_call(
        || {
            let a = &assignments[k % assignments.len()];
            k += 1;
            sink += predicted_time(&pairs, a, &cluster, &placement, &estimates)
                .unwrap_or(f64::INFINITY);
        },
        naive_calls,
    );
    let mut pairs_ev = Evaluator::new(&pairs, &ctx);
    pairs_ev.rebase(&current);
    let pairs_probe_s = time_per_call(
        || {
            let i = 1 + rng.below(p - 1);
            let mut j = 1 + rng.below(p - 1);
            if i == j {
                j = 1 + (j % (p - 1));
            }
            current.swap(i, j);
            sink += pairs_ev.probe(&current, &[i, j]);
            current.swap(i, j);
        },
        engine_calls,
    );
    assert!(sink.is_finite(), "all benched evaluations must be finite");

    let rates = ObjectiveRates {
        naive_evals_per_sec: 1.0 / naive_s,
        engine_evals_per_sec: 1.0 / engine_s,
        engine_probes_per_sec: 1.0 / probe_s,
        pairs_naive_evals_per_sec: 1.0 / pairs_naive_s,
        pairs_probes_per_sec: 1.0 / pairs_probe_s,
    };

    // --- end-to-end searches ----------------------------------------------
    let mut algos = Vec::new();
    let anneal_iters = if quick { 300 } else { 4_000 };
    for (label, algo, model_p) in [
        (
            "GreedyRefined".to_string(),
            MappingAlgorithm::GreedyRefined { max_rounds: 64 },
            p,
        ),
        (
            "Annealing".to_string(),
            MappingAlgorithm::Annealing {
                seed: 42,
                iters: anneal_iters,
            },
            p,
        ),
        // Exhaustive needs a smaller model for the naive path to finish:
        // 5 processors over 16 candidates is 524 160 leaves sequentially;
        // the engine prunes with branch and bound and splits over threads.
        (
            "Exhaustive".to_string(),
            MappingAlgorithm::Exhaustive,
            if quick { 4 } else { 5 },
        ),
    ] {
        let m = if model_p == p {
            None
        } else {
            Some(ring_model(model_p, 8))
        };
        let model_ref: &dyn perfmodel::PerformanceModel = match &m {
            Some(m) => m,
            None => &model,
        };
        let t0 = Instant::now();
        let fast = select_mapping(algo, model_ref, &ctx).expect("engine search");
        let engine_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let naive = select_mapping_naive(algo, model_ref, &ctx).expect("naive search");
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;
        algos.push(AlgoPoint {
            algo: label,
            processors: model_p,
            naive_ms,
            engine_ms,
            identical: fast.assignment == naive.assignment
                && fast.predicted.to_bits() == naive.predicted.to_bits(),
        });
    }

    SelectionBench {
        nodes,
        world_ranks: world,
        processors: p,
        ops,
        rates,
        algos,
    }
}

/// Renders the benchmark as an aligned text table.
pub fn render(b: &SelectionBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Selection engine: {}-node paper LAN, {} world ranks, {}-processor ring model ({} cost ops)",
        b.nodes, b.world_ranks, b.processors, b.ops
    );
    let _ = writeln!(out, "{:>22}  {:>14}  {:>9}", "objective path", "evals/sec", "speedup");
    let _ = writeln!(
        out,
        "{:>22}  {:>14.0}  {:>9.2}",
        "naive (interpreter)", b.rates.naive_evals_per_sec, 1.0
    );
    let _ = writeln!(
        out,
        "{:>22}  {:>14.0}  {:>9.2}",
        "engine (full eval)",
        b.rates.engine_evals_per_sec,
        b.rates.eval_speedup()
    );
    let _ = writeln!(
        out,
        "{:>22}  {:>14.0}  {:>9.2}",
        "engine (delta probe)",
        b.rates.engine_probes_per_sec,
        b.rates.probe_speedup()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "# Pairs model (sparse segments: the delta-evaluation fast path)"
    );
    let _ = writeln!(out, "{:>22}  {:>14}  {:>9}", "objective path", "evals/sec", "speedup");
    let _ = writeln!(
        out,
        "{:>22}  {:>14.0}  {:>9.2}",
        "naive (interpreter)", b.rates.pairs_naive_evals_per_sec, 1.0
    );
    let _ = writeln!(
        out,
        "{:>22}  {:>14.0}  {:>9.2}",
        "engine (delta probe)",
        b.rates.pairs_probes_per_sec,
        b.rates.pairs_probe_speedup()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>14}  {:>4}  {:>12}  {:>12}  {:>9}  {:>9}",
        "algorithm", "p", "naive [ms]", "engine [ms]", "speedup", "identical"
    );
    for a in &b.algos {
        let _ = writeln!(
            out,
            "{:>14}  {:>4}  {:>12.3}  {:>12.3}  {:>9.2}  {:>9}",
            a.algo,
            a.processors,
            a.naive_ms,
            a.engine_ms,
            a.speedup(),
            a.identical
        );
    }
    out
}

/// Serialises the benchmark to JSON (hand-formatted; the workspace's serde
/// shim has no serializer).
pub fn to_json(b: &SelectionBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"instance\": {{\"nodes\": {}, \"world_ranks\": {}, \"processors\": {}, \"cost_ops\": {}}},",
        b.nodes, b.world_ranks, b.processors, b.ops
    );
    let _ = writeln!(
        out,
        "  \"naive_evals_per_sec\": {:.1},",
        b.rates.naive_evals_per_sec
    );
    let _ = writeln!(
        out,
        "  \"engine_evals_per_sec\": {:.1},",
        b.rates.engine_evals_per_sec
    );
    let _ = writeln!(
        out,
        "  \"engine_probes_per_sec\": {:.1},",
        b.rates.engine_probes_per_sec
    );
    let _ = writeln!(out, "  \"eval_speedup\": {:.2},", b.rates.eval_speedup());
    let _ = writeln!(out, "  \"probe_speedup\": {:.2},", b.rates.probe_speedup());
    let _ = writeln!(
        out,
        "  \"pairs_naive_evals_per_sec\": {:.1},",
        b.rates.pairs_naive_evals_per_sec
    );
    let _ = writeln!(
        out,
        "  \"pairs_probes_per_sec\": {:.1},",
        b.rates.pairs_probes_per_sec
    );
    let _ = writeln!(
        out,
        "  \"pairs_probe_speedup\": {:.2},",
        b.rates.pairs_probe_speedup()
    );
    let _ = writeln!(out, "  \"searches\": [");
    for (i, a) in b.algos.iter().enumerate() {
        let comma = if i + 1 == b.algos.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"algo\": \"{}\", \"processors\": {}, \"naive_ms\": {:.3}, \"engine_ms\": {:.3}, \"speedup\": {:.2}, \"identical\": {}}}{comma}",
            a.algo, a.processors, a.naive_ms, a.engine_ms, a.speedup(), a.identical
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_paths_agree() {
        let b = run(true);
        assert_eq!(b.processors, 16);
        assert!(b.ops > 0, "the ring model must record a non-empty program");
        for a in &b.algos {
            assert!(a.identical, "{} paths diverged", a.algo);
        }
        // The acceptance bar is 10x in the release-mode JSON; in (possibly
        // debug-mode) tests assert a conservative floor.
        assert!(
            b.rates.eval_speedup() > 3.0,
            "engine eval speedup {:.2} too low",
            b.rates.eval_speedup()
        );
        assert!(
            b.rates.probe_speedup() > 1.0,
            "probes {:.2} must still beat the naive path",
            b.rates.probe_speedup()
        );
        assert!(
            b.rates.pairs_probe_speedup() > 3.0,
            "sparse-segment delta probes speedup {:.2} too low",
            b.rates.pairs_probe_speedup()
        );

        let j = to_json(&b);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"algo\"").count(), b.algos.len());
    }

    #[test]
    fn ring_model_parses_at_bench_size() {
        let m = ring_model(16, 8);
        use perfmodel::PerformanceModel as _;
        assert_eq!(m.num_processors(), 16);
        assert_eq!(m.parent(), 0);
    }
}
