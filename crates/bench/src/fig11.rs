//! Figure 11: MM execution times (a) and speedup (b) across matrix sizes,
//! HMPI (heterogeneous distribution) vs MPI (homogeneous 2D block-cyclic).
//!
//! The paper reports the HMPI application "almost 3 times faster" on the
//! 9-machine LAN: the homogeneous distribution gives every processor 1/9 of
//! the matrix, so the speed-9 machine paces the whole grid, while the
//! heterogeneous distribution sizes each rectangle to its processor.

use crate::{matmul_cluster, ComparisonPoint};
use hmpi_apps::matmul::{run_hmpi, run_mpi};

/// Grid side.
pub const M: usize = 3;

/// Block size in elements (the paper's headline runs use r = 9; r = 8 keeps
/// the real dgemm cheap while preserving every ratio, since both sides scale
/// by r³ identically — we keep the paper's 9).
pub const R: usize = 9;

/// Default matrix-size sweep (in r-blocks).
pub const DEFAULT_NS: &[usize] = &[9, 12, 18, 24];

/// Runs one matrix-size point. HMPI picks `l` by the `HMPI_Timeof` sweep,
/// exactly like the Figure 8 program.
pub fn point(n: usize) -> ComparisonPoint {
    let mpi = run_mpi(matmul_cluster(), M, n, R, Some(M));
    let hmpi = run_hmpi(matmul_cluster(), M, n, R, None);
    ComparisonPoint {
        x: n * R,
        mpi: mpi.time,
        hmpi: hmpi.time,
    }
}

/// The full Figure 11 series.
pub fn series(ns: &[usize]) -> Vec<ComparisonPoint> {
    ns.iter().map(|&n| point(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmpi_wins_at_every_size() {
        for p in series(&[9, 12]) {
            assert!(p.speedup() > 1.5, "n = {}: speedup {:.2}", p.x, p.speedup());
        }
    }

    #[test]
    fn speedup_is_paper_like() {
        // Paper: "almost 3 times faster". Accept 2x-5x (our network model
        // is not the authors' exact testbed).
        let p = point(12);
        assert!(
            (1.8..6.0).contains(&p.speedup()),
            "speedup {:.2} out of band",
            p.speedup()
        );
    }
}
