//! Hierarchical-collective benchmark: the topology-aware `Auto` selector
//! vs the flat-only selector on a multi-site testbed
//! (`figures -- hierarchy` → `BENCH_hierarchy.json`).
//!
//! The testbed is three sites of five workstations: a fast LAN inside
//! each site, a slow high-latency WAN between sites, serialized NICs.
//! Fifteen ranks misalign with the flat algorithms' structure, so flat
//! schedules queue WAN transfers on root NICs where the hierarchical
//! plan crosses the WAN once per remote site. Two gates ride on the
//! sweep: the hierarchical pricer must stay within 5% of the measured
//! makespan (it is bit-exact; the band matches the other pricing
//! gates), and the hierarchy-aware selector must beat the flat-only
//! selector by at least [`HIER_SPEEDUP_GATE`]× on at least one
//! collective at ≥64 KiB. A checked-in baseline additionally pins the
//! summed measured virtual time with a ±10% band.

use hetsim::{ContentionModel, Link, Protocol, Topology, TopologyBuilder};
use mpisim::{CollectiveKind, CollectivePolicy, ReduceOp, Universe, UniverseConfig};

/// Minimum speedup of the hierarchy-aware selector over the flat-only
/// selector, required on at least one collective kind at ≥64 KiB.
pub const HIER_SPEEDUP_GATE: f64 = 1.5;

/// One (kind, size) measurement: the same collective under both selectors.
#[derive(Debug, Clone)]
pub struct HierarchyPoint {
    /// Collective kind ("bcast" / "reduce" / "allreduce" / "allgather").
    pub kind: &'static str,
    /// Communicator size (ranks).
    pub p: usize,
    /// Message size in bytes (f64 elements × 8).
    pub bytes: usize,
    /// Algorithm the hierarchy-aware `Auto` selector picked.
    pub hier_algo: &'static str,
    /// Algorithm the flat-only selector picked.
    pub flat_algo: &'static str,
    /// `timeof` prediction for the hierarchy-aware pick, seconds.
    pub hier_predicted_s: f64,
    /// Measured virtual makespan under the hierarchy-aware selector.
    pub hier_measured_s: f64,
    /// Measured virtual makespan under the flat-only selector.
    pub flat_measured_s: f64,
}

impl HierarchyPoint {
    /// Relative prediction error of the hierarchy-aware run, percent.
    pub fn error_pct(&self) -> f64 {
        if self.hier_measured_s <= 0.0 {
            return 0.0;
        }
        (self.hier_predicted_s - self.hier_measured_s).abs() / self.hier_measured_s * 100.0
    }

    /// Speedup of the hierarchy-aware selector over the flat-only one.
    pub fn speedup(&self) -> f64 {
        if self.hier_measured_s <= 0.0 {
            return 1.0;
        }
        self.flat_measured_s / self.hier_measured_s
    }
}

/// The whole benchmark.
#[derive(Debug, Clone)]
pub struct HierarchyBench {
    /// Every (kind, size) point, in sweep order.
    pub points: Vec<HierarchyPoint>,
}

impl HierarchyBench {
    /// Worst prediction error over all points, percent — the 5% CI gate.
    pub fn max_error_pct(&self) -> f64 {
        self.points
            .iter()
            .map(HierarchyPoint::error_pct)
            .fold(0.0, f64::max)
    }

    /// Best hierarchical-over-flat speedup among points at ≥64 KiB where
    /// the selector actually left the flat family — the
    /// [`HIER_SPEEDUP_GATE`] metric.
    pub fn best_large_speedup(&self) -> f64 {
        self.points
            .iter()
            .filter(|c| c.bytes >= 64 * 1024 && c.hier_algo == "hierarchical")
            .map(HierarchyPoint::speedup)
            .fold(0.0, f64::max)
    }

    /// Never-worse check: the hierarchy-aware selector must not lose to
    /// the flat-only one anywhere (it prices the flat family too and only
    /// leaves it when strictly cheaper). Returns the worst speedup.
    pub fn min_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(HierarchyPoint::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Summed measured virtual time over both selectors, seconds — the
    /// baseline-banded drift metric.
    pub fn total_measured_s(&self) -> f64 {
        self.points
            .iter()
            .map(|c| c.hier_measured_s + c.flat_measured_s)
            .sum()
    }
}

/// Three sites of five workstations: ~100 MB/s LAN within a site, a
/// ~1 MB/s 50 ms WAN between sites, serialized NICs.
pub fn multi_site_testbed() -> Topology {
    let lan = Link::new(1e-4, 100e6, Protocol::Tcp);
    let wan = Link::new(50e-3, 1e6, Protocol::Tcp);
    let mut b = TopologyBuilder::new()
        .intra_switch(lan)
        .inter_site(wan)
        .contention(ContentionModel::SerializedNic);
    for site in 0..3 {
        b = b.site();
        for i in 0..5 {
            b = b.node(format!("s{site}w{i}"), 80.0 + 15.0 * i as f64);
        }
    }
    b.build()
}

/// Runs one collective of `elems` f64 elements under the given policy and
/// returns `(picked algorithm, predicted, measured)` virtual seconds.
fn measure(
    topology: &Topology,
    policy: CollectivePolicy,
    kind: CollectiveKind,
    elems: usize,
) -> (&'static str, f64, f64) {
    let u = Universe::from_topology(
        topology.clone(),
        UniverseConfig::new().collective_policy(policy),
    );
    let report = u.run(move |proc| {
        let world = proc.world();
        let p = world.size();
        // Allgather's predictor prices the total gathered payload; keep
        // the per-rank contribution exact.
        let (contrib_elems, pred_elems) = match kind {
            CollectiveKind::Allgather => (elems / p, (elems / p) * p),
            _ => (elems, elems),
        };
        let (algo, predicted) = world
            .predict_collective(kind, 0, pred_elems, 8)
            .expect("predictable collective");
        match kind {
            CollectiveKind::Bcast => {
                let mut buf = vec![1.0f64; contrib_elems];
                world.bcast_into(&mut buf, 0).expect("bcast");
            }
            CollectiveKind::Reduce => {
                let contrib = vec![1.0f64; contrib_elems];
                world
                    .reduce_eq_f64(&contrib, ReduceOp::Sum, 0)
                    .expect("reduce");
            }
            CollectiveKind::Allreduce => {
                let contrib = vec![1.0f64; contrib_elems];
                world
                    .allreduce_eq_f64(&contrib, ReduceOp::Sum)
                    .expect("allreduce");
            }
            CollectiveKind::Allgather => {
                let contrib = vec![1.0f64; contrib_elems];
                world.allgather_eq(&contrib).expect("allgather");
            }
        }
        (algo, predicted)
    });
    let (algo, predicted) = report.results[0];
    (algo.name(), predicted, report.makespan.as_secs())
}

/// Runs the benchmark: every collective kind across the size sweep, once
/// under the hierarchy-aware selector and once flat-only.
pub fn run(quick: bool) -> HierarchyBench {
    let sizes: &[usize] = if quick {
        &[65_536]
    } else {
        &[1_024, 8_192, 65_536, 262_144]
    };
    let topology = multi_site_testbed();
    let p = topology.ranks();
    let mut bench = HierarchyBench { points: Vec::new() };
    for kind in [
        CollectiveKind::Bcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Allgather,
    ] {
        for &bytes in sizes {
            let elems = (bytes / 8).max(p);
            let (hier_algo, hier_predicted_s, hier_measured_s) =
                measure(&topology, CollectivePolicy::Auto, kind, elems);
            let (flat_algo, _, flat_measured_s) =
                measure(&topology, CollectivePolicy::FlatAuto, kind, elems);
            bench.points.push(HierarchyPoint {
                kind: kind.name(),
                p,
                bytes,
                hier_algo,
                flat_algo,
                hier_predicted_s,
                hier_measured_s,
                flat_measured_s,
            });
        }
    }
    bench
}

/// Text-table rendering.
pub fn render(b: &HierarchyBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Hierarchical collectives: topology-aware Auto vs flat-only selector \
         (3 sites x 5 nodes, WAN 1 MB/s / 50 ms, serialized NICs)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>3} {:>8} {:>14} {:>14} {:>13} {:>13} {:>8} {:>8}",
        "collective", "p", "bytes", "hier algo", "flat algo", "hier [s]", "flat [s]",
        "speedup", "err [%]"
    );
    for c in &b.points {
        let _ = writeln!(
            out,
            "{:>10} {:>3} {:>8} {:>14} {:>14} {:>13.6e} {:>13.6e} {:>8.2} {:>8.3}",
            c.kind,
            c.p,
            c.bytes,
            c.hier_algo,
            c.flat_algo,
            c.hier_measured_s,
            c.flat_measured_s,
            c.speedup(),
            c.error_pct(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "max prediction error: {:.3}%", b.max_error_pct());
    let _ = writeln!(
        out,
        "best speedup at >=64 KiB: {:.2}x (gate {:.1}x)",
        b.best_large_speedup(),
        HIER_SPEEDUP_GATE
    );
    let _ = writeln!(out, "worst speedup anywhere: {:.3}x", b.min_speedup());
    let _ = writeln!(out, "total measured virtual time: {:.6}s", b.total_measured_s());
    out
}

/// Serialises the benchmark to JSON (hand-formatted; the workspace's serde
/// shim has no serializer).
pub fn to_json(b: &HierarchyBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"max_error_pct\": {:.4},", b.max_error_pct());
    let _ = writeln!(out, "  \"best_large_speedup\": {:.4},", b.best_large_speedup());
    let _ = writeln!(out, "  \"min_speedup\": {:.4},", b.min_speedup());
    let _ = writeln!(out, "  \"total_measured_s\": {:.9},", b.total_measured_s());
    let _ = writeln!(out, "  \"points\": [");
    let n = b.points.len();
    for (i, c) in b.points.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"p\": {}, \"bytes\": {}, \"hier_algo\": \"{}\", \
             \"flat_algo\": \"{}\", \"hier_predicted_s\": {:.9e}, \"hier_measured_s\": {:.9e}, \
             \"flat_measured_s\": {:.9e}, \"speedup\": {:.4}, \"error_pct\": {:.4}}}{comma}",
            c.kind,
            c.p,
            c.bytes,
            c.hier_algo,
            c.flat_algo,
            c.hier_predicted_s,
            c.hier_measured_s,
            c.flat_measured_s,
            c.speedup(),
            c.error_pct()
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_selector_beats_flat_and_predictions_hold() {
        let b = run(true);
        assert!(!b.points.is_empty());
        assert!(
            b.points.iter().any(|c| c.hier_algo == "hierarchical"),
            "the selector never left the flat family:\n{}",
            render(&b)
        );
        assert!(
            b.max_error_pct() < 5.0,
            "hierarchical prediction error {:.3}% breaches the 5% gate",
            b.max_error_pct()
        );
        assert!(
            b.best_large_speedup() >= HIER_SPEEDUP_GATE,
            "best >=64 KiB speedup {:.2}x under the {:.1}x gate:\n{}",
            b.best_large_speedup(),
            HIER_SPEEDUP_GATE,
            render(&b)
        );
        assert!(
            b.min_speedup() >= 1.0 - 1e-9,
            "hierarchy-aware selector lost to flat somewhere:\n{}",
            render(&b)
        );
    }

    #[test]
    fn the_sweep_is_deterministic() {
        let (a, b) = (run(true), run(true));
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.hier_measured_s.to_bits(), y.hier_measured_s.to_bits(), "{x:?}");
            assert_eq!(x.hier_predicted_s.to_bits(), y.hier_predicted_s.to_bits(), "{x:?}");
            assert_eq!(x.flat_measured_s.to_bits(), y.flat_measured_s.to_bits(), "{x:?}");
        }
    }
}
