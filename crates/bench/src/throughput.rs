//! p2p substrate throughput micro-bench
//! (`figures -- throughput` → `BENCH_throughput.json`).
//!
//! The substrate rework split p2p traffic into an eager protocol (inline
//! payloads, no per-message heap allocation) and a rendezvous protocol
//! (arena-leased zero-copy buffers), and replaced the single
//! `Mutex<Vec<Envelope>>` mailbox — front-to-back scan to match, `Vec::remove`
//! to claim — with per-sender lanes feeding an indexed matcher
//! (per-`(ctx, src)` `VecDeque`s plus wildcard order tickets).
//!
//! This bench races the two mailbox structures head to head. The legacy
//! side is a faithful replica of the pre-rework mailbox (same lock shape,
//! same scan-and-remove matching, same per-message `Vec<u8>` payload,
//! same 25 ms guard poll); the new side is the real
//! [`mpisim::p2p::Mailbox`] driven through its public posting/matching
//! API with real [`Payload`] representations, including pool-leased
//! rendezvous buffers.
//!
//! Three phases per point:
//!
//! * **burst** — `k` senders flood all messages, then the receiver drains
//!   with specific-source round-robin receives. This is the fan-in shape
//!   collectives produce, and it is where the legacy structure collapses:
//!   each claim near the queue head shifts the entire tail
//!   (`Vec::remove`), so draining `n` queued messages costs `O(n²)`
//!   envelope moves. The indexed matcher pops each one in `O(1)`.
//! * **backlog** — same flood-then-drain, but with an unexpected-message
//!   backlog parked on a *different context plane* (the shape a
//!   collective fan-in leaves behind while p2p traffic continues). The
//!   legacy mailbox is one flat `Vec` across all planes, so every match
//!   walks the entire backlog before reaching its message; the indexed
//!   matcher keys queues by `(ctx, src)` and never looks at it.
//! * **steady** — senders and receiver run concurrently, so queues stay
//!   shallow and the comparison isolates per-message constant costs
//!   (allocation vs inline/lease, lock traffic, wakeups).
//!
//! CI gates (checked by `figures -- throughput`, release build):
//!
//! * burst eager (≤ 256 B) messages/sec ≥ [`EAGER_SPEEDUP_GATE`] × legacy;
//! * burst rendezvous (≥ 64 KiB) bytes/sec ≥ [`RENDEZVOUS_SPEEDUP_GATE`] ×
//!   legacy;
//! * absolute eager msgs/sec no more than 10 % below the conservative
//!   checked-in baseline (`crates/bench/baselines/throughput_baseline.json`);
//! * no rendezvous lease leaked by the bench itself.

use mpisim::p2p::{Envelope, Mailbox, Pattern, Payload};
use mpisim::pool::BufferPool;
use std::hint::black_box;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hetsim::SimTime;

/// Minimum burst-eager speedup (new vs legacy msgs/sec) the CI gate demands.
pub const EAGER_SPEEDUP_GATE: f64 = 5.0;

/// Minimum burst-rendezvous speedup (new vs legacy bytes/sec) the CI gate
/// demands.
pub const RENDEZVOUS_SPEEDUP_GATE: f64 = 2.0;

// ---------------------------------------------------------------------------
// Legacy mailbox replica
// ---------------------------------------------------------------------------

/// The pre-rework envelope: a heap `Vec<u8>` payload per message.
struct LegacyEnvelope {
    ctx: u64,
    src: usize,
    tag: i32,
    data: Vec<u8>,
}

/// Faithful replica of the pre-rework mailbox: one `Mutex<Vec<Envelope>>`
/// guarded by a condvar, matching by front-to-back scan, claiming by
/// `Vec::remove(i)`, and waking sleepers on a 25 ms guard poll — the
/// structure this PR replaced (see git history of `mpisim::p2p`).
struct LegacyMailbox {
    inner: Mutex<Vec<LegacyEnvelope>>,
    cond: Condvar,
}

/// The legacy guard-poll period (the old `GUARD_POLL`).
const LEGACY_GUARD_POLL: Duration = Duration::from_millis(25);

impl LegacyMailbox {
    fn new() -> Self {
        LegacyMailbox {
            inner: Mutex::new(Vec::new()),
            cond: Condvar::new(),
        }
    }

    fn post(&self, env: LegacyEnvelope) {
        self.inner.lock().unwrap().push(env);
        self.cond.notify_all();
    }

    /// Blocking matched receive, exactly as the old `recv_match`: scan the
    /// queue front to back for the first match, `Vec::remove` it, else
    /// sleep out a guard-poll period and rescan.
    fn recv(&self, ctx: u64, src: Option<usize>, tag: Option<i32>) -> LegacyEnvelope {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(i) = q.iter().position(|e| {
                e.ctx == ctx
                    && src.is_none_or(|s| s == e.src)
                    && tag.is_none_or(|t| t == e.tag)
            }) {
                return q.remove(i);
            }
            let (guard, _) = self.cond.wait_timeout(q, LEGACY_GUARD_POLL).unwrap();
            q = guard;
        }
    }
}

// ---------------------------------------------------------------------------
// Measurement points
// ---------------------------------------------------------------------------

/// One (phase, protocol, fan-in, size) measurement of both mailboxes.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// "burst" (flood then drain), "backlog" (flood then drain behind an
    /// unexpected-message backlog on another plane), or "steady"
    /// (concurrent produce/consume).
    pub phase: &'static str,
    /// Unexpected messages parked on an unrelated context plane for the
    /// duration of the timed section (zero outside the backlog phase).
    pub backlog: usize,
    /// "eager" (inline payloads) or "rendezvous" (pool-leased payloads).
    pub protocol: &'static str,
    /// Number of concurrent senders (fan-in width).
    pub senders: usize,
    /// Payload size in bytes.
    pub size: usize,
    /// Total messages moved per side.
    pub msgs: usize,
    /// Wall-clock seconds for the legacy mailbox replica.
    pub legacy_s: f64,
    /// Wall-clock seconds for the new substrate mailbox.
    pub new_s: f64,
    /// Whether this point participates in the speedup CI gates.
    pub gated: bool,
}

impl ThroughputPoint {
    /// Legacy messages per second.
    pub fn legacy_msgs_s(&self) -> f64 {
        self.msgs as f64 / self.legacy_s
    }

    /// New-substrate messages per second.
    pub fn new_msgs_s(&self) -> f64 {
        self.msgs as f64 / self.new_s
    }

    /// New-substrate payload bytes per second.
    pub fn new_bytes_s(&self) -> f64 {
        self.new_msgs_s() * self.size as f64
    }

    /// Legacy payload bytes per second.
    pub fn legacy_bytes_s(&self) -> f64 {
        self.legacy_msgs_s() * self.size as f64
    }

    /// Throughput ratio, new over legacy (same for msgs/sec and bytes/sec).
    pub fn speedup(&self) -> f64 {
        self.legacy_s / self.new_s
    }
}

/// The whole benchmark.
#[derive(Debug, Clone)]
pub struct ThroughputBench {
    /// Every measured point, in sweep order.
    pub points: Vec<ThroughputPoint>,
    /// Leases still outstanding in the bench's pool after all points ran —
    /// must be zero (arena hygiene gate).
    pub pool_outstanding: usize,
}

impl ThroughputBench {
    fn gated<'a>(&'a self, protocol: &'a str) -> impl Iterator<Item = &'a ThroughputPoint> + 'a {
        self.points
            .iter()
            .filter(move |p| p.gated && p.protocol == protocol)
    }

    /// Worst gated eager speedup (msgs/sec, new vs legacy) — the ≥ 5× gate.
    pub fn min_eager_speedup(&self) -> f64 {
        self.gated("eager")
            .map(ThroughputPoint::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst gated rendezvous speedup (bytes/sec) — the ≥ 2× gate.
    pub fn min_rendezvous_speedup(&self) -> f64 {
        self.gated("rendezvous")
            .map(ThroughputPoint::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Most conservative absolute eager throughput on the new substrate
    /// (msgs/sec, minimum over gated eager points) — compared against the
    /// checked-in baseline for the regression gate.
    pub fn eager_msgs_s(&self) -> f64 {
        self.gated("eager")
            .map(ThroughputPoint::new_msgs_s)
            .fold(f64::INFINITY, f64::min)
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Context id used for every benched message (a single p2p plane).
const CTX: u64 = 1;

/// Context id of the unexpected-message backlog (a different plane, the
/// way collective traffic is segregated from p2p traffic).
const BG_CTX: u64 = 2;

/// Payload size of each parked backlog message.
const BG_SIZE: usize = 64;

/// Builds the payload a sender posts on the new substrate: inline for
/// eager-sized messages, a pool lease filled from the template for
/// rendezvous-sized ones — the same representations `Comm::send` produces.
fn new_payload(template: &[u8], pool: &Arc<BufferPool>, eager: bool) -> Payload {
    if eager {
        Payload::inline_from(template)
    } else {
        let mut lease = pool.lease(template.len());
        lease.buf_mut().extend_from_slice(template);
        Payload::Pooled(lease)
    }
}

fn legacy_payload(template: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(template.len());
    v.extend_from_slice(template);
    v
}

/// Consumes a received payload the way an application would: touch the
/// bytes so neither side can skip materialising the message.
fn consume(bytes: &[u8], sink: &mut u64) {
    if let (Some(first), Some(last)) = (bytes.first(), bytes.last()) {
        *sink += *first as u64 + *last as u64;
    }
}

/// Times the legacy replica: `k` senders each move `per_sender` messages of
/// `size` bytes to one receiver. In burst mode the flood completes before
/// the drain starts; in steady mode they run concurrently. The drain is a
/// specific-source round-robin, the access pattern collective fan-in
/// produces.
fn run_legacy(k: usize, per_sender: usize, size: usize, burst: bool, backlog: usize) -> f64 {
    let mb = LegacyMailbox::new();
    let template = vec![0xA5u8; size];
    let total = k * per_sender;
    let mut sink = 0u64;
    // Park the unexpected backlog (untimed): in the legacy structure it
    // lands in the same flat Vec every receive scans.
    for i in 0..backlog {
        mb.post(LegacyEnvelope {
            ctx: BG_CTX,
            src: i % k,
            tag: 9,
            data: vec![0u8; BG_SIZE],
        });
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..k {
            let mb = &mb;
            let template = &template;
            handles.push(scope.spawn(move || {
                for _ in 0..per_sender {
                    mb.post(LegacyEnvelope {
                        ctx: CTX,
                        src: s,
                        tag: 0,
                        data: legacy_payload(template),
                    });
                }
            }));
        }
        if burst {
            for h in handles {
                h.join().unwrap();
            }
        }
        for i in 0..total {
            let env = mb.recv(CTX, Some(i % k), Some(0));
            consume(&env.data, &mut sink);
        }
    });
    black_box(sink);
    start.elapsed().as_secs_f64()
}

/// Times the new substrate over the identical traffic pattern, driving the
/// real [`Mailbox`] through `post_lane`/`recv_match`.
fn run_new(
    k: usize,
    per_sender: usize,
    size: usize,
    burst: bool,
    backlog: usize,
    pool: &Arc<BufferPool>,
) -> f64 {
    let mb = Mailbox::for_world(k);
    let template = vec![0xA5u8; size];
    let eager = size <= mpisim::DEFAULT_EAGER_LIMIT;
    let total = k * per_sender;
    let mut sink = 0u64;
    // Park the same unexpected backlog (untimed): it sits in its own
    // (BG_CTX, src) queues and the timed receives never touch it.
    let bg = [0u8; BG_SIZE];
    for i in 0..backlog {
        mb.post_lane(Envelope {
            ctx: BG_CTX,
            src_world: i % k,
            tag: 9,
            payload: Payload::inline_from(&bg),
            sent_at: SimTime::from_secs(0.0),
            arrival: SimTime::from_secs(0.0),
            seq: i as u64,
            xfer: None,
        });
    }
    if backlog > 0 {
        // Settle the parked messages into the indexed store (untimed),
        // mirroring the legacy side's untimed queue build-up.
        let _ = mb.try_probe(Pattern {
            ctx: BG_CTX,
            src_world: Some(0),
            tag: Some(9),
        });
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..k {
            let mb = &mb;
            let template = &template;
            handles.push(scope.spawn(move || {
                for _ in 0..per_sender {
                    mb.post_lane(Envelope {
                        ctx: CTX,
                        src_world: s,
                        tag: 0,
                        payload: new_payload(template, pool, eager),
                        sent_at: SimTime::from_secs(0.0),
                        arrival: SimTime::from_secs(0.0),
                        seq: 0,
                        xfer: None,
                    });
                }
            }));
        }
        if burst {
            for h in handles {
                h.join().unwrap();
            }
        }
        for i in 0..total {
            let env = mb.recv_match(Pattern {
                ctx: CTX,
                src_world: Some(i % k),
                tag: Some(0),
            });
            let msg = env.into_msg();
            consume(&msg, &mut sink);
        }
    });
    black_box(sink);
    start.elapsed().as_secs_f64()
}

// The positional args read as a sweep-table row at the call sites.
#[allow(clippy::too_many_arguments)]
fn measure(
    phase: &'static str,
    protocol: &'static str,
    k: usize,
    per_sender: usize,
    size: usize,
    backlog: usize,
    gated: bool,
    pool: &Arc<BufferPool>,
) -> ThroughputPoint {
    let burst = phase != "steady";
    // Warm both sides once (thread spawn, allocator, pool free lists), then
    // take the better of two timed runs to shed scheduler noise.
    run_legacy(k, per_sender.min(32), size, burst, backlog.min(256));
    run_new(k, per_sender.min(32), size, burst, backlog.min(256), pool);
    let legacy_s = (0..2)
        .map(|_| run_legacy(k, per_sender, size, burst, backlog))
        .fold(f64::INFINITY, f64::min);
    let new_s = (0..2)
        .map(|_| run_new(k, per_sender, size, burst, backlog, pool))
        .fold(f64::INFINITY, f64::min);
    ThroughputPoint {
        phase,
        backlog,
        protocol,
        senders: k,
        size,
        msgs: k * per_sender,
        legacy_s,
        new_s,
        gated,
    }
}

/// Unexpected-message backlog depth for the gated rendezvous point.
/// Unexpected-queue blowup is a classic MPI pathology (fan-in senders
/// outrunning a receiver park tens of thousands of unmatched messages);
/// at this depth the legacy flat Vec no longer fits in L2, so every scan
/// walks it at DRAM latency, while the indexed matcher never looks at it.
const RDV_BACKLOG: usize = 131_072;

/// Runs the full sweep. `quick` trims the ungated sweep dimensions but
/// keeps the gated points at full depth, so the speedup gates mean the
/// same thing in both modes.
pub fn run(quick: bool) -> ThroughputBench {
    let pool = BufferPool::new();
    let mut points = Vec::new();

    // Gated burst eager sweep: message-size axis at fixed fan-in. Queue
    // depth (k * per_sender) is what exposes the legacy O(n²) drain, so
    // quick mode keeps it.
    let eager_sizes: &[usize] = if quick { &[8, 256] } else { &[8, 64, 256] };
    for &size in eager_sizes {
        points.push(measure("burst", "eager", 8, 2000, size, 0, true, &pool));
    }

    // Ungated world-size axis: same total traffic, narrower fan-in.
    if !quick {
        for &k in &[2usize, 4] {
            points.push(measure("burst", "eager", k, 16_000 / k, 256, 0, false, &pool));
        }
    }

    // Gated rendezvous point: large-message fan-in drained from behind a
    // parked unexpected-message backlog on another plane.
    points.push(measure(
        "backlog",
        "rendezvous",
        8,
        150,
        64 * 1024,
        RDV_BACKLOG,
        true,
        &pool,
    ));

    // Ungated rendezvous axes: clean burst (allocator vs pool under deep
    // queues) and larger sizes.
    if !quick {
        points.push(measure("burst", "rendezvous", 8, 250, 64 * 1024, 0, false, &pool));
        points.push(measure("burst", "rendezvous", 8, 100, 256 * 1024, 0, false, &pool));
    }

    // Ungated steady-state points: shallow queues, per-message constants.
    points.push(measure(
        "steady",
        "eager",
        4,
        if quick { 500 } else { 2000 },
        64,
        0,
        false,
        &pool,
    ));
    if !quick {
        points.push(measure("steady", "rendezvous", 4, 32, 1 << 20, 0, false, &pool));
    }

    ThroughputBench {
        points,
        pool_outstanding: pool.outstanding(),
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn human_size(size: usize) -> String {
    if size >= 1 << 20 {
        format!("{}MiB", size >> 20)
    } else if size >= 1 << 10 {
        format!("{}KiB", size >> 10)
    } else {
        format!("{size}B")
    }
}

/// Text-table rendering.
pub fn render(b: &ThroughputBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# p2p mailbox throughput: legacy scan/remove mailbox vs lane+indexed substrate"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>3} {:>7} {:>6} {:>7} {:>13} {:>13} {:>12} {:>8} {:>5}",
        "phase", "protocol", "k", "size", "msgs", "parked", "legacy [m/s]", "new [m/s]", "new [MB/s]", "speedup", "gate"
    );
    for p in &b.points {
        let _ = writeln!(
            out,
            "{:>7} {:>10} {:>3} {:>7} {:>6} {:>7} {:>13.0} {:>13.0} {:>12.1} {:>7.1}x {:>5}",
            p.phase,
            p.protocol,
            p.senders,
            human_size(p.size),
            p.msgs,
            p.backlog,
            p.legacy_msgs_s(),
            p.new_msgs_s(),
            p.new_bytes_s() / 1e6,
            p.speedup(),
            if p.gated { "yes" } else { "-" }
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "worst gated eager speedup:      {:.1}x (gate: >= {EAGER_SPEEDUP_GATE:.0}x msgs/sec)",
        b.min_eager_speedup()
    );
    let _ = writeln!(
        out,
        "worst gated rendezvous speedup: {:.1}x (gate: >= {RENDEZVOUS_SPEEDUP_GATE:.0}x bytes/sec)",
        b.min_rendezvous_speedup()
    );
    let _ = writeln!(
        out,
        "eager msgs/sec (conservative):  {:.0} (regression gate vs checked-in baseline)",
        b.eager_msgs_s()
    );
    let _ = writeln!(
        out,
        "pool leases outstanding:        {} (gate: 0)",
        b.pool_outstanding
    );
    out
}

/// Serialises the benchmark to JSON (hand-formatted; the workspace's serde
/// shim has no serializer).
pub fn to_json(b: &ThroughputBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"min_eager_speedup\": {:.3},", b.min_eager_speedup());
    let _ = writeln!(
        out,
        "  \"min_rendezvous_speedup\": {:.3},",
        b.min_rendezvous_speedup()
    );
    let _ = writeln!(out, "  \"eager_msgs_per_s\": {:.1},", b.eager_msgs_s());
    let _ = writeln!(out, "  \"pool_outstanding\": {},", b.pool_outstanding);
    let _ = writeln!(out, "  \"points\": [");
    let n = b.points.len();
    for (i, p) in b.points.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"phase\": \"{}\", \"protocol\": \"{}\", \"senders\": {}, \"size\": {}, \
             \"msgs\": {}, \"backlog\": {}, \"legacy_msgs_per_s\": {:.1}, \
             \"new_msgs_per_s\": {:.1}, \"legacy_bytes_per_s\": {:.1}, \
             \"new_bytes_per_s\": {:.1}, \"speedup\": {:.3}, \"gated\": {}}}{comma}",
            p.phase,
            p.protocol,
            p.senders,
            p.size,
            p.msgs,
            p.backlog,
            p.legacy_msgs_s(),
            p.new_msgs_s(),
            p.legacy_bytes_s(),
            p.new_bytes_s(),
            p.speedup(),
            p.gated
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The hard >= 5x / >= 2x gates run in `figures -- throughput` on a
    // release build; these tests run under the debug profile, where the new
    // substrate's per-message constants are unoptimised, so they assert a
    // loose floor plus the structural invariants.

    #[test]
    fn burst_points_beat_legacy_and_leak_nothing() {
        let b = run(true);
        assert!(b.points.iter().any(|p| p.protocol == "eager" && p.gated));
        assert!(b.points.iter().any(|p| p.protocol == "rendezvous" && p.gated));
        for p in b.points.iter().filter(|p| p.gated) {
            assert!(
                p.speedup() > 1.2,
                "{} {} {} at {}B: speedup {:.2}x — indexed drain not beating scan/remove",
                p.phase,
                p.protocol,
                p.senders,
                p.size,
                p.speedup()
            );
        }
        assert_eq!(b.pool_outstanding, 0, "bench leaked rendezvous leases");
    }

    #[test]
    fn json_reports_gates_and_points() {
        let b = run(true);
        let j = to_json(&b);
        assert!(j.contains("\"min_eager_speedup\""));
        assert!(j.contains("\"min_rendezvous_speedup\""));
        assert!(j.contains("\"eager_msgs_per_s\""));
        assert!(j.contains("\"rendezvous\""));
        assert!(j.contains("\"pool_outstanding\": 0"));
    }
}
