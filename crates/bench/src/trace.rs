//! Tracing-overhead and prediction-accuracy benchmark (`figures -- trace`).
//!
//! Two questions, both on the paper's 9-workstation LAN:
//!
//! * **what does the instrumentation cost?** Every hook compiles to a single
//!   `Option` discriminant check when tracing is off, so the disabled-mode
//!   overhead cannot be separated from run-to-run noise inside one binary.
//!   The bench therefore times the EM3D selection workload (recon +
//!   `group_create` search + iterations — every hook site fires) in three
//!   interleaved batches: tracing off (A), tracing on, tracing off (B),
//!   min-of-N each. The spread between the two disabled batches *is* the
//!   empirical bound on the disabled-mode overhead; the enabled column shows
//!   what actually recording every span costs.
//! * **how good are the `HMPI_Timeof` predictions?** EM3D and MM run once
//!   with tracing enabled; the [`hetsim::PredictionReport`] gives the signed
//!   model error and the per-phase compute/comm/wait breakdown.
//!
//! `figures -- trace` renders the table; the non-`--quick` run also writes
//! `BENCH_trace.json` and the EM3D Chrome trace `TRACE_em3d.json` (loadable
//! in `about:tracing` / Perfetto).

use crate::{em3d_cluster, matmul_cluster};
use hmpi_apps::em3d::{run_hmpi, run_hmpi_traced, Em3dConfig};
use hmpi_apps::matmul;
use std::time::Instant;

/// Sub-bodies of the EM3D overhead workload (the paper's 9 machines).
pub const P: usize = 9;
/// EM3D iterations per overhead run.
pub const NITER: usize = 5;
/// Recon benchmark size.
pub const K: usize = 10;

/// Prediction accuracy of one traced application run.
#[derive(Debug, Clone)]
pub struct ModelErrorPoint {
    /// Application label.
    pub app: String,
    /// `HMPI_Timeof` prediction, virtual seconds.
    pub predicted_s: f64,
    /// Measured virtual time, seconds.
    pub measured_s: f64,
    /// Signed model error, percent of measured (positive: over-predicted).
    pub error_pct: f64,
    /// Total compute time across ranks, virtual seconds.
    pub compute_s: f64,
    /// Total communication time across ranks, virtual seconds.
    pub comm_s: f64,
    /// Total receive-wait (idle) time across ranks, virtual seconds.
    pub wait_s: f64,
    /// Messages recorded (sends).
    pub messages: usize,
    /// Payload bytes recorded (sends).
    pub bytes: u64,
}

fn model_error_point(app: &str, report: &hetsim::PredictionReport, trace: &hetsim::Trace, n_ranks: usize) -> ModelErrorPoint {
    let (mut compute, mut comm, mut wait) = (0.0, 0.0, 0.0);
    for ph in &report.phases {
        compute += ph.compute.as_secs();
        comm += ph.comm.as_secs();
        wait += ph.wait.as_secs();
    }
    let stats = trace.message_stats(n_ranks);
    ModelErrorPoint {
        app: app.to_string(),
        predicted_s: report.predicted,
        measured_s: report.measured,
        error_pct: report.error_pct(),
        compute_s: compute,
        comm_s: comm,
        wait_s: wait,
        messages: stats.iter().map(|s| s.sent).sum(),
        bytes: stats.iter().map(|s| s.bytes_sent).sum(),
    }
}

/// The full trace benchmark result.
#[derive(Debug, Clone)]
pub struct TraceBench {
    /// Min-of-N wall time of the workload, tracing disabled, first batch
    /// (milliseconds).
    pub disabled_a_ms: f64,
    /// Same workload and batch size, tracing disabled, second batch —
    /// interleaved with the first so the spread bounds the disabled-mode
    /// overhead plus timer noise.
    pub disabled_b_ms: f64,
    /// Min-of-N wall time with tracing enabled (milliseconds).
    pub enabled_ms: f64,
    /// Events the enabled run recorded.
    pub events: usize,
    /// Prediction accuracy, EM3D.
    pub em3d: ModelErrorPoint,
    /// Prediction accuracy, MM.
    pub matmul: ModelErrorPoint,
}

impl TraceBench {
    /// Empirical bound on the disabled-mode overhead: the relative spread
    /// between the two interleaved disabled batches, percent.
    pub fn disabled_overhead_pct(&self) -> f64 {
        let lo = self.disabled_a_ms.min(self.disabled_b_ms);
        (self.disabled_a_ms - self.disabled_b_ms).abs() / lo * 100.0
    }
    /// Cost of actually recording every span: enabled vs the faster
    /// disabled batch, percent.
    pub fn enabled_overhead_pct(&self) -> f64 {
        let lo = self.disabled_a_ms.min(self.disabled_b_ms);
        (self.enabled_ms - lo) / lo * 100.0
    }
}

fn min_ms(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Runs the benchmark. `quick` shrinks the workload and repetition counts
/// for CI smoke runs.
pub fn run(quick: bool) -> TraceBench {
    let base = if quick { 60 } else { 150 };
    let reps = if quick { 3 } else { 5 };
    let cfg = Em3dConfig::ramp(P, base, 1.6, 0x7AACE);

    // --- overhead: interleaved disabled / enabled / disabled batches ------
    let (mut dis_a, mut ena, mut dis_b) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..reps {
        let t0 = Instant::now();
        let _ = run_hmpi(em3d_cluster(), &cfg, NITER, K);
        dis_a.push(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        let _ = run_hmpi_traced(em3d_cluster(), &cfg, NITER, K);
        ena.push(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        let _ = run_hmpi(em3d_cluster(), &cfg, NITER, K);
        dis_b.push(t0.elapsed().as_secs_f64() * 1e3);
    }

    // --- prediction accuracy ----------------------------------------------
    let em3d_cl = em3d_cluster();
    let em3d_ranks = em3d_cl.len();
    let traced = run_hmpi_traced(em3d_cl, &cfg, NITER, K);
    let events = traced.trace.events.len();
    let em3d = model_error_point("EM3D", &traced.report, &traced.trace, em3d_ranks);

    let mm_cl = matmul_cluster();
    let mm_ranks = mm_cl.len();
    let n = if quick { 9 } else { 12 };
    let mm = matmul::run_hmpi_traced(mm_cl, 3, n, 9, None);
    let matmul = model_error_point("MM", &mm.report, &mm.trace, mm_ranks);

    TraceBench {
        disabled_a_ms: min_ms(&dis_a),
        disabled_b_ms: min_ms(&dis_b),
        enabled_ms: min_ms(&ena),
        events,
        em3d,
        matmul,
    }
}

/// Renders the benchmark as an aligned text table.
pub fn render(b: &TraceBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Tracing overhead: EM3D selection workload, {P}-node paper LAN ({} events when enabled)",
        b.events
    );
    let _ = writeln!(out, "{:>22}  {:>12}  {:>10}", "mode", "min [ms]", "overhead");
    let _ = writeln!(out, "{:>22}  {:>12.3}  {:>10}", "disabled (batch A)", b.disabled_a_ms, "-");
    let _ = writeln!(
        out,
        "{:>22}  {:>12.3}  {:>9.2}%",
        "disabled (batch B)",
        b.disabled_b_ms,
        b.disabled_overhead_pct()
    );
    let _ = writeln!(
        out,
        "{:>22}  {:>12.3}  {:>9.2}%",
        "enabled",
        b.enabled_ms,
        b.enabled_overhead_pct()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "# Prediction vs actual (virtual seconds, totals across ranks)");
    let _ = writeln!(
        out,
        "{:>6}  {:>12}  {:>12}  {:>8}  {:>10}  {:>10}  {:>10}  {:>8}  {:>12}",
        "app", "predicted", "measured", "error", "compute", "comm", "wait", "msgs", "bytes"
    );
    for p in [&b.em3d, &b.matmul] {
        let _ = writeln!(
            out,
            "{:>6}  {:>12.4}  {:>12.4}  {:>7.1}%  {:>10.4}  {:>10.4}  {:>10.4}  {:>8}  {:>12}",
            p.app, p.predicted_s, p.measured_s, p.error_pct, p.compute_s, p.comm_s, p.wait_s,
            p.messages, p.bytes
        );
    }
    out
}

/// Serialises the benchmark to JSON (hand-formatted; the workspace's serde
/// shim has no serializer).
pub fn to_json(b: &TraceBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workload\": \"em3d p={P} niter={NITER}\",");
    let _ = writeln!(out, "  \"events_enabled\": {},", b.events);
    let _ = writeln!(out, "  \"disabled_a_ms\": {:.3},", b.disabled_a_ms);
    let _ = writeln!(out, "  \"disabled_b_ms\": {:.3},", b.disabled_b_ms);
    let _ = writeln!(out, "  \"enabled_ms\": {:.3},", b.enabled_ms);
    let _ = writeln!(
        out,
        "  \"disabled_overhead_pct\": {:.2},",
        b.disabled_overhead_pct()
    );
    let _ = writeln!(
        out,
        "  \"enabled_overhead_pct\": {:.2},",
        b.enabled_overhead_pct()
    );
    let _ = writeln!(out, "  \"model_error\": [");
    for (i, p) in [&b.em3d, &b.matmul].into_iter().enumerate() {
        let comma = if i == 1 { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"app\": \"{}\", \"predicted_s\": {:.6}, \"measured_s\": {:.6}, \"error_pct\": {:.2}, \"compute_s\": {:.6}, \"comm_s\": {:.6}, \"wait_s\": {:.6}, \"messages\": {}, \"bytes\": {}}}{comma}",
            p.app, p.predicted_s, p.measured_s, p.error_pct, p.compute_s, p.comm_s, p.wait_s,
            p.messages, p.bytes
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// The EM3D Chrome trace the non-`--quick` run writes to `TRACE_em3d.json`.
pub fn em3d_chrome_trace(quick: bool) -> String {
    let base = if quick { 60 } else { 150 };
    let cfg = Em3dConfig::ramp(P, base, 1.6, 0x7AACE);
    run_hmpi_traced(em3d_cluster(), &cfg, NITER, K)
        .trace
        .to_chrome_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_reports_are_sane() {
        let b = run(true);
        assert!(b.events > 0, "enabled run must record events");
        assert!(b.disabled_a_ms > 0.0 && b.enabled_ms > 0.0);
        // Wall-clock noise bound kept loose for shared CI machines; the
        // release-mode JSON is where the < 5% acceptance figure lives.
        assert!(
            b.disabled_overhead_pct() < 30.0,
            "disabled-batch spread {:.2}% implausibly high",
            b.disabled_overhead_pct()
        );
        for p in [&b.em3d, &b.matmul] {
            assert!(p.predicted_s > 0.0 && p.measured_s > 0.0, "{}", p.app);
            assert!(p.compute_s > 0.0, "{} must record compute time", p.app);
            assert!(p.comm_s > 0.0, "{} must record comm time", p.app);
            assert!(p.messages > 0 && p.bytes > 0, "{}", p.app);
            assert!(
                p.error_pct.abs() < 200.0,
                "{} model error {:.1}% out of band",
                p.app,
                p.error_pct
            );
        }
        let j = to_json(&b);
        assert!(j.starts_with("{\n") && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"app\"").count(), 2);
    }

    #[test]
    fn chrome_trace_is_loadable_shape() {
        let j = em3d_chrome_trace(true);
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\":\"X\""));
    }
}
