//! Regenerates the paper's evaluation figures as text tables (or CSV).
//!
//! ```text
//! cargo run --release -p hmpi-bench --bin figures -- all
//! cargo run --release -p hmpi-bench --bin figures -- fig9a fig9b
//! cargo run --release -p hmpi-bench --bin figures -- --csv fig10
//! cargo run --release -p hmpi-bench --bin figures -- --quick all
//! ```

use hmpi_bench::{
    ablation, collectives, contention, deadlock, extension, faults, fig10, fig11, fig9,
    hierarchy, render_csv, render_table, selection, throughput, trace, ComparisonPoint,
};

/// Conservative checked-in eager-throughput baseline for the regression
/// gate (compiled-in path, so the gate works from any working directory).
const THROUGHPUT_BASELINE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/throughput_baseline.json");

/// Checked-in contended virtual-time baseline: arbitration is
/// deterministic, so the summed measured virtual time only drifts when
/// the contention semantics change.
const CONTENTION_BASELINE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/contention_baseline.json");

/// Checked-in hierarchical-collective baseline: pins the multi-site
/// testbed's summed virtual time across both selectors.
const HIERARCHY_BASELINE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/hierarchy_baseline.json");

/// Pulls `"<key>": <number>` out of a baseline JSON (the workspace's
/// serde shim has no deserializer, so this is by hand).
fn baseline_number(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn baseline_eager_msgs_s() -> Option<f64> {
    baseline_number(THROUGHPUT_BASELINE, "eager_msgs_per_s")
}

struct Options {
    csv: bool,
    quick: bool,
}

fn emit(opts: &Options, title: &str, x_label: &str, pts: &[ComparisonPoint]) {
    if opts.csv {
        print!("{}", render_csv(x_label, pts));
    } else {
        print!("{}", render_table(title, x_label, pts));
    }
    println!();
}

fn fig9_points(opts: &Options) -> Vec<ComparisonPoint> {
    let sizes: &[usize] = if opts.quick { &[60, 150] } else { fig9::DEFAULT_SIZES };
    fig9::series(sizes)
}

fn fig10_points(opts: &Options) -> (Vec<ComparisonPoint>, usize, usize) {
    let n = if opts.quick { 9 } else { fig10::N };
    let ls: Vec<usize> = if opts.quick {
        vec![3, 4, 6, 9]
    } else {
        fig10::DEFAULT_LS.to_vec()
    };
    (fig10::series(&ls, n), fig10::timeof_choice(n), n)
}

fn fig11_points(opts: &Options) -> Vec<ComparisonPoint> {
    let ns: &[usize] = if opts.quick { &[9, 12] } else { fig11::DEFAULT_NS };
    fig11::series(ns)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = Options {
        csv: args.iter().any(|a| a == "--csv"),
        quick: args.iter().any(|a| a == "--quick"),
    };
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "fig9a", "fig9b", "fig10", "fig11a", "fig11b", "ablations", "ext-nbody", "faults",
            "selection", "trace", "collectives", "contention", "deadlock", "throughput",
            "hierarchy",
        ];
    }

    let fig9_cache = if wanted.iter().any(|w| w.starts_with("fig9")) {
        Some(fig9_points(&opts))
    } else {
        None
    };
    let fig11_cache = if wanted.iter().any(|w| w.starts_with("fig11")) {
        Some(fig11_points(&opts))
    } else {
        None
    };

    for w in wanted {
        match w {
            "fig9a" => {
                let pts = fig9_cache.as_ref().expect("cached");
                emit(
                    &opts,
                    "Figure 9(a): EM3D execution time, HMPI vs MPI (9-machine paper LAN)",
                    "total nodes",
                    pts,
                );
            }
            "fig9b" => {
                let pts = fig9_cache.as_ref().expect("cached");
                if opts.csv {
                    println!("total_nodes,speedup");
                    for p in pts {
                        println!("{},{}", p.x, p.speedup());
                    }
                } else {
                    println!("# Figure 9(b): EM3D speedup of HMPI over MPI");
                    println!("{:>12}  {:>8}", "total nodes", "speedup");
                    for p in pts {
                        println!("{:>12}  {:>8.2}", p.x, p.speedup());
                    }
                }
                println!();
            }
            "fig10" => {
                let (pts, choice, n) = fig10_points(&opts);
                emit(
                    &opts,
                    &format!(
                        "Figure 10: MM execution time vs generalised block size l (r = {}, n = {n} blocks)",
                        fig10::R
                    ),
                    "l",
                    &pts,
                );
                if !opts.csv {
                    println!("HMPI_Timeof would choose l = {choice}\n");
                }
            }
            "fig11a" => {
                let pts = fig11_cache.as_ref().expect("cached");
                emit(
                    &opts,
                    "Figure 11(a): MM execution time, HMPI (hetero dist, Timeof l) vs MPI (homogeneous)",
                    "matrix size",
                    pts,
                );
            }
            "fig11b" => {
                let pts = fig11_cache.as_ref().expect("cached");
                if opts.csv {
                    println!("matrix_size,speedup");
                    for p in pts {
                        println!("{},{}", p.x, p.speedup());
                    }
                } else {
                    println!("# Figure 11(b): MM speedup of HMPI over MPI");
                    println!("{:>12}  {:>8}", "matrix size", "speedup");
                    for p in pts {
                        println!("{:>12}  {:>8.2}", p.x, p.speedup());
                    }
                }
                println!();
            }
            "ablations" => {
                println!("# Ablation: selection algorithm (EM3D, paper LAN)");
                println!("{:>12}  {:>14}  {:>14}", "algorithm", "measured [s]", "predicted [s]");
                for p in ablation::mapping_algorithms(if opts.quick { 60 } else { 150 }) {
                    println!("{:>12}  {:>14.4}  {:>14.4}", p.algo, p.time, p.predicted);
                }
                println!();
                println!("# Ablation: network contention model (MM, l = 9)");
                println!("{:>16}  {:>14}", "model", "HMPI [s]");
                for p in ablation::contention_models(9) {
                    println!("{:>16}  {:>14.4}", p.model, p.hmpi);
                }
                println!();
                println!("# Ablation: recon freshness (EM3D, loaded cluster)");
                println!("{:>18}  {:>14}", "scenario", "time [s]");
                for p in ablation::recon_staleness(if opts.quick { 60 } else { 120 }) {
                    println!("{:>18}  {:>14.4}", p.scenario, p.time);
                }
                println!();
            }
            "ext-nbody" => {
                let sizes: &[usize] = if opts.quick { &[10] } else { extension::DEFAULT_SIZES };
                let pts = extension::series(sizes);
                emit(
                    &opts,
                    "Extension: N-body execution time, HMPI vs MPI (beyond the paper)",
                    "total bodies",
                    &pts,
                );
            }
            "faults" => {
                let rates: &[f64] = if opts.quick {
                    &[0.0, 0.3]
                } else {
                    faults::DEFAULT_RATES
                };
                let trials = if opts.quick { 2 } else { faults::TRIALS };
                let pts = faults::series(rates, trials);
                if opts.csv {
                    println!("rate,completed,trials,mean_makespan,mean_survivors,mean_rebuilds");
                    for p in &pts {
                        println!(
                            "{},{},{},{},{},{}",
                            p.rate,
                            p.completed,
                            p.trials,
                            p.mean_makespan,
                            p.mean_survivors,
                            p.mean_rebuilds
                        );
                    }
                } else {
                    println!(
                        "# Degradation: FT EM3D vs injected per-node crash rate ({} seeds/rate, host exempt)",
                        trials
                    );
                    println!(
                        "{:>6}  {:>9}  {:>14}  {:>10}  {:>9}",
                        "rate", "completed", "makespan [s]", "survivors", "rebuilds"
                    );
                    for p in &pts {
                        println!(
                            "{:>6.2}  {:>6}/{:<2}  {:>14.4}  {:>10.2}  {:>9.2}",
                            p.rate, p.completed, p.trials, p.mean_makespan, p.mean_survivors,
                            p.mean_rebuilds
                        );
                    }
                }
                println!();
            }
            "selection" => {
                let b = selection::run(opts.quick);
                print!("{}", selection::render(&b));
                println!();
                if !opts.quick {
                    let path = "BENCH_selection.json";
                    std::fs::write(path, selection::to_json(&b)).expect("write bench JSON");
                    println!("wrote {path}\n");
                }
            }
            "trace" => {
                let b = trace::run(opts.quick);
                print!("{}", trace::render(&b));
                println!();
                if !opts.quick {
                    let path = "BENCH_trace.json";
                    std::fs::write(path, trace::to_json(&b)).expect("write bench JSON");
                    let tpath = "TRACE_em3d.json";
                    std::fs::write(tpath, trace::em3d_chrome_trace(false))
                        .expect("write Chrome trace");
                    println!("wrote {path} and {tpath}\n");
                }
            }
            "collectives" => {
                let b = collectives::run(opts.quick);
                print!("{}", collectives::render(&b));
                println!();
                if !opts.quick {
                    let path = "BENCH_collectives.json";
                    std::fs::write(path, collectives::to_json(&b)).expect("write bench JSON");
                    println!("wrote {path}\n");
                }
                let err = b.max_error_pct();
                if err > 5.0 {
                    eprintln!(
                        "collective timeof prediction error {err:.3}% exceeds the 5% gate"
                    );
                    std::process::exit(1);
                }
            }
            "contention" => {
                let b = contention::run(opts.quick);
                print!("{}", contention::render(&b));
                println!();
                if !opts.quick {
                    let path = "BENCH_contention.json";
                    std::fs::write(path, contention::to_json(&b)).expect("write bench JSON");
                    println!("wrote {path}\n");
                }
                let err = b.max_error_pct();
                if err > 5.0 {
                    eprintln!(
                        "contended timeof prediction error {err:.3}% exceeds the 5% gate"
                    );
                    std::process::exit(1);
                }
                // The drift band only applies to the full sweep — quick
                // mode measures a subset, so its total is incomparable.
                if !opts.quick {
                    match baseline_number(CONTENTION_BASELINE, "total_measured_s") {
                        Some(base) => {
                            let now = b.total_measured_s();
                            if (now - base).abs() > base * 0.1 {
                                eprintln!(
                                    "contended virtual time {now:.6}s drifted more than 10% \
                                     from the checked-in baseline {base:.6}s"
                                );
                                std::process::exit(1);
                            }
                        }
                        None => {
                            eprintln!("missing or unreadable baseline {CONTENTION_BASELINE}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            "hierarchy" => {
                let b = hierarchy::run(opts.quick);
                print!("{}", hierarchy::render(&b));
                println!();
                if !opts.quick {
                    let path = "BENCH_hierarchy.json";
                    std::fs::write(path, hierarchy::to_json(&b)).expect("write bench JSON");
                    println!("wrote {path}\n");
                }
                let err = b.max_error_pct();
                if err > 5.0 {
                    eprintln!(
                        "hierarchical timeof prediction error {err:.3}% exceeds the 5% gate"
                    );
                    std::process::exit(1);
                }
                let speedup = b.best_large_speedup();
                if speedup < hierarchy::HIER_SPEEDUP_GATE {
                    eprintln!(
                        "hierarchical selector speedup {speedup:.2}x at >=64 KiB breaches the \
                         {:.1}x gate over the flat selector",
                        hierarchy::HIER_SPEEDUP_GATE
                    );
                    std::process::exit(1);
                }
                if b.min_speedup() < 1.0 - 1e-9 {
                    eprintln!(
                        "hierarchy-aware selector lost to the flat selector ({:.3}x) somewhere \
                         in the sweep",
                        b.min_speedup()
                    );
                    std::process::exit(1);
                }
                if !opts.quick {
                    match baseline_number(HIERARCHY_BASELINE, "total_measured_s") {
                        Some(base) => {
                            let now = b.total_measured_s();
                            if (now - base).abs() > base * 0.1 {
                                eprintln!(
                                    "hierarchical virtual time {now:.6}s drifted more than 10% \
                                     from the checked-in baseline {base:.6}s"
                                );
                                std::process::exit(1);
                            }
                        }
                        None => {
                            eprintln!("missing or unreadable baseline {HIERARCHY_BASELINE}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            "deadlock" => {
                let b = deadlock::run(opts.quick);
                print!("{}", deadlock::render(&b));
                println!();
                if !opts.quick {
                    let path = "BENCH_deadlock.json";
                    std::fs::write(path, deadlock::to_json(&b)).expect("write bench JSON");
                    println!("wrote {path}\n");
                }
                if !b.all_typed() {
                    eprintln!("a seeded wedge surfaced the wrong error type");
                    std::process::exit(1);
                }
                let wall = b.max_wall_s();
                if wall >= 1.0 {
                    eprintln!(
                        "slowest deadlock detection {wall:.3}s breaches the 1s wall-clock gate"
                    );
                    std::process::exit(1);
                }
            }
            "throughput" => {
                let b = throughput::run(opts.quick);
                print!("{}", throughput::render(&b));
                println!();
                if !opts.quick {
                    let path = "BENCH_throughput.json";
                    std::fs::write(path, throughput::to_json(&b)).expect("write bench JSON");
                    println!("wrote {path}\n");
                }
                if b.pool_outstanding != 0 {
                    eprintln!(
                        "throughput bench leaked {} rendezvous leases",
                        b.pool_outstanding
                    );
                    std::process::exit(1);
                }
                let eager = b.min_eager_speedup();
                if eager < throughput::EAGER_SPEEDUP_GATE {
                    eprintln!(
                        "eager msgs/sec speedup {eager:.2}x breaches the {:.0}x gate vs the \
                         legacy mailbox",
                        throughput::EAGER_SPEEDUP_GATE
                    );
                    std::process::exit(1);
                }
                let rdv = b.min_rendezvous_speedup();
                if rdv < throughput::RENDEZVOUS_SPEEDUP_GATE {
                    eprintln!(
                        "rendezvous bytes/sec speedup {rdv:.2}x breaches the {:.0}x gate vs \
                         the legacy mailbox",
                        throughput::RENDEZVOUS_SPEEDUP_GATE
                    );
                    std::process::exit(1);
                }
                match baseline_eager_msgs_s() {
                    Some(base) => {
                        let now = b.eager_msgs_s();
                        if now < base * 0.9 {
                            eprintln!(
                                "eager throughput {now:.0} msgs/s regressed more than 10% below \
                                 the checked-in baseline {base:.0} msgs/s"
                            );
                            std::process::exit(1);
                        }
                    }
                    None => {
                        eprintln!("missing or unreadable baseline {THROUGHPUT_BASELINE}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown figure `{other}`; known: fig9a fig9b fig10 fig11a fig11b ablations ext-nbody faults selection trace collectives contention deadlock throughput hierarchy all");
                std::process::exit(2);
            }
        }
    }
}
