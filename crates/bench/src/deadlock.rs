//! Deadlock-detection latency micro-bench
//! (`figures -- deadlock` → `BENCH_deadlock.json`).
//!
//! Before the quiescence detector, a wedged run sat out a 60 s wall-clock
//! watchdog before anything was reported. The detector classifies the
//! blocked state *exactly* the moment the last active rank blocks —
//! cyclic waits get [`MpiError::Deadlock`] with the wait graph, waits
//! orphaned by a crash get [`MpiError::NodeFailed`] — so detection is
//! event-driven, not timer-driven. This bench seeds both shapes at
//! several cluster sizes, measures the *wall-clock* time from launch to
//! every rank holding its typed verdict, and gates two claims in CI:
//!
//! * every seeded wedge is detected in **under one second** of real time
//!   (the timer-driven baseline took the full watchdog period);
//! * every rank's error is the *right type* — the cycle surfaces as
//!   `Deadlock` carrying a wait graph that names the waiting ranks, the
//!   orphan as `NodeFailed` naming the dead peer.

use hetsim::{ClusterBuilder, FaultEvent, FaultPlan, Link, NodeId, Protocol, SimTime};
use mpisim::{MpiError, Universe};
use std::sync::Arc;
use std::time::Instant;

/// One seeded-wedge measurement.
#[derive(Debug, Clone)]
pub struct DeadlockPoint {
    /// Wedge shape: "cycle" (ring of receives, nobody sends) or "orphan"
    /// (every survivor receives from a rank that crashed before sending).
    pub scenario: &'static str,
    /// Cluster size.
    pub p: usize,
    /// Wall-clock seconds from launch to every rank returning.
    pub wall_s: f64,
    /// The error type the scenario must surface ("deadlock"/"node-failed").
    pub expect: &'static str,
    /// Whether every rank returned the expected typed error (and, for the
    /// cycle, a wait graph covering the whole ring).
    pub all_typed: bool,
}

/// The whole benchmark.
#[derive(Debug, Clone)]
pub struct DeadlockBench {
    /// Every (scenario, size) point, in sweep order.
    pub points: Vec<DeadlockPoint>,
}

impl DeadlockBench {
    /// Slowest detection over all points, wall-clock seconds — the CI gate.
    pub fn max_wall_s(&self) -> f64 {
        self.points.iter().map(|p| p.wall_s).fold(0.0, f64::max)
    }

    /// Whether every point surfaced the expected typed error on every rank.
    pub fn all_typed(&self) -> bool {
        self.points.iter().all(|p| p.all_typed)
    }
}

/// Homogeneous `n`-node cluster (1 ms / 10 MB/s links).
fn cluster(n: usize, faults: FaultPlan) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("h{i}"), 100.0);
    }
    Arc::new(
        b.all_to_all(Link::new(1e-3, 1e7, Protocol::Tcp))
            .faults(faults)
            .build(),
    )
}

/// Seeds a receive ring with no senders: rank `r` blocks on `r+1 mod p`.
/// Every rank must come back with [`MpiError::Deadlock`] whose wait graph
/// has one edge per rank.
fn measure_cycle(p: usize) -> DeadlockPoint {
    let u = Universe::new(cluster(p, FaultPlan::none()));
    let started = Instant::now();
    let report = u.run(move |proc| {
        let world = proc.world();
        let right = (world.rank() + 1) % p;
        world.recv::<i64>(right, 7).err()
    });
    let wall_s = started.elapsed().as_secs_f64();
    let all_typed = report.results.iter().enumerate().all(|(r, e)| match e {
        Some(MpiError::Deadlock { waiting, on, graph }) => {
            *waiting == r && on.contains(&((r + 1) % p)) && graph.edges.len() == p
        }
        _ => false,
    });
    DeadlockPoint {
        scenario: "cycle",
        p,
        wall_s,
        expect: "deadlock",
        all_typed,
    }
}

/// Crashes rank `p-1` before it sends anything; every survivor blocks
/// receiving from it. The quiescence terminal round must hand every
/// survivor [`MpiError::NodeFailed`] naming the dead rank — this is a
/// fault orphan, not a deadlock.
fn measure_orphan(p: usize) -> DeadlockPoint {
    let dead = p - 1;
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(dead),
        at: SimTime::from_secs(1e-6),
    });
    let u = Universe::new(cluster(p, plan));
    let started = Instant::now();
    let report = u.run(move |proc| {
        let world = proc.world();
        if world.rank() == dead {
            // Dies discovering its own crash; never sends.
            return proc.try_compute(1.0).err();
        }
        world.recv::<i64>(dead, 7).err()
    });
    let wall_s = started.elapsed().as_secs_f64();
    let all_typed = report
        .results
        .iter()
        .all(|e| matches!(e, Some(MpiError::NodeFailed { world_rank }) if *world_rank == dead));
    DeadlockPoint {
        scenario: "orphan",
        p,
        wall_s,
        expect: "node-failed",
        all_typed,
    }
}

/// Runs the benchmark over both wedge shapes at several cluster sizes.
pub fn run(quick: bool) -> DeadlockBench {
    let sizes: &[usize] = if quick { &[2, 4] } else { &[2, 4, 9, 16] };
    let mut points = Vec::new();
    for &p in sizes {
        points.push(measure_cycle(p));
        points.push(measure_orphan(p));
    }
    DeadlockBench { points }
}

/// Text-table rendering.
pub fn render(b: &DeadlockBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Deadlock detection latency: seeded wedge -> typed verdict (wall clock)"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>3} {:>12} {:>12} {:>6}",
        "scenario", "p", "expect", "wall [s]", "typed"
    );
    for p in &b.points {
        let _ = writeln!(
            out,
            "{:>9} {:>3} {:>12} {:>12.4} {:>6}",
            p.scenario,
            p.p,
            p.expect,
            p.wall_s,
            if p.all_typed { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "slowest detection: {:.4}s wall (gate: < 1s; legacy watchdog: 60s)",
        b.max_wall_s()
    );
    out
}

/// Serialises the benchmark to JSON (hand-formatted; the workspace's serde
/// shim has no serializer).
pub fn to_json(b: &DeadlockBench) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"max_wall_s\": {:.6},", b.max_wall_s());
    let _ = writeln!(out, "  \"all_typed\": {},", b.all_typed());
    let _ = writeln!(out, "  \"points\": [");
    let n = b.points.len();
    for (i, p) in b.points.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"p\": {}, \"expect\": \"{}\", \"wall_s\": {:.6}, \"all_typed\": {}}}{comma}",
            p.scenario, p.p, p.expect, p.wall_s, p.all_typed
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_wedge_is_detected_typed_and_fast() {
        let b = run(true);
        assert_eq!(b.points.len(), 4);
        for p in &b.points {
            assert!(
                p.all_typed,
                "{} p={}: wrong error type surfaced",
                p.scenario, p.p
            );
        }
        assert!(
            b.max_wall_s() < 1.0,
            "slowest detection {:.3}s breaches the 1s gate",
            b.max_wall_s()
        );
    }

    #[test]
    fn json_names_every_point() {
        let b = run(true);
        let j = to_json(&b);
        assert!(j.contains("\"cycle\""));
        assert!(j.contains("\"orphan\""));
        assert!(j.contains("\"max_wall_s\""));
    }
}
