//! Option builders for the consolidated HMPI surface.
//!
//! The group-creation family (once `group_create` / `group_create_with` /
//! `group_create_as`) and the recon family (once `recon` / `recon_ft` /
//! `recon_ft_scaled` / `recon_with`) each grew one positional parameter at a
//! time; this module collapses each family behind a single options builder
//! so the one-parameter common case stays one call while every knob remains
//! reachable:
//!
//! ```text
//! h.group_create(&model)?;                                   // unchanged
//! h.group_create(GroupSpec::new(&model)
//!     .algorithm(MappingAlgorithm::Exhaustive)
//!     .placement(parent_world))?;
//!
//! h.recon(10.0)?;                                            // unchanged
//! h.recon_opts(Recon::new(10.0).work_units(640.0).fault_tolerant(true))?;
//! h.recon_opts(Recon::new(10.0).bench(|h| h.compute(10.0)))?;
//! ```
//!
//! The old multi-entry functions lived on as `#[deprecated]` forwarding
//! shims on [`crate::Hmpi`] for one release cycle and have since been
//! removed.

use crate::mapping::MappingAlgorithm;
use crate::runtime::Hmpi;
use std::fmt;

/// Everything `HMPI_Group_create` can be asked to do, in one value.
///
/// Construct with [`GroupSpec::new`] (or let the `From<&M>` conversion build
/// the all-defaults spec for you — `h.group_create(&model)` still compiles),
/// then chain the optional knobs.
#[derive(Clone, Copy)]
pub struct GroupSpec<'m> {
    pub(crate) model: &'m dyn perfmodel::PerformanceModel,
    pub(crate) algorithm: Option<MappingAlgorithm>,
    pub(crate) parent_world: usize,
}

impl<'m> GroupSpec<'m> {
    /// A spec with the runtime's default selection algorithm and the host
    /// (world rank 0) as the parent.
    pub fn new(model: &'m dyn perfmodel::PerformanceModel) -> Self {
        GroupSpec {
            model,
            algorithm: None,
            parent_world: 0,
        }
    }

    /// Overrides the runtime's default group-selection algorithm for this
    /// creation only.
    pub fn algorithm(mut self, algo: MappingAlgorithm) -> Self {
        self.algorithm = Some(algo);
        self
    }

    /// Anchors the group at an arbitrary *parent* process (the paper's
    /// general form: "every newly created group has exactly one process
    /// shared with already existing groups"). The model's `parent` abstract
    /// processor is pinned to this world rank. Defaults to the host.
    pub fn placement(mut self, parent_world: usize) -> Self {
        self.parent_world = parent_world;
        self
    }
}

impl fmt::Debug for GroupSpec<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupSpec")
            .field("algorithm", &self.algorithm)
            .field("parent_world", &self.parent_world)
            .finish_non_exhaustive()
    }
}

impl<'m, M: perfmodel::PerformanceModel> From<&'m M> for GroupSpec<'m> {
    fn from(model: &'m M) -> Self {
        GroupSpec::new(model)
    }
}

impl<'m> From<&'m dyn perfmodel::PerformanceModel> for GroupSpec<'m> {
    fn from(model: &'m dyn perfmodel::PerformanceModel) -> Self {
        GroupSpec::new(model)
    }
}

/// The type standing in for "no custom benchmark body" in [`Recon`]'s
/// default type parameter. Never called; it only gives the bench-less
/// builder chain a concrete `F`.
pub type DefaultBench = fn(&Hmpi);

/// Everything `HMPI_Recon` can be asked to do, in one value; executed by
/// [`Hmpi::recon_opts`].
///
/// Defaults reproduce `h.recon(units)`: the benchmark performs
/// `nominal_units` of raw computation, and the fault-tolerant
/// point-to-point protocol is used exactly when the cluster has a fault
/// plan.
pub struct Recon<F = DefaultBench> {
    pub(crate) nominal_units: f64,
    pub(crate) work_units: Option<f64>,
    pub(crate) bench: Option<F>,
    pub(crate) fault_tolerant: Option<bool>,
}

impl Recon {
    /// A recon whose recorded speeds are `nominal_units / elapsed`.
    pub fn new(nominal_units: f64) -> Recon {
        Recon {
            nominal_units,
            work_units: None,
            bench: None,
            fault_tolerant: None,
        }
    }
}

impl<F> Recon<F> {
    /// Decouples the raw computation volume from the nominal one: the
    /// benchmark performs `units` of computation but speeds are still
    /// recorded as `nominal_units / elapsed`, so applications whose
    /// performance models count in coarser units (e.g. EM3D's "k nodal
    /// values") keep their unit system. Defaults to `nominal_units`.
    pub fn work_units(mut self, units: f64) -> Self {
        self.work_units = Some(units);
        self
    }

    /// Forces the fault-tolerant point-to-point protocol on (`true`) or the
    /// classic collective path (`false`). Default: fault-tolerant exactly
    /// when the cluster has a fault plan.
    pub fn fault_tolerant(mut self, on: bool) -> Self {
        self.fault_tolerant = Some(on);
        self
    }

    /// Supplies a caller-defined benchmark body (e.g. the application's
    /// serial kernel) instead of `work_units` of raw computation; its
    /// elapsed virtual time yields the speed estimate. On the
    /// fault-tolerant path the body should use [`Hmpi::try_compute`] so a
    /// mid-benchmark crash unwinds instead of panicking.
    pub fn bench<G>(self, f: G) -> Recon<G> {
        Recon {
            nominal_units: self.nominal_units,
            work_units: self.work_units,
            bench: Some(f),
            fault_tolerant: self.fault_tolerant,
        }
    }
}

impl<F> fmt::Debug for Recon<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recon")
            .field("nominal_units", &self.nominal_units)
            .field("work_units", &self.work_units)
            .field("bench", &self.bench.as_ref().map(|_| ".."))
            .field("fault_tolerant", &self.fault_tolerant)
            .finish()
    }
}
