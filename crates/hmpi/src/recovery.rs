//! Recover-and-retry policies over HMPI groups (DESIGN.md §12).
//!
//! A [`RecoveryPolicy`] turns the raw fault-tolerance primitives — the
//! engine's survivor contract, [`mpisim::Comm::agree`] and
//! [`crate::Hmpi::rebuild_group`] — into a one-call loop:
//!
//! 1. run one *attempt* of the application kernel on the current group;
//! 2. hold a ULFM-style agreement round so every member reaches the **same**
//!    verdict on whether the attempt committed everywhere (the round doubles
//!    as a virtual-time synchronisation point among the survivors);
//! 3. on a failure verdict, advance every survivor's clock by a
//!    deterministic backoff, shrink the group over the survivors with
//!    `rebuild_group`, and retry — up to a bounded number of rebuilds.
//!
//! Determinism: the verdict of each round is a pure function of the fault
//! plan (agreement unanimity is structural, see [`mpisim::Agreement`]), the
//! backoff is a fixed virtual-time schedule, and the rebuild roll call runs
//! on clocks the agreement just synchronised — so the same seed always
//! yields the same sequence of groups and the same final outcome.

use crate::group::HmpiGroup;
use crate::runtime::{Hmpi, HmpiError, HmpiResult};
use hetsim::SimTime;
use mpisim::{MpiError, MpiResult};

/// Bounded-retry recovery schedule: how many times a failed attempt may be
/// answered with a shrink-and-retry, and how much virtual time the
/// survivors wait before each rebuild.
///
/// The backoff grows geometrically: rebuild *i* (0-based) is preceded by an
/// advance of `backoff * backoff_factor^i`. Because the agreement round
/// that precedes it has already merged every survivor's clock to the same
/// instant, a uniform advance keeps the survivors aligned for the rebuild
/// roll call — backoff never widens the clock skew the roll-call window
/// has to absorb.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    max_rebuilds: usize,
    backoff: SimTime,
    backoff_factor: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::new()
    }
}

impl RecoveryPolicy {
    /// The default policy: up to 3 rebuilds, 0.1 s initial backoff,
    /// doubling before each further rebuild.
    pub fn new() -> Self {
        RecoveryPolicy {
            max_rebuilds: 3,
            backoff: SimTime::from_secs(0.1),
            backoff_factor: 2.0,
        }
    }

    /// Caps the number of shrink-and-retry rounds (0 = fail on the first
    /// bad verdict).
    pub fn with_max_rebuilds(mut self, n: usize) -> Self {
        self.max_rebuilds = n;
        self
    }

    /// Sets the virtual-time backoff before the first rebuild.
    pub fn with_backoff(mut self, d: SimTime) -> Self {
        self.backoff = d;
        self
    }

    /// Sets the geometric growth factor of the backoff schedule.
    ///
    /// # Panics
    /// Panics unless `f` is finite and `>= 1.0` (a shrinking backoff would
    /// let retries race the failure detector).
    pub fn with_backoff_factor(mut self, f: f64) -> Self {
        assert!(f.is_finite() && f >= 1.0, "backoff factor must be >= 1");
        self.backoff_factor = f;
        self
    }

    /// The retry cap.
    pub fn max_rebuilds(&self) -> usize {
        self.max_rebuilds
    }

    /// The virtual-time pause before rebuild number `rebuild` (0-based):
    /// `backoff * factor^rebuild`.
    pub fn backoff_before(&self, rebuild: usize) -> SimTime {
        SimTime::from_secs(self.backoff.as_secs() * self.backoff_factor.powi(rebuild as i32))
    }

    /// The recover-and-retry loop. Collective over the *members* of
    /// `group`; processes the selection left out stand by exactly as they
    /// would for a plain run (callers keep their `is_member()` guard).
    ///
    /// Per round, every member runs `attempt(&group, round)`, then agrees
    /// on `attempt.is_ok()`. The round succeeds only if **every** member
    /// contributed `Ok` and none died before contributing — so a success
    /// verdict means the result committed on the whole group. On a failure
    /// verdict the group is rebuilt over the survivors via `model_for` and
    /// the attempt re-runs from scratch on the shrunk group.
    ///
    /// Consumes the group either way: on success the (possibly rebuilt)
    /// group comes back inside [`Recovered`] for the caller to free; on
    /// failure every still-held handle has been consumed by
    /// `rebuild_group` or dropped.
    ///
    /// # Errors
    /// [`RecoveryError`] — the underlying cause plus how many rebuilds were
    /// performed before giving up. Unrecoverable causes: the caller's own
    /// node fail-stopped ([`MpiError::NodeFailed`] with its own rank), the
    /// rebuild found no feasible shrunk group, the retry budget ran out, or
    /// the rebuilt selection dropped the caller ([`HmpiError::NotMember`];
    /// the caller's process is free again and may stand by).
    pub fn run<T, M, FM, FA>(
        &self,
        h: &Hmpi,
        mut group: HmpiGroup,
        mut model_for: FM,
        mut attempt: FA,
    ) -> Result<Recovered<T>, RecoveryError>
    where
        M: perfmodel::PerformanceModel,
        FM: FnMut(&[usize]) -> HmpiResult<M>,
        FA: FnMut(&HmpiGroup, usize) -> MpiResult<T>,
    {
        let me = h.rank();
        let mut rebuilds = 0usize;
        if !group.is_member() {
            return Err(RecoveryError {
                cause: HmpiError::NotMember,
                rebuilds,
            });
        }
        loop {
            let comm = group.comm().expect("member has a comm").clone();
            let out = attempt(&group, rebuilds);
            if let Err(MpiError::NodeFailed { world_rank }) = &out {
                if *world_rank == me {
                    // Our own node fail-stopped: we cannot take part in the
                    // agreement, let alone a rebuild. Unwind.
                    return Err(RecoveryError {
                        cause: HmpiError::Mpi(MpiError::NodeFailed { world_rank: me }),
                        rebuilds,
                    });
                }
            }
            // Post-attempt agreement: every live member deposits its local
            // verdict; the AND-fold plus the died-without-depositing set is
            // identical on every survivor. Members that finished cleanly
            // learn here that a peer did not.
            let verdict = match comm.agree(out.is_ok()) {
                Ok(a) => a.flag && a.failed.is_empty(),
                // A Deadlock verdict on an agreement waiter means the round
                // wedged on live members still stuck inside the failed
                // attempt. The quiescence classifier unsticks them in the
                // same terminal round, so they are about to fail and deposit
                // `false` — the round's outcome is a foregone failure, and
                // treating it as one keeps every member on the rebuild path.
                Err(MpiError::Deadlock { .. }) => false,
                Err(e) => {
                    // Own death mid-round, or the watchdog backstop.
                    return Err(RecoveryError {
                        cause: HmpiError::Mpi(e),
                        rebuilds,
                    });
                }
            };
            if verdict {
                let result = out.expect("unanimous success verdict implies local success");
                return Ok(Recovered {
                    result,
                    group,
                    rebuilds,
                });
            }
            if rebuilds >= self.max_rebuilds {
                return Err(RecoveryError {
                    cause: match out {
                        Ok(_) => HmpiError::Aborted, // a peer failed, not us
                        Err(e) => HmpiError::Mpi(e),
                    },
                    rebuilds,
                });
            }
            // Deterministic virtual-time backoff. The agreement above merged
            // every survivor's clock to the round's completion time, so this
            // uniform advance keeps them aligned for the roll call.
            h.process().clock().advance(self.backoff_before(rebuilds));
            rebuilds += 1;
            group = match h.rebuild_group(group, &mut model_for) {
                Ok(g) => g,
                Err(cause) => return Err(RecoveryError { cause, rebuilds }),
            };
            if !group.is_member() {
                // The shrunk selection left us out; our process is free
                // again and stands by like any non-member.
                return Err(RecoveryError {
                    cause: HmpiError::NotMember,
                    rebuilds,
                });
            }
        }
    }
}

/// A successful recover-and-retry run.
#[derive(Debug)]
pub struct Recovered<T> {
    /// The attempt's result on the final group.
    pub result: T,
    /// The group the successful attempt ran on (== the initial group when
    /// nothing failed). The caller frees it.
    pub group: HmpiGroup,
    /// How many times the group was shrunk before succeeding.
    pub rebuilds: usize,
}

/// Why a recover-and-retry run gave up, and how far it got.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryError {
    /// The final, unrecoverable cause.
    pub cause: HmpiError,
    /// How many rebuilds were performed before giving up.
    pub rebuilds: usize,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "recovery failed after {} rebuild(s): {}", self.rebuilds, self.cause)
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_geometric() {
        let p = RecoveryPolicy::new()
            .with_backoff(SimTime::from_secs(0.5))
            .with_backoff_factor(3.0);
        assert_eq!(p.backoff_before(0), SimTime::from_secs(0.5));
        assert_eq!(p.backoff_before(1), SimTime::from_secs(1.5));
        assert_eq!(p.backoff_before(2), SimTime::from_secs(4.5));
    }

    #[test]
    fn default_policy_is_bounded() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_rebuilds(), 3);
        assert!(p.backoff_before(0) > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "backoff factor")]
    fn shrinking_backoff_is_rejected() {
        let _ = RecoveryPolicy::new().with_backoff_factor(0.5);
    }
}
