//! The selection engine: a reusable, allocation-free objective evaluator.
//!
//! [`Evaluator`] is created **once** per `select_mapping` search. At
//! construction it:
//!
//! * records the model's scheme into a flat [`CostProgram`] (the event
//!   stream is assignment-independent, so one recording prices every
//!   candidate mapping);
//! * snapshots the per-world-rank node index and estimated speed, and the
//!   full node-pair latency/bandwidth tables from the [`Cluster`](hetsim::Cluster) —
//!   pricing an assignment then resolves pair costs by two table lookups
//!   instead of materialising p×p matrices.
//!
//! Per evaluation, only two small per-processor scratch arrays are
//! refreshed (`proc → node`, `proc → speed`); the pricing itself reuses a
//! [`PriceScratch`]. Nothing is allocated on the hot path.
//!
//! For local-search and annealing moves the evaluator also supports
//! *incremental* pricing: [`Evaluator::rebase`] records a baseline
//! assignment with per-segment clock checkpoints, and [`Evaluator::probe`]
//! prices an assignment differing on a few processors by re-executing only
//! the affected segments (see [`perfmodel::compile`]). Delta pricing is
//! exact (bit-identical to a full evaluation); a periodic full
//! re-evaluation every [`FULL_REEVAL_PERIOD`] probes additionally bounds
//! any drift that future, inexact delta rules might introduce.
//!
//! A model whose scheme fails to evaluate at record time yields an
//! evaluator pricing every assignment at `+inf` — matching the naive
//! objective's `unwrap_or(INFINITY)`; `select_mapping` then surfaces the
//! typed [`crate::SelectError::Eval`] through its final feasibility check.

use crate::mapping::SelectionCtx;
use hetsim::NodeId;
use perfmodel::{CostProgram, DeltaBaseline, PairCost, PerformanceModel, PriceScratch};
use std::sync::Arc;

/// Delta probes allowed per baseline before the next probe pays for a full
/// re-evaluation.
pub const FULL_REEVAL_PERIOD: u32 = 64;

/// A reusable objective evaluator for one (model, selection context) pair.
///
/// Cloning is cheap and shares the recorded program and cost tables; each
/// clone owns its own scratch, so clones can price assignments from
/// different threads (the branch-and-bound search does exactly that).
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// `None` when recording failed: every evaluation prices at `+inf`.
    program: Option<Arc<CostProgram>>,
    p: usize,
    n_nodes: usize,
    lat: Arc<Vec<f64>>,
    bw: Arc<Vec<f64>>,
    node_of_world: Arc<Vec<u32>>,
    speed_of_world: Arc<Vec<f64>>,
    links_monotone: bool,
    proc_node: Vec<u32>,
    proc_speed: Vec<f64>,
    scratch: PriceScratch,
    baseline: DeltaBaseline,
    base_assignment: Vec<usize>,
    probes: u32,
    evals: u64,
    probe_total: u64,
}

/// Table-backed [`PairCost`] view over the evaluator's scratch arrays.
struct AssignCost<'a> {
    proc_node: &'a [u32],
    proc_speed: &'a [f64],
    lat: &'a [f64],
    bw: &'a [f64],
    n_nodes: usize,
}

impl PairCost for AssignCost<'_> {
    #[inline]
    fn speed(&self, proc: usize) -> f64 {
        self.proc_speed[proc]
    }
    #[inline]
    fn latency(&self, src: usize, dst: usize) -> f64 {
        self.lat[self.proc_node[src] as usize * self.n_nodes + self.proc_node[dst] as usize]
    }
    #[inline]
    fn bandwidth(&self, src: usize, dst: usize) -> f64 {
        self.bw[self.proc_node[src] as usize * self.n_nodes + self.proc_node[dst] as usize]
    }
}

macro_rules! assign_cost {
    ($self:ident) => {
        AssignCost {
            proc_node: &$self.proc_node,
            proc_speed: &$self.proc_speed,
            lat: &$self.lat,
            bw: &$self.bw,
            n_nodes: $self.n_nodes,
        }
    };
}

impl Evaluator {
    /// Builds the evaluator: records the scheme once and snapshots the
    /// cluster's node-pair cost tables and the current speed estimates.
    pub fn new(model: &dyn PerformanceModel, ctx: &SelectionCtx<'_>) -> Self {
        let p = model.num_processors();
        let program = CostProgram::record(model).ok().map(Arc::new);
        let n_nodes = ctx.cluster.len();
        let mut lat = vec![0.0f64; n_nodes * n_nodes];
        let mut bw = vec![f64::INFINITY; n_nodes * n_nodes];
        for i in 0..n_nodes {
            for j in 0..n_nodes {
                let link = ctx.cluster.link(NodeId(i), NodeId(j));
                lat[i * n_nodes + j] = link.latency;
                bw[i * n_nodes + j] = link.bandwidth;
            }
        }
        // The admissible bound needs every op to only *advance* clocks.
        let links_monotone =
            lat.iter().all(|&l| l >= 0.0) && bw.iter().all(|&b| b > 0.0);
        let node_of_world: Vec<u32> = ctx.placement.iter().map(|n| n.index() as u32).collect();
        let speed_of_world: Vec<f64> = ctx
            .placement
            .iter()
            .map(|&n| ctx.estimates.speed(n))
            .collect();
        Evaluator {
            program,
            p,
            n_nodes,
            lat: Arc::new(lat),
            bw: Arc::new(bw),
            node_of_world: Arc::new(node_of_world),
            speed_of_world: Arc::new(speed_of_world),
            links_monotone,
            proc_node: vec![0; p],
            proc_speed: vec![0.0; p],
            scratch: PriceScratch::new(p),
            baseline: DeltaBaseline::default(),
            base_assignment: Vec::new(),
            probes: 0,
            evals: 0,
            probe_total: 0,
        }
    }

    fn load(&mut self, assignment: &[usize]) {
        debug_assert_eq!(assignment.len(), self.p);
        for (i, &w) in assignment.iter().enumerate() {
            self.proc_node[i] = self.node_of_world[w];
            self.proc_speed[i] = self.speed_of_world[w];
        }
    }

    fn load_from_base(&mut self, changed: &[usize]) {
        for &i in changed {
            let w = self.base_assignment[i];
            self.proc_node[i] = self.node_of_world[w];
            self.proc_speed[i] = self.speed_of_world[w];
        }
    }

    fn load_all_from_base(&mut self) {
        for i in 0..self.p {
            let w = self.base_assignment[i];
            self.proc_node[i] = self.node_of_world[w];
            self.proc_speed[i] = self.speed_of_world[w];
        }
    }

    /// Full evaluation of `assignment[abstract] = world rank`. Bit-identical
    /// to [`crate::predicted_time`]`.unwrap_or(INFINITY)` under the same
    /// estimates.
    pub fn eval(&mut self, assignment: &[usize]) -> f64 {
        self.evals += 1;
        let Some(program) = self.program.clone() else {
            return f64::INFINITY;
        };
        self.load(assignment);
        program.price(&assign_cost!(self), &mut self.scratch)
    }

    /// Full evaluation that also makes `assignment` the baseline for
    /// subsequent [`Evaluator::probe`] calls.
    pub fn rebase(&mut self, assignment: &[usize]) -> f64 {
        self.evals += 1;
        let Some(program) = self.program.clone() else {
            return f64::INFINITY;
        };
        self.load(assignment);
        self.base_assignment.clear();
        self.base_assignment.extend_from_slice(assignment);
        self.probes = 0;
        program.price_baseline(&assign_cost!(self), &mut self.scratch, &mut self.baseline)
    }

    /// Prices `assignment`, which differs from the current baseline exactly
    /// at the abstract processors in `changed`. Exact — the delta path
    /// performs the same floating-point operations on the same values as a
    /// full evaluation — with a periodic full re-evaluation as a belt-and-
    /// braces drift bound. Leaves the baseline untouched.
    ///
    /// # Panics
    /// Panics if no baseline was set with [`Evaluator::rebase`].
    pub fn probe(&mut self, assignment: &[usize], changed: &[usize]) -> f64 {
        self.probe_total += 1;
        let Some(program) = self.program.clone() else {
            return f64::INFINITY;
        };
        assert_eq!(
            self.base_assignment.len(),
            assignment.len(),
            "probe needs a baseline of the same shape (call rebase first)"
        );
        self.probes += 1;
        if self.probes >= FULL_REEVAL_PERIOD {
            self.probes = 0;
            self.load(assignment);
            let t = program.price(&assign_cost!(self), &mut self.scratch);
            self.load_all_from_base();
            return t;
        }
        for &i in changed {
            let w = assignment[i];
            self.proc_node[i] = self.node_of_world[w];
            self.proc_speed[i] = self.speed_of_world[w];
        }
        let t = program.price_delta(
            &assign_cost!(self),
            &self.baseline,
            changed,
            &mut self.scratch,
        );
        self.load_from_base(changed);
        t
    }

    /// Per-processor computation totals `U_p` for the admissible
    /// branch-and-bound lower bound `max_p U_p / speed_p`, or `None` when
    /// the bound is unusable (recording failed, negative units, or link
    /// costs that could move clocks backwards).
    pub fn compute_units(&self) -> Option<&[f64]> {
        if !self.links_monotone {
            return None;
        }
        self.program.as_ref()?.compute_units()
    }

    /// The snapshotted speed estimate for a world rank.
    pub fn world_speed(&self, world: usize) -> f64 {
        self.speed_of_world[world]
    }

    /// Number of flat cost ops in the recorded program (0 if recording
    /// failed) — diagnostics for the bench harness.
    pub fn num_ops(&self) -> usize {
        self.program.as_ref().map_or(0, |p| p.num_ops())
    }

    /// Full objective evaluations performed so far ([`Evaluator::eval`]
    /// plus [`Evaluator::rebase`]) — selection-search observability.
    pub fn eval_count(&self) -> u64 {
        self.evals
    }

    /// Incremental delta probes performed so far.
    pub fn probe_count(&self) -> u64 {
        self.probe_total
    }
}
