//! Assembling cost models from the runtime's view of the network.
//!
//! "The solution to the problem is based on: the performance model of the
//! parallel algorithm ... and the model of the executing network of
//! computers, which reflects the state of this network just before the
//! execution of the parallel algorithm." — this module is where the two
//! meet: given a candidate *mapping* of abstract processors onto world
//! ranks, it builds the [`CostModel`] (estimated speeds from the latest
//! `HMPI_Recon`, link latency/bandwidth from the cluster model) that the
//! scheme interpreter prices the algorithm against.

use hetsim::{Cluster, NodeId, SpeedEstimates};
use perfmodel::{CostModel, PerformanceModel};
use std::fmt;

/// Errors assembling or pricing a cost model.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The assignment's length differs from the model's processor count.
    ArityMismatch {
        /// Abstract processors the model declares.
        expected: usize,
        /// Entries the assignment supplied.
        got: usize,
    },
    /// The assignment references a world rank outside the universe.
    RankOutOfRange {
        /// The offending world rank.
        world_rank: usize,
        /// Number of ranks in the universe.
        universe: usize,
    },
    /// The model's scheme program failed to evaluate under this cost model.
    Eval(perfmodel::EvalError),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::ArityMismatch { expected, got } => write!(
                f,
                "assignment must cover every abstract processor (model has {expected}, got {got})"
            ),
            EstimateError::RankOutOfRange {
                world_rank,
                universe,
            } => write!(
                f,
                "world rank {world_rank} outside the universe of {universe} ranks"
            ),
            EstimateError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EstimateError {}

impl From<perfmodel::EvalError> for EstimateError {
    fn from(e: perfmodel::EvalError) -> Self {
        EstimateError::Eval(e)
    }
}

/// Builds the cost model for `model`'s abstract processors under a mapping
/// `assignment[abstract] = world rank`, where `placement[world] = node`.
///
/// # Errors
/// [`EstimateError::ArityMismatch`] if the assignment's length differs from
/// the model's processor count; [`EstimateError::RankOutOfRange`] if it
/// references ranks outside the placement.
pub fn build_cost_model(
    model: &dyn PerformanceModel,
    assignment: &[usize],
    cluster: &Cluster,
    placement: &[NodeId],
    estimates: &SpeedEstimates,
) -> Result<CostModel, EstimateError> {
    let p = model.num_processors();
    if assignment.len() != p {
        return Err(EstimateError::ArityMismatch {
            expected: p,
            got: assignment.len(),
        });
    }
    let nodes: Vec<NodeId> = assignment
        .iter()
        .map(|&w| {
            if w < placement.len() {
                Ok(placement[w])
            } else {
                Err(EstimateError::RankOutOfRange {
                    world_rank: w,
                    universe: placement.len(),
                })
            }
        })
        .collect::<Result<_, _>>()?;
    let speeds: Vec<f64> = nodes.iter().map(|&n| estimates.speed(n)).collect();
    let mut latency = vec![vec![0.0; p]; p];
    let mut bandwidth = vec![vec![f64::INFINITY; p]; p];
    for i in 0..p {
        for j in 0..p {
            let link = cluster.link(nodes[i], nodes[j]);
            latency[i][j] = link.latency;
            bandwidth[i][j] = link.bandwidth;
        }
    }
    Ok(CostModel {
        speeds,
        latency,
        bandwidth,
    })
}

/// Predicted execution time of `model` under `assignment` — the objective
/// function of the group-selection search and the value `HMPI_Timeof`
/// reports.
///
/// # Errors
/// [`EstimateError::ArityMismatch`] / [`EstimateError::RankOutOfRange`]
/// for a malformed assignment; [`EstimateError::Eval`] when the model's
/// scheme program misbehaves under this particular cost model. The
/// selection search treats them as an infeasible assignment and surfaces
/// [`crate::SelectError::Eval`] only if no assignment evaluates at all.
pub fn predicted_time(
    model: &dyn PerformanceModel,
    assignment: &[usize],
    cluster: &Cluster,
    placement: &[NodeId],
    estimates: &SpeedEstimates,
) -> Result<f64, EstimateError> {
    let cost = build_cost_model(model, assignment, cluster, placement, estimates)?;
    Ok(model.predict_time(&cost)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{ClusterBuilder, Link, Protocol};
    use perfmodel::ModelBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .node("fast", 100.0)
            .node("slow", 10.0)
            .node("mid", 50.0)
            .all_to_all(Link::new(1e-3, 1e6, Protocol::Tcp))
            .build()
    }

    #[test]
    fn cost_model_reflects_mapping() {
        let c = cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let model = ModelBuilder::new("t")
            .processors(2)
            .volumes(vec![100.0, 100.0])
            .build()
            .unwrap();
        let cost = build_cost_model(&model, &[1, 0], &c, &placement, &est).unwrap();
        assert_eq!(cost.speeds, vec![10.0, 100.0]);
        assert_eq!(cost.latency[0][1], 1e-3);
        assert_eq!(cost.bandwidth[1][0], 1e6);
    }

    #[test]
    fn same_node_pairs_get_loopback() {
        let c = ClusterBuilder::new()
            .processor(hetsim::Processor::new("smp", 50.0).with_slots(2))
            .build();
        let placement = vec![NodeId(0), NodeId(0)];
        let est = SpeedEstimates::from_base_speeds(&c);
        let model = ModelBuilder::new("t").processors(2).build().unwrap();
        let cost = build_cost_model(&model, &[0, 1], &c, &placement, &est).unwrap();
        assert_eq!(cost.latency[0][1], 0.0);
        assert!(cost.bandwidth[0][1].is_infinite());
    }

    #[test]
    fn predicted_time_prefers_faster_nodes() {
        let c = cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let model = ModelBuilder::new("t")
            .processors(1)
            .volumes(vec![100.0])
            .build()
            .unwrap();
        let on_fast = predicted_time(&model, &[0], &c, &placement, &est).unwrap();
        let on_slow = predicted_time(&model, &[1], &c, &placement, &est).unwrap();
        assert!((on_fast - 1.0).abs() < 1e-9);
        assert!((on_slow - 10.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_rank_yields_typed_error() {
        let c = cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let model = ModelBuilder::new("t").processors(2).build().unwrap();
        let e = build_cost_model(&model, &[0, 99], &c, &placement, &est).unwrap_err();
        assert_eq!(
            e,
            EstimateError::RankOutOfRange {
                world_rank: 99,
                universe: 3
            }
        );
        assert!(e.to_string().contains("world rank 99"));
        let e = predicted_time(&model, &[0, 99], &c, &placement, &est).unwrap_err();
        assert!(matches!(e, EstimateError::RankOutOfRange { .. }));
    }

    #[test]
    fn arity_mismatch_yields_typed_error() {
        let c = cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let model = ModelBuilder::new("t").processors(2).build().unwrap();
        let e = build_cost_model(&model, &[0], &c, &placement, &est).unwrap_err();
        assert_eq!(
            e,
            EstimateError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn predicted_time_uses_estimates_not_truth() {
        let c = cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_speeds(vec![1.0, 1000.0, 1.0]);
        let model = ModelBuilder::new("t")
            .processors(1)
            .volumes(vec![100.0])
            .build()
            .unwrap();
        // Under (wrong) estimates the "slow" node looks fastest.
        let t = predicted_time(&model, &[1], &c, &placement, &est).unwrap();
        assert!((t - 0.1).abs() < 1e-9);
    }
}
