//! Group selection: mapping abstract processors onto physical processes.
//!
//! "During the creation of this group of processes, HMPI runtime system
//! solves the problem of selection of the optimal set of processes running
//! on different computers of the heterogeneous network." The objective is
//! the predicted execution time ([`crate::estimate::predicted_time`]); this
//! module provides the search strategies:
//!
//! * [`MappingAlgorithm::Exhaustive`] — enumerate every injective mapping
//!   (exact, for small instances; falls back to the refined greedy beyond a
//!   work cap);
//! * [`MappingAlgorithm::Greedy`] — sort abstract processors by volume and
//!   candidates by estimated speed and pair them off (the optimal pairing
//!   for pure computation by the rearrangement inequality), no search;
//! * [`MappingAlgorithm::GreedyRefined`] — greedy start, then
//!   first-improvement local search over pairwise swaps and replacements
//!   with unused candidates (the default);
//! * [`MappingAlgorithm::Annealing`] — seeded simulated annealing for
//!   rugged objective landscapes (heavy communication terms).
//!
//! The model's *parent* processor is pinned to the parent process ("every
//! newly created group has exactly one process shared with already existing
//! groups ... the connecting link, through which results of computations are
//! passed").

use crate::estimate::predicted_time;
use hetsim::{Cluster, NodeId, SpeedEstimates};
use perfmodel::PerformanceModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Everything the search needs to price a candidate mapping.
#[derive(Debug, Clone)]
pub struct SelectionCtx<'a> {
    /// The cluster model.
    pub cluster: &'a Cluster,
    /// `placement[world_rank] = node`.
    pub placement: &'a [NodeId],
    /// Current speed estimates (from the latest `HMPI_Recon`).
    pub estimates: &'a SpeedEstimates,
    /// World ranks eligible for membership (the parent plus all free
    /// processes).
    pub candidates: Vec<usize>,
    /// World rank that must host the model's parent processor.
    pub pinned_parent: Option<usize>,
}

/// A selection result.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// `assignment[abstract processor] = world rank`.
    pub assignment: Vec<usize>,
    /// Predicted execution time in seconds under the current estimates.
    pub predicted: f64,
}

/// Search strategy for [`select_mapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingAlgorithm {
    /// Exact enumeration (small instances; falls back to `GreedyRefined`
    /// above [`EXHAUSTIVE_CAP`] candidate mappings).
    Exhaustive,
    /// Volume/speed sorted pairing only.
    Greedy,
    /// Greedy start plus swap/replace local search. The default.
    GreedyRefined {
        /// Maximum improvement rounds.
        max_rounds: usize,
    },
    /// Seeded simulated annealing.
    Annealing {
        /// RNG seed (results are deterministic per seed).
        seed: u64,
        /// Number of proposal steps.
        iters: usize,
    },
}

impl Default for MappingAlgorithm {
    fn default() -> Self {
        MappingAlgorithm::GreedyRefined { max_rounds: 64 }
    }
}

/// Work cap for exhaustive enumeration (number of mappings).
pub const EXHAUSTIVE_CAP: u64 = 2_000_000;

/// Errors from the selection search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// The model needs more processes than there are candidates.
    NotEnoughProcesses {
        /// Abstract processors required.
        required: usize,
        /// Candidates available.
        available: usize,
    },
    /// The pinned parent is not among the candidates.
    ParentNotCandidate {
        /// The offending world rank.
        world_rank: usize,
    },
    /// The model's scheme program failed to evaluate on every assignment
    /// the search tried.
    Eval(
        /// The evaluation error, rendered.
        String,
    ),
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::NotEnoughProcesses {
                required,
                available,
            } => write!(
                f,
                "model needs {required} processes but only {available} are free"
            ),
            SelectError::ParentNotCandidate { world_rank } => {
                write!(f, "pinned parent rank {world_rank} is not a candidate")
            }
            SelectError::Eval(msg) => {
                write!(f, "the model's scheme failed to evaluate: {msg}")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Selects the mapping minimising predicted execution time.
///
/// # Errors
/// [`SelectError`] on infeasible instances.
pub fn select_mapping(
    algo: MappingAlgorithm,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
) -> Result<Mapping, SelectError> {
    let p = model.num_processors();
    if p > ctx.candidates.len() {
        return Err(SelectError::NotEnoughProcesses {
            required: p,
            available: ctx.candidates.len(),
        });
    }
    if let Some(parent) = ctx.pinned_parent {
        if !ctx.candidates.contains(&parent) {
            return Err(SelectError::ParentNotCandidate { world_rank: parent });
        }
    }
    // Evaluation failures price an assignment as infeasible rather than
    // aborting the search; if the *chosen* assignment also fails, the typed
    // error surfaces below.
    let objective = |assignment: &[usize]| {
        predicted_time(model, assignment, ctx.cluster, ctx.placement, ctx.estimates)
            .unwrap_or(f64::INFINITY)
    };

    let mapping = match algo {
        MappingAlgorithm::Greedy => {
            let a = greedy(model, ctx);
            Mapping {
                predicted: objective(&a),
                assignment: a,
            }
        }
        MappingAlgorithm::GreedyRefined { max_rounds } => {
            let a = greedy(model, ctx);
            let refined = local_search(a, model, ctx, &objective, max_rounds);
            Mapping {
                predicted: objective(&refined),
                assignment: refined,
            }
        }
        MappingAlgorithm::Exhaustive => {
            if exhaustive_count(ctx.candidates.len(), p) > EXHAUSTIVE_CAP {
                return select_mapping(
                    MappingAlgorithm::GreedyRefined { max_rounds: 64 },
                    model,
                    ctx,
                );
            }
            exhaustive(model, ctx, &objective)
        }
        MappingAlgorithm::Annealing { seed, iters } => {
            let start = greedy(model, ctx);
            anneal(start, model, ctx, &objective, seed, iters)
        }
    };
    if !mapping.predicted.is_finite() {
        // Distinguish a genuine eval failure from a legitimately infinite
        // prediction (e.g. an estimated speed of zero).
        if let Err(e) = predicted_time(
            model,
            &mapping.assignment,
            ctx.cluster,
            ctx.placement,
            ctx.estimates,
        ) {
            return Err(SelectError::Eval(e.to_string()));
        }
    }
    Ok(mapping)
}

/// Number of injective mappings of `p` processors onto `c` candidates.
fn exhaustive_count(c: usize, p: usize) -> u64 {
    let mut n: u64 = 1;
    for i in 0..p {
        n = n.saturating_mul((c - i) as u64);
        if n > EXHAUSTIVE_CAP {
            return n;
        }
    }
    n
}

/// Volume-descending / speed-descending pairing, with the parent pinned.
fn greedy(model: &dyn PerformanceModel, ctx: &SelectionCtx<'_>) -> Vec<usize> {
    let p = model.num_processors();
    let volumes = model.volumes();
    let parent_abs = model.parent();

    let mut abs_order: Vec<usize> = (0..p).collect();
    abs_order.sort_by(|&a, &b| volumes[b].total_cmp(&volumes[a]));

    let speed_of = |w: usize| ctx.estimates.speed(ctx.placement[w]);
    let mut cand = ctx.candidates.clone();
    cand.sort_by(|&a, &b| speed_of(b).total_cmp(&speed_of(a)));

    let mut assignment = vec![usize::MAX; p];
    let mut used = vec![false; cand.len()];

    if let Some(parent_w) = ctx.pinned_parent {
        assignment[parent_abs] = parent_w;
        if let Some(pos) = cand.iter().position(|&w| w == parent_w) {
            used[pos] = true;
        }
    }

    for &abs in &abs_order {
        if assignment[abs] != usize::MAX {
            continue;
        }
        let pos = used
            .iter()
            .position(|&u| !u)
            .expect("feasibility checked by caller");
        assignment[abs] = cand[pos];
        used[pos] = true;
    }
    assignment
}

/// First-improvement local search over swaps and replace-with-unused moves.
fn local_search(
    mut assignment: Vec<usize>,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
    objective: &dyn Fn(&[usize]) -> f64,
    max_rounds: usize,
) -> Vec<usize> {
    let p = model.num_processors();
    let parent_abs = model.parent();
    let mut best = objective(&assignment);
    for _ in 0..max_rounds {
        let mut improved = false;

        // Pairwise swaps.
        'swap: for i in 0..p {
            for j in (i + 1)..p {
                assignment.swap(i, j);
                let pin_ok = ctx
                    .pinned_parent
                    .is_none_or(|w| assignment[parent_abs] == w);
                if pin_ok {
                    let t = objective(&assignment);
                    if t < best {
                        best = t;
                        improved = true;
                        continue 'swap;
                    }
                }
                assignment.swap(i, j); // revert
            }
        }

        // Replace an assignment with an unused candidate. Candidates
        // displaced by an accepted move become available immediately, so a
        // chain of replacements can complete within one round.
        for i in 0..p {
            if ctx.pinned_parent.is_some() && i == parent_abs {
                continue;
            }
            for wi in 0..ctx.candidates.len() {
                let w = ctx.candidates[wi];
                if assignment.contains(&w) {
                    continue;
                }
                let old = assignment[i];
                assignment[i] = w;
                let t = objective(&assignment);
                if t < best {
                    best = t;
                    improved = true;
                } else {
                    assignment[i] = old;
                }
            }
        }

        if !improved {
            break;
        }
    }
    assignment
}

/// Exact enumeration.
fn exhaustive(
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
    objective: &dyn Fn(&[usize]) -> f64,
) -> Mapping {
    let p = model.num_processors();
    let parent_abs = model.parent();
    let mut assignment = vec![usize::MAX; p];
    let mut used = vec![false; ctx.candidates.len()];
    let mut best: Option<Mapping> = None;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        abs: usize,
        p: usize,
        parent_abs: usize,
        ctx: &SelectionCtx<'_>,
        assignment: &mut Vec<usize>,
        used: &mut Vec<bool>,
        objective: &dyn Fn(&[usize]) -> f64,
        best: &mut Option<Mapping>,
    ) {
        if abs == p {
            let t = objective(assignment);
            if best.as_ref().is_none_or(|b| t < b.predicted) {
                *best = Some(Mapping {
                    assignment: assignment.clone(),
                    predicted: t,
                });
            }
            return;
        }
        for ci in 0..ctx.candidates.len() {
            if used[ci] {
                continue;
            }
            let w = ctx.candidates[ci];
            if abs == parent_abs {
                if let Some(pin) = ctx.pinned_parent {
                    if w != pin {
                        continue;
                    }
                }
            }
            used[ci] = true;
            assignment[abs] = w;
            rec(abs + 1, p, parent_abs, ctx, assignment, used, objective, best);
            used[ci] = false;
        }
        assignment[abs] = usize::MAX;
    }

    rec(
        0,
        p,
        parent_abs,
        ctx,
        &mut assignment,
        &mut used,
        objective,
        &mut best,
    );
    best.expect("feasibility checked by caller")
}

/// Simulated annealing from a greedy start.
fn anneal(
    start: Vec<usize>,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
    objective: &dyn Fn(&[usize]) -> f64,
    seed: u64,
    iters: usize,
) -> Mapping {
    let p = model.num_processors();
    let parent_abs = model.parent();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = start;
    let mut current_t = objective(&current);
    let mut best = Mapping {
        assignment: current.clone(),
        predicted: current_t,
    };

    let t0 = (current_t * 0.25).max(1e-9);
    for step in 0..iters {
        let temp = t0 * (1.0 - step as f64 / iters as f64).max(1e-3);
        let mut proposal = current.clone();

        let unused: Vec<usize> = ctx
            .candidates
            .iter()
            .copied()
            .filter(|w| !proposal.contains(w))
            .collect();
        let do_replace = !unused.is_empty() && rng.random_range(0..2) == 0;
        if do_replace {
            let mut i = rng.random_range(0..p);
            if ctx.pinned_parent.is_some() && i == parent_abs {
                if p == 1 {
                    continue;
                }
                i = (i + 1) % p;
                if i == parent_abs {
                    continue;
                }
            }
            proposal[i] = unused[rng.random_range(0..unused.len())];
        } else {
            if p < 2 {
                continue;
            }
            let i = rng.random_range(0..p);
            let j = rng.random_range(0..p);
            if i == j {
                continue;
            }
            proposal.swap(i, j);
            if let Some(pin) = ctx.pinned_parent {
                if proposal[parent_abs] != pin {
                    continue;
                }
            }
        }

        let t = objective(&proposal);
        let accept = t < current_t || {
            let delta = t - current_t;
            rng.random_range(0.0..1.0) < (-delta / temp).exp()
        };
        if accept {
            current = proposal;
            current_t = t;
            if t < best.predicted {
                best = Mapping {
                    assignment: current.clone(),
                    predicted: t,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{ClusterBuilder, Link, Protocol};
    use perfmodel::ModelBuilder;

    fn paper_like_ctx<'a>(cluster: &'a Cluster, placement: &'a [NodeId]) -> SelectionCtx<'a> {
        // Leaked estimates keep lifetimes simple inside tests.
        let est = Box::leak(Box::new(SpeedEstimates::from_base_speeds(cluster)));
        SelectionCtx {
            cluster,
            placement,
            estimates: est,
            candidates: (0..placement.len()).collect(),
            pinned_parent: Some(0),
        }
    }

    fn hetero_cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", 46.0)
            .node("b", 46.0)
            .node("c", 176.0)
            .node("d", 106.0)
            .node("e", 9.0)
            .all_to_all(Link::new(150e-6, 11e6, Protocol::Tcp))
            .build()
    }

    #[test]
    fn greedy_pairs_big_volume_with_fast_node() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let mut ctx = paper_like_ctx(&c, &placement);
        ctx.pinned_parent = None;
        let model = ModelBuilder::new("t")
            .processors(3)
            .volumes(vec![10.0, 1000.0, 100.0])
            .build()
            .unwrap();
        let m = select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap();
        // Volumes sorted: abs1 (1000) -> node 2 (176), abs2 (100) -> node 3
        // (106), abs0 (10) -> node 0/1 (46).
        assert_eq!(m.assignment[1], 2);
        assert_eq!(m.assignment[2], 3);
        assert!(m.assignment[0] == 0 || m.assignment[0] == 1);
    }

    #[test]
    fn exhaustive_matches_or_beats_greedy() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let ctx = paper_like_ctx(&c, &placement);
        let model = ModelBuilder::new("t")
            .processors(3)
            .volumes(vec![50.0, 500.0, 200.0])
            .comm_fn(|_, _| 1e6)
            .build()
            .unwrap();
        let g = select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap();
        let e = select_mapping(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        assert!(e.predicted <= g.predicted + 1e-12);
    }

    #[test]
    fn refined_matches_or_beats_greedy() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let ctx = paper_like_ctx(&c, &placement);
        let model = ModelBuilder::new("t")
            .processors(4)
            .volumes(vec![300.0, 50.0, 500.0, 200.0])
            .comm_fn(|s, d| if s.abs_diff(d) == 1 { 5e6 } else { 0.0 })
            .build()
            .unwrap();
        let g = select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap();
        let r = select_mapping(MappingAlgorithm::default(), &model, &ctx).unwrap();
        let e = select_mapping(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        assert!(r.predicted <= g.predicted + 1e-12);
        assert!(e.predicted <= r.predicted + 1e-12);
        // On this instance local search should reach the optimum.
        assert!((r.predicted - e.predicted).abs() < 0.05 * e.predicted);
    }

    #[test]
    fn parent_stays_pinned() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let ctx = paper_like_ctx(&c, &placement); // parent pinned to world 0
        let model = ModelBuilder::new("t")
            .processors(3)
            .volumes(vec![1000.0, 10.0, 10.0])
            .build()
            .unwrap();
        for algo in [
            MappingAlgorithm::Greedy,
            MappingAlgorithm::default(),
            MappingAlgorithm::Exhaustive,
            MappingAlgorithm::Annealing {
                seed: 42,
                iters: 200,
            },
        ] {
            let m = select_mapping(algo, &model, &ctx).unwrap();
            assert_eq!(m.assignment[0], 0, "{algo:?} must keep the parent pinned");
            let mut sorted = m.assignment.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "{algo:?} produced a non-injective mapping");
        }
    }

    #[test]
    fn infeasible_instances_error() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let mut ctx = paper_like_ctx(&c, &placement);
        let model = ModelBuilder::new("t").processors(6).build().unwrap();
        assert!(matches!(
            select_mapping(MappingAlgorithm::Greedy, &model, &ctx),
            Err(SelectError::NotEnoughProcesses { required: 6, .. })
        ));
        ctx.candidates = vec![1, 2];
        ctx.pinned_parent = Some(0);
        let small = ModelBuilder::new("t").processors(2).build().unwrap();
        assert!(matches!(
            select_mapping(MappingAlgorithm::Greedy, &small, &ctx),
            Err(SelectError::ParentNotCandidate { world_rank: 0 })
        ));
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let ctx = paper_like_ctx(&c, &placement);
        let model = ModelBuilder::new("t")
            .processors(4)
            .volumes(vec![100.0, 200.0, 300.0, 400.0])
            .comm_fn(|_, _| 1e5)
            .build()
            .unwrap();
        let algo = MappingAlgorithm::Annealing {
            seed: 7,
            iters: 300,
        };
        let a = select_mapping(algo, &model, &ctx).unwrap();
        let b = select_mapping(algo, &model, &ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exhaustive_count_respects_cap() {
        assert_eq!(exhaustive_count(5, 3), 60);
        assert!(exhaustive_count(30, 15) > EXHAUSTIVE_CAP);
    }

    #[test]
    fn uses_fewer_processes_than_available_when_beneficial() {
        // One big task, five nodes: only the fastest should matter; the
        // mapping uses exactly p=1 process even though 5 are free.
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let mut ctx = paper_like_ctx(&c, &placement);
        ctx.pinned_parent = None;
        let model = ModelBuilder::new("t")
            .processors(1)
            .volumes(vec![176.0])
            .build()
            .unwrap();
        let m = select_mapping(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        assert_eq!(m.assignment, vec![2]);
        assert!((m.predicted - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a_model_that_never_evaluates_yields_a_typed_error() {
        struct Broken {
            vols: Vec<f64>,
            comm: Vec<Vec<f64>>,
        }
        impl perfmodel::PerformanceModel for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn num_processors(&self) -> usize {
                2
            }
            fn volumes(&self) -> &[f64] {
                &self.vols
            }
            fn comm_bytes(&self) -> &[Vec<f64>] {
                &self.comm
            }
            fn parent(&self) -> usize {
                0
            }
            fn run_scheme(
                &self,
                _sink: &mut dyn perfmodel::SchemeSink,
            ) -> Result<(), perfmodel::EvalError> {
                Err(perfmodel::EvalError::Undefined("boom".into()))
            }
        }
        let cluster = ClusterBuilder::new()
            .node("a", 10.0)
            .node("b", 20.0)
            .all_to_all(Link::new(1e-3, 1e6, Protocol::Tcp))
            .build();
        let placement: Vec<NodeId> = cluster.node_ids().collect();
        let ctx = paper_like_ctx(&cluster, &placement);
        let model = Broken {
            vols: vec![1.0, 1.0],
            comm: vec![vec![0.0; 2]; 2],
        };
        for algo in [
            MappingAlgorithm::Greedy,
            MappingAlgorithm::Exhaustive,
            MappingAlgorithm::default(),
        ] {
            let e = select_mapping(algo, &model, &ctx).unwrap_err();
            assert!(matches!(e, SelectError::Eval(_)), "{algo:?}: {e}");
        }
    }
}
