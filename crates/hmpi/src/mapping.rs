//! Group selection: mapping abstract processors onto physical processes.
//!
//! "During the creation of this group of processes, HMPI runtime system
//! solves the problem of selection of the optimal set of processes running
//! on different computers of the heterogeneous network." The objective is
//! the predicted execution time ([`crate::estimate::predicted_time`]); this
//! module provides the search strategies:
//!
//! * [`MappingAlgorithm::Exhaustive`] — enumerate every injective mapping
//!   (exact, for small instances; falls back to the refined greedy beyond a
//!   work cap). The default path prunes with an admissible computation-only
//!   lower bound (branch and bound) and splits the first levels of the
//!   search tree across threads, returning the *same* mapping as the
//!   sequential enumeration (first strict improver in lexicographic order);
//! * [`MappingAlgorithm::Greedy`] — sort abstract processors by volume and
//!   candidates by estimated speed and pair them off (the optimal pairing
//!   for pure computation by the rearrangement inequality), no search;
//! * [`MappingAlgorithm::GreedyRefined`] — greedy start, then
//!   first-improvement local search over pairwise swaps and replacements
//!   with unused candidates (the default);
//! * [`MappingAlgorithm::Annealing`] — seeded simulated annealing for
//!   rugged objective landscapes (heavy communication terms).
//!
//! The model's *parent* processor is pinned to the parent process ("every
//! newly created group has exactly one process shared with already existing
//! groups ... the connecting link, through which results of computations are
//! passed").
//!
//! Two objective implementations drive the searches: the **engine** path
//! ([`crate::engine::Evaluator`]) prices mappings against a compiled cost
//! program with incremental delta evaluation of swap/replace moves, and the
//! **naive** path re-derives a fresh cost model per evaluation
//! ([`select_mapping_naive`], kept as the reference the engine is verified
//! against). Both produce bit-identical mappings.

use crate::engine::Evaluator;
use crate::estimate::predicted_time;
use hetsim::{Cluster, NodeId, SpeedEstimates};
use perfmodel::PerformanceModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Everything the search needs to price a candidate mapping.
#[derive(Debug, Clone)]
pub struct SelectionCtx<'a> {
    /// The cluster model.
    pub cluster: &'a Cluster,
    /// `placement[world_rank] = node`.
    pub placement: &'a [NodeId],
    /// Current speed estimates (from the latest `HMPI_Recon`).
    pub estimates: &'a SpeedEstimates,
    /// World ranks eligible for membership (the parent plus all free
    /// processes).
    pub candidates: Vec<usize>,
    /// World rank that must host the model's parent processor.
    pub pinned_parent: Option<usize>,
}

/// Objective-evaluation counters from one selection search — the
/// observability layer's view of how hard the search worked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Full objective evaluations (including delta-baseline rebases).
    pub evals: u64,
    /// Incremental delta probes of baseline perturbations.
    pub probes: u64,
}

/// A selection result.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// `assignment[abstract processor] = world rank`.
    pub assignment: Vec<usize>,
    /// Predicted execution time in seconds under the current estimates.
    pub predicted: f64,
    /// How many objective evaluations/probes the search performed.
    pub stats: SearchStats,
}

/// Search strategy for [`select_mapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingAlgorithm {
    /// Exact enumeration (small instances; falls back to `GreedyRefined`
    /// above [`EXHAUSTIVE_CAP`] candidate mappings).
    Exhaustive,
    /// Volume/speed sorted pairing only.
    Greedy,
    /// Greedy start plus swap/replace local search. The default.
    GreedyRefined {
        /// Maximum improvement rounds.
        max_rounds: usize,
    },
    /// Seeded simulated annealing.
    Annealing {
        /// RNG seed (results are deterministic per seed).
        seed: u64,
        /// Number of proposal steps.
        iters: usize,
    },
}

impl Default for MappingAlgorithm {
    fn default() -> Self {
        MappingAlgorithm::GreedyRefined { max_rounds: 64 }
    }
}

/// Work cap for exhaustive enumeration (number of mappings). Branch and
/// bound prunes most of the tree on computation-dominated instances and
/// the compiled evaluator prices leaves orders of magnitude faster than
/// the interpreter did, so the cap sits far above the pre-engine 2×10⁶.
pub const EXHAUSTIVE_CAP: u64 = 50_000_000;

/// Errors from the selection search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// The model needs more processes than there are candidates.
    NotEnoughProcesses {
        /// Abstract processors required.
        required: usize,
        /// Candidates available.
        available: usize,
    },
    /// The pinned parent is not among the candidates.
    ParentNotCandidate {
        /// The offending world rank.
        world_rank: usize,
    },
    /// The model's scheme program failed to evaluate on every assignment
    /// the search tried.
    Eval(
        /// The evaluation error, rendered.
        String,
    ),
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::NotEnoughProcesses {
                required,
                available,
            } => write!(
                f,
                "model needs {required} processes but only {available} are free"
            ),
            SelectError::ParentNotCandidate { world_rank } => {
                write!(f, "pinned parent rank {world_rank} is not a candidate")
            }
            SelectError::Eval(msg) => {
                write!(f, "the model's scheme failed to evaluate: {msg}")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// The search-facing objective: full evaluations that set the delta
/// baseline, and probes of small perturbations of that baseline.
trait Objective {
    /// Fully evaluates `a` and makes it the baseline for probes.
    fn rebase(&mut self, a: &[usize]) -> f64;
    /// Evaluates `a`, which differs from the baseline exactly at the
    /// abstract processors in `changed`.
    fn probe(&mut self, a: &[usize], changed: &[usize]) -> f64;
}

/// The pre-engine reference objective: every evaluation rebuilds the cost
/// model and re-interprets the scheme.
struct NaiveObjective<'a> {
    model: &'a dyn PerformanceModel,
    ctx: &'a SelectionCtx<'a>,
    evals: u64,
    probes: u64,
}

impl<'a> NaiveObjective<'a> {
    fn new(model: &'a dyn PerformanceModel, ctx: &'a SelectionCtx<'a>) -> Self {
        NaiveObjective {
            model,
            ctx,
            evals: 0,
            probes: 0,
        }
    }

    fn price(&self, a: &[usize]) -> f64 {
        predicted_time(
            self.model,
            a,
            self.ctx.cluster,
            self.ctx.placement,
            self.ctx.estimates,
        )
        .unwrap_or(f64::INFINITY)
    }

    fn stats(&self) -> SearchStats {
        SearchStats {
            evals: self.evals,
            probes: self.probes,
        }
    }
}

impl Objective for NaiveObjective<'_> {
    fn rebase(&mut self, a: &[usize]) -> f64 {
        self.evals += 1;
        self.price(a)
    }
    fn probe(&mut self, a: &[usize], _changed: &[usize]) -> f64 {
        self.probes += 1;
        self.price(a)
    }
}

/// The engine objective: compiled program, table lookups, delta probes.
struct EngineObjective<'a> {
    ev: &'a mut Evaluator,
}

impl Objective for EngineObjective<'_> {
    fn rebase(&mut self, a: &[usize]) -> f64 {
        self.ev.rebase(a)
    }
    fn probe(&mut self, a: &[usize], changed: &[usize]) -> f64 {
        self.ev.probe(a, changed)
    }
}

/// Selects the mapping minimising predicted execution time, using the
/// compiled selection engine (see [`crate::engine`]).
///
/// # Errors
/// [`SelectError`] on infeasible instances.
pub fn select_mapping(
    algo: MappingAlgorithm,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
) -> Result<Mapping, SelectError> {
    select_mapping_impl(algo, model, ctx, true)
}

/// The pre-engine reference path: every objective evaluation rebuilds the
/// cost model and re-interprets the scheme, and `Exhaustive` enumerates
/// sequentially without pruning. Kept public as the baseline the engine is
/// benchmarked and property-tested against; it selects bit-identical
/// mappings to [`select_mapping`].
///
/// # Errors
/// As [`select_mapping`].
pub fn select_mapping_naive(
    algo: MappingAlgorithm,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
) -> Result<Mapping, SelectError> {
    select_mapping_impl(algo, model, ctx, false)
}

fn select_mapping_impl(
    algo: MappingAlgorithm,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
    engine: bool,
) -> Result<Mapping, SelectError> {
    let p = model.num_processors();
    if p > ctx.candidates.len() {
        return Err(SelectError::NotEnoughProcesses {
            required: p,
            available: ctx.candidates.len(),
        });
    }
    if let Some(parent) = ctx.pinned_parent {
        if !ctx.candidates.contains(&parent) {
            return Err(SelectError::ParentNotCandidate { world_rank: parent });
        }
    }
    // Evaluation failures price an assignment as infeasible rather than
    // aborting the search; if the *chosen* assignment also fails, the typed
    // error surfaces below.
    let mapping = match algo {
        MappingAlgorithm::Greedy => {
            let a = greedy(model, ctx);
            let (predicted, stats) = if engine {
                let mut ev = Evaluator::new(model, ctx);
                let t = ev.eval(&a);
                (t, search_stats(&ev))
            } else {
                let mut obj = NaiveObjective::new(model, ctx);
                let t = obj.rebase(&a);
                (t, obj.stats())
            };
            Mapping {
                predicted,
                assignment: a,
                stats,
            }
        }
        MappingAlgorithm::GreedyRefined { max_rounds } => {
            let a = greedy(model, ctx);
            let (assignment, predicted, stats) = if engine {
                let mut ev = Evaluator::new(model, ctx);
                let (a, t) =
                    local_search(a, model, ctx, &mut EngineObjective { ev: &mut ev }, max_rounds);
                (a, t, search_stats(&ev))
            } else {
                let mut obj = NaiveObjective::new(model, ctx);
                let (a, t) = local_search(a, model, ctx, &mut obj, max_rounds);
                (a, t, obj.stats())
            };
            Mapping {
                assignment,
                predicted,
                stats,
            }
        }
        MappingAlgorithm::Exhaustive => {
            if exhaustive_count(ctx.candidates.len(), p) > EXHAUSTIVE_CAP {
                return select_mapping_impl(
                    MappingAlgorithm::GreedyRefined { max_rounds: 64 },
                    model,
                    ctx,
                    engine,
                );
            }
            if engine {
                exhaustive_bb(model, ctx, &Evaluator::new(model, ctx))
            } else {
                exhaustive_seq(model, ctx)
            }
        }
        MappingAlgorithm::Annealing { seed, iters } => {
            let start = greedy(model, ctx);
            if engine {
                let mut ev = Evaluator::new(model, ctx);
                let mut m =
                    anneal(start, model, ctx, &mut EngineObjective { ev: &mut ev }, seed, iters);
                m.stats = search_stats(&ev);
                m
            } else {
                let mut obj = NaiveObjective::new(model, ctx);
                let mut m = anneal(start, model, ctx, &mut obj, seed, iters);
                m.stats = obj.stats();
                m
            }
        }
    };
    if !mapping.predicted.is_finite() {
        // Distinguish a genuine eval failure from a legitimately infinite
        // prediction (e.g. an estimated speed of zero).
        if let Err(e) = predicted_time(
            model,
            &mapping.assignment,
            ctx.cluster,
            ctx.placement,
            ctx.estimates,
        ) {
            return Err(SelectError::Eval(e.to_string()));
        }
    }
    Ok(mapping)
}

/// Reads an engine evaluator's counters into [`SearchStats`].
fn search_stats(ev: &Evaluator) -> SearchStats {
    SearchStats {
        evals: ev.eval_count(),
        probes: ev.probe_count(),
    }
}

/// Number of injective mappings of `p` processors onto `c` candidates.
fn exhaustive_count(c: usize, p: usize) -> u64 {
    let mut n: u64 = 1;
    for i in 0..p {
        n = n.saturating_mul((c - i) as u64);
        if n > EXHAUSTIVE_CAP {
            return n;
        }
    }
    n
}

/// Volume-descending / speed-descending pairing, with the parent pinned.
fn greedy(model: &dyn PerformanceModel, ctx: &SelectionCtx<'_>) -> Vec<usize> {
    let p = model.num_processors();
    let volumes = model.volumes();
    let parent_abs = model.parent();

    let mut abs_order: Vec<usize> = (0..p).collect();
    abs_order.sort_by(|&a, &b| volumes[b].total_cmp(&volumes[a]));

    let speed_of = |w: usize| ctx.estimates.speed(ctx.placement[w]);
    let mut cand = ctx.candidates.clone();
    cand.sort_by(|&a, &b| speed_of(b).total_cmp(&speed_of(a)));

    let mut assignment = vec![usize::MAX; p];
    let mut used = vec![false; cand.len()];

    if let Some(parent_w) = ctx.pinned_parent {
        assignment[parent_abs] = parent_w;
        if let Some(pos) = cand.iter().position(|&w| w == parent_w) {
            used[pos] = true;
        }
    }

    for &abs in &abs_order {
        if assignment[abs] != usize::MAX {
            continue;
        }
        let pos = used
            .iter()
            .position(|&u| !u)
            .expect("feasibility checked by caller");
        assignment[abs] = cand[pos];
        used[pos] = true;
    }
    assignment
}

/// First-improvement local search over swaps and replace-with-unused moves.
/// Returns the refined assignment and its (full-evaluation) predicted time.
fn local_search(
    mut assignment: Vec<usize>,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
    obj: &mut dyn Objective,
    max_rounds: usize,
) -> (Vec<usize>, f64) {
    let p = model.num_processors();
    let parent_abs = model.parent();
    let mut best = obj.rebase(&assignment);
    for _ in 0..max_rounds {
        let mut improved = false;

        // Pairwise swaps.
        'swap: for i in 0..p {
            for j in (i + 1)..p {
                assignment.swap(i, j);
                let pin_ok = ctx
                    .pinned_parent
                    .is_none_or(|w| assignment[parent_abs] == w);
                if pin_ok {
                    let t = obj.probe(&assignment, &[i, j]);
                    if t < best {
                        best = obj.rebase(&assignment);
                        improved = true;
                        continue 'swap;
                    }
                }
                assignment.swap(i, j); // revert
            }
        }

        // Replace an assignment with an unused candidate. Candidates
        // displaced by an accepted move become available immediately, so a
        // chain of replacements can complete within one round.
        for i in 0..p {
            if ctx.pinned_parent.is_some() && i == parent_abs {
                continue;
            }
            for wi in 0..ctx.candidates.len() {
                let w = ctx.candidates[wi];
                if assignment.contains(&w) {
                    continue;
                }
                let old = assignment[i];
                assignment[i] = w;
                let t = obj.probe(&assignment, &[i]);
                if t < best {
                    best = obj.rebase(&assignment);
                    improved = true;
                } else {
                    assignment[i] = old;
                }
            }
        }

        if !improved {
            break;
        }
    }
    (assignment, best)
}

/// Sequential exact enumeration (the naive path): first strict improver in
/// lexicographic candidate order wins.
fn exhaustive_seq(model: &dyn PerformanceModel, ctx: &SelectionCtx<'_>) -> Mapping {
    let p = model.num_processors();
    let parent_abs = model.parent();
    let mut obj = NaiveObjective::new(model, ctx);
    let mut assignment = vec![usize::MAX; p];
    let mut used = vec![false; ctx.candidates.len()];
    let mut best: Option<Mapping> = None;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        abs: usize,
        p: usize,
        parent_abs: usize,
        ctx: &SelectionCtx<'_>,
        assignment: &mut Vec<usize>,
        used: &mut Vec<bool>,
        obj: &mut NaiveObjective<'_>,
        best: &mut Option<Mapping>,
    ) {
        if abs == p {
            let t = obj.rebase(assignment);
            if best.as_ref().is_none_or(|b| t < b.predicted) {
                *best = Some(Mapping {
                    assignment: assignment.clone(),
                    predicted: t,
                    stats: SearchStats::default(),
                });
            }
            return;
        }
        for ci in 0..ctx.candidates.len() {
            if used[ci] {
                continue;
            }
            let w = ctx.candidates[ci];
            if abs == parent_abs {
                if let Some(pin) = ctx.pinned_parent {
                    if w != pin {
                        continue;
                    }
                }
            }
            used[ci] = true;
            assignment[abs] = w;
            rec(abs + 1, p, parent_abs, ctx, assignment, used, obj, best);
            used[ci] = false;
        }
        assignment[abs] = usize::MAX;
    }

    rec(
        0,
        p,
        parent_abs,
        ctx,
        &mut assignment,
        &mut used,
        &mut obj,
        &mut best,
    );
    let mut best = best.expect("feasibility checked by caller");
    best.stats = obj.stats();
    best
}

/// The admissible lower-bound data for branch and bound: per-processor
/// computation totals `U_p` (any feasible completion costs processor `p`
/// at least `U_p / speed`), the suffix maxima over the still-unassigned
/// tail, and the fastest candidate speed.
struct Bound {
    units: Vec<f64>,
    suffix_max: Vec<f64>,
    max_speed: f64,
}

fn make_bound(ev: &Evaluator, ctx: &SelectionCtx<'_>, p: usize) -> Option<Bound> {
    let units = ev.compute_units()?.to_vec();
    let mut max_speed = 0.0f64;
    for &w in &ctx.candidates {
        let s = ev.world_speed(w);
        if s.is_nan() || s <= 0.0 {
            // A non-positive speed can poison clocks with NaN; disable
            // pruning rather than risk cutting the true argmin.
            return None;
        }
        max_speed = max_speed.max(s);
    }
    let mut suffix_max = vec![0.0f64; p + 1];
    for d in (0..p).rev() {
        suffix_max[d] = suffix_max[d + 1].max(units[d]);
    }
    Some(Bound {
        units,
        suffix_max,
        max_speed,
    })
}

/// Lock-free shared incumbent: monotonically decreasing f64 behind an
/// `AtomicU64` of its bits.
fn atomic_min_f64(best: &AtomicU64, v: f64) {
    let mut cur = best.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match best.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn bb_rec(
    abs: usize,
    p: usize,
    parent_abs: usize,
    ctx: &SelectionCtx<'_>,
    assignment: &mut Vec<usize>,
    used: &mut Vec<bool>,
    ev: &mut Evaluator,
    bound: Option<&Bound>,
    lb_partial: f64,
    shared: &AtomicU64,
    best: &mut Option<Mapping>,
) {
    if let Some(b) = bound {
        // Prune only on a *strict* bound violation: equal-valued subtrees
        // survive, so the first-improver tie-break matches the sequential
        // enumeration exactly. The incumbent only ever comes from real
        // leaves, so nothing is pruned before the first leaf is priced.
        let tail = if abs < p {
            b.suffix_max[abs] / b.max_speed
        } else {
            0.0
        };
        if lb_partial.max(tail) > f64::from_bits(shared.load(Ordering::Relaxed)) {
            return;
        }
    }
    if abs == p {
        let t = ev.eval(assignment);
        if best.as_ref().is_none_or(|b| t < b.predicted) {
            *best = Some(Mapping {
                assignment: assignment.clone(),
                predicted: t,
                stats: SearchStats::default(),
            });
            atomic_min_f64(shared, t);
        }
        return;
    }
    for ci in 0..ctx.candidates.len() {
        if used[ci] {
            continue;
        }
        let w = ctx.candidates[ci];
        if abs == parent_abs {
            if let Some(pin) = ctx.pinned_parent {
                if w != pin {
                    continue;
                }
            }
        }
        let child_lb = match bound {
            Some(b) => lb_partial.max(b.units[abs] / ev.world_speed(w)),
            None => lb_partial,
        };
        used[ci] = true;
        assignment[abs] = w;
        bb_rec(
            abs + 1,
            p,
            parent_abs,
            ctx,
            assignment,
            used,
            ev,
            bound,
            child_lb,
            shared,
            best,
        );
        used[ci] = false;
    }
    assignment[abs] = usize::MAX;
}

/// Enumerates the feasible prefixes of the first `depth` abstract
/// processors in exactly the sequential DFS candidate order.
fn gen_prefixes(
    abs: usize,
    depth: usize,
    parent_abs: usize,
    ctx: &SelectionCtx<'_>,
    prefix: &mut Vec<usize>,
    used: &mut [bool],
    out: &mut Vec<Vec<usize>>,
) {
    if abs == depth {
        out.push(prefix.clone());
        return;
    }
    for ci in 0..ctx.candidates.len() {
        if used[ci] {
            continue;
        }
        let w = ctx.candidates[ci];
        if abs == parent_abs {
            if let Some(pin) = ctx.pinned_parent {
                if w != pin {
                    continue;
                }
            }
        }
        used[ci] = true;
        prefix.push(w);
        gen_prefixes(abs + 1, depth, parent_abs, ctx, prefix, used, out);
        prefix.pop();
        used[ci] = false;
    }
}

/// Searches the subtree under one prefix; returns its best mapping (or
/// `None` if the subtree was entirely pruned).
fn bb_search_prefix(
    prefix: &[usize],
    p: usize,
    parent_abs: usize,
    ctx: &SelectionCtx<'_>,
    ev: &mut Evaluator,
    bound: Option<&Bound>,
    shared: &AtomicU64,
) -> Option<Mapping> {
    let mut assignment = vec![usize::MAX; p];
    let mut used = vec![false; ctx.candidates.len()];
    let mut lb = 0.0f64;
    for (abs, &w) in prefix.iter().enumerate() {
        assignment[abs] = w;
        let ci = ctx
            .candidates
            .iter()
            .position(|&c| c == w)
            .expect("prefix drawn from candidates");
        used[ci] = true;
        if let Some(b) = bound {
            lb = lb.max(b.units[abs] / ev.world_speed(w));
        }
    }
    let mut best: Option<Mapping> = None;
    bb_rec(
        prefix.len(),
        p,
        parent_abs,
        ctx,
        &mut assignment,
        &mut used,
        ev,
        bound,
        lb,
        shared,
        &mut best,
    );
    best
}

/// Exact enumeration with branch-and-bound pruning and a deterministic
/// multi-threaded split of the search tree's first levels. Returns exactly
/// the mapping [`exhaustive_seq`] would: pruning is strict (`lb > best`),
/// so equal-valued leaves survive to the same first-improver tie-break,
/// and per-prefix results are merged in sequential prefix order.
fn exhaustive_bb(
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
    proto: &Evaluator,
) -> Mapping {
    let p = model.num_processors();
    let parent_abs = model.parent();
    let bound = make_bound(proto, ctx, p);

    let depth = p.min(2);
    let mut prefixes: Vec<Vec<usize>> = Vec::new();
    {
        let mut used = vec![false; ctx.candidates.len()];
        let mut prefix = Vec::with_capacity(depth);
        gen_prefixes(0, depth, parent_abs, ctx, &mut prefix, &mut used, &mut prefixes);
    }

    let shared = AtomicU64::new(f64::INFINITY.to_bits());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(prefixes.len().max(1));

    let mut results: Vec<Option<Mapping>> = vec![None; prefixes.len()];
    let mut total = SearchStats::default();
    if threads <= 1 {
        let mut ev = proto.clone();
        for (slot, prefix) in results.iter_mut().zip(&prefixes) {
            *slot = bb_search_prefix(prefix, p, parent_abs, ctx, &mut ev, bound.as_ref(), &shared);
        }
        total = search_stats(&ev);
    } else {
        let prefixes = &prefixes;
        let shared = &shared;
        let bound = bound.as_ref();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let mut ev = proto.clone();
                    scope.spawn(move || {
                        let mut out: Vec<(usize, Option<Mapping>)> = Vec::new();
                        let mut i = tid;
                        while i < prefixes.len() {
                            out.push((
                                i,
                                bb_search_prefix(
                                    &prefixes[i],
                                    p,
                                    parent_abs,
                                    ctx,
                                    &mut ev,
                                    bound,
                                    shared,
                                ),
                            ));
                            i += threads;
                        }
                        (out, search_stats(&ev))
                    })
                })
                .collect();
            for h in handles {
                let (out, stats) = h.join().expect("search thread panicked");
                total.evals += stats.evals;
                total.probes += stats.probes;
                for (i, r) in out {
                    results[i] = r;
                }
            }
        });
    }

    let mut best: Option<Mapping> = None;
    for r in results.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| r.predicted < b.predicted) {
            best = Some(r);
        }
    }
    let mut best = best.expect("feasibility checked by caller");
    best.stats = total;
    best
}

/// Simulated annealing from a greedy start.
fn anneal(
    start: Vec<usize>,
    model: &dyn PerformanceModel,
    ctx: &SelectionCtx<'_>,
    obj: &mut dyn Objective,
    seed: u64,
    iters: usize,
) -> Mapping {
    let p = model.num_processors();
    let parent_abs = model.parent();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = start;
    let mut current_t = obj.rebase(&current);
    let mut best = Mapping {
        assignment: current.clone(),
        predicted: current_t,
        stats: SearchStats::default(),
    };

    let t0 = (current_t * 0.25).max(1e-9);
    for step in 0..iters {
        let temp = t0 * (1.0 - step as f64 / iters as f64).max(1e-3);
        let mut proposal = current.clone();

        let unused: Vec<usize> = ctx
            .candidates
            .iter()
            .copied()
            .filter(|w| !proposal.contains(w))
            .collect();
        let do_replace = !unused.is_empty() && rng.random_range(0..2) == 0;
        let mut changed = [0usize; 2];
        let changed: &[usize] = if do_replace {
            // Resample until the index is not the pinned parent: shifting
            // deterministically (the old `i + 1` trick) over-sampled the
            // parent's neighbour.
            if ctx.pinned_parent.is_some() && p == 1 {
                continue;
            }
            let i = loop {
                let i = rng.random_range(0..p);
                if ctx.pinned_parent.is_none() || i != parent_abs {
                    break i;
                }
            };
            proposal[i] = unused[rng.random_range(0..unused.len())];
            changed[0] = i;
            &changed[..1]
        } else {
            if p < 2 {
                continue;
            }
            let i = rng.random_range(0..p);
            let j = rng.random_range(0..p);
            if i == j {
                continue;
            }
            proposal.swap(i, j);
            if let Some(pin) = ctx.pinned_parent {
                if proposal[parent_abs] != pin {
                    continue;
                }
            }
            changed[0] = i;
            changed[1] = j;
            &changed[..2]
        };

        let t = obj.probe(&proposal, changed);
        let accept = t < current_t || {
            let delta = t - current_t;
            rng.random_range(0.0..1.0) < (-delta / temp).exp()
        };
        if accept {
            current = proposal;
            current_t = obj.rebase(&current);
            if current_t < best.predicted {
                best = Mapping {
                    assignment: current.clone(),
                    predicted: current_t,
                    stats: SearchStats::default(),
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{ClusterBuilder, Link, Protocol};
    use perfmodel::ModelBuilder;

    fn paper_like_ctx<'a>(
        cluster: &'a Cluster,
        placement: &'a [NodeId],
        estimates: &'a SpeedEstimates,
    ) -> SelectionCtx<'a> {
        SelectionCtx {
            cluster,
            placement,
            estimates,
            candidates: (0..placement.len()).collect(),
            pinned_parent: Some(0),
        }
    }

    fn hetero_cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", 46.0)
            .node("b", 46.0)
            .node("c", 176.0)
            .node("d", 106.0)
            .node("e", 9.0)
            .all_to_all(Link::new(150e-6, 11e6, Protocol::Tcp))
            .build()
    }

    #[test]
    fn greedy_pairs_big_volume_with_fast_node() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let mut ctx = paper_like_ctx(&c, &placement, &est);
        ctx.pinned_parent = None;
        let model = ModelBuilder::new("t")
            .processors(3)
            .volumes(vec![10.0, 1000.0, 100.0])
            .build()
            .unwrap();
        let m = select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap();
        // Volumes sorted: abs1 (1000) -> node 2 (176), abs2 (100) -> node 3
        // (106), abs0 (10) -> node 0/1 (46).
        assert_eq!(m.assignment[1], 2);
        assert_eq!(m.assignment[2], 3);
        assert!(m.assignment[0] == 0 || m.assignment[0] == 1);
    }

    #[test]
    fn exhaustive_matches_or_beats_greedy() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let ctx = paper_like_ctx(&c, &placement, &est);
        let model = ModelBuilder::new("t")
            .processors(3)
            .volumes(vec![50.0, 500.0, 200.0])
            .comm_fn(|_, _| 1e6)
            .build()
            .unwrap();
        let g = select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap();
        let e = select_mapping(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        assert!(e.predicted <= g.predicted + 1e-12);
    }

    #[test]
    fn refined_matches_or_beats_greedy() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let ctx = paper_like_ctx(&c, &placement, &est);
        let model = ModelBuilder::new("t")
            .processors(4)
            .volumes(vec![300.0, 50.0, 500.0, 200.0])
            .comm_fn(|s, d| if s.abs_diff(d) == 1 { 5e6 } else { 0.0 })
            .build()
            .unwrap();
        let g = select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap();
        let r = select_mapping(MappingAlgorithm::default(), &model, &ctx).unwrap();
        let e = select_mapping(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        assert!(r.predicted <= g.predicted + 1e-12);
        assert!(e.predicted <= r.predicted + 1e-12);
        // On this instance local search should reach the optimum.
        assert!((r.predicted - e.predicted).abs() < 0.05 * e.predicted);
    }

    #[test]
    fn parent_stays_pinned() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let ctx = paper_like_ctx(&c, &placement, &est); // parent pinned to world 0
        let model = ModelBuilder::new("t")
            .processors(3)
            .volumes(vec![1000.0, 10.0, 10.0])
            .build()
            .unwrap();
        for algo in [
            MappingAlgorithm::Greedy,
            MappingAlgorithm::default(),
            MappingAlgorithm::Exhaustive,
            MappingAlgorithm::Annealing {
                seed: 42,
                iters: 200,
            },
        ] {
            let m = select_mapping(algo, &model, &ctx).unwrap();
            assert_eq!(m.assignment[0], 0, "{algo:?} must keep the parent pinned");
            let mut sorted = m.assignment.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "{algo:?} produced a non-injective mapping");
        }
    }

    #[test]
    fn infeasible_instances_error() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let mut ctx = paper_like_ctx(&c, &placement, &est);
        let model = ModelBuilder::new("t").processors(6).build().unwrap();
        assert!(matches!(
            select_mapping(MappingAlgorithm::Greedy, &model, &ctx),
            Err(SelectError::NotEnoughProcesses { required: 6, .. })
        ));
        ctx.candidates = vec![1, 2];
        ctx.pinned_parent = Some(0);
        let small = ModelBuilder::new("t").processors(2).build().unwrap();
        assert!(matches!(
            select_mapping(MappingAlgorithm::Greedy, &small, &ctx),
            Err(SelectError::ParentNotCandidate { world_rank: 0 })
        ));
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let ctx = paper_like_ctx(&c, &placement, &est);
        let model = ModelBuilder::new("t")
            .processors(4)
            .volumes(vec![100.0, 200.0, 300.0, 400.0])
            .comm_fn(|_, _| 1e5)
            .build()
            .unwrap();
        let algo = MappingAlgorithm::Annealing {
            seed: 7,
            iters: 300,
        };
        let a = select_mapping(algo, &model, &ctx).unwrap();
        let b = select_mapping(algo, &model, &ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exhaustive_count_respects_cap() {
        assert_eq!(exhaustive_count(5, 3), 60);
        assert!(exhaustive_count(30, 15) > EXHAUSTIVE_CAP);
    }

    #[test]
    fn uses_fewer_processes_than_available_when_beneficial() {
        // One big task, five nodes: only the fastest should matter; the
        // mapping uses exactly p=1 process even though 5 are free.
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let mut ctx = paper_like_ctx(&c, &placement, &est);
        ctx.pinned_parent = None;
        let model = ModelBuilder::new("t")
            .processors(1)
            .volumes(vec![176.0])
            .build()
            .unwrap();
        let m = select_mapping(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        assert_eq!(m.assignment, vec![2]);
        assert!((m.predicted - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a_model_that_never_evaluates_yields_a_typed_error() {
        struct Broken {
            vols: Vec<f64>,
            comm: Vec<Vec<f64>>,
        }
        impl perfmodel::PerformanceModel for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn num_processors(&self) -> usize {
                2
            }
            fn volumes(&self) -> &[f64] {
                &self.vols
            }
            fn comm_bytes(&self) -> &[Vec<f64>] {
                &self.comm
            }
            fn parent(&self) -> usize {
                0
            }
            fn run_scheme(
                &self,
                _sink: &mut dyn perfmodel::SchemeSink,
            ) -> Result<(), perfmodel::EvalError> {
                Err(perfmodel::EvalError::Undefined("boom".into()))
            }
        }
        let cluster = ClusterBuilder::new()
            .node("a", 10.0)
            .node("b", 20.0)
            .all_to_all(Link::new(1e-3, 1e6, Protocol::Tcp))
            .build();
        let placement: Vec<NodeId> = cluster.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&cluster);
        let ctx = paper_like_ctx(&cluster, &placement, &est);
        let model = Broken {
            vols: vec![1.0, 1.0],
            comm: vec![vec![0.0; 2]; 2],
        };
        for algo in [
            MappingAlgorithm::Greedy,
            MappingAlgorithm::Exhaustive,
            MappingAlgorithm::default(),
        ] {
            let e = select_mapping(algo, &model, &ctx).unwrap_err();
            assert!(matches!(e, SelectError::Eval(_)), "{algo:?}: {e}");
        }
    }

    #[test]
    fn engine_and_naive_paths_select_bit_identical_mappings() {
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let models = [
            ModelBuilder::new("compute")
                .processors(3)
                .volumes(vec![50.0, 500.0, 200.0])
                .comm_fn(|_, _| 1e6)
                .build()
                .unwrap(),
            ModelBuilder::new("chain")
                .processors(4)
                .volumes(vec![300.0, 50.0, 500.0, 200.0])
                .comm_fn(|s, d| if s.abs_diff(d) == 1 { 5e6 } else { 0.0 })
                .build()
                .unwrap(),
        ];
        for model in &models {
            for pinned in [Some(0), None] {
                let mut ctx = paper_like_ctx(&c, &placement, &est);
                ctx.pinned_parent = pinned;
                for algo in [
                    MappingAlgorithm::Greedy,
                    MappingAlgorithm::default(),
                    MappingAlgorithm::Exhaustive,
                    MappingAlgorithm::Annealing {
                        seed: 11,
                        iters: 400,
                    },
                ] {
                    let fast = select_mapping(algo, model, &ctx).unwrap();
                    let naive = select_mapping_naive(algo, model, &ctx).unwrap();
                    assert_eq!(fast.assignment, naive.assignment, "{algo:?} pinned={pinned:?}");
                    assert_eq!(
                        fast.predicted.to_bits(),
                        naive.predicted.to_bits(),
                        "{algo:?} pinned={pinned:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn annealing_replace_move_no_longer_skews_off_the_parent() {
        // p = 2 with the parent at abs 0: the old `i + 1` shift mapped a
        // draw of the parent index deterministically onto index 1, doubling
        // its proposal rate. With resampling both outcomes remain possible
        // and the search still respects the pin.
        let c = hetero_cluster();
        let placement: Vec<NodeId> = c.node_ids().collect();
        let est = SpeedEstimates::from_base_speeds(&c);
        let ctx = paper_like_ctx(&c, &placement, &est);
        let model = ModelBuilder::new("t")
            .processors(2)
            .volumes(vec![400.0, 100.0])
            .build()
            .unwrap();
        for seed in 0..8 {
            let m = select_mapping(
                MappingAlgorithm::Annealing { seed, iters: 300 },
                &model,
                &ctx,
            )
            .unwrap();
            assert_eq!(m.assignment[0], 0, "parent must stay pinned (seed {seed})");
            assert!(m.predicted.is_finite());
        }
    }
}
