//! The HMPI runtime system.
//!
//! [`HmpiRuntime`] owns the simulated cluster and the shared speed
//! estimates; [`HmpiRuntime::run`] executes an SPMD closure with one
//! [`Hmpi`] handle per rank (the per-process face of the runtime, created by
//! `HMPI_Init` in the paper). Group creation follows the paper's protocol:
//! it is "a collective operation and must be called by the parent and all
//! the processes, which are not members of any HMPI group"; the host
//! process solves the selection problem and distributes the result.

use crate::group::HmpiGroup;
use crate::mapping::{select_mapping, Mapping, MappingAlgorithm, SelectError, SelectionCtx};
use hetsim::{Cluster, NodeId, SimTime, SpeedEstimates};
use mpisim::{Comm, MpiError, Process, RunReport, Universe};
use parking_lot::RwLock;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tag used on the control communicator for group-creation messages.
const TAG_GROUP_CREATE: i32 = 1_000_001;

/// Errors surfaced by the HMPI layer.
#[derive(Debug, Clone, PartialEq)]
pub enum HmpiError {
    /// The group-selection search failed.
    Select(SelectError),
    /// An underlying message-passing operation failed.
    Mpi(MpiError),
    /// The calling process is neither the host nor free, so it may not take
    /// part in `group_create`.
    NotEligible,
    /// `group_free` was called by a process that is not a member.
    NotMember,
}

impl fmt::Display for HmpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmpiError::Select(e) => write!(f, "selection failed: {e}"),
            HmpiError::Mpi(e) => write!(f, "MPI error: {e}"),
            HmpiError::NotEligible => write!(
                f,
                "group_create may only be called by the host and free processes"
            ),
            HmpiError::NotMember => write!(f, "calling process is not a member of the group"),
        }
    }
}

impl std::error::Error for HmpiError {}

impl From<MpiError> for HmpiError {
    fn from(e: MpiError) -> Self {
        HmpiError::Mpi(e)
    }
}

impl From<SelectError> for HmpiError {
    fn from(e: SelectError) -> Self {
        HmpiError::Select(e)
    }
}

/// Result alias for HMPI operations.
pub type HmpiResult<T> = Result<T, HmpiError>;

/// Global (cross-rank) state of a running HMPI universe.
#[derive(Debug)]
struct HmpiShared {
    /// `free[world_rank]`: not currently a member of any HMPI group.
    free: RwLock<Vec<bool>>,
    next_group_id: AtomicU64,
}

/// The HMPI runtime: a simulated heterogeneous cluster plus the shared,
/// `HMPI_Recon`-refreshable speed estimates.
///
/// ```
/// use hetsim::{ClusterBuilder, Link, Protocol};
/// use hmpi::HmpiRuntime;
/// use perfmodel::ModelBuilder;
/// use std::sync::Arc;
///
/// let cluster = Arc::new(
///     ClusterBuilder::new()
///         .node("host", 50.0)
///         .node("fast", 200.0)
///         .node("slow", 10.0)
///         .all_to_all(Link::with_defaults(Protocol::Tcp))
///         .build(),
/// );
/// let runtime = HmpiRuntime::new(cluster);
/// let report = runtime.run(|h| {
///     h.recon(10.0).unwrap();
///     let model = ModelBuilder::new("two-tasks")
///         .processors(2)
///         .volumes(vec![10.0, 400.0])
///         .build()
///         .unwrap();
///     let group = h.group_create(&model).unwrap();
///     let members = group.members().to_vec();
///     if group.is_member() {
///         h.group_free(group).unwrap();
///     }
///     members
/// });
/// // The heavy abstract processor lands on the fast machine; the parent
/// // stays on the host.
/// assert_eq!(report.results[0], vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct HmpiRuntime {
    universe: Universe,
    estimates: SpeedEstimates,
    default_algo: MappingAlgorithm,
}

impl HmpiRuntime {
    /// A runtime with one process per cluster node (the paper's standard
    /// configuration).
    pub fn new(cluster: Arc<Cluster>) -> Self {
        let estimates = SpeedEstimates::from_base_speeds(&cluster);
        HmpiRuntime {
            universe: Universe::new(cluster),
            estimates,
            default_algo: MappingAlgorithm::default(),
        }
    }

    /// A runtime with explicit rank placement.
    pub fn with_placement(cluster: Arc<Cluster>, placement: Vec<NodeId>) -> Self {
        let estimates = SpeedEstimates::from_base_speeds(&cluster);
        HmpiRuntime {
            universe: Universe::with_placement(cluster, placement),
            estimates,
            default_algo: MappingAlgorithm::default(),
        }
    }

    /// Overrides the default group-selection algorithm.
    pub fn with_algorithm(mut self, algo: MappingAlgorithm) -> Self {
        self.default_algo = algo;
        self
    }

    /// The shared speed estimates (initially the cluster's base speeds;
    /// refreshed by [`Hmpi::recon`]).
    pub fn estimates(&self) -> &SpeedEstimates {
        &self.estimates
    }

    /// The underlying universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Runs an SPMD closure on every rank, giving each its [`Hmpi`] handle.
    /// Corresponds to launching the application and having every process
    /// call `HMPI_Init`.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&Hmpi) -> R + Sync,
    {
        let n = self.universe.size();
        let shared = Arc::new(HmpiShared {
            free: RwLock::new(vec![true; n]),
            next_group_id: AtomicU64::new(1),
        });
        let estimates = self.estimates.clone();
        let algo = self.default_algo;
        self.universe.run(move |proc| {
            let world = proc.world();
            // The control communicator is created collectively at init time
            // and carries the group-creation protocol, so it can never
            // collide with application traffic on HMPI_COMM_WORLD.
            let control = world.dup().expect("control dup at init cannot fail");
            let hmpi = Hmpi {
                proc,
                world,
                control,
                estimates: estimates.clone(),
                shared: shared.clone(),
                memberships: Cell::new(0),
                default_algo: algo,
            };
            f(&hmpi)
        })
    }
}

/// A rank's handle to the HMPI runtime (what the paper's per-process
/// `HMPI_Init` sets up). Not `Send` — it belongs to its rank thread.
#[derive(Debug)]
pub struct Hmpi<'a> {
    proc: &'a Process,
    world: Comm,
    control: Comm,
    estimates: SpeedEstimates,
    shared: Arc<HmpiShared>,
    memberships: Cell<usize>,
    default_algo: MappingAlgorithm,
}

impl Hmpi<'_> {
    /// `HMPI_COMM_WORLD`: the predefined communication universe.
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// The underlying process handle.
    pub fn process(&self) -> &Process {
        self.proc
    }

    /// This process's rank in `HMPI_COMM_WORLD`.
    pub fn rank(&self) -> usize {
        self.world.rank()
    }

    /// Number of processes in the universe.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// `HMPI_Is_host`: the host is the process with world rank 0 (the mpC
    /// host-process notion).
    pub fn is_host(&self) -> bool {
        self.world.rank() == 0
    }

    /// `HMPI_Is_free`: not the host and not currently a member of any HMPI
    /// group.
    pub fn is_free(&self) -> bool {
        !self.is_host() && self.memberships.get() == 0
    }

    /// The cluster node hosting this rank.
    pub fn node(&self) -> NodeId {
        self.proc.node()
    }

    /// Current virtual time on this rank.
    pub fn now(&self) -> SimTime {
        self.proc.clock().now()
    }

    /// Performs `units` benchmark units of computation (advances virtual
    /// time by `units / true_speed(node, now)`).
    pub fn compute(&self, units: f64) {
        self.proc.compute(units);
    }

    /// The runtime's current speed estimates.
    pub fn estimates(&self) -> &SpeedEstimates {
        &self.estimates
    }

    /// `HMPI_Recon`: every process runs a benchmark of `units` benchmark
    /// units in parallel; the elapsed virtual times refresh the shared speed
    /// estimates. Collective over `HMPI_COMM_WORLD`.
    ///
    /// # Errors
    /// Propagates transport errors from the internal allgather.
    pub fn recon(&self, units: f64) -> HmpiResult<()> {
        self.recon_with(units, |h| h.compute(units))
    }

    /// `HMPI_Recon` with a caller-supplied benchmark body: `bench` should
    /// perform work equivalent to `nominal_units` benchmark units (e.g. call
    /// the application's serial kernel); its elapsed virtual time yields the
    /// speed estimate `nominal_units / elapsed`. Collective over
    /// `HMPI_COMM_WORLD`.
    ///
    /// # Errors
    /// Propagates transport errors from the internal allgather.
    pub fn recon_with(&self, nominal_units: f64, bench: impl FnOnce(&Self)) -> HmpiResult<()> {
        assert!(nominal_units > 0.0, "benchmark volume must be positive");
        let t0 = self.now();
        bench(self);
        let elapsed = (self.now() - t0).as_secs();
        let my_speed = if elapsed > 0.0 {
            nominal_units / elapsed
        } else {
            // A zero-cost benchmark measures nothing; keep the old estimate.
            self.estimates.speed(self.node())
        };
        let all = self.world.allgather(&[my_speed])?;
        // Synchronise before refreshing so every rank sees the update.
        self.world.barrier()?;
        if self.is_host() {
            let mut per_node = self.estimates.snapshot();
            for (rank, speeds) in all.iter().enumerate() {
                per_node[self.proc.node_of(rank).index()] = speeds[0];
            }
            self.estimates.refresh(per_node, self.now());
        }
        self.world.barrier()?;
        Ok(())
    }

    fn selection_ctx(&self) -> SelectionCtx<'_> {
        self.selection_ctx_for(0)
    }

    fn selection_ctx_for(&self, parent_world: usize) -> SelectionCtx<'_> {
        let free = self.shared.free.read();
        let mut candidates: Vec<usize> = vec![parent_world];
        candidates.extend((0..self.size()).filter(|&r| r != parent_world && free[r]));
        SelectionCtx {
            cluster: self.proc.cluster(),
            placement: self.placement(),
            estimates: &self.estimates,
            candidates,
            pinned_parent: Some(parent_world),
        }
    }

    fn placement(&self) -> &[NodeId] {
        // Reconstruct placement from the process: node_of is O(1) per rank.
        // The universe placement is immutable, so caching is unnecessary.
        self.proc.placement()
    }

    /// `HMPI_Timeof`: predicts the execution time of the algorithm described
    /// by `model` on the best group the runtime could currently select,
    /// without executing it. Local operation.
    ///
    /// # Errors
    /// [`HmpiError::Select`] if the model needs more processes than are
    /// available.
    pub fn timeof(&self, model: &dyn perfmodel::PerformanceModel) -> HmpiResult<f64> {
        Ok(self.timeof_mapping(model)?.predicted)
    }

    /// Like [`Hmpi::timeof`] but also reports the mapping the prediction is
    /// for.
    ///
    /// # Errors
    /// As [`Hmpi::timeof`].
    pub fn timeof_mapping(
        &self,
        model: &dyn perfmodel::PerformanceModel,
    ) -> HmpiResult<Mapping> {
        let ctx = self.selection_ctx();
        Ok(select_mapping(self.default_algo, model, &ctx)?)
    }

    /// Chooses among algorithm variants by predicted execution time — the
    /// paper's motivation for `HMPI_Timeof`: "write such a parallel
    /// application that can follow different parallel algorithms to solve
    /// the same problem, making choice at runtime depending on the
    /// particular executing network and its actual performance."
    ///
    /// Returns `(index, predicted_time)` of the fastest variant, or `None`
    /// if the iterator is empty or no variant is feasible. Local operation.
    pub fn choose_best<'m>(
        &self,
        variants: impl IntoIterator<Item = &'m dyn perfmodel::PerformanceModel>,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, model) in variants.into_iter().enumerate() {
            if let Ok(t) = self.timeof(model) {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        best
    }

    /// `HMPI_Group_create` with the runtime's default selection algorithm.
    ///
    /// # Errors
    /// As [`Hmpi::group_create_with`].
    pub fn group_create(
        &self,
        model: &dyn perfmodel::PerformanceModel,
    ) -> HmpiResult<HmpiGroup> {
        self.group_create_with(self.default_algo, model)
    }

    /// `HMPI_Group_create`: collectively creates a group of processes that
    /// executes the modelled algorithm faster than any other group. Must be
    /// called by the host (the parent) and by every free process.
    ///
    /// The host solves the selection problem against the current speed
    /// estimates and distributes `(group id, context, member list)` to every
    /// participant; selected processes construct the group communicator,
    /// unselected ones receive a non-member handle and stay free.
    ///
    /// # Errors
    /// [`HmpiError::NotEligible`] if called by a busy process;
    /// [`HmpiError::Select`] on infeasible models; transport errors
    /// otherwise.
    pub fn group_create_with(
        &self,
        algo: MappingAlgorithm,
        model: &dyn perfmodel::PerformanceModel,
    ) -> HmpiResult<HmpiGroup> {
        self.group_create_as(0, algo, model)
    }

    /// `HMPI_Group_create` with an arbitrary *parent* process — the paper's
    /// general form: "every newly created group has exactly one process
    /// shared with already existing groups. That process is called a
    /// parent". The parent coordinates the selection (it may itself be a
    /// member of an existing group); all free processes must call this with
    /// the same `parent_world`. The model's `parent` processor is pinned to
    /// that rank.
    ///
    /// Concurrent creations by *different* parents are not serialised by the
    /// runtime; the program must order them (as the paper's collective
    /// calling convention implies).
    ///
    /// # Errors
    /// [`HmpiError::NotEligible`] if the caller is neither the parent nor
    /// free; [`HmpiError::Select`] on infeasible models; transport errors
    /// otherwise.
    pub fn group_create_as(
        &self,
        parent_world: usize,
        algo: MappingAlgorithm,
        model: &dyn perfmodel::PerformanceModel,
    ) -> HmpiResult<HmpiGroup> {
        let me = self.rank();
        let i_am_parent = me == parent_world;
        // Eligibility is judged from rank-local state: the coordinator may
        // already have flipped this rank's shared flag for the in-flight
        // creation before the rank reaches this call.
        if !i_am_parent && self.memberships.get() > 0 {
            return Err(HmpiError::NotEligible);
        }

        let (group_id, members, predicted, ctx_id) = if i_am_parent {
            let sel_ctx = self.selection_ctx_for(parent_world);
            let participants = sel_ctx.candidates.clone();
            let mapping = select_mapping(algo, model, &sel_ctx)?;
            // The host marks the selected members busy immediately, so a
            // subsequent group_create on the host cannot re-select a member
            // that has not yet processed its payload.
            {
                let mut free = self.shared.free.write();
                for &w in &mapping.assignment {
                    free[w] = false;
                }
            }
            let group_id = self.shared.next_group_id.fetch_add(1, Ordering::Relaxed);
            let ctx_id = self.control.alloc_ctx();

            let mut payload: Vec<i64> = Vec::with_capacity(3 + mapping.assignment.len());
            payload.push(group_id as i64);
            payload.push(ctx_id as i64);
            payload.push(mapping.predicted.to_bits() as i64);
            payload.extend(mapping.assignment.iter().map(|&w| w as i64));
            for &r in &participants {
                if r != me {
                    self.control.send(&payload, r, TAG_GROUP_CREATE)?;
                }
            }
            (group_id, mapping.assignment, mapping.predicted, ctx_id)
        } else {
            let (payload, _) = self.control.recv::<i64>(parent_world, TAG_GROUP_CREATE)?;
            let group_id = payload[0] as u64;
            let ctx_id = payload[1] as u64;
            let predicted = f64::from_bits(payload[2] as u64);
            let members: Vec<usize> = payload[3..].iter().map(|&w| w as usize).collect();
            (group_id, members, predicted, ctx_id)
        };

        let group = mpisim::Group::from_world_ranks(members.clone())?;
        let comm = self.control.subset_with_ctx(&group, ctx_id)?;

        if comm.is_some() {
            self.memberships.set(self.memberships.get() + 1);
        }
        let _ = me;

        Ok(HmpiGroup {
            id: group_id,
            members,
            comm,
            parent_abs: model.parent(),
            predicted,
        })
    }

    /// `HMPI_Group_free`: collectively releases a group. Must be called by
    /// all members; member processes become free again. Calling it with a
    /// non-member handle is a no-op for the process state and returns
    /// [`HmpiError::NotMember`].
    ///
    /// # Errors
    /// [`HmpiError::NotMember`] when the caller was not selected into the
    /// group; transport errors from the closing barrier.
    pub fn group_free(&self, group: HmpiGroup) -> HmpiResult<()> {
        let comm = match group.comm {
            Some(c) => c,
            None => return Err(HmpiError::NotMember),
        };
        // Two-phase release. The free flags must flip at a moment the host
        // can reason about: (a) a rank must not look free while the program
        // may still route around it (the host could select it into a new
        // group it will never join), and (b) once any member has finished
        // group_free, every member must look free (a create immediately
        // after a collective free must see them all).
        //
        // Both hold because the parent (host) is a member of every group:
        // no member passes the first barrier before the host itself enters
        // group_free, so flags cannot flip while the host is elsewhere; and
        // every member flips its flag before its second-barrier message, so
        // when anyone exits the second barrier all flags are set.
        comm.barrier()?;
        self.memberships.set(self.memberships.get() - 1);
        self.shared.free.write()[self.rank()] = true;
        comm.barrier()?;
        Ok(())
    }

    /// `HMPI_Finalize`: a final synchronisation over `HMPI_COMM_WORLD`.
    ///
    /// # Errors
    /// Propagates transport errors from the barrier.
    pub fn finalize(&self) -> HmpiResult<()> {
        self.world.barrier()?;
        Ok(())
    }
}
