//! The HMPI runtime system.
//!
//! [`HmpiRuntime`] owns the simulated cluster and the shared speed
//! estimates; [`HmpiRuntime::run`] executes an SPMD closure with one
//! [`Hmpi`] handle per rank (the per-process face of the runtime, created by
//! `HMPI_Init` in the paper). Group creation follows the paper's protocol:
//! it is "a collective operation and must be called by the parent and all
//! the processes, which are not members of any HMPI group"; the host
//! process solves the selection problem and distributes the result.

use crate::group::HmpiGroup;
use crate::mapping::{select_mapping, Mapping, MappingAlgorithm, SelectError, SelectionCtx};
use crate::spec::{GroupSpec, Recon};
use hetsim::trace::{TraceEvent, TraceKind};
use hetsim::{Cluster, NodeId, SimTime, SpeedEstimates, Topology};
use mpisim::{
    CollectiveAlgo, CollectiveKind, CollectivePolicy, Comm, MpiError, Process, RunReport, Universe,
    UniverseConfig,
};
use parking_lot::RwLock;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tag used on the control communicator for group-creation messages.
const TAG_GROUP_CREATE: i32 = 1_000_001;
/// Tag for fault-tolerant recon speed reports (rank -> host).
const TAG_RECON: i32 = 1_000_002;
/// Tag for fault-tolerant recon completion acks (host -> rank).
const TAG_RECON_ACK: i32 = 1_000_003;
/// Tag for group-rebuild READY messages (survivor -> host).
const TAG_REBUILD: i32 = 1_000_004;

/// How many times the host re-waits (with exponentially growing deadline)
/// for a recon report before declaring the rank dead.
const RECON_ATTEMPTS: u32 = 3;

/// Errors surfaced by the HMPI layer.
#[derive(Debug, Clone, PartialEq)]
pub enum HmpiError {
    /// The group-selection search failed.
    Select(SelectError),
    /// An underlying message-passing operation failed.
    Mpi(MpiError),
    /// The calling process is neither the host nor free, so it may not take
    /// part in `group_create`.
    NotEligible,
    /// `group_free` was called by a process that is not a member.
    NotMember,
    /// The coordinator aborted a collective group operation for a reason it
    /// could not transmit (e.g. its model factory failed during a rebuild).
    Aborted,
    /// A caller-supplied argument was unusable (e.g. a non-positive or
    /// non-finite benchmark volume passed to a recon).
    InvalidArgument(String),
}

impl fmt::Display for HmpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmpiError::Select(e) => write!(f, "selection failed: {e}"),
            HmpiError::Mpi(e) => write!(f, "MPI error: {e}"),
            HmpiError::NotEligible => write!(
                f,
                "group_create may only be called by the host and free processes"
            ),
            HmpiError::NotMember => write!(f, "calling process is not a member of the group"),
            HmpiError::Aborted => {
                write!(f, "the coordinator aborted the collective group operation")
            }
            HmpiError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for HmpiError {}

impl From<MpiError> for HmpiError {
    fn from(e: MpiError) -> Self {
        HmpiError::Mpi(e)
    }
}

impl From<SelectError> for HmpiError {
    fn from(e: SelectError) -> Self {
        HmpiError::Select(e)
    }
}

/// Result alias for HMPI operations.
pub type HmpiResult<T> = Result<T, HmpiError>;

/// A speed measurement or report that may safely enter the shared
/// [`SpeedEstimates`]: positive and finite. Anything else (`+inf` from a
/// zero or subnormal elapsed time, `NaN`, a garbage report from a
/// misbehaving rank) would poison every subsequent group selection.
fn usable_speed(s: f64) -> bool {
    s.is_finite() && s > 0.0
}

/// Validates a caller-supplied benchmark volume.
fn validate_volume(name: &str, v: f64) -> HmpiResult<()> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(HmpiError::InvalidArgument(format!(
            "{name} must be positive and finite, got {v}"
        )))
    }
}

/// Encodes a coordinator-side failure as a group-creation abort sentinel.
/// Real payloads start with a group id `>= 1`, so a leading `0` is
/// unambiguous.
fn encode_group_abort(e: &HmpiError) -> Vec<i64> {
    match e {
        HmpiError::Select(SelectError::NotEnoughProcesses {
            required,
            available,
        }) => vec![0, 0, *required as i64, *available as i64],
        HmpiError::Select(SelectError::ParentNotCandidate { world_rank }) => {
            vec![0, 1, *world_rank as i64, 0]
        }
        _ => vec![0, 2, 0, 0],
    }
}

/// Inverse of [`encode_group_abort`] on the participant side.
fn decode_group_abort(payload: &[i64]) -> HmpiError {
    match payload.get(1) {
        Some(0) => HmpiError::Select(SelectError::NotEnoughProcesses {
            required: payload.get(2).map_or(0, |&n| n as usize),
            available: payload.get(3).map_or(0, |&n| n as usize),
        }),
        Some(1) => HmpiError::Select(SelectError::ParentNotCandidate {
            world_rank: payload.get(2).map_or(0, |&n| n as usize),
        }),
        _ => HmpiError::Aborted,
    }
}

/// Typed configuration for an [`HmpiRuntime`], consolidating the former
/// `HmpiRuntime::with_*` builder pile (and, through the wrapped
/// [`UniverseConfig`], the `Universe::with_*` pile) into one value that is
/// handed to [`HmpiRuntime::with_config`] or [`HmpiRuntime::from_topology`].
///
/// ```
/// use hmpi::{HmpiRuntime, MappingAlgorithm, RuntimeConfig};
/// use hetsim::Cluster;
/// use std::sync::Arc;
///
/// let rt = HmpiRuntime::with_config(
///     Arc::new(Cluster::paper_lan_em3d()),
///     RuntimeConfig::new()
///         .mapping_algorithm(MappingAlgorithm::Exhaustive)
///         .tracing(true),
/// );
/// assert_eq!(rt.universe().size(), 9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RuntimeConfig {
    universe: UniverseConfig,
    mapping_algorithm: MappingAlgorithm,
}

impl RuntimeConfig {
    /// All defaults: one rank per node, automatic collective selection,
    /// the default group-selection algorithm, no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explicit rank placement (see [`UniverseConfig::placement`]).
    pub fn placement(mut self, placement: Vec<NodeId>) -> Self {
        self.universe = self.universe.placement(placement);
        self
    }

    /// Watchdog patience for the deadlock detector (see
    /// [`UniverseConfig::deadlock_timeout`]).
    pub fn deadlock_timeout(mut self, timeout: Duration) -> Self {
        self.universe = self.universe.deadlock_timeout(timeout);
        self
    }

    /// Collective-algorithm policy of the underlying universe (see
    /// [`UniverseConfig::collective_policy`]).
    pub fn collective_policy(mut self, policy: CollectivePolicy) -> Self {
        self.universe = self.universe.collective_policy(policy);
        self
    }

    /// Per-rank OS thread stack size (see [`UniverseConfig::stack_size`]).
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.universe = self.universe.stack_size(bytes);
        self
    }

    /// Eager/rendezvous protocol switchover (see
    /// [`UniverseConfig::eager_limit`]).
    pub fn eager_limit(mut self, bytes: usize) -> Self {
        self.universe = self.universe.eager_limit(bytes);
        self
    }

    /// Enables virtual-time tracing (see [`UniverseConfig::tracing`]).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.universe = self.universe.tracing(enabled);
        self
    }

    /// Default group-selection algorithm for [`Hmpi::group_create`] calls
    /// that do not pin one via [`crate::GroupSpec::algorithm`].
    pub fn mapping_algorithm(mut self, algo: MappingAlgorithm) -> Self {
        self.mapping_algorithm = algo;
        self
    }
}

/// Global (cross-rank) state of a running HMPI universe.
#[derive(Debug)]
struct HmpiShared {
    /// `free[world_rank]`: not currently a member of any HMPI group.
    free: RwLock<Vec<bool>>,
    next_group_id: AtomicU64,
}

/// The HMPI runtime: a simulated heterogeneous cluster plus the shared,
/// `HMPI_Recon`-refreshable speed estimates.
///
/// ```
/// use hetsim::{ClusterBuilder, Link, Protocol};
/// use hmpi::HmpiRuntime;
/// use perfmodel::ModelBuilder;
/// use std::sync::Arc;
///
/// let cluster = Arc::new(
///     ClusterBuilder::new()
///         .node("host", 50.0)
///         .node("fast", 200.0)
///         .node("slow", 10.0)
///         .all_to_all(Link::with_defaults(Protocol::Tcp))
///         .build(),
/// );
/// let runtime = HmpiRuntime::new(cluster);
/// let report = runtime.run(|h| {
///     h.recon(10.0).unwrap();
///     let model = ModelBuilder::new("two-tasks")
///         .processors(2)
///         .volumes(vec![10.0, 400.0])
///         .build()
///         .unwrap();
///     let group = h.group_create(&model).unwrap();
///     let members = group.members().to_vec();
///     if group.is_member() {
///         h.group_free(group).unwrap();
///     }
///     members
/// });
/// // The heavy abstract processor lands on the fast machine; the parent
/// // stays on the host.
/// assert_eq!(report.results[0], vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct HmpiRuntime {
    universe: Universe,
    estimates: SpeedEstimates,
    default_algo: MappingAlgorithm,
}

impl HmpiRuntime {
    /// A runtime with one process per cluster node and all defaults (the
    /// paper's standard configuration).
    pub fn new(cluster: Arc<Cluster>) -> Self {
        HmpiRuntime::with_config(cluster, RuntimeConfig::new())
    }

    /// A runtime configured by a [`RuntimeConfig`] — the one constructor
    /// every other entry point forwards to.
    pub fn with_config(cluster: Arc<Cluster>, config: RuntimeConfig) -> Self {
        let estimates = SpeedEstimates::from_base_speeds(&cluster);
        HmpiRuntime {
            universe: Universe::with_config(cluster, config.universe),
            estimates,
            default_algo: config.mapping_algorithm,
        }
    }

    /// A runtime over a [`hetsim::Topology`] (cluster plus rank placement,
    /// as produced by [`hetsim::TopologyBuilder::build`]). An explicit
    /// [`RuntimeConfig::placement`] overrides the topology's own.
    pub fn from_topology(topology: Topology, config: RuntimeConfig) -> Self {
        let universe = Universe::from_topology(topology, config.universe);
        let estimates = SpeedEstimates::from_base_speeds(universe.cluster());
        HmpiRuntime {
            universe,
            estimates,
            default_algo: config.mapping_algorithm,
        }
    }

    /// A runtime with explicit rank placement.
    #[deprecated(since = "0.9.0", note = "use HmpiRuntime::with_config(cluster, \
                                          RuntimeConfig::new().placement(placement))")]
    pub fn with_placement(cluster: Arc<Cluster>, placement: Vec<NodeId>) -> Self {
        HmpiRuntime::with_config(cluster, RuntimeConfig::new().placement(placement))
    }

    /// Overrides the default group-selection algorithm.
    #[deprecated(since = "0.9.0", note = "use RuntimeConfig::mapping_algorithm")]
    pub fn with_algorithm(mut self, algo: MappingAlgorithm) -> Self {
        self.default_algo = algo;
        self
    }

    /// Overrides the collective-algorithm policy of the underlying
    /// universe: `Auto` (the default) lets the engine pick the
    /// predicted-cheapest algorithm per call; `Fixed` pins one.
    #[deprecated(since = "0.9.0", note = "use RuntimeConfig::collective_policy")]
    pub fn with_collective_policy(mut self, policy: CollectivePolicy) -> Self {
        #[allow(deprecated)]
        {
            self.universe = self.universe.with_collective_policy(policy);
        }
        self
    }

    /// Enables virtual-time tracing on the underlying universe: runs record
    /// compute/send/recv spans plus HMPI-level recon and selection events,
    /// and [`RunReport::trace`] carries the finished trace.
    #[deprecated(since = "0.9.0", note = "use RuntimeConfig::tracing")]
    pub fn with_tracing(mut self) -> Self {
        #[allow(deprecated)]
        {
            self.universe = self.universe.with_tracing();
        }
        self
    }

    /// The shared speed estimates (initially the cluster's base speeds;
    /// refreshed by [`Hmpi::recon`]).
    pub fn estimates(&self) -> &SpeedEstimates {
        &self.estimates
    }

    /// The underlying universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Runs an SPMD closure on every rank, giving each its [`Hmpi`] handle.
    /// Corresponds to launching the application and having every process
    /// call `HMPI_Init`.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&Hmpi) -> R + Sync,
    {
        let n = self.universe.size();
        let shared = Arc::new(HmpiShared {
            free: RwLock::new(vec![true; n]),
            next_group_id: AtomicU64::new(1),
        });
        let estimates = self.estimates.clone();
        let algo = self.default_algo;
        self.universe.run(move |proc| {
            let world = proc.world();
            // The control communicator carries the group-creation protocol,
            // so it can never collide with application traffic on
            // HMPI_COMM_WORLD. It is created with the non-collective dup:
            // a collective dup's broadcast would abort init with
            // `NodeFailed` if any node crashed before every rank got
            // through it, and init must succeed on live ranks — failures
            // surface later as typed errors from actual operations.
            let control = world.dup_local(0);
            let hmpi = Hmpi {
                proc,
                world,
                control,
                estimates: estimates.clone(),
                shared: shared.clone(),
                memberships: Cell::new(0),
                default_algo: algo,
            };
            f(&hmpi)
        })
    }
}

/// A rank's handle to the HMPI runtime (what the paper's per-process
/// `HMPI_Init` sets up). Not `Send` — it belongs to its rank thread.
#[derive(Debug)]
pub struct Hmpi<'a> {
    proc: &'a Process,
    world: Comm,
    control: Comm,
    estimates: SpeedEstimates,
    shared: Arc<HmpiShared>,
    memberships: Cell<usize>,
    default_algo: MappingAlgorithm,
}

impl Hmpi<'_> {
    /// `HMPI_COMM_WORLD`: the predefined communication universe.
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// The underlying process handle.
    pub fn process(&self) -> &Process {
        self.proc
    }

    /// This process's rank in `HMPI_COMM_WORLD`.
    pub fn rank(&self) -> usize {
        self.world.rank()
    }

    /// Number of processes in the universe.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// `HMPI_Is_host`: the host is the process with world rank 0 (the mpC
    /// host-process notion).
    pub fn is_host(&self) -> bool {
        self.world.rank() == 0
    }

    /// `HMPI_Is_free`: not the host and not currently a member of any HMPI
    /// group.
    pub fn is_free(&self) -> bool {
        !self.is_host() && self.memberships.get() == 0
    }

    /// The cluster node hosting this rank.
    pub fn node(&self) -> NodeId {
        self.proc.node()
    }

    /// Current virtual time on this rank.
    pub fn now(&self) -> SimTime {
        self.proc.clock().now()
    }

    /// Performs `units` benchmark units of computation (advances virtual
    /// time by `units / true_speed(node, now)`).
    ///
    /// # Panics
    /// Panics if this rank's node has fail-stopped; fault-aware programs use
    /// [`Hmpi::try_compute`].
    pub fn compute(&self, units: f64) {
        self.proc.compute(units);
    }

    /// Failure-aware computation: if this rank's node fail-stops before the
    /// work completes, the failure is published to the runtime and
    /// `HmpiError::Mpi(MpiError::NodeFailed)` (own world rank) is returned —
    /// the caller should unwind into its recovery path.
    pub fn try_compute(&self, units: f64) -> HmpiResult<()> {
        Ok(self.proc.try_compute(units)?)
    }

    /// World ranks the runtime still believes alive: neither observed
    /// fail-stopped or exited by the failure detector, nor marked
    /// unavailable in the speed estimates by a recon.
    pub fn alive_world_ranks(&self) -> Vec<usize> {
        (0..self.size())
            .filter(|&r| {
                self.proc.rank_alive(r) && self.estimates.is_available(self.proc.node_of(r))
            })
            .collect()
    }

    /// The runtime's current speed estimates.
    pub fn estimates(&self) -> &SpeedEstimates {
        &self.estimates
    }

    /// `HMPI_Recon`: every process runs a benchmark of `units` benchmark
    /// units in parallel; the elapsed virtual times refresh the shared speed
    /// estimates. Collective over `HMPI_COMM_WORLD`.
    ///
    /// On a cluster with a fault plan this takes the fault-tolerant
    /// point-to-point protocol (doubling as the runtime's failure
    /// detector); on a fault-free cluster it takes the classic collective
    /// path. Equivalent to `recon_opts(Recon::new(units))`; see
    /// [`Hmpi::recon_opts`] for the full option set.
    ///
    /// # Errors
    /// As [`Hmpi::recon_opts`].
    pub fn recon(&self, units: f64) -> HmpiResult<()> {
        self.recon_opts(Recon::new(units))
    }

    /// `HMPI_Recon` with the full option set, gathered in a [`Recon`]
    /// builder: a custom nominal/work split, a caller-supplied benchmark
    /// body, and an explicit choice of protocol. Collective over
    /// `HMPI_COMM_WORLD` (on the fault-tolerant path: over the host and
    /// every live process).
    ///
    /// On the fault-tolerant path, instead of an allgather (which a single
    /// dead rank would abort), every process reports its measured speed to
    /// the host point-to-point; the host collects the reports with
    /// virtual-time deadlines, retrying up to `RECON_ATTEMPTS` (3) times
    /// with exponential backoff so a transiently slowed node
    /// (`FaultEvent::NodeSlowdown`) gets time to answer. A rank that stays
    /// silent — or whose death the failure detector has already observed —
    /// has its node marked unavailable in the [`SpeedEstimates`], excluding
    /// it from all future group selections. Speeds of live nodes are
    /// refreshed; dead nodes keep their last estimate but are never planned
    /// with again. The host is assumed to survive (the paper's host process
    /// anchors the whole runtime; its failure is unrecoverable).
    ///
    /// # Errors
    /// [`HmpiError::InvalidArgument`] for a non-positive or non-finite
    /// benchmark volume (checked before any computation or communication,
    /// so every rank fails consistently); transport errors from the
    /// internal allgather (collective path); on the fault-tolerant path,
    /// `HmpiError::Mpi(MpiError::NodeFailed)` if the caller's node crashes
    /// during the benchmark, and on non-host ranks transport errors if the
    /// host dies.
    pub fn recon_opts<F>(&self, opts: Recon<F>) -> HmpiResult<()>
    where
        F: FnOnce(&Self),
    {
        validate_volume("nominal_units", opts.nominal_units)?;
        let work = opts.work_units.unwrap_or(opts.nominal_units);
        validate_volume("work_units", work)?;
        let ft = opts
            .fault_tolerant
            .unwrap_or_else(|| !self.proc.cluster().faults().is_empty());
        match (ft, opts.bench) {
            (true, Some(b)) => self.recon_p2p(opts.nominal_units, work, |h| {
                b(h);
                Ok(())
            }),
            (true, None) => self.recon_p2p(opts.nominal_units, work, |h| h.try_compute(work)),
            (false, Some(b)) => self.recon_collective(opts.nominal_units, b),
            (false, None) => self.recon_collective(opts.nominal_units, |h| h.compute(work)),
        }
    }

    /// Fault-tolerant `HMPI_Recon`, doubling as the failure detector.
    ///
    /// Instead of an allgather (which a single dead rank would abort), every
    /// process reports its measured speed to the host point-to-point; the
    /// host collects the reports with virtual-time deadlines, retrying up to
    /// `RECON_ATTEMPTS` (3) times with exponential backoff so a transiently
    /// slowed node (`FaultEvent::NodeSlowdown`) gets time to answer. A rank
    /// that stays silent — or whose death the failure detector has already
    /// observed — has its node marked unavailable in the [`SpeedEstimates`],
    /// excluding it from all future group selections. Speeds of live nodes
    /// are refreshed; dead nodes keep their last estimate but are never
    /// planned with again.
    ///
    /// Collective over the host and every *live* process. The host is
    /// assumed to survive (the paper's host process is the anchor of the
    /// whole runtime; its failure is unrecoverable).
    ///
    /// Reached via [`Hmpi::recon_opts`] with [`Recon::fault_tolerant`]
    /// (or automatically on clusters with a non-empty fault plan).
    ///
    /// The fault-tolerant point-to-point recon protocol (see
    /// [`Hmpi::recon_opts`]). `work_units` sizes the host's per-rank
    /// deadlines; `bench` performs the actual benchmark on the calling
    /// rank. Volumes are pre-validated by the caller.
    fn recon_p2p(
        &self,
        nominal_units: f64,
        work_units: f64,
        bench: impl FnOnce(&Self) -> HmpiResult<()>,
    ) -> HmpiResult<()> {
        let t0 = self.now();
        bench(self)?;
        let elapsed = (self.now() - t0).as_secs();
        let my_speed = self.derive_speed(nominal_units, elapsed);

        if !self.is_host() {
            self.control.send(&[my_speed], 0, TAG_RECON)?;
            // Wait (unbounded) for the host's ack that the refresh landed;
            // aborts with an error if the host dies.
            let (ack, _) = self.control.recv::<i64>(0, TAG_RECON_ACK)?;
            self.trace_span(
                TraceKind::Recon,
                "recon_ft",
                t0,
                Some(format!("generation={}", ack.first().copied().unwrap_or(0))),
            );
            return Ok(());
        }

        let cluster = self.proc.cluster().clone();
        let mut speeds = self.estimates.snapshot();
        speeds[self.node().index()] = my_speed;
        let mut responded = vec![false; self.size()];
        let mut missing = Vec::new();
        for (r, responded_r) in responded.iter_mut().enumerate().skip(1) {
            let node = self.proc.node_of(r);
            if !self.estimates.is_available(node) {
                continue; // declared dead by an earlier recon
            }
            // Size the deadline from the *true* delivered speed (what the
            // benchmark will actually experience), so an active slowdown
            // cannot masquerade as a death.
            let true_speed = cluster.speed_at(node, self.now());
            if true_speed <= 0.0 {
                // The node has crashed by the host's current virtual time.
                self.estimates.mark_unavailable(node);
                continue;
            }
            let mut timeout = SimTime::from_secs(2.0 * work_units / true_speed + 1.0);
            let mut report = None;
            for _ in 0..RECON_ATTEMPTS {
                match self.control.recv_timeout::<f64>(r, TAG_RECON, timeout) {
                    Ok((v, _)) => {
                        report = Some(v[0]);
                        break;
                    }
                    Err(MpiError::Timeout) => timeout = timeout + timeout,
                    Err(_) => break, // observed dead: no point retrying
                }
            }
            match report {
                // A live rank whose report is unusable (it should have
                // guarded the division itself, but the host cannot trust
                // that) keeps its previous estimate — the snapshot value
                // already in `speeds` — and still gets its ack.
                Some(s) => {
                    if usable_speed(s) {
                        speeds[node.index()] = s;
                    }
                    *responded_r = true;
                }
                None => missing.push((r, node)),
            }
        }
        // Late-report sweep: a rank that missed every per-rank deadline may
        // still be live — its report merely landed after the host gave up
        // (deadlines are sized from delivered speeds and can run short
        // under contention). Condemning it without an ack would strand the
        // rank in its unbounded ack wait and turn mere slowness into a real
        // deadlock at the next collective, so probe for a queued report
        // before declaring anyone dead. The probe is non-blocking: a rank
        // that truly crashed has nothing queued and stays condemned.
        for (r, node) in missing {
            if self.control.iprobe(Some(r), Some(TAG_RECON))?.is_some() {
                let (v, _) = self.control.recv::<f64>(r, TAG_RECON)?;
                if v.first().copied().is_some_and(usable_speed) {
                    speeds[node.index()] = v[0];
                }
                responded[r] = true;
            } else {
                self.estimates.mark_unavailable(node);
            }
        }
        self.estimates.refresh_available(speeds, self.now());
        let generation = self.estimates.generation() as i64;
        for (r, &ok) in responded.iter().enumerate() {
            if ok {
                // A rank that died right after reporting makes this send
                // fail; it no longer needs the ack, so ignore the error.
                let _ = self.control.send(&[generation], r, TAG_RECON_ACK);
            }
        }
        self.trace_span(
            TraceKind::Recon,
            "recon_ft",
            t0,
            Some(format!("generation={generation}")),
        );
        Ok(())
    }

    /// The classic collective recon path (see [`Hmpi::recon_opts`]). The
    /// nominal volume is pre-validated by the caller.
    fn recon_collective(&self, nominal_units: f64, bench: impl FnOnce(&Self)) -> HmpiResult<()> {
        let t0 = self.now();
        bench(self);
        let elapsed = (self.now() - t0).as_secs();
        let my_speed = self.derive_speed(nominal_units, elapsed);
        let all = self.world.allgather(&[my_speed])?;
        // Synchronise before refreshing so every rank sees the update.
        self.world.barrier()?;
        if self.is_host() {
            let mut per_node = self.estimates.snapshot();
            for (rank, speeds) in all.iter().enumerate() {
                // An unusable gathered value (a rank that skipped its own
                // guard) keeps that node's previous estimate rather than
                // poisoning the shared state with `+inf`/`NaN`.
                if speeds.first().copied().is_some_and(usable_speed) {
                    per_node[self.proc.node_of(rank).index()] = speeds[0];
                }
            }
            self.estimates.refresh(per_node, self.now());
        }
        self.world.barrier()?;
        self.trace_span(
            TraceKind::Recon,
            "recon",
            t0,
            Some(format!("generation={}", self.estimates.generation())),
        );
        Ok(())
    }

    /// Speed measured by a benchmark run, guarded against the zero/subnormal
    /// `elapsed` that would overflow the division to `+inf`: an unusable
    /// measurement keeps the node's previous estimate ("a zero-cost
    /// benchmark measures nothing").
    fn derive_speed(&self, nominal_units: f64, elapsed: f64) -> f64 {
        let s = nominal_units / elapsed;
        if elapsed > 0.0 && usable_speed(s) {
            s
        } else {
            self.estimates.speed(self.node())
        }
    }

    /// Records a span `[start, now]` into the universe's tracer, when
    /// tracing is on. One `Option` check when it is not.
    fn trace_span(
        &self,
        kind: TraceKind,
        name: &'static str,
        start: SimTime,
        info: Option<String>,
    ) {
        if let Some(tracer) = self.proc.tracer() {
            let mut ev = TraceEvent::new(self.rank(), kind, name, start);
            ev.dur = self.now() - start;
            ev.info = info;
            tracer.record(ev);
        }
    }

    fn selection_ctx(&self) -> SelectionCtx<'_> {
        self.selection_ctx_for(0)
    }

    fn selection_ctx_for(&self, parent_world: usize) -> SelectionCtx<'_> {
        let free = self.shared.free.read();
        let mut candidates: Vec<usize> = vec![parent_world];
        // Free ranks that are also believed alive: ranks observed
        // fail-stopped by the failure detector or marked unavailable by a
        // recon never enter the selection search, so new groups route around
        // failures.
        candidates.extend((0..self.size()).filter(|&r| {
            r != parent_world
                && free[r]
                && !self.proc.rank_failed(r)
                && self.estimates.is_available(self.proc.node_of(r))
        }));
        SelectionCtx {
            cluster: self.proc.cluster(),
            placement: self.placement(),
            estimates: &self.estimates,
            candidates,
            pinned_parent: Some(parent_world),
        }
    }

    fn placement(&self) -> &[NodeId] {
        // Reconstruct placement from the process: node_of is O(1) per rank.
        // The universe placement is immutable, so caching is unnecessary.
        self.proc.placement()
    }

    /// `HMPI_Timeof`: predicts the execution time of the algorithm described
    /// by `model` on the best group the runtime could currently select,
    /// without executing it. Local operation.
    ///
    /// # Errors
    /// [`HmpiError::Select`] if the model needs more processes than are
    /// available.
    pub fn timeof(&self, model: &dyn perfmodel::PerformanceModel) -> HmpiResult<f64> {
        Ok(self.timeof_mapping(model)?.predicted)
    }

    /// Like [`Hmpi::timeof`] but also reports the mapping the prediction is
    /// for.
    ///
    /// # Errors
    /// As [`Hmpi::timeof`].
    pub fn timeof_mapping(
        &self,
        model: &dyn perfmodel::PerformanceModel,
    ) -> HmpiResult<Mapping> {
        let ctx = self.selection_ctx();
        Ok(select_mapping(self.default_algo, model, &ctx)?)
    }

    /// `HMPI_Timeof` for the collective engine: the algorithm the engine
    /// would select for a `kind` collective of `elems` elements of
    /// `elem_bytes` bytes over `HMPI_COMM_WORLD`, plus its predicted
    /// virtual time — without executing anything. Local operation.
    ///
    /// The prediction replays the exact communication schedule the engine
    /// would run against the cluster's link table, so it carries the same
    /// accuracy contract as the engine itself (see `mpisim::engine`).
    ///
    /// # Errors
    /// [`HmpiError::Mpi`] wrapping `MpiError::InvalidRank` if `root` is
    /// outside `HMPI_COMM_WORLD`.
    pub fn timeof_collective(
        &self,
        kind: CollectiveKind,
        root: usize,
        elems: usize,
        elem_bytes: usize,
    ) -> HmpiResult<(CollectiveAlgo, f64)> {
        Ok(self.world.predict_collective(kind, root, elems, elem_bytes)?)
    }

    /// Chooses among algorithm variants by predicted execution time — the
    /// paper's motivation for `HMPI_Timeof`: "write such a parallel
    /// application that can follow different parallel algorithms to solve
    /// the same problem, making choice at runtime depending on the
    /// particular executing network and its actual performance."
    ///
    /// Returns `(index, predicted_time)` of the fastest variant, or `None`
    /// if the iterator is empty or no variant is feasible. Local operation.
    pub fn choose_best<'m>(
        &self,
        variants: impl IntoIterator<Item = &'m dyn perfmodel::PerformanceModel>,
    ) -> Option<(usize, f64)> {
        self.timeof_sweep(variants).unwrap_or(None)
    }

    /// Like [`Hmpi::choose_best`] but does not swallow failures: infeasible
    /// or broken variants are still skipped while any variant succeeds, but
    /// if *every* variant fails the first error is returned instead of a
    /// silent `None` — an always-failing model can't masquerade as an empty
    /// sweep. `Ok(None)` means the iterator was empty.
    ///
    /// # Errors
    /// The first `timeof` error, when no variant evaluates successfully.
    pub fn timeof_sweep<'m>(
        &self,
        variants: impl IntoIterator<Item = &'m dyn perfmodel::PerformanceModel>,
    ) -> HmpiResult<Option<(usize, f64)>> {
        let mut best: Option<(usize, f64)> = None;
        let mut first_err: Option<HmpiError> = None;
        let mut any_ok = false;
        for (i, model) in variants.into_iter().enumerate() {
            match self.timeof(model) {
                Ok(t) => {
                    any_ok = true;
                    if best.is_none_or(|(_, bt)| t < bt) {
                        best = Some((i, t));
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match (any_ok, first_err) {
            (false, Some(e)) => Err(e),
            _ => Ok(best),
        }
    }

    /// `HMPI_Group_create`: collectively creates a group of processes that
    /// executes the modelled algorithm faster than any other group. Must be
    /// called by the parent (the host, unless [`GroupSpec::placement`] says
    /// otherwise) and by every free process.
    ///
    /// Takes anything convertible into a [`GroupSpec`]: a plain model
    /// reference for the all-defaults case (`h.group_create(&model)`), or a
    /// builder chain for the selection algorithm and parent placement
    /// (`h.group_create(GroupSpec::new(&model).algorithm(a).placement(p))`).
    /// A non-host parent pins the model's `parent` processor to that rank —
    /// the paper's general form where "every newly created group has
    /// exactly one process shared with already existing groups".
    ///
    /// The parent solves the selection problem against the current speed
    /// estimates and distributes `(group id, context, member list)` to every
    /// participant; selected processes construct the group communicator,
    /// unselected ones receive a non-member handle and stay free.
    ///
    /// Concurrent creations by *different* parents are not serialised by the
    /// runtime; the program must order them (as the paper's collective
    /// calling convention implies).
    ///
    /// # Errors
    /// [`HmpiError::NotEligible`] if the caller is neither the parent nor
    /// free; [`HmpiError::InvalidArgument`] if the spec's placement rank is
    /// outside the world; [`HmpiError::Select`] on infeasible models;
    /// transport errors otherwise.
    pub fn group_create<'m>(&self, spec: impl Into<GroupSpec<'m>>) -> HmpiResult<HmpiGroup> {
        self.group_create_spec(spec.into())
    }

    /// The one group-creation implementation every public entry point
    /// forwards to.
    fn group_create_spec(&self, spec: GroupSpec<'_>) -> HmpiResult<HmpiGroup> {
        let GroupSpec {
            model,
            algorithm,
            parent_world,
        } = spec;
        if parent_world >= self.size() {
            return Err(HmpiError::InvalidArgument(format!(
                "group parent rank {parent_world} outside world 0..{}",
                self.size()
            )));
        }
        let algo = algorithm.unwrap_or(self.default_algo);
        let me = self.rank();
        let i_am_parent = me == parent_world;
        // Eligibility is judged from rank-local state: the coordinator may
        // already have flipped this rank's shared flag for the in-flight
        // creation before the rank reaches this call.
        if !i_am_parent && self.memberships.get() > 0 {
            return Err(HmpiError::NotEligible);
        }

        let (group_id, members, predicted, ctx_id) = if i_am_parent {
            let sel_ctx = self.selection_ctx_for(parent_world);
            let sel_start = self.now();
            let participants = sel_ctx.candidates.clone();
            let mapping = match select_mapping(algo, model, &sel_ctx) {
                Ok(m) => m,
                Err(e) => {
                    // An infeasible selection aborts the whole collective:
                    // tell the waiting participants before failing, or they
                    // would block on a payload that never comes.
                    let err: HmpiError = e.into();
                    let sentinel = encode_group_abort(&err);
                    for &r in &participants {
                        if r != me {
                            let _ = self.control.send(&sentinel, r, TAG_GROUP_CREATE);
                        }
                    }
                    return Err(err);
                }
            };
            self.trace_span(
                TraceKind::Selection,
                "group_create",
                sel_start,
                Some(format!(
                    "algo={:?} candidates={} evals={} probes={} predicted={:.6e}",
                    algo,
                    participants.len(),
                    mapping.stats.evals,
                    mapping.stats.probes,
                    mapping.predicted
                )),
            );
            // The host marks the selected members busy immediately, so a
            // subsequent group_create on the host cannot re-select a member
            // that has not yet processed its payload.
            {
                let mut free = self.shared.free.write();
                for &w in &mapping.assignment {
                    free[w] = false;
                }
            }
            let group_id = self.shared.next_group_id.fetch_add(1, Ordering::Relaxed);
            let ctx_id = self.control.alloc_ctx();

            let mut payload: Vec<i64> = Vec::with_capacity(3 + mapping.assignment.len());
            payload.push(group_id as i64);
            payload.push(ctx_id as i64);
            payload.push(mapping.predicted.to_bits() as i64);
            payload.extend(mapping.assignment.iter().map(|&w| w as i64));
            for &r in &participants {
                if r != me {
                    self.control.send(&payload, r, TAG_GROUP_CREATE)?;
                }
            }
            (group_id, mapping.assignment, mapping.predicted, ctx_id)
        } else {
            let (payload, _) = self.control.recv::<i64>(parent_world, TAG_GROUP_CREATE)?;
            if payload[0] == 0 {
                return Err(decode_group_abort(&payload));
            }
            let group_id = payload[0] as u64;
            let ctx_id = payload[1] as u64;
            let predicted = f64::from_bits(payload[2] as u64);
            let members: Vec<usize> = payload[3..].iter().map(|&w| w as usize).collect();
            (group_id, members, predicted, ctx_id)
        };

        let group = mpisim::Group::from_world_ranks(members.clone())?;
        let comm = self.control.subset_with_ctx(&group, ctx_id)?;

        if comm.is_some() {
            self.memberships.set(self.memberships.get() + 1);
        }
        let _ = me;

        Ok(HmpiGroup {
            id: group_id,
            members,
            comm,
            parent_abs: model.parent(),
            predicted,
        })
    }

    /// Shrink recovery: collectively rebuilds a group whose members started
    /// failing, on the survivors only.
    ///
    /// The old handle is consumed. Every *surviving* member (including the
    /// host, which must be the group's parent-side anchor) calls this after
    /// unwinding from a failed operation. Because only the host learns who
    /// survived, the performance model of the remaining work is supplied as
    /// a *factory*: the host calls `model_for(&survivors)` (world ranks,
    /// host first) once the roll call is complete and selects against the
    /// model it returns; the other survivors' factories are never invoked —
    /// they learn the outcome from the payload. The protocol:
    ///
    /// 1. each survivor announces itself to the host (`TAG_REBUILD`);
    /// 2. the host waits a bounded virtual-time window per old member, sized
    ///    from the old group's predicted execution time (a survivor's clock
    ///    cannot lag the host's by more than the algorithm's span); members
    ///    that stay silent or are already known dead have their nodes marked
    ///    unavailable in the [`SpeedEstimates`];
    /// 3. the host re-runs the selection problem restricted to the surviving
    ///    members and distributes the result exactly as `group_create` does.
    ///
    /// Survivors the new selection leaves out become free again. A member
    /// that dies *during* the rebuild simply never joins the new group's
    /// communicator; the next failed operation on the new group triggers
    /// another rebuild — recovery converges by iteration.
    ///
    /// # Errors
    /// [`HmpiError::NotMember`] if the caller was not a member of the old
    /// group; [`HmpiError::Select`] if the model no longer fits the
    /// survivors (or the factory itself failed — non-host survivors then
    /// see `SelectError::NotEnoughProcesses`); transport errors if the host
    /// dies mid-rebuild (host failure is unrecoverable).
    pub fn rebuild_group<M, F>(&self, group: HmpiGroup, model_for: F) -> HmpiResult<HmpiGroup>
    where
        M: perfmodel::PerformanceModel,
        F: FnOnce(&[usize]) -> HmpiResult<M>,
    {
        let me = self.rank();
        let old_id = group.id();
        let old_members = group.members().to_vec();
        let old_predicted = group.predicted_time();
        if !group.is_member() {
            return Err(HmpiError::NotMember);
        }
        // Consume the old handle: release its communicator and membership.
        self.memberships.set(self.memberships.get() - 1);
        drop(group);

        let (group_id, members, predicted, ctx_id, parent_abs) = if self.is_host() {
            let now = self.now();
            let cluster = self.proc.cluster().clone();
            // No live survivor can lag the host by more than the span of the
            // algorithm the group was executing.
            let window = SimTime::from_secs(2.0 * old_predicted.max(0.0) + 1.0);
            let mut survivors = vec![me];
            for &w in &old_members {
                if w == me {
                    continue;
                }
                let node = self.proc.node_of(w);
                let known_dead =
                    !self.proc.rank_alive(w) || cluster.speed_at(node, now) <= 0.0;
                let announced = !known_dead
                    && self.control.recv_timeout::<i64>(w, TAG_REBUILD, window).is_ok_and(
                        |(ready, _)| ready.first() == Some(&(old_id as i64)),
                    );
                if announced {
                    survivors.push(w);
                } else {
                    self.estimates.mark_unavailable(node);
                }
            }
            // Every old member's slot is released before re-selection; the
            // survivors the new mapping picks are re-marked busy below, dead
            // ones are fenced off by their unavailable nodes.
            {
                let mut free = self.shared.free.write();
                for &w in &old_members {
                    free[w] = true;
                }
            }
            // With the roll call complete, build the model for the shrunk
            // problem and re-run the selection on the survivors.
            let abort = |e: HmpiError| {
                // Tell the waiting survivors the rebuild is off before
                // failing, or they would block forever.
                let sentinel = encode_group_abort(&e);
                for &w in &survivors {
                    if w != me {
                        let _ = self.control.send(&sentinel, w, TAG_GROUP_CREATE);
                    }
                }
                Err(e)
            };
            let model = match model_for(&survivors) {
                Ok(m) => m,
                Err(e) => return abort(e),
            };
            let sel_ctx = SelectionCtx {
                cluster: self.proc.cluster(),
                placement: self.placement(),
                estimates: &self.estimates,
                candidates: survivors.clone(),
                pinned_parent: Some(me),
            };
            let sel_start = self.now();
            let mapping = match select_mapping(self.default_algo, &model, &sel_ctx) {
                Ok(m) => m,
                Err(e) => return abort(e.into()),
            };
            self.trace_span(
                TraceKind::Selection,
                "rebuild_group",
                sel_start,
                Some(format!(
                    "survivors={} evals={} probes={} predicted={:.6e}",
                    survivors.len(),
                    mapping.stats.evals,
                    mapping.stats.probes,
                    mapping.predicted
                )),
            );
            {
                let mut free = self.shared.free.write();
                for &w in &mapping.assignment {
                    free[w] = false;
                }
            }
            let group_id = self.shared.next_group_id.fetch_add(1, Ordering::Relaxed);
            let ctx_id = self.control.alloc_ctx();
            let mut payload: Vec<i64> = Vec::with_capacity(4 + mapping.assignment.len());
            payload.push(group_id as i64);
            payload.push(ctx_id as i64);
            payload.push(mapping.predicted.to_bits() as i64);
            payload.push(model.parent() as i64);
            payload.extend(mapping.assignment.iter().map(|&w| w as i64));
            for &w in &survivors {
                if w != me {
                    // A survivor that dies here misses the payload; it will
                    // be caught by the next rebuild round.
                    let _ = self.control.send(&payload, w, TAG_GROUP_CREATE);
                }
            }
            (
                group_id,
                mapping.assignment,
                mapping.predicted,
                ctx_id,
                model.parent(),
            )
        } else {
            self.control.send(&[old_id as i64], 0, TAG_REBUILD)?;
            let (payload, _) = self.control.recv::<i64>(0, TAG_GROUP_CREATE)?;
            if payload[0] == 0 {
                // The host could not fit a model on the survivors.
                return Err(decode_group_abort(&payload));
            }
            let group_id = payload[0] as u64;
            let ctx_id = payload[1] as u64;
            let predicted = f64::from_bits(payload[2] as u64);
            let parent_abs = payload[3] as usize;
            let members: Vec<usize> = payload[4..].iter().map(|&w| w as usize).collect();
            (group_id, members, predicted, ctx_id, parent_abs)
        };

        let mpi_group = mpisim::Group::from_world_ranks(members.clone())?;
        let comm = self.control.subset_with_ctx(&mpi_group, ctx_id)?;
        if comm.is_some() {
            self.memberships.set(self.memberships.get() + 1);
        }
        Ok(HmpiGroup {
            id: group_id,
            members,
            comm,
            parent_abs,
            predicted,
        })
    }

    /// `HMPI_Group_free`: collectively releases a group. Must be called by
    /// all members; member processes become free again. Calling it with a
    /// non-member handle is a no-op for the process state and returns
    /// [`HmpiError::NotMember`].
    ///
    /// # Errors
    /// [`HmpiError::NotMember`] when the caller was not selected into the
    /// group; transport errors from the closing barrier.
    pub fn group_free(&self, group: HmpiGroup) -> HmpiResult<()> {
        let comm = match group.comm {
            Some(c) => c,
            None => return Err(HmpiError::NotMember),
        };
        // Two-phase release. The free flags must flip at a moment the host
        // can reason about: (a) a rank must not look free while the program
        // may still route around it (the host could select it into a new
        // group it will never join), and (b) once any member has finished
        // group_free, every member must look free (a create immediately
        // after a collective free must see them all).
        //
        // Both hold because the parent (host) is a member of every group:
        // no member passes the first barrier before the host itself enters
        // group_free, so flags cannot flip while the host is elsewhere; and
        // every member flips its flag before its second-barrier message, so
        // when anyone exits the second barrier all flags are set.
        comm.barrier()?;
        self.memberships.set(self.memberships.get() - 1);
        self.shared.free.write()[self.rank()] = true;
        comm.barrier()?;
        Ok(())
    }

    /// `HMPI_Finalize`: a final synchronisation over `HMPI_COMM_WORLD`.
    ///
    /// # Errors
    /// Propagates transport errors from the barrier.
    pub fn finalize(&self) -> HmpiResult<()> {
        self.world.barrier()?;
        Ok(())
    }
}
