//! HMPI groups.
//!
//! An [`HmpiGroup`] is the handle `HMPI_Group_create` returns: the ordered
//! list of selected processes (ordered by the abstract processor they
//! implement, so group rank *r* runs abstract processor *r*), the MPI
//! communicator over them (`HMPI_Get_comm`), and the selection's predicted
//! execution time.

use mpisim::Comm;

/// A group of MPI processes selected by the HMPI runtime to execute one
/// parallel algorithm.
#[derive(Debug)]
pub struct HmpiGroup {
    pub(crate) id: u64,
    /// `members[abstract processor] = world rank`.
    pub(crate) members: Vec<usize>,
    /// The communicator over the members — `Some` on member processes,
    /// `None` on processes that took part in the creation but were not
    /// selected.
    pub(crate) comm: Option<Comm>,
    /// The abstract index of the parent processor.
    pub(crate) parent_abs: usize,
    /// Predicted execution time of the algorithm on this group, seconds.
    pub(crate) predicted: f64,
}

impl HmpiGroup {
    /// Unique id of the group within the runtime.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `HMPI_Is_member`: did the selection include the calling process?
    pub fn is_member(&self) -> bool {
        self.comm.is_some()
    }

    /// `HMPI_Group_rank`: the calling process's rank in the group (equal to
    /// the abstract processor index it implements), or `None` if not a
    /// member.
    pub fn rank(&self) -> Option<usize> {
        self.comm.as_ref().map(Comm::rank)
    }

    /// `HMPI_Group_size`: number of member processes.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// `HMPI_Get_comm`: the MPI communicator over the members. "Application
    /// programmers can use this communicator to call the standard MPI
    /// communication routines during the execution of the parallel
    /// algorithm."
    pub fn comm(&self) -> Option<&Comm> {
        self.comm.as_ref()
    }

    /// The selected world ranks, indexed by abstract processor.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Group rank of the parent process.
    pub fn parent_rank(&self) -> usize {
        self.parent_abs
    }

    /// World rank of the parent process.
    pub fn parent_world_rank(&self) -> usize {
        self.members[self.parent_abs]
    }

    /// The predicted execution time the selection was optimised for.
    pub fn predicted_time(&self) -> f64 {
        self.predicted
    }
}
