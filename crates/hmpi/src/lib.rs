//! # hmpi — Heterogeneous MPI (Lastovetsky & Reddy, IPPS 2003)
//!
//! The paper's contribution: "a small set of extensions to MPI aimed at
//! efficient parallel computing on heterogeneous networks of computers".
//! The application programmer describes a performance model of the
//! implemented algorithm (see the [`perfmodel`] crate); given that model,
//! the HMPI runtime "creates a group of processes executing the algorithm
//! faster than any other group of processes".
//!
//! API correspondence with the paper:
//!
//! | Paper                       | This crate                                   |
//! |-----------------------------|----------------------------------------------|
//! | `HMPI_Init` / `HMPI_Finalize` | [`HmpiRuntime::run`] wraps each rank; [`Hmpi::finalize`] |
//! | `HMPI_COMM_WORLD`           | [`Hmpi::world`]                              |
//! | `HMPI_Is_host`              | [`Hmpi::is_host`]                            |
//! | `HMPI_Is_free`              | [`Hmpi::is_free`]                            |
//! | `HMPI_Is_member`            | [`HmpiGroup::is_member`]                     |
//! | `HMPI_Recon`                | [`Hmpi::recon`] / [`Hmpi::recon_opts`] (options in [`Recon`]) |
//! | `HMPI_Timeof`               | [`Hmpi::timeof`] / [`Hmpi::timeof_mapping`] / [`Hmpi::timeof_collective`] |
//! | `HMPI_Group_create`         | [`Hmpi::group_create`] (options in [`GroupSpec`]) |
//! | `HMPI_Group_free`           | [`Hmpi::group_free`]                         |
//! | `HMPI_Group_rank` / `_size` | [`HmpiGroup::rank`] / [`HmpiGroup::size`]    |
//! | `HMPI_Get_comm`             | [`HmpiGroup::comm`]                          |
//!
//! Fault-tolerant extensions (beyond the paper; DESIGN.md §7):
//!
//! | Extension                   | This crate                                   |
//! |-----------------------------|----------------------------------------------|
//! | Recon as failure detector   | [`Hmpi::recon_opts`] with [`Recon::fault_tolerant`] (what [`Hmpi::recon`] dispatches to on a faulty cluster) |
//! | Group shrink recovery       | [`Hmpi::rebuild_group`]                      |
//! | Liveness helpers            | [`Hmpi::try_compute`], [`Hmpi::alive_world_ranks`] |
//! | Collective-engine timing    | [`Hmpi::timeof_collective`], [`RuntimeConfig::collective_policy`] |
//! | Recover-and-retry loop      | [`RecoveryPolicy::run`] (agreement + bounded rebuilds, DESIGN.md §12) |
//!
//! The group-selection problem — map each *abstract processor* of the model
//! onto a physical process so the predicted execution time is minimal — is
//! solved in [`mapping`] (exhaustive search for small models, greedy
//! load-balancing plus pairwise-swap local search in general, optional
//! simulated annealing), against the cost model assembled in [`estimate`]
//! from the current speed estimates (refreshed by `HMPI_Recon`) and the
//! cluster's link parameters. The searches are priced by the selection
//! [`engine`] — a compiled, allocation-free, incrementally-updatable
//! objective evaluator ([`engine::Evaluator`]); the pre-engine
//! interpreter path survives as [`mapping::select_mapping_naive`] for
//! verification and benchmarking.

#![warn(missing_docs)]

pub mod engine;
pub mod estimate;
pub mod group;
pub mod mapping;
pub mod recovery;
pub mod runtime;
pub mod spec;

pub use engine::Evaluator;
pub use estimate::{build_cost_model, predicted_time, EstimateError};
pub use group::HmpiGroup;
pub use mapping::{
    select_mapping, select_mapping_naive, Mapping, MappingAlgorithm, SearchStats, SelectError,
    SelectionCtx,
};
pub use mpisim::{CollectiveAlgo, CollectiveKind, CollectivePolicy};
pub use recovery::{Recovered, RecoveryError, RecoveryPolicy};
pub use runtime::{Hmpi, HmpiError, HmpiResult, HmpiRuntime, RuntimeConfig};
pub use spec::{DefaultBench, GroupSpec, Recon};
