//! The config-consolidation deprecated shims must be *observably
//! identical* to their [`RuntimeConfig`]/`UniverseConfig` replacements —
//! not just on a single compat case, but on random clusters, placements,
//! algorithms and policies. Equivalence is judged on everything a program
//! can see: per-rank results, selected members, predicted times (bitwise),
//! virtual makespans (bitwise) and trace shapes.
//!
//! (This file previously played the same role for the PR-4
//! `recon_*`/`group_create_*` shims; those completed their deprecation
//! cycle and were removed.)
#![allow(deprecated)]

use hetsim::{Cluster, NodeId};
use hmpi::{CollectiveAlgo, CollectivePolicy, HmpiRuntime, MappingAlgorithm, RuntimeConfig};
use mpisim::{Universe, UniverseConfig};
use perfmodel::ModelBuilder;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A random cluster big enough to host something but small enough that a
/// proptest case stays cheap. `Cluster::random` draws 1..=5 nodes.
fn arb_cluster(seed: u64) -> Arc<Cluster> {
    Arc::new(Cluster::random(seed, 5))
}

/// A deterministic placement over the cluster's nodes: a seeded rotation,
/// possibly with one node doubled up (slot counts permitting the paper's
/// one-process-per-node convention is the common case, so stay within it).
fn rotated_placement(cluster: &Cluster, seed: u64) -> Vec<NodeId> {
    let ids: Vec<NodeId> = cluster.node_ids().collect();
    let k = (seed as usize) % ids.len();
    ids[k..].iter().chain(&ids[..k]).copied().collect()
}

fn algo_strategy() -> BoxedStrategy<MappingAlgorithm> {
    prop_oneof![
        Just(MappingAlgorithm::Exhaustive),
        Just(MappingAlgorithm::Greedy),
        (1usize..4).prop_map(|max_rounds| MappingAlgorithm::GreedyRefined { max_rounds }),
        (0u64..1000, 10usize..50)
            .prop_map(|(seed, iters)| MappingAlgorithm::Annealing { seed, iters }),
    ]
    .boxed()
}

fn policy_strategy() -> BoxedStrategy<CollectivePolicy> {
    prop_oneof![
        Just(CollectivePolicy::Auto),
        Just(CollectivePolicy::FlatAuto),
        Just(CollectivePolicy::Fixed(CollectiveAlgo::Linear)),
        Just(CollectivePolicy::Fixed(CollectiveAlgo::Binomial)),
    ]
    .boxed()
}

/// Everything a rank can observe about a [`workload`] run: its node, the
/// group-create outcome (members + predicted time, or the error text) and
/// the allreduce result.
type Observation = (usize, Result<(Vec<usize>, u64), String>, Vec<i64>);

/// A workload that exercises compute, recon, selection and collectives, and
/// returns everything a rank can observe about it. Errors (e.g. a 1-node
/// random cluster rejecting a 2-processor model) are observations too —
/// both sides of an equivalence test must fail identically.
fn workload(h: &hmpi::Hmpi) -> Observation {
    h.recon(5.0).unwrap();
    let model = ModelBuilder::new("w")
        .processors(2)
        .volumes(vec![10.0, 300.0])
        .build()
        .unwrap();
    let group = match h.group_create(&model) {
        Ok(g) => {
            let obs = (g.members().to_vec(), g.predicted_time().to_bits());
            if g.is_member() {
                h.group_free(g).unwrap();
            }
            Ok(obs)
        }
        Err(e) => Err(format!("{e:?}")),
    };
    let summed = h
        .world()
        .allreduce_eq_i64(&[h.rank() as i64 + 1], mpisim::ReduceOp::Sum);
    (h.node().index(), group, summed.unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `HmpiRuntime::with_placement(c, p)` ==
    /// `HmpiRuntime::with_config(c, RuntimeConfig::new().placement(p))`:
    /// same node per rank, same observable run, same makespan (bitwise).
    #[test]
    fn with_placement_matches_config(cseed in 0u64..500, rot in 0u64..8) {
        let cluster = arb_cluster(cseed);
        let placement = rotated_placement(&cluster, rot);
        let old_rt = HmpiRuntime::with_placement(cluster.clone(), placement.clone());
        let new_rt = HmpiRuntime::with_config(
            cluster,
            RuntimeConfig::new().placement(placement),
        );
        let old = old_rt.run(workload);
        let new = new_rt.run(workload);
        prop_assert_eq!(&old.results, &new.results);
        prop_assert_eq!(old.makespan.as_secs().to_bits(), new.makespan.as_secs().to_bits());
    }

    /// `with_algorithm(a)` == `RuntimeConfig::mapping_algorithm(a)`: the
    /// default selection algorithm lands identically (members + predicted
    /// time bitwise).
    #[test]
    fn with_algorithm_matches_config(
        cseed in 0u64..500,
        mseed in 0u64..1000,
        algo in algo_strategy(),
    ) {
        let cluster = arb_cluster(cseed);
        let old_rt = HmpiRuntime::new(cluster.clone()).with_algorithm(algo);
        let new_rt = HmpiRuntime::with_config(
            cluster,
            RuntimeConfig::new().mapping_algorithm(algo),
        );
        let run = move |h: &hmpi::Hmpi| {
            let model = ModelBuilder::random(mseed, 5);
            match h.group_create(&model) {
                Ok(g) => {
                    let obs = (g.members().to_vec(), g.predicted_time().to_bits());
                    if g.is_member() {
                        h.group_free(g).unwrap();
                    }
                    Ok(obs)
                }
                Err(e) => Err(format!("{e:?}")),
            }
        };
        let old = old_rt.run(run);
        let new = new_rt.run(run);
        prop_assert_eq!(&old.results, &new.results);
    }

    /// `with_collective_policy(p)` == `RuntimeConfig::collective_policy(p)`:
    /// identical collective results and virtual makespans (bitwise), for
    /// every policy including the hierarchy-aware and flat-only selectors.
    #[test]
    fn with_collective_policy_matches_config(
        cseed in 0u64..500,
        policy in policy_strategy(),
    ) {
        let cluster = arb_cluster(cseed);
        let old_rt = HmpiRuntime::new(cluster.clone()).with_collective_policy(policy);
        let new_rt = HmpiRuntime::with_config(
            cluster,
            RuntimeConfig::new().collective_policy(policy),
        );
        // A pinned algorithm may be ineligible for one of the kinds (e.g.
        // binomial allgather): the error is the observation then, and both
        // runtimes must produce it identically.
        let run = |h: &hmpi::Hmpi| {
            let world = h.world();
            let mine = vec![h.rank() as f64 + 0.5; 64];
            let summed = world
                .allreduce_eq_f64(&mine, mpisim::ReduceOp::Sum)
                .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
                .map_err(|e| format!("{e:?}"));
            let all = world
                .allgather_eq(&[h.rank() as i64])
                .map_err(|e| format!("{e:?}"));
            (summed, all)
        };
        let old = old_rt.run(run);
        let new = new_rt.run(run);
        prop_assert_eq!(&old.results, &new.results);
        prop_assert_eq!(old.makespan.as_secs().to_bits(), new.makespan.as_secs().to_bits());
    }

    /// `with_tracing()` == `RuntimeConfig::tracing(true)`: both record a
    /// trace with identical event shape over the same deterministic run.
    #[test]
    fn with_tracing_matches_config(cseed in 0u64..500) {
        let cluster = arb_cluster(cseed);
        let old_rt = HmpiRuntime::new(cluster.clone()).with_tracing();
        let new_rt = HmpiRuntime::with_config(cluster, RuntimeConfig::new().tracing(true));
        let run = |h: &hmpi::Hmpi| {
            h.recon(2.0).unwrap();
            h.world().barrier().unwrap();
            h.rank()
        };
        let old = old_rt.run(run);
        let new = new_rt.run(run);
        let old_trace = old.trace.expect("with_tracing records a trace");
        let new_trace = new.trace.expect("tracing(true) records a trace");
        let shape = |t: &hetsim::trace::Trace| {
            t.events.iter().map(|e| (e.kind, e.rank)).collect::<Vec<_>>()
        };
        prop_assert_eq!(shape(&old_trace), shape(&new_trace));
    }

    /// The `Universe::with_*` pile == one `UniverseConfig`: chaining every
    /// deprecated builder produces the same observable universe as the
    /// consolidated config (per-rank results and makespan bitwise).
    #[test]
    fn universe_builder_pile_matches_config(
        cseed in 0u64..500,
        rot in 0u64..8,
        eager in 0usize..512,
    ) {
        let cluster = arb_cluster(cseed);
        let placement = rotated_placement(&cluster, rot);
        let old_u = Universe::with_placement(cluster.clone(), placement.clone())
            .with_deadlock_timeout(Duration::from_secs(30))
            .with_stack_size(1 << 21)
            .with_eager_limit(eager)
            .with_collective_policy(CollectivePolicy::Auto);
        let new_u = Universe::with_config(
            cluster,
            UniverseConfig::new()
                .placement(placement)
                .deadlock_timeout(Duration::from_secs(30))
                .stack_size(1 << 21)
                .eager_limit(eager)
                .collective_policy(CollectivePolicy::Auto),
        );
        let run = |p: &mpisim::Process| {
            let world = p.world();
            let n = world.size();
            let next = (world.rank() + 1) % n;
            let prev = (world.rank() + n - 1) % n;
            // A ring exchange big enough to cross the eager/rendezvous
            // switchover for small `eager` values.
            let payload = vec![world.rank() as i64; 128];
            let (got, _) = world
                .sendrecv::<i64, i64>(&payload, next, 7, prev, 7)
                .unwrap();
            (got[0], world.allgather_eq(&[p.node().index() as i64]).unwrap())
        };
        let old = old_u.run(run);
        let new = new_u.run(run);
        prop_assert_eq!(&old.results, &new.results);
        prop_assert_eq!(old.makespan.as_secs().to_bits(), new.makespan.as_secs().to_bits());
    }
}
