//! The PR-4 deprecated shims must be *observably identical* to their
//! `GroupSpec`/`Recon` replacements — not just on the single compat case
//! each shim's unit test pins, but on random clusters, models and
//! benchmark volumes. Equivalence is judged on everything a program can
//! see: selected members, predicted times (bitwise), error values,
//! speed-estimate snapshots and virtual makespans.
#![allow(deprecated)]

use hetsim::Cluster;
use hmpi::{GroupSpec, HmpiRuntime, MappingAlgorithm, Recon};
use perfmodel::ModelBuilder;
use proptest::prelude::*;
use std::sync::Arc;

/// A random cluster big enough to host something but small enough that a
/// proptest case stays cheap. `Cluster::random` draws 1..=5 nodes.
fn arb_cluster(seed: u64) -> Arc<Cluster> {
    Arc::new(Cluster::random(seed, 5))
}

fn algo_strategy() -> BoxedStrategy<MappingAlgorithm> {
    prop_oneof![
        Just(MappingAlgorithm::Exhaustive),
        Just(MappingAlgorithm::Greedy),
        (1usize..4).prop_map(|max_rounds| MappingAlgorithm::GreedyRefined { max_rounds }),
        (0u64..1000, 10usize..50)
            .prop_map(|(seed, iters)| MappingAlgorithm::Annealing { seed, iters }),
    ]
    .boxed()
}

/// What one group creation lets the program observe: the member list and
/// the predicted time (bitwise) on success, the typed error otherwise.
type GroupObs = Result<(Vec<usize>, u64, bool), String>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `group_create_with(algo, model)` ==
    /// `group_create(GroupSpec::new(model).algorithm(algo))`, per rank.
    #[test]
    fn group_create_with_matches_spec(
        cseed in 0u64..1000,
        mseed in 0u64..1000,
        algo in algo_strategy(),
    ) {
        let cluster = arb_cluster(cseed);
        let rt = HmpiRuntime::new(cluster);
        let report = rt.run(move |h| {
            let model = ModelBuilder::random(mseed, 5);
            let capture = |r: hmpi::HmpiResult<hmpi::HmpiGroup>| -> GroupObs {
                match r {
                    Ok(g) => {
                        let obs = (
                            g.members().to_vec(),
                            g.predicted_time().to_bits(),
                            g.is_member(),
                        );
                        if g.is_member() {
                            h.group_free(g).unwrap();
                        }
                        Ok(obs)
                    }
                    Err(e) => Err(format!("{e:?}")),
                }
            };
            let old = capture(h.group_create_with(algo, &model));
            let new = capture(h.group_create(GroupSpec::new(&model).algorithm(algo)));
            (old, new)
        });
        for (rank, (old, new)) in report.results.iter().enumerate() {
            prop_assert_eq!(old, new, "rank {} diverged", rank);
        }
    }

    /// `group_create_as(parent, algo, model)` ==
    /// `group_create(GroupSpec::new(model).algorithm(algo).placement(parent))`,
    /// including out-of-range parents (both must fail identically).
    #[test]
    fn group_create_as_matches_spec(
        cseed in 0u64..1000,
        mseed in 0u64..1000,
        parent_pick in 0usize..8,
        algo in algo_strategy(),
    ) {
        let cluster = arb_cluster(cseed);
        let rt = HmpiRuntime::new(cluster);
        let report = rt.run(move |h| {
            let model = ModelBuilder::random(mseed, 5);
            // Mostly in-range parents, sometimes past the world boundary.
            let parent = parent_pick % (h.world().size() + 1);
            let capture = |r: hmpi::HmpiResult<hmpi::HmpiGroup>| -> GroupObs {
                match r {
                    Ok(g) => {
                        let obs = (
                            g.members().to_vec(),
                            g.predicted_time().to_bits(),
                            g.is_member(),
                        );
                        if g.is_member() {
                            h.group_free(g).unwrap();
                        }
                        Ok(obs)
                    }
                    Err(e) => Err(format!("{e:?}")),
                }
            };
            let old = capture(h.group_create_as(parent, algo, &model));
            let new = capture(h.group_create(
                GroupSpec::new(&model).algorithm(algo).placement(parent),
            ));
            (old, new)
        });
        for (rank, (old, new)) in report.results.iter().enumerate() {
            prop_assert_eq!(old, new, "rank {} diverged", rank);
        }
    }

    /// The recon shims against `recon_opts`: the same typed result, the
    /// same speed estimates and one generation bump each, with shim and
    /// replacement executed back to back inside one runtime (the cluster
    /// has no load models, so true speeds are time-invariant and the two
    /// measurements must agree to float noise).
    #[test]
    fn recon_ft_matches_recon_opts(
        cseed in 0u64..1000,
        units in 1.0f64..50.0,
    ) {
        compare_recons(
            cseed,
            move |h| h.recon_ft(units),
            move |h| h.recon_opts(Recon::new(units).fault_tolerant(true)),
        )?;
    }

    #[test]
    fn recon_ft_scaled_matches_recon_opts(
        cseed in 0u64..1000,
        units in 1.0f64..50.0,
        work in 1.0f64..200.0,
    ) {
        compare_recons(
            cseed,
            move |h| h.recon_ft_scaled(units, work),
            move |h| {
                h.recon_opts(Recon::new(units).work_units(work).fault_tolerant(true))
            },
        )?;
    }

    #[test]
    fn recon_with_matches_recon_opts(
        cseed in 0u64..1000,
        units in 1.0f64..50.0,
        bench_units in 1.0f64..100.0,
    ) {
        compare_recons(
            cseed,
            move |h| h.recon_with(units, |h| h.compute(bench_units)),
            move |h| {
                h.recon_opts(
                    Recon::new(units)
                        .bench(move |h: &hmpi::Hmpi| h.compute(bench_units))
                        .fault_tolerant(false),
                )
            },
        )?;
    }
}

fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
}

/// Runs `old` then `new` back to back on one runtime over
/// `Cluster::random(cseed, 5)` and asserts they are observably identical:
/// same per-rank typed result, same estimate snapshot (to float noise —
/// the second call measures at a later virtual instant), and exactly one
/// generation bump each.
fn compare_recons(
    cseed: u64,
    old: impl Fn(&hmpi::Hmpi) -> hmpi::HmpiResult<()> + Send + Sync + 'static,
    new: impl Fn(&hmpi::Hmpi) -> hmpi::HmpiResult<()> + Send + Sync + 'static,
) -> Result<(), proptest::prelude::TestCaseError> {
    let rt = HmpiRuntime::new(arb_cluster(cseed));
    let report = rt.run(move |h| {
        let world = h.world();
        let r_old = old(h).map_err(|e| format!("{e:?}"));
        world.barrier().unwrap();
        let snap_old = h.estimates().snapshot();
        let gen_old = h.estimates().generation();
        let r_new = new(h).map_err(|e| format!("{e:?}"));
        world.barrier().unwrap();
        let snap_new = h.estimates().snapshot();
        let gen_new = h.estimates().generation();
        (r_old, r_new, snap_old, snap_new, gen_old, gen_new)
    });
    for (rank, (r_old, r_new, snap_old, snap_new, gen_old, gen_new)) in
        report.results.iter().enumerate()
    {
        prop_assert_eq!(r_old, r_new, "rank {} results diverged", rank);
        prop_assert_eq!(
            *gen_new,
            gen_old + 1,
            "rank {} saw {} generation bumps for the replacement",
            rank,
            gen_new - gen_old
        );
        prop_assert!(
            snap_old
                .iter()
                .zip(snap_new)
                .all(|(a, b)| close(*a, *b)),
            "rank {} estimates diverged: {:?} vs {:?}",
            rank,
            snap_old,
            snap_new
        );
    }
    Ok(())
}
