//! Stress tests: hammer the group lifecycle and recon machinery to shake
//! out protocol races the scenario tests might miss.

use hetsim::Cluster;
use hmpi::HmpiRuntime;
use mpisim::ReduceOp;
use perfmodel::ModelBuilder;
use std::sync::Arc;

fn paper_lan() -> Arc<Cluster> {
    Arc::new(Cluster::paper_lan_em3d())
}

#[test]
fn fifty_create_free_cycles() {
    let rt = HmpiRuntime::new(paper_lan());
    let report = rt.run(|h| {
        let model = ModelBuilder::new("cycle")
            .processors(5)
            .volumes(vec![10.0, 20.0, 30.0, 40.0, 50.0])
            .build()
            .unwrap();
        let mut memberships = 0usize;
        let mut last_id = 0;
        for _ in 0..50 {
            let g = h.group_create(&model).unwrap();
            assert!(g.id() > last_id, "group ids are strictly increasing");
            last_id = g.id();
            if let Some(comm) = g.comm() {
                memberships += 1;
                let s = comm.allreduce_one_i64(1, ReduceOp::Sum).unwrap();
                assert_eq!(s, 5);
            }
            if g.is_member() {
                h.group_free(g).unwrap();
            }
        }
        memberships
    });
    // The selection is deterministic, so the same 5 ranks are members every
    // round: 5 ranks saw 50 memberships, 4 saw none.
    let mut counts = report.results.clone();
    counts.sort_unstable();
    assert_eq!(&counts[..4], &[0, 0, 0, 0]);
    assert_eq!(&counts[4..], &[50, 50, 50, 50, 50]);
}

#[test]
fn alternating_group_sizes() {
    // Alternate between a wide group (all 9) and a narrow one (2) so the
    // free set flips between empty and nearly full every round.
    let rt = HmpiRuntime::new(paper_lan());
    rt.run(|h| {
        let wide = ModelBuilder::new("wide").processors(9).build().unwrap();
        let narrow = ModelBuilder::new("narrow").processors(2).build().unwrap();
        for round in 0..20 {
            let model: &dyn perfmodel::PerformanceModel =
                if round % 2 == 0 { &wide } else { &narrow };
            let g = h.group_create(model).unwrap();
            if let Some(comm) = g.comm() {
                comm.barrier().unwrap();
            }
            if g.is_member() {
                h.group_free(g).unwrap();
            }
            // Everyone resynchronises before the next round so the
            // participant set is unambiguous (the paper's collective calling
            // convention).
            h.finalize().unwrap();
        }
    });
}

#[test]
fn interleaved_recon_and_groups() {
    let rt = HmpiRuntime::new(paper_lan());
    rt.run(|h| {
        let model = ModelBuilder::new("m")
            .processors(3)
            .volumes(vec![5.0, 10.0, 15.0])
            .build()
            .unwrap();
        for i in 0..10 {
            h.recon(1.0 + i as f64).unwrap();
            let g = h.group_create(&model).unwrap();
            if g.is_member() {
                h.group_free(g).unwrap();
            }
            h.finalize().unwrap();
        }
        assert_eq!(h.estimates().generation(), 10);
    });
}

#[test]
fn heavy_p2p_traffic_under_groups() {
    // Members exchange a burst of tagged messages every round; ordering and
    // isolation must hold across group generations.
    let rt = HmpiRuntime::new(paper_lan());
    rt.run(|h| {
        let model = ModelBuilder::new("pairs").processors(4).build().unwrap();
        for round in 0..10i64 {
            let g = h.group_create(&model).unwrap();
            if let Some(comm) = g.comm() {
                let me = comm.rank();
                let peer = me ^ 1; // 0<->1, 2<->3
                for k in 0..20i64 {
                    comm.send(&[round * 100 + k], peer, k as i32).unwrap();
                }
                for k in 0..20i64 {
                    let (v, _) = comm.recv::<i64>(peer, k as i32).unwrap();
                    assert_eq!(v[0], round * 100 + k);
                }
            }
            if g.is_member() {
                h.group_free(g).unwrap();
            }
            h.finalize().unwrap();
        }
    });
}

/// Regression stress for the recon late-report race. The fault-tolerant
/// recon's host used to condemn a rank whose benchmark report landed
/// after the host's per-rank deadline *without sending it an ACK*,
/// leaving the live rank blocked forever in its unbounded ACK receive —
/// a genuine deadlock the watchdog surfaced as a rare
/// `MpiError::Deadlock` (roughly once per few hundred recons, host-load
/// dependent). The host now sweeps late reports before marking nodes
/// unavailable, so 500 seeded iterations across random clusters must
/// come back clean on every rank.
#[test]
fn recon_ft_survives_five_hundred_seeded_clusters() {
    for seed in 0..500u64 {
        let rt = HmpiRuntime::new(Arc::new(Cluster::random(seed, 5)));
        let report = rt.run(move |h| {
            h.recon_opts(hmpi::Recon::new(1.0 + (seed % 7) as f64).fault_tolerant(true))
        });
        for (rank, r) in report.results.iter().enumerate() {
            assert!(r.is_ok(), "seed {seed} rank {rank}: {r:?}");
        }
    }
}
