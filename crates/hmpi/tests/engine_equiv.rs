//! Property tests: the selection engine (compiled program, table-backed
//! pair costs, incremental delta probes) agrees with the naive
//! interpreter path (`predicted_time` over a freshly built `CostModel`)
//! on random models, clusters, and assignments — including pinned-parent
//! instances and placements with several world ranks per node (loopback
//! pairs) — and the branch-and-bound exhaustive search returns the exact
//! mapping of the sequential enumeration.

use hetsim::{Cluster, ClusterBuilder, Link, NodeId, Protocol, SpeedEstimates};
use hmpi::{
    predicted_time, select_mapping, select_mapping_naive, Evaluator, MappingAlgorithm,
    SelectionCtx,
};
use perfmodel::{ModelBuilder, PerformanceModel, SchemeSink};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One recorded scheme event of a randomly generated interaction pattern.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Compute(usize, f64),
    Transfer(usize, usize, f64),
    ParBegin,
    ParBranch,
    ParEnd,
}

fn replay(events: &[Ev], sink: &mut dyn SchemeSink) {
    for &e in events {
        match e {
            Ev::Compute(p, pct) => sink.compute(p, pct),
            Ev::Transfer(s, d, pct) => sink.transfer(s, d, pct),
            Ev::ParBegin => sink.par_begin(),
            Ev::ParBranch => sink.par_branch(),
            Ev::ParEnd => sink.par_end(),
        }
    }
}

/// Emits 1-4 plain activities on random processors (transfers may be
/// loops `i -> i`, which the timeline skips).
fn gen_activities(rng: &mut StdRng, p: usize, out: &mut Vec<Ev>) {
    for _ in 0..rng.random_range(1..5) {
        if rng.random_range(0..3) == 0 {
            out.push(Ev::Compute(
                rng.random_range(0..p),
                rng.random_range(0.0..60.0),
            ));
        } else {
            out.push(Ev::Transfer(
                rng.random_range(0..p),
                rng.random_range(0..p),
                rng.random_range(0.0..60.0),
            ));
        }
    }
}

/// A random well-formed event stream: plain activities mixed with par
/// blocks (the interpreter's emission discipline: each branch is followed
/// by `par_branch`, the block closed by `par_end`), nested up to depth 2.
fn gen_events(rng: &mut StdRng, p: usize) -> Vec<Ev> {
    let mut out = Vec::new();
    for _ in 0..rng.random_range(1..5) {
        match rng.random_range(0..3) {
            0 => gen_activities(rng, p, &mut out),
            _ => {
                out.push(Ev::ParBegin);
                for _ in 0..rng.random_range(1..4) {
                    if rng.random_range(0..4) == 0 {
                        // Nested par inside this branch.
                        out.push(Ev::ParBegin);
                        for _ in 0..rng.random_range(1..3) {
                            gen_activities(rng, p, &mut out);
                            out.push(Ev::ParBranch);
                        }
                        out.push(Ev::ParEnd);
                    } else {
                        gen_activities(rng, p, &mut out);
                    }
                    out.push(Ev::ParBranch);
                }
                out.push(Ev::ParEnd);
            }
        }
    }
    out
}

struct Instance {
    cluster: Cluster,
    placement: Vec<NodeId>,
    estimates: SpeedEstimates,
    model: perfmodel::BuiltModel,
    p: usize,
}

fn gen_instance(rng: &mut StdRng) -> Instance {
    let n_nodes = rng.random_range(1..5);
    let mut b = ClusterBuilder::new();
    for i in 0..n_nodes {
        b = b.node(format!("n{i}"), rng.random_range(1.0..200.0));
    }
    let cluster = b
        .all_to_all(Link::new(
            rng.random_range(0.0..1e-3),
            rng.random_range(1e5..1e8),
            Protocol::Tcp,
        ))
        .build();
    // Several world ranks per node => same-node (loopback) pairs.
    let ranks_per_node = rng.random_range(1..4);
    let world = n_nodes * ranks_per_node;
    let placement: Vec<NodeId> = (0..world).map(|r| NodeId(r % n_nodes)).collect();
    let estimates = SpeedEstimates::from_speeds(
        (0..n_nodes).map(|_| rng.random_range(1.0..300.0)).collect(),
    );

    let p = rng.random_range(1..world.min(5) + 1);
    let volumes: Vec<f64> = (0..p).map(|_| rng.random_range(0.0..1000.0)).collect();
    let comm: Vec<Vec<f64>> = (0..p)
        .map(|_| {
            (0..p)
                .map(|_| {
                    if rng.random_range(0..3) == 0 {
                        0.0
                    } else {
                        rng.random_range(0.0..1e6)
                    }
                })
                .collect()
        })
        .collect();
    let mut mb = ModelBuilder::new("prop")
        .processors(p)
        .volumes(volumes)
        .comm(comm)
        .parent(rng.random_range(0..p));
    if rng.random_range(0..2) == 0 {
        // Half the models use a random custom interaction pattern instead
        // of the builder's default par-transfers-then-par-computes scheme.
        let events = gen_events(rng, p);
        mb = mb.scheme(move |sink| replay(&events, sink));
    }
    let model = mb.build().expect("random model builds");
    Instance {
        cluster,
        placement,
        estimates,
        model,
        p,
    }
}

/// Draws a random injective assignment of `p` processors to candidates.
fn gen_assignment(rng: &mut StdRng, candidates: &[usize], p: usize, pin: Option<(usize, usize)>) -> Vec<usize> {
    let mut pool: Vec<usize> = candidates.to_vec();
    // Fisher-Yates prefix shuffle.
    for i in 0..p {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    let mut a: Vec<usize> = pool[..p].to_vec();
    if let Some((parent_abs, parent_w)) = pin {
        if let Some(pos) = a.iter().position(|&w| w == parent_w) {
            a.swap(parent_abs, pos);
        } else {
            a[parent_abs] = parent_w;
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Full evaluation: `Evaluator::eval` is bit-identical to
    /// `predicted_time(...).unwrap_or(INFINITY)` (well within the 1e-9
    /// agreement the spec asks for) on random instances.
    #[test]
    fn engine_eval_matches_naive(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = gen_instance(&mut rng);
        let candidates: Vec<usize> = (0..inst.placement.len()).collect();
        let pinned = if rng.random_range(0..2) == 0 {
            Some(candidates[rng.random_range(0..candidates.len())])
        } else {
            None
        };
        let ctx = SelectionCtx {
            cluster: &inst.cluster,
            placement: &inst.placement,
            estimates: &inst.estimates,
            candidates: candidates.clone(),
            pinned_parent: pinned,
        };
        let mut ev = Evaluator::new(&inst.model, &ctx);
        for _ in 0..8 {
            let pin = pinned.map(|w| (inst.model.parent(), w));
            let a = gen_assignment(&mut rng, &candidates, inst.p, pin);
            let fast = ev.eval(&a);
            let naive = predicted_time(
                &inst.model, &a, &inst.cluster, &inst.placement, &inst.estimates,
            ).unwrap_or(f64::INFINITY);
            prop_assert_eq!(fast.to_bits(), naive.to_bits(), "assignment {:?}", a);
            prop_assert!((fast - naive).abs() <= 1e-9 * naive.abs().max(1.0) || fast == naive);
        }
    }

    /// Incremental probes: a random walk of swap/replace moves over a
    /// rebased baseline prices every proposal bit-identically to the naive
    /// path, including occasional accepted moves (rebase) and the periodic
    /// full re-evaluation.
    #[test]
    fn engine_probe_matches_naive(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = gen_instance(&mut rng);
        let candidates: Vec<usize> = (0..inst.placement.len()).collect();
        let ctx = SelectionCtx {
            cluster: &inst.cluster,
            placement: &inst.placement,
            estimates: &inst.estimates,
            candidates: candidates.clone(),
            pinned_parent: None,
        };
        let mut ev = Evaluator::new(&inst.model, &ctx);
        let mut current = gen_assignment(&mut rng, &candidates, inst.p, None);
        let mut base_t = ev.rebase(&current);
        let naive_base = predicted_time(
            &inst.model, &current, &inst.cluster, &inst.placement, &inst.estimates,
        ).unwrap_or(f64::INFINITY);
        prop_assert_eq!(base_t.to_bits(), naive_base.to_bits());

        for _ in 0..70 {
            let mut proposal = current.clone();
            let mut changed: Vec<usize> = Vec::new();
            let unused: Vec<usize> = candidates
                .iter().copied().filter(|w| !proposal.contains(w)).collect();
            if !unused.is_empty() && rng.random_range(0..2) == 0 {
                let i = rng.random_range(0..inst.p);
                proposal[i] = unused[rng.random_range(0..unused.len())];
                changed.push(i);
            } else if inst.p >= 2 {
                let i = rng.random_range(0..inst.p);
                let j = (i + 1 + rng.random_range(0..inst.p - 1)) % inst.p;
                proposal.swap(i, j);
                changed.push(i);
                changed.push(j);
            } else {
                continue;
            }
            let probed = ev.probe(&proposal, &changed);
            let naive = predicted_time(
                &inst.model, &proposal, &inst.cluster, &inst.placement, &inst.estimates,
            ).unwrap_or(f64::INFINITY);
            prop_assert_eq!(probed.to_bits(), naive.to_bits(), "changed {:?}", changed);
            if probed < base_t || rng.random_range(0..8) == 0 {
                current = proposal;
                base_t = ev.rebase(&current);
                prop_assert_eq!(base_t.to_bits(), naive.to_bits());
            }
        }
    }

    /// End-to-end: the engine-backed `select_mapping` and the naive
    /// reference path select bit-identical mappings for every algorithm.
    #[test]
    fn select_paths_bit_identical(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = gen_instance(&mut rng);
        let candidates: Vec<usize> = (0..inst.placement.len()).collect();
        let pinned = if rng.random_range(0..2) == 0 {
            Some(candidates[rng.random_range(0..candidates.len())])
        } else {
            None
        };
        let ctx = SelectionCtx {
            cluster: &inst.cluster,
            placement: &inst.placement,
            estimates: &inst.estimates,
            candidates,
            pinned_parent: pinned,
        };
        for algo in [
            MappingAlgorithm::Greedy,
            MappingAlgorithm::GreedyRefined { max_rounds: 8 },
            MappingAlgorithm::Exhaustive,
            MappingAlgorithm::Annealing { seed, iters: 120 },
        ] {
            let fast = select_mapping(algo, &inst.model, &ctx).expect("engine path");
            let naive = select_mapping_naive(algo, &inst.model, &ctx).expect("naive path");
            prop_assert_eq!(&fast.assignment, &naive.assignment, "algo {:?}", algo);
            prop_assert_eq!(
                fast.predicted.to_bits(), naive.predicted.to_bits(), "algo {:?}", algo
            );
        }
    }
}

/// Deterministic regression: a *parsed* model (the paper's modelling
/// language, EM3D-like dependence pattern) selects bit-identical mappings
/// through the branch-and-bound exhaustive and the sequential naive
/// enumeration, on a cluster with several ranks per node.
#[test]
fn parsed_model_exhaustive_bb_matches_sequential() {
    let src = r"
        algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
            coord I=p;
            node {I>=0: bench*(d[I]/k);};
            link (L=p) {
                I>=0 && I!=L && (dep[I][L] > 0) :
                    length*(dep[I][L]*sizeof(double)) [L]->[I];
            };
            parent[0];
            scheme {
                int current, owner, remote;
                par (owner = 0; owner < p; owner++)
                    par (remote = 0; remote < p; remote++)
                        if ((owner != remote) && (dep[owner][remote] > 0))
                            100%%[remote]->[owner];
                par (current = 0; current < p; current++) 100%%[current];
            };
        }
    ";
    let model = perfmodel::CompiledModel::compile(src)
        .unwrap()
        .instantiate(&[
            perfmodel::ParamValue::Int(4),
            perfmodel::ParamValue::Int(10),
            perfmodel::ParamValue::Array(vec![100, 200, 300, 150]),
            perfmodel::ParamValue::Array(vec![0, 5, 0, 3, 5, 0, 7, 0, 0, 7, 0, 2, 3, 0, 2, 0]),
        ])
        .unwrap();

    let cluster = ClusterBuilder::new()
        .node("a", 46.0)
        .node("b", 176.0)
        .node("c", 106.0)
        .all_to_all(Link::new(150e-6, 11e6, Protocol::Tcp))
        .build();
    // Two ranks per node: exercises loopback pairs inside the search.
    let placement: Vec<NodeId> = (0..6).map(|r| NodeId(r % 3)).collect();
    let estimates = SpeedEstimates::from_base_speeds(&cluster);
    for pinned in [Some(0), None] {
        let ctx = SelectionCtx {
            cluster: &cluster,
            placement: &placement,
            estimates: &estimates,
            candidates: (0..6).collect(),
            pinned_parent: pinned,
        };
        let fast = select_mapping(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        let naive = select_mapping_naive(MappingAlgorithm::Exhaustive, &model, &ctx).unwrap();
        assert_eq!(fast.assignment, naive.assignment, "pinned={pinned:?}");
        assert_eq!(
            fast.predicted.to_bits(),
            naive.predicted.to_bits(),
            "pinned={pinned:?}"
        );
    }
}
