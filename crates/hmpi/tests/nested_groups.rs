//! `GroupSpec::placement`: groups whose parent is not the host — the
//! paper's general rule that "every newly created group has exactly one
//! process shared with already existing groups".

use hetsim::{ClusterBuilder, Link, Protocol};
use hmpi::{GroupSpec, HmpiError, HmpiRuntime, MappingAlgorithm};
use perfmodel::ModelBuilder;
use std::sync::Arc;

fn cluster(n: usize) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    let speeds = [50.0, 100.0, 80.0, 60.0, 40.0, 20.0];
    for i in 0..n {
        b = b.node(format!("h{i}"), speeds[i % speeds.len()]);
    }
    Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
}

#[test]
fn non_host_parent_creates_a_subgroup() {
    let rt = HmpiRuntime::new(cluster(6));
    let report = rt.run(|h| {
        // Phase 1: the host creates a 2-member group {host, fastest}.
        let top = ModelBuilder::new("top")
            .processors(2)
            .volumes(vec![10.0, 10.0])
            .build()
            .unwrap();
        let g1 = h.group_create(&top).unwrap();
        let g1_members = g1.members().to_vec();
        let sub_parent = g1_members[1]; // the non-host member of g1

        // Phase 2: that member becomes the parent of a sub-group drawn from
        // the remaining free processes. Participants: the parent (busy in
        // g1) plus every free process.
        let mut sub_members = None;
        if h.rank() == sub_parent || h.is_free() {
            let sub = ModelBuilder::new("sub")
                .processors(3)
                .volumes(vec![5.0, 50.0, 20.0])
                .build()
                .unwrap();
            let g2 = h
                .group_create(GroupSpec::new(&sub).placement(sub_parent))
                .unwrap();
            sub_members = Some(g2.members().to_vec());
            if let Some(comm) = g2.comm() {
                // The subgroup is a live communicator.
                let s = comm
                    .allreduce_one_i64(1, mpisim::ReduceOp::Sum)
                    .unwrap();
                assert_eq!(s, 3);
            }
            if g2.is_member() {
                h.group_free(g2).unwrap();
            }
        }
        if g1.is_member() {
            h.group_free(g1).unwrap();
        }
        (g1_members, sub_members)
    });

    let (g1_members, _) = &report.results[0];
    assert_eq!(g1_members[0], 0, "host is g1's parent");
    let sub_parent = g1_members[1];
    let sub = report.results[sub_parent].1.as_ref().unwrap();
    assert_eq!(sub.len(), 3);
    // The sub-parent is pinned to the sub-group's parent slot (abstract 0).
    assert_eq!(sub[0], sub_parent);
    // The sub-group must not contain the host (busy in g1).
    assert!(!sub.contains(&0), "host is busy in g1: {sub:?}");
    // All ranks that saw the subgroup agree on it.
    for (_, s) in report.results.iter() {
        if let Some(s) = s {
            assert_eq!(s, sub);
        }
    }
}

#[test]
fn busy_non_parent_caller_is_rejected() {
    let rt = HmpiRuntime::new(cluster(4));
    rt.run(|h| {
        let all = ModelBuilder::new("all").processors(4).build().unwrap();
        let g = h.group_create(&all).unwrap();
        // Everyone is busy now; a busy rank that is not the named parent
        // cannot join a creation.
        if h.rank() == 2 {
            let m = ModelBuilder::new("m").processors(1).build().unwrap();
            let err = h
                .group_create(GroupSpec::new(&m).placement(3))
                .unwrap_err();
            assert_eq!(err, HmpiError::NotEligible);
        }
        if g.is_member() {
            h.group_free(g).unwrap();
        }
    });
}

#[test]
fn parent_pinning_overrides_speed_ordering() {
    // The sub-parent is the slowest machine; it still must hold abstract
    // processor 0 of its group.
    let rt = HmpiRuntime::new(cluster(6));
    let report = rt.run(|h| {
        let slow_parent = 5; // speed 20
        if h.rank() == slow_parent || h.is_free() || h.is_host() {
            // Host is free-by-flag at start; it is a candidate too.
            let model = ModelBuilder::new("m")
                .processors(2)
                .volumes(vec![1.0, 1000.0])
                .build()
                .unwrap();
            let g = h
                .group_create(
                    GroupSpec::new(&model)
                        .algorithm(MappingAlgorithm::default())
                        .placement(slow_parent),
                )
                .unwrap();
            let members = g.members().to_vec();
            if g.is_member() {
                h.group_free(g).unwrap();
            }
            Some(members)
        } else {
            None
        }
    });
    let members = report.results[5].as_ref().unwrap();
    assert_eq!(members[0], 5, "slow parent still holds the parent slot");
    assert_eq!(members[1], 1, "heavy work goes to the fastest machine");
}
