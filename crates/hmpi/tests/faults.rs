//! Fault tolerance at the HMPI layer: `HMPI_Recon` as a failure detector,
//! selection that routes around dead nodes, and `rebuild_group` shrink
//! recovery.

use hetsim::{ClusterBuilder, FaultEvent, FaultPlan, Link, NodeId, Protocol, SimTime};
use hmpi::{HmpiError, HmpiRuntime, SelectError};
use mpisim::ReduceOp;
use perfmodel::ModelBuilder;
use proptest::prelude::*;
use std::sync::Arc;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn cluster(speeds: &[f64], faults: FaultPlan) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    for (i, &s) in speeds.iter().enumerate() {
        b = b.node(format!("h{i}"), s);
    }
    Arc::new(
        b.all_to_all(Link::new(1e-3, 1e6, Protocol::Tcp))
            .faults(faults)
            .build(),
    )
}

fn uniform_model(p: usize) -> perfmodel::BuiltModel {
    ModelBuilder::new("m")
        .processors(p)
        .volumes(vec![100.0; p])
        .build()
        .unwrap()
}

#[test]
fn recon_detects_a_crash_and_marks_the_node_unavailable() {
    // Node 2 is the fastest machine but dies almost immediately: its rank
    // never finishes the recon benchmark, the host declares it dead, and
    // the estimates exclude it while refreshing everyone else.
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(2),
        at: t(0.05),
    });
    let rt = HmpiRuntime::new(cluster(&[50.0, 100.0, 1000.0, 80.0], plan));
    let report = rt.run(|h| {
        let res = h.recon(100.0);
        if h.rank() == 2 {
            return (res.is_err(), Vec::new());
        }
        assert!(res.is_ok(), "survivor recon failed: {res:?}");
        let avail: Vec<bool> = (0..4)
            .map(|n| h.estimates().is_available(NodeId(n)))
            .collect();
        (false, avail)
    });
    assert!(report.results[2].0, "the dead rank must see its own failure");
    for r in [0, 1, 3] {
        assert_eq!(report.results[r].1, vec![true, true, false, true]);
    }
}

#[test]
fn recon_tolerates_a_transient_slowdown() {
    // Node 1 runs at 10% speed during the benchmark window. The host's
    // collection deadline is sized from the *delivered* speed, so the slow
    // report still arrives: the node stays available with an honest (low)
    // estimate instead of being declared dead.
    let plan = FaultPlan::none().with(FaultEvent::NodeSlowdown {
        node: NodeId(1),
        from: t(0.0),
        until: t(50.0),
        factor: 0.1,
    });
    let rt = HmpiRuntime::new(cluster(&[100.0, 100.0], plan));
    let report = rt.run(|h| {
        h.recon(100.0).unwrap();
        (
            h.estimates().is_available(NodeId(1)),
            h.estimates().speed(NodeId(1)),
        )
    });
    let (available, speed) = report.results[0];
    assert!(available, "a slow node is not a dead node");
    assert!((speed - 10.0).abs() < 1e-6, "estimate reflects the slowdown");
}

#[test]
fn group_create_routes_around_the_dead_node() {
    // Same layout as the crash test: node 2 (speed 1000) would dominate any
    // selection, but after the detecting recon the new group avoids it.
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(2),
        at: t(0.05),
    });
    let rt = HmpiRuntime::new(cluster(&[50.0, 100.0, 1000.0, 80.0], plan));
    let report = rt.run(|h| {
        if h.recon(100.0).is_err() {
            return None; // the dead rank exits
        }
        let model = uniform_model(2);
        let group = h.group_create(&model).unwrap();
        let members = group.members().to_vec();
        if group.is_member() {
            h.group_free(group).unwrap();
        }
        Some(members)
    });
    let members = report.results[0].clone().unwrap();
    assert!(
        !members.contains(&2),
        "selection must exclude the dead node, got {members:?}"
    );
    // The host (parent) plus the fastest survivor.
    assert_eq!(members, vec![0, 1]);
}

#[test]
fn rebuild_group_shrinks_to_the_survivors() {
    // A 4-member group loses node 3 at t=2.5 (during round 2 of
    // compute+barrier). Survivors unwind, rebuild on the remaining three,
    // and the shrunk group is immediately usable.
    let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
        node: NodeId(3),
        at: t(2.5),
    });
    let rt = HmpiRuntime::new(cluster(&[100.0; 4], plan));
    let report = rt.run(|h| {
        let group = h.group_create(&uniform_model(4)).unwrap();
        assert!(group.is_member(), "the 4-model selects everyone");
        let comm = group.comm().unwrap().clone();
        let mut failed_round = None;
        for round in 0..4 {
            if h.try_compute(100.0).is_err() {
                return Err(round); // this rank's node crashed
            }
            if comm.barrier().is_err() {
                failed_round = Some(round);
                break;
            }
        }
        let round = failed_round.expect("the crash must surface in a barrier");
        // Survivors collectively shrink the group.
        let rebuilt = h
            .rebuild_group(group, |survivors| Ok(uniform_model(survivors.len())))
            .unwrap();
        assert_eq!(rebuilt.members(), &[0, 1, 2]);
        assert!(rebuilt.is_member());
        assert!(rebuilt.predicted_time() > 0.0);
        let comm = rebuilt.comm().unwrap().clone();
        let survivors = comm.allreduce_one_i64(1, ReduceOp::Sum).unwrap();
        assert!(!h.estimates().is_available(NodeId(3)));
        h.group_free(rebuilt).unwrap();
        Ok((round, survivors))
    });
    // Rank 3 crashes in round 2's compute (t crosses 2.5 between 2 and 3).
    // Survivors abort a barrier no later than that round — the collective
    // plane aborts as soon as the failure is *observed*, which can be
    // earlier in wall-clock terms — and count 3 heads after the rebuild.
    assert_eq!(report.results[3], Err(2));
    for r in 0..3 {
        let (round, heads) = report.results[r].expect("survivors recover");
        assert!(round <= 2, "rank {r} aborted after the crash round: {round}");
        assert_eq!(heads, 3, "rank {r}");
    }
}

#[test]
fn rebuild_group_reports_an_infeasible_shrink_on_every_survivor() {
    // Nodes 2 and 3 die; the factory insists on a 3-processor model that
    // cannot fit on the two survivors. Both survivors — the host that ran
    // the selection and the rank that only saw the sentinel — get the same
    // typed error instead of hanging.
    let plan = FaultPlan::none()
        .with(FaultEvent::NodeCrash {
            node: NodeId(2),
            at: t(2.5),
        })
        .with(FaultEvent::NodeCrash {
            node: NodeId(3),
            at: t(2.5),
        });
    let rt = HmpiRuntime::new(cluster(&[100.0; 4], plan));
    let report = rt.run(|h| {
        let group = h.group_create(&uniform_model(4)).unwrap();
        let comm = group.comm().unwrap().clone();
        for _ in 0..4 {
            if h.try_compute(100.0).is_err() {
                return None;
            }
            if comm.barrier().is_err() {
                break;
            }
        }
        let err = h
            .rebuild_group(group, |survivors| {
                assert_eq!(survivors, [0, 1], "roll call finds the survivors");
                Ok(uniform_model(3))
            })
            .unwrap_err();
        Some(err)
    });
    for r in 0..2 {
        assert_eq!(
            report.results[r],
            Some(HmpiError::Select(SelectError::NotEnoughProcesses {
                required: 3,
                available: 2,
            })),
            "rank {r}"
        );
    }
    assert_eq!(report.results[2], None);
    assert_eq!(report.results[3], None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying a seeded fault plan through a full recon + group_create
    /// cycle is deterministic: same seed, same survivors, same selection.
    #[test]
    fn seeded_fault_plans_replay_deterministically(seed in 0u64..1000) {
        let run = || {
            let plan = FaultPlan::random_crashes(seed, (1..5).map(NodeId), 0.5, t(1.5));
            let rt = HmpiRuntime::new(cluster(&[50.0, 100.0, 150.0, 200.0, 250.0], plan));
            let report = rt.run(|h| {
                if h.recon(100.0).is_err() {
                    return None;
                }
                let model = uniform_model(2);
                // With enough crashes the selection is infeasible; the typed
                // error is part of the replayed outcome.
                let members = match h.group_create(&model) {
                    Ok(group) => {
                        let m = group.members().to_vec();
                        if group.is_member() {
                            h.group_free(group).unwrap();
                        }
                        m
                    }
                    Err(_) => vec![usize::MAX],
                };
                Some(members)
            });
            (report.results, report.makespan)
        };
        let (a, span_a) = run();
        let (b, span_b) = run();
        prop_assert_eq!(a, b);
        prop_assert_eq!(span_a, span_b);
    }
}
