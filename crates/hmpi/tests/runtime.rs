//! End-to-end HMPI runtime behaviour across real rank threads.

use hetsim::{Cluster, ClusterBuilder, Link, LoadModel, Processor, Protocol, SimTime};
use hmpi::{GroupSpec, HmpiError, HmpiRuntime, MappingAlgorithm, Recon, RuntimeConfig};
use perfmodel::ModelBuilder;
use std::sync::Arc;

fn paper_lan() -> Arc<Cluster> {
    Arc::new(Cluster::paper_lan_em3d())
}

fn small_cluster() -> Arc<Cluster> {
    Arc::new(
        ClusterBuilder::new()
            .node("host", 46.0)
            .node("fast", 176.0)
            .node("mid", 106.0)
            .node("slow", 9.0)
            .all_to_all(Link::new(150e-6, 11e6, Protocol::Tcp))
            .build(),
    )
}

#[test]
fn roles_at_startup() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| (h.is_host(), h.is_free()));
    assert_eq!(report.results[0], (true, false));
    for r in &report.results[1..] {
        assert_eq!(*r, (false, true));
    }
}

#[test]
fn group_create_selects_fast_nodes_and_excludes_slow() {
    let rt = HmpiRuntime::new(small_cluster());
    // 3 equal-volume processors on a 4-node cluster with speeds
    // 46/176/106/9: the selection must use nodes 0 (pinned parent), 1, 2 and
    // leave the speed-9 node out.
    let report = rt.run(|h| {
        let model = ModelBuilder::new("three")
            .processors(3)
            .volumes(vec![100.0, 100.0, 100.0])
            .parent(0)
            .build()
            .unwrap();
        let group = h.group_create(&model).unwrap();
        let picked = group.members().to_vec();
        let member = group.is_member();
        if member {
            h.group_free(group).unwrap();
        }
        (picked, member)
    });
    let (picked, _) = &report.results[0];
    let mut sorted = picked.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2], "slow node 3 must be excluded");
    assert_eq!(picked[0], 0, "parent pinned to host");
    // Every rank observed the same member list.
    for (p, _) in &report.results {
        assert_eq!(p, picked);
    }
    // Members: ranks 0,1,2; rank 3 not a member.
    assert!(report.results[0].1);
    assert!(!report.results[3].1);
}

#[test]
fn group_members_communicate_over_group_comm() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        let model = ModelBuilder::new("pair")
            .processors(2)
            .volumes(vec![50.0, 100.0])
            .build()
            .unwrap();
        let group = h.group_create(&model).unwrap();
        let out = if let Some(comm) = group.comm() {
            let sum = comm
                .allreduce_one_i64(h.rank() as i64, mpisim::ReduceOp::Sum)
                .unwrap();
            Some((comm.rank(), comm.size(), sum))
        } else {
            None
        };
        if group.is_member() {
            h.group_free(group).unwrap();
        }
        out
    });
    // Expected selection: parent host (rank 0, speed 46) runs the
    // 50-volume processor, rank 1 (speed 176) the 100-volume one.
    assert_eq!(report.results[0], Some((0, 2, 1)));
    assert_eq!(report.results[1], Some((1, 2, 1)));
    assert_eq!(report.results[2], None);
    assert_eq!(report.results[3], None);
}

#[test]
fn freed_processes_can_join_subsequent_groups() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        let model = ModelBuilder::new("m")
            .processors(4)
            .volumes(vec![10.0, 10.0, 10.0, 10.0])
            .build()
            .unwrap();
        let g1 = h.group_create(&model).unwrap();
        let first = g1.id();
        if g1.is_member() {
            h.group_free(g1).unwrap();
        }
        let g2 = h.group_create(&model).unwrap();
        let second = g2.id();
        let member2 = g2.is_member();
        if g2.is_member() {
            h.group_free(g2).unwrap();
        }
        (first, second, member2)
    });
    for (first, second, member2) in report.results {
        assert_ne!(first, second);
        assert!(member2, "all four processes fit a 4-processor model");
    }
}

#[test]
fn busy_processes_are_not_selected() {
    // Create a 2-processor group; while it lives, create another
    // 2-processor group from the remaining processes.
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        let m2 = ModelBuilder::new("two")
            .processors(2)
            .volumes(vec![10.0, 1000.0])
            .build()
            .unwrap();
        let g1 = h.group_create(&m2).unwrap();
        let g1_members = g1.members().to_vec();
        let in_g1 = g1.is_member();

        // Second group: only host + still-free processes call.
        let mut g2_members = None;
        if h.is_host() || h.is_free() {
            let g2 = h.group_create(&m2).unwrap();
            g2_members = Some(g2.members().to_vec());
            if g2.is_member() {
                h.group_free(g2).unwrap();
            }
        }
        if in_g1 {
            h.group_free(g1).unwrap();
        }
        (g1_members, g2_members)
    });
    let (g1m, g2m) = &report.results[0];
    let g2m = g2m.as_ref().unwrap();
    // g1 pairs the big volume with the fastest free node (1, speed 176).
    assert_eq!(g1m, &vec![0, 1]);
    // g2 must avoid the busy rank 1; next fastest is rank 2 (106).
    assert_eq!(g2m, &vec![0, 2]);
}

#[test]
fn group_create_from_busy_rank_is_rejected() {
    let rt = HmpiRuntime::new(small_cluster());
    rt.run(|h| {
        let model = ModelBuilder::new("all")
            .processors(4)
            .build()
            .unwrap();
        let g = h.group_create(&model).unwrap();
        // Everyone is now busy (members of g). A second create must fail for
        // non-host members.
        if !h.is_host() {
            let err = h.group_create(&model).unwrap_err();
            assert_eq!(err, HmpiError::NotEligible);
        }
        if g.is_member() {
            h.group_free(g).unwrap();
        }
    });
}

#[test]
fn recon_tracks_dynamic_load() {
    // Node 1 loses half its speed from t=10 on; recon before and after.
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("host", 100.0)
            .processor(Processor::new("busy", 100.0).with_load(LoadModel::Step {
                start: SimTime::from_secs(10.0),
                end: SimTime::from_secs(1e9),
                fraction: 0.5,
            }))
            .all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp))
            .build(),
    );
    let rt = HmpiRuntime::new(cluster);
    let estimates = rt.estimates().clone();
    rt.run(|h| {
        h.recon(10.0).unwrap();
        let before = h.estimates().snapshot();
        assert!((before[0] - 100.0).abs() < 1e-9);
        assert!((before[1] - 100.0).abs() < 1e-9);

        // Advance past the load onset and re-measure.
        h.compute(2000.0); // 20 s on the host; >= 20 s on the loaded node
        h.recon(10.0).unwrap();
        let after = h.estimates().snapshot();
        assert!((after[0] - 100.0).abs() < 1e-9);
        assert!((after[1] - 50.0).abs() < 1e-9, "loaded node re-measured at 50");
    });
    assert_eq!(estimates.generation(), 2);
}

#[test]
fn recon_with_custom_benchmark_body() {
    let rt = HmpiRuntime::new(small_cluster());
    rt.run(|h| {
        // The benchmark body performs 3 compute calls totalling 30 units.
        h.recon_opts(Recon::new(30.0).bench(|hh: &hmpi::Hmpi| {
            hh.compute(10.0);
            hh.compute(10.0);
            hh.compute(10.0);
        }))
        .unwrap();
        let snap = h.estimates().snapshot();
        for (got, want) in snap.iter().zip([46.0, 176.0, 106.0, 9.0]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    });
}

#[test]
fn timeof_predicts_group_create_quality() {
    let rt = HmpiRuntime::new(paper_lan());
    let report = rt.run(|h| {
        let model = ModelBuilder::new("m")
            .processors(3)
            .volumes(vec![100.0, 100.0, 100.0])
            .build()
            .unwrap();
        let predicted = h.timeof(&model).unwrap();
        let group = h.group_create(&model).unwrap();
        let from_group = group.predicted_time();
        if group.is_member() {
            h.group_free(group).unwrap();
        }
        (predicted, from_group)
    });
    let (t, tg) = report.results[0];
    assert!((t - tg).abs() < 1e-12, "timeof and group_create agree");
    // Best 3 of the paper LAN for equal volumes: parent ws00 (46) plus the
    // 176 and 106 machines -> bottleneck 100/46.
    assert!((t - 100.0 / 46.0).abs() < 1e-9);
}

#[test]
fn timeof_is_usable_for_parameter_sweeps() {
    // The Figure 8 pattern: pick the parameter value minimising timeof.
    let rt = HmpiRuntime::new(paper_lan());
    rt.run(|h| {
        if !h.is_host() {
            return;
        }
        let mut best = (usize::MAX, f64::INFINITY);
        for p in 1..=9 {
            let model = ModelBuilder::new("sweep")
                .processors(p)
                .volumes(vec![900.0 / p as f64; p])
                .build()
                .unwrap();
            let t = h.timeof(&model).unwrap();
            if t < best.1 {
                best = (p, t);
            }
        }
        // With zero communication, more processes always help until the
        // slowest added node dominates; optimum excludes the speed-9 node.
        assert!(best.0 >= 3, "at least the three fast nodes get used");
        assert!(best.1 <= 900.0 / (46.0 * 6.0 + 176.0 + 106.0) * 3.0);
    });
}

#[test]
fn selection_respects_recon_updates() {
    // Before recon the runtime believes base speeds; a load change flips the
    // best node, and group_create follows only after recon.
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("host", 50.0)
            .node("a", 100.0)
            .processor(Processor::new("b", 200.0).with_load(LoadModel::Constant {
                fraction: 0.9, // truly delivers 20
            }))
            .all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp))
            .build(),
    );
    let rt = HmpiRuntime::new(cluster);
    let report = rt.run(|h| {
        let model = ModelBuilder::new("one-heavy")
            .processors(2)
            .volumes(vec![1.0, 1000.0])
            .build()
            .unwrap();
        // Stale estimates (base speeds): node 2 looks fastest (200).
        let g1 = h.group_create(&model).unwrap();
        let stale_pick = g1.members()[1];
        if g1.is_member() {
            h.group_free(g1).unwrap();
        }
        // After recon, node 2 is measured at 20; node 1 (100) wins.
        h.recon(10.0).unwrap();
        let g2 = h.group_create(&model).unwrap();
        let fresh_pick = g2.members()[1];
        if g2.is_member() {
            h.group_free(g2).unwrap();
        }
        (stale_pick, fresh_pick)
    });
    assert_eq!(report.results[0], (2, 1));
}

#[test]
fn exhaustive_and_refined_agree_on_paper_lan() {
    let rt_e = HmpiRuntime::with_config(
        paper_lan(),
        RuntimeConfig::new().mapping_algorithm(MappingAlgorithm::Exhaustive),
    );
    let rt_r = HmpiRuntime::new(paper_lan());
    let model_volumes = vec![300.0, 100.0, 50.0];
    let volumes = model_volumes.clone();
    let re = rt_e.run(move |h| {
        let m = ModelBuilder::new("m")
            .processors(3)
            .volumes(volumes.clone())
            .build()
            .unwrap();
        h.timeof(&m).unwrap()
    });
    let volumes = model_volumes;
    let rr = rt_r.run(move |h| {
        let m = ModelBuilder::new("m")
            .processors(3)
            .volumes(volumes.clone())
            .build()
            .unwrap();
        h.timeof(&m).unwrap()
    });
    let te = re.results[0];
    let tr = rr.results[0];
    assert!(te <= tr + 1e-12);
    assert!((te - tr).abs() < 0.05 * te, "refined search is near-optimal here");
}

#[test]
fn finalize_synchronises() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        if h.rank() == 3 {
            h.compute(90.0); // slow node: 10 s
        }
        h.finalize().unwrap();
        h.now().as_secs()
    });
    for t in report.results {
        assert!(t >= 10.0, "finalize waits for the slowest rank");
    }
}

#[test]
fn smp_nodes_host_multiple_ranks() {
    // Two ranks share one SMP node; recon must give both the same speed and
    // the selection must be able to use both slots (loopback link between
    // them is free).
    use hetsim::NodeId;
    let cluster = Arc::new(
        ClusterBuilder::new()
            .processor(Processor::new("smp", 120.0).with_slots(2))
            .node("ws", 40.0)
            .all_to_all(Link::new(150e-6, 11e6, Protocol::Tcp))
            .build(),
    );
    let rt = HmpiRuntime::with_config(
        cluster,
        RuntimeConfig::new().placement(vec![NodeId(0), NodeId(0), NodeId(1)]),
    );
    let report = rt.run(|h| {
        h.recon(12.0).unwrap();
        let snap = h.estimates().snapshot();
        assert!((snap[0] - 120.0).abs() < 1e-6);
        assert!((snap[1] - 40.0).abs() < 1e-6);

        // A chatty 2-processor model: the free intra-node link should make
        // the two SMP ranks the best pair.
        let model = perfmodel::ModelBuilder::new("chatty")
            .processors(2)
            .volumes(vec![10.0, 10.0])
            .comm_fn(|_, _| 50e6)
            .build()
            .unwrap();
        let g = h
            .group_create(GroupSpec::new(&model).algorithm(MappingAlgorithm::Exhaustive))
            .unwrap();
        let members = g.members().to_vec();
        if g.is_member() {
            h.group_free(g).unwrap();
        }
        members
    });
    assert_eq!(report.results[0], vec![0, 1], "both SMP slots win");
}

#[test]
fn recon_rejects_invalid_benchmark_volumes() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        // Validation happens before any computation or communication, so
        // every rank fails consistently and no rank blocks on a peer.
        let errs = [
            h.recon(-1.0).unwrap_err(),
            h.recon(f64::NAN).unwrap_err(),
            h.recon_opts(Recon::new(0.0).bench(|_: &hmpi::Hmpi| {}))
                .unwrap_err(),
            h.recon_opts(Recon::new(0.0).work_units(10.0).fault_tolerant(true))
                .unwrap_err(),
            h.recon_opts(
                Recon::new(10.0)
                    .work_units(f64::INFINITY)
                    .fault_tolerant(true),
            )
            .unwrap_err(),
        ];
        errs.iter()
            .all(|e| matches!(e, HmpiError::InvalidArgument(_)))
    });
    assert!(report.results.iter().all(|&ok| ok));
}

#[test]
fn zero_elapsed_recon_keeps_previous_estimates() {
    // A no-op benchmark body measures nothing (elapsed == 0); the naive
    // `units / elapsed` would be `+inf`. The estimates must keep their
    // previous (base-speed) values instead of being poisoned.
    let rt = HmpiRuntime::new(small_cluster());
    let base = rt.estimates().snapshot();
    let report = rt.run(|h| {
        h.recon_opts(Recon::new(10.0).bench(|_: &hmpi::Hmpi| {})).unwrap();
    });
    assert_eq!(report.results.len(), 4);
    let snap = rt.estimates().snapshot();
    assert_eq!(snap, base, "a zero-elapsed recon must not change estimates");
    assert!(snap.iter().all(|s| s.is_finite() && *s > 0.0));
}

#[test]
fn overflowing_speed_cannot_poison_estimates() {
    // Regression for the speed-estimate poisoning bug: a huge nominal
    // volume over a tiny measured elapsed overflows `nominal / elapsed` to
    // `+inf`. Pre-fix, that value sailed through the bare `s > 0.0` check
    // into the shared estimates and every subsequent selection planned
    // with an infinitely fast node. Now the rank falls back to its
    // previous estimate and the host additionally validates each report.
    let rt = HmpiRuntime::new(small_cluster());
    let base = rt.estimates().snapshot();
    let report = rt.run(|h| {
        h.recon_opts(
            Recon::new(1e300)
                .work_units(1e-300)
                .fault_tolerant(true),
        )
        .unwrap();
    });
    assert_eq!(report.results.len(), 4);
    let snap = rt.estimates().snapshot();
    assert!(
        snap.iter().all(|s| s.is_finite() && *s > 0.0),
        "estimates poisoned: {snap:?}"
    );
    assert_eq!(snap, base, "unusable measurements keep the old estimates");
    // The recon still completed a full generation (it refreshed, with
    // fallback values, rather than aborting).
    assert_eq!(rt.estimates().generation(), 1);
}

#[test]
fn traced_run_records_recon_and_selection_events() {
    use hetsim::trace::TraceKind;

    let rt = HmpiRuntime::with_config(small_cluster(), RuntimeConfig::new().tracing(true));
    let report = rt.run(|h| {
        h.recon(10.0).unwrap();
        let model = ModelBuilder::new("pair")
            .processors(2)
            .volumes(vec![50.0, 100.0])
            .build()
            .unwrap();
        let group = h.group_create(&model).unwrap();
        if group.is_member() {
            h.group_free(group).unwrap();
        }
        h.finalize().unwrap();
    });
    let trace = report.trace.as_ref().expect("tracing was enabled");
    let count = |k: TraceKind| trace.events.iter().filter(|e| e.kind == k).count();
    // recon() is collective: one Recon span per rank.
    assert_eq!(count(TraceKind::Recon), 4);
    // The selection search runs on the host only.
    assert_eq!(count(TraceKind::Selection), 1);
    let sel = trace
        .events
        .iter()
        .find(|e| e.kind == TraceKind::Selection)
        .unwrap();
    assert_eq!(sel.rank, 0);
    let info = sel.info.as_deref().unwrap();
    assert!(info.contains("evals="), "selection info: {info}");
    // The recon benchmark computed on every rank.
    assert!(count(TraceKind::Compute) >= 4);
    // Group-creation payloads flowed over the control communicator.
    assert!(count(TraceKind::Send) > 0);
    assert!(count(TraceKind::Recv) > 0);
}

#[test]
#[allow(deprecated)]
fn deprecated_builders_forward_to_the_consolidated_config() {
    // The pre-RuntimeConfig builder pile must keep working verbatim for
    // one deprecation cycle: same estimates, same groups, same policies.
    let rt = HmpiRuntime::new(small_cluster())
        .with_algorithm(MappingAlgorithm::Exhaustive)
        .with_collective_policy(hmpi::CollectivePolicy::Auto)
        .with_tracing();
    let report = rt.run(|h| {
        h.recon_opts(hmpi::Recon::new(10.0).fault_tolerant(true))
            .unwrap();
        let model = ModelBuilder::new("m")
            .processors(2)
            .volumes(vec![10.0, 400.0])
            .build()
            .unwrap();
        let g = h
            .group_create(hmpi::GroupSpec::new(&model).placement(0))
            .unwrap();
        let members = g.members().to_vec();
        if g.is_member() {
            h.group_free(g).unwrap();
        }
        members
    });
    assert!(report.trace.is_some(), "with_tracing still records a trace");
    let members = &report.results[0];
    assert_eq!(members[0], 0, "parent stays pinned to the host");
    let snap = rt.estimates().snapshot();
    assert!(snap.iter().all(|s| s.is_finite() && *s > 0.0));
}

#[test]
fn timeof_collective_selects_and_prices() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        // Small payload: latency-dominated, a tree beats the linear star.
        let (small_algo, small_t) = h
            .timeof_collective(hmpi::CollectiveKind::Bcast, 0, 1, 8)
            .unwrap();
        // Large payload on four ranks.
        let (large_algo, large_t) = h
            .timeof_collective(hmpi::CollectiveKind::Allreduce, 0, 1 << 16, 8)
            .unwrap();
        (small_algo, small_t, large_algo, large_t)
    });
    let (small_algo, small_t, large_algo, large_t) = report.results[0];
    assert!(small_t > 0.0 && large_t > 0.0);
    // Predictions are pure functions of globally identical inputs: every
    // rank must agree with rank 0.
    for r in &report.results {
        assert_eq!(r, &report.results[0]);
    }
    // The selector returns eligible algorithms for a 4-rank world.
    use hmpi::CollectiveAlgo;
    assert!(hmpi::CollectiveAlgo::ALL.contains(&small_algo));
    assert!(CollectiveAlgo::ALL.contains(&large_algo));
}

/// An out-of-range root in `timeof_collective` is a typed error (it used to
/// reach the selector's schedule generator and panic).
#[test]
fn timeof_collective_bad_root_is_typed_error() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        let err = h
            .timeof_collective(hmpi::CollectiveKind::Bcast, h.world().size(), 1, 8)
            .unwrap_err();
        matches!(err, HmpiError::Mpi(mpisim::MpiError::InvalidRank { .. }))
    });
    assert!(report.results.iter().all(|ok| *ok));
}

/// An out-of-range `GroupSpec::placement` rank is rejected up front as
/// `InvalidArgument` on every rank (it used to index the placement table
/// out of bounds and panic inside the parent's selection context).
#[test]
fn group_create_bad_placement_is_typed_error() {
    let rt = HmpiRuntime::new(small_cluster());
    let report = rt.run(|h| {
        let model = ModelBuilder::new("t").processors(2).build().unwrap();
        let err = h
            .group_create(GroupSpec::new(&model).placement(h.world().size()))
            .unwrap_err();
        matches!(err, HmpiError::InvalidArgument(_))
    });
    assert!(report.results.iter().all(|ok| *ok));
}
