//! `Hmpi::choose_best` — runtime algorithm selection via `HMPI_Timeof`.

use hetsim::{ClusterBuilder, Link, Protocol};
use hmpi::HmpiRuntime;
use perfmodel::{ModelBuilder, PerformanceModel};
use std::sync::Arc;

fn cluster(speeds: &[f64], latency: f64, bandwidth: f64) -> Arc<hetsim::Cluster> {
    let mut b = ClusterBuilder::new();
    for (i, &s) in speeds.iter().enumerate() {
        b = b.node(format!("h{i}"), s);
    }
    Arc::new(
        b.all_to_all(Link::new(latency, bandwidth, Protocol::Tcp))
            .build(),
    )
}

/// Two formulations of the same job: fully parallel with heavy
/// communication, or sequential on one machine with none. On a fast
/// network the parallel variant wins; on a slow network the sequential one
/// does — `choose_best` must flip with the network.
fn variants(total_work: f64, comm_bytes: f64, p: usize) -> Vec<perfmodel::builder::BuiltModel> {
    let parallel = ModelBuilder::new("parallel")
        .processors(p)
        .volumes(vec![total_work / p as f64; p])
        .comm_fn(move |_, _| comm_bytes)
        .build()
        .unwrap();
    let sequential = ModelBuilder::new("sequential")
        .processors(1)
        .volumes(vec![total_work])
        .build()
        .unwrap();
    vec![parallel, sequential]
}

#[test]
fn fast_network_prefers_the_parallel_variant() {
    let rt = HmpiRuntime::new(cluster(&[100.0; 4], 1e-6, 1e9));
    let report = rt.run(|h| {
        let vs = variants(4000.0, 1e6, 4);
        let refs: Vec<&dyn PerformanceModel> =
            vs.iter().map(|m| m as &dyn PerformanceModel).collect();
        h.choose_best(refs)
    });
    let (idx, t) = report.results[0].unwrap();
    assert_eq!(idx, 0, "parallel wins on a fast network");
    assert!(t < 40.0 * 1.5);
}

#[test]
fn slow_network_prefers_the_sequential_variant() {
    // 1 MB per pair over a 10 kB/s link dwarfs the compute saving.
    let rt = HmpiRuntime::new(cluster(&[100.0; 4], 0.5, 1e4));
    let report = rt.run(|h| {
        let vs = variants(4000.0, 1e6, 4);
        let refs: Vec<&dyn PerformanceModel> =
            vs.iter().map(|m| m as &dyn PerformanceModel).collect();
        h.choose_best(refs)
    });
    let (idx, _) = report.results[0].unwrap();
    assert_eq!(idx, 1, "sequential wins when the network is terrible");
}

#[test]
fn infeasible_variants_are_skipped() {
    // The 8-processor variant cannot run on 3 machines; choose_best must
    // fall through to the feasible one.
    let rt = HmpiRuntime::new(cluster(&[100.0; 3], 1e-4, 1e7));
    let report = rt.run(|h| {
        let big = ModelBuilder::new("too-big").processors(8).build().unwrap();
        let ok = ModelBuilder::new("fits").processors(2).build().unwrap();
        let vs: Vec<&dyn PerformanceModel> = vec![&big, &ok];
        h.choose_best(vs)
    });
    let (idx, _) = report.results[0].unwrap();
    assert_eq!(idx, 1);
}

#[test]
fn empty_iterator_yields_none() {
    let rt = HmpiRuntime::new(cluster(&[100.0; 2], 1e-4, 1e7));
    let report = rt.run(|h| h.choose_best(Vec::<&dyn PerformanceModel>::new()));
    assert!(report.results[0].is_none());
}
