//! Property tests for the parser/pretty-printer pair: for any expression
//! the generator can produce, `parse(print(e))` must yield an AST that both
//! round-trips structurally and evaluates to the same value.

use perfmodel::ast::{BinOp, Expr, UnOp};
use perfmodel::env::Env;
use perfmodel::eval::{eval_int, eval_num, Externs};
use perfmodel::value::{ArrayVal, Value};
use perfmodel::{parse_program, pretty};
use proptest::prelude::*;

/// Random expressions over variables `a`, `b`, the 1-D array `d[4]` and the
/// coordinate `I`. Leaf magnitudes and depth are bounded so products cannot
/// overflow `i64` (debug builds panic on overflow).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..8).prop_map(Expr::Int),
        Just(Expr::Var("a".into())),
        Just(Expr::Var("b".into())),
        Just(Expr::Var("I".into())),
        Just(Expr::SizeOf("double".into())),
        (0i64..4).prop_map(|i| Expr::Index(
            Box::new(Expr::Var("d".into())),
            Box::new(Expr::Int(i))
        )),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(x, y, op)| {
                let op = match op % 11 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Div,
                    4 => BinOp::Rem,
                    5 => BinOp::Eq,
                    6 => BinOp::Ne,
                    7 => BinOp::Lt,
                    8 => BinOp::Gt,
                    9 => BinOp::And,
                    _ => BinOp::Or,
                };
                Expr::Binary(op, Box::new(x), Box::new(y))
            }),
            inner
                .clone()
                .prop_map(|x| Expr::Unary(UnOp::Neg, Box::new(x))),
            inner.prop_map(|x| Expr::Unary(UnOp::Not, Box::new(x))),
        ]
    })
}

fn env() -> Env {
    let mut env = Env::new();
    env.declare("a", Value::Int(7));
    env.declare("b", Value::Int(3));
    env.declare("I", Value::Int(2));
    env.declare(
        "d",
        Value::Array(ArrayVal::new(vec![4], vec![10, 20, 30, 40]).unwrap()),
    );
    env
}

/// Embeds an expression (as printed source) into a minimal algorithm and
/// re-extracts the parsed volume expression.
fn reparse(printed: &str) -> Expr {
    let src = format!(
        "algorithm T(int a, int b, int d[4]) {{ coord I=4; node {{I>=0: bench*({printed});}}; parent[0]; scheme {{;}}; }}"
    );
    let prog = parse_program(&src).unwrap_or_else(|e| panic!("printed `{printed}` fails to parse: {e}"));
    prog.algorithms[0].node_rules[0].volume.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_expressions_reparse_to_the_same_ast(e in expr_strategy()) {
        let printed = pretty::print_expr(&e);
        let back = reparse(&printed);
        prop_assert_eq!(&back, &e, "printed as `{}`", printed);
    }

    #[test]
    fn printed_expressions_evaluate_identically(e in expr_strategy()) {
        let printed = pretty::print_expr(&e);
        let back = reparse(&printed);
        let env = env();
        let ex = Externs::new();
        // Integer context.
        let v1 = eval_int(&env, &ex, &e);
        let v2 = eval_int(&env, &ex, &back);
        prop_assert_eq!(&v1, &v2, "int eval of `{}`", printed);
        // Numeric context.
        let n1 = eval_num(&env, &ex, &e);
        let n2 = eval_num(&env, &ex, &back);
        match (n1, n2) {
            (Ok(x), Ok(y)) => prop_assert!(
                (x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()),
                "num eval of `{}`: {} vs {}",
                printed, x, y
            ),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "eval divergence on `{}`: {:?}", printed, other),
        }
    }

    #[test]
    fn int_and_num_semantics_agree_when_no_division(
        e in expr_strategy().prop_filter("division-free", |e| {
            fn has_div(e: &Expr) -> bool {
                match e {
                    Expr::Binary(BinOp::Div | BinOp::Rem, ..) => true,
                    Expr::Binary(_, a, b) => has_div(a) || has_div(b),
                    Expr::Unary(_, x) => has_div(x),
                    Expr::Index(a, b) => has_div(a) || has_div(b),
                    Expr::Member(a, _) => has_div(a),
                    _ => false,
                }
            }
            !has_div(e)
        })
    ) {
        // Without division/modulo, the int and float evaluators must agree
        // exactly (all values stay integral).
        let env = env();
        let ex = Externs::new();
        if let (Ok(i), Ok(n)) = (eval_int(&env, &ex, &e), eval_num(&env, &ex, &e)) {
            prop_assert_eq!(i as f64, n);
        }
    }
}
