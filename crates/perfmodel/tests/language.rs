//! Language-conformance tests: a broad sweep over the model-definition
//! language's constructs, semantics and error reporting, through the public
//! `CompiledModel` pipeline.

use perfmodel::{
    analyze, CompiledModel, EvalError, ParamValue, PerformanceModel, RecordingSink, SchemeEvent,
};

fn compile(src: &str) -> CompiledModel {
    CompiledModel::compile(src).expect("source parses")
}

fn events(model: &CompiledModel, params: &[ParamValue]) -> Vec<SchemeEvent> {
    let inst = model.instantiate(params).unwrap();
    let mut sink = RecordingSink::default();
    inst.run_scheme(&mut sink).unwrap();
    sink.events
}

fn computes(events: &[SchemeEvent]) -> Vec<(usize, f64)> {
    events
        .iter()
        .filter_map(|e| match e {
            SchemeEvent::Compute { proc, percent } => Some((*proc, *percent)),
            _ => None,
        })
        .collect()
}

// ---------- control flow ---------------------------------------------------

#[test]
fn sequential_for_inside_par() {
    let src = r"
        algorithm T(int p, int steps) {
            coord I=p;
            node {I>=0: bench*(1);};
            parent[0];
            scheme {
                int i, s;
                par (i = 0; i < p; i++)
                    for (s = 0; s < steps; s++)
                        (100/steps)%%[i];
            };
        }
    ";
    let m = compile(src);
    let ev = events(&m, &[ParamValue::Int(2), ParamValue::Int(4)]);
    let cs = computes(&ev);
    assert_eq!(cs.len(), 8); // 2 procs x 4 steps
    assert!(cs.iter().all(|(_, pct)| (*pct - 25.0).abs() < 1e-12));
}

#[test]
fn else_branches_and_nested_ifs() {
    let src = r"
        algorithm T(int p) {
            coord I=p;
            node {I>=0: bench*(1);};
            parent[0];
            scheme {
                int i;
                par (i = 0; i < p; i++)
                    if (i == 0) 10%%[i];
                    else if (i == 1) 20%%[i];
                    else 30%%[i];
            };
        }
    ";
    let ev = events(&compile(src), &[ParamValue::Int(3)]);
    assert_eq!(
        computes(&ev),
        vec![(0, 10.0), (1, 20.0), (2, 30.0)]
    );
}

#[test]
fn while_style_par_with_internal_step() {
    let src = r"
        algorithm T(int l) {
            coord I=1;
            node {I>=0: bench*(1);};
            parent[0];
            scheme {
                int x;
                par (x = 1; x < l; ) {
                    (100/4)%%[0];
                    x *= 2;
                }
            };
        }
    ";
    // l = 16: x = 1,2,4,8 -> 4 iterations.
    let ev = events(&compile(src), &[ParamValue::Int(16)]);
    assert_eq!(computes(&ev).len(), 4);
}

#[test]
fn decrementing_loops() {
    let src = r"
        algorithm T(int p) {
            coord I=p;
            node {I>=0: bench*(1);};
            parent[0];
            scheme {
                int i;
                for (i = p - 1; i >= 0; i--) 100%%[i];
            };
        }
    ";
    let ev = events(&compile(src), &[ParamValue::Int(3)]);
    assert_eq!(computes(&ev), vec![(2, 100.0), (1, 100.0), (0, 100.0)]);
}

// ---------- expressions -----------------------------------------------------

#[test]
fn operator_precedence_matches_c() {
    // 2 + 3 * 4 % 5 - -1 = 2 + (12 % 5) + 1 = 5... via volumes.
    let src = r"
        algorithm T(int a) {
            coord I=1;
            node {I>=0: bench*(2 + 3 * 4 % 5 - -1);};
            parent[0];
            scheme {;};
        }
    ";
    let inst = compile(src).instantiate(&[ParamValue::Int(0)]).unwrap();
    assert_eq!(inst.volumes(), &[5.0]);
}

#[test]
fn comparison_chains_via_logic() {
    let src = r"
        algorithm T(int a, int b) {
            coord I=1;
            node {I>=0: bench*((a < b) + (a <= b) + (a == b) + (a != b) + (a > b) + (a >= b));};
            parent[0];
            scheme {;};
        }
    ";
    let inst = compile(src)
        .instantiate(&[ParamValue::Int(3), ParamValue::Int(7)])
        .unwrap();
    // true: <, <=, != -> 3
    assert_eq!(inst.volumes(), &[3.0]);
}

#[test]
fn sizeof_variants_in_link_volumes() {
    let src = r"
        algorithm T(int p) {
            coord I=p;
            node {I>=0: bench*(1);};
            link (L=p) {
                I==0 && L==1 : length*(sizeof(char) + sizeof(short) + sizeof(int) + sizeof(float) + sizeof(long) + sizeof(double)) [I]->[L];
            };
            parent[0];
            scheme {;};
        }
    ";
    let inst = compile(src).instantiate(&[ParamValue::Int(2)]).unwrap();
    assert_eq!(inst.comm_bytes()[0][1], (1 + 2 + 4 + 4 + 8 + 8) as f64);
}

#[test]
fn modulo_and_division_in_guards() {
    let src = r"
        algorithm T(int p) {
            coord I=p;
            node {
                I % 2 == 0: bench*(10);
                I % 2 == 1: bench*(20);
            };
            parent[0];
            scheme {;};
        }
    ";
    let inst = compile(src).instantiate(&[ParamValue::Int(4)]).unwrap();
    assert_eq!(inst.volumes(), &[10.0, 20.0, 10.0, 20.0]);
}

#[test]
fn first_matching_node_rule_wins() {
    let src = r"
        algorithm T(int p) {
            coord I=p;
            node {
                I == 0: bench*(1);
                I >= 0: bench*(2);
            };
            parent[0];
            scheme {;};
        }
    ";
    let inst = compile(src).instantiate(&[ParamValue::Int(3)]).unwrap();
    assert_eq!(inst.volumes(), &[1.0, 2.0, 2.0]);
}

// ---------- errors ----------------------------------------------------------

#[test]
fn runtime_index_out_of_bounds_is_reported() {
    let src = r"
        algorithm T(int p, int d[p]) {
            coord I=p;
            node {I>=0: bench*(d[p]);};
            parent[0];
            scheme {;};
        }
    ";
    let err = compile(src)
        .instantiate(&[ParamValue::Int(2), ParamValue::Array(vec![1, 2])])
        .unwrap_err();
    assert!(matches!(err, EvalError::IndexOutOfBounds { .. }), "{err}");
}

#[test]
fn undefined_variable_is_reported() {
    let src = r"
        algorithm T(int p) {
            coord I=p;
            node {I>=0: bench*(mystery);};
            parent[0];
            scheme {;};
        }
    ";
    let err = compile(src).instantiate(&[ParamValue::Int(1)]).unwrap_err();
    assert!(matches!(err, EvalError::Undefined(ref n) if n == "mystery"));
}

#[test]
fn division_by_zero_in_volume_is_reported() {
    let src = r"
        algorithm T(int k) {
            coord I=1;
            node {I>=0: bench*(100/k);};
            parent[0];
            scheme {;};
        }
    ";
    let err = compile(src).instantiate(&[ParamValue::Int(0)]).unwrap_err();
    assert_eq!(err, EvalError::DivisionByZero);
}

#[test]
fn unknown_extern_function_is_reported() {
    let src = r"
        algorithm T(int p) {
            coord I=p;
            node {I>=0: bench*(1);};
            parent[0];
            scheme { Frobnicate(p); };
        }
    ";
    let m = compile(src);
    let inst = m.instantiate(&[ParamValue::Int(1)]).unwrap();
    let mut sink = RecordingSink::default();
    let err = inst.run_scheme(&mut sink).unwrap_err();
    assert!(matches!(err, EvalError::Undefined(ref n) if n.contains("Frobnicate")));
}

#[test]
fn parse_errors_point_at_the_problem() {
    // Missing semicolon after the node section.
    let src = "algorithm T(int p) { coord I=p; node {I>=0: bench*(1);} parent[0]; scheme {;}; }";
    let err = CompiledModel::compile(src).unwrap_err();
    assert!(err.line >= 1 && err.col >= 1);
    assert!(err.to_string().contains("expected"));
}

// ---------- multiple algorithms, analysis integration -----------------------

#[test]
fn several_algorithms_in_one_source() {
    let src = r"
        algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; parent[0]; scheme {;}; }
        algorithm B(int q) { coord I=q; node {I>=0: bench*(7);}; parent[0]; scheme {;}; }
    ";
    let a = CompiledModel::compile_named(src, Some("A")).unwrap();
    let b = CompiledModel::compile_named(src, Some("B")).unwrap();
    assert_eq!(
        a.instantiate(&[ParamValue::Int(2)]).unwrap().volumes(),
        &[1.0, 1.0]
    );
    assert_eq!(
        b.instantiate(&[ParamValue::Int(1)]).unwrap().volumes(),
        &[7.0]
    );
}

#[test]
fn analysis_integrates_with_parsed_models() {
    // A model whose scheme does only half the work on processor 1 gets
    // flagged by the linter through the whole pipeline.
    let src = r"
        algorithm Half(int p) {
            coord I=p;
            node {I>=0: bench*(10);};
            parent[0];
            scheme {
                100%%[0];
                50%%[1];
            };
        }
    ";
    let inst = compile(src).instantiate(&[ParamValue::Int(2)]).unwrap();
    let report = analyze(&inst).unwrap();
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn three_dimensional_coordinate_space() {
    let src = r"
        algorithm Cube(int a, int b, int c) {
            coord X=a, Y=b, Z=c;
            node {X>=0 && Y>=0 && Z>=0: bench*(X*100 + Y*10 + Z);};
            parent[0, 0, 0];
            scheme {
                100%%[1, 1, 1];
            };
        }
    ";
    let m = compile(src);
    let inst = m
        .instantiate(&[ParamValue::Int(2), ParamValue::Int(2), ParamValue::Int(2)])
        .unwrap();
    assert_eq!(inst.num_processors(), 8);
    // Linear index of (1,1,1) in a 2x2x2 row-major space is 7.
    let mut sink = RecordingSink::default();
    inst.run_scheme(&mut sink).unwrap();
    assert_eq!(
        sink.events,
        vec![SchemeEvent::Compute {
            proc: 7,
            percent: 100.0
        }]
    );
    assert_eq!(inst.volumes()[7], 111.0);
}
