//! The `scheme { ... }` interpreter.
//!
//! A scheme describes "how exactly the processes interact during the
//! execution of the algorithm". Interpreting it produces a stream of
//! *activities* — `e %% [i]` computations and `e %% [i] -> [j]` transfers —
//! structured by `par` blocks whose activities overlap in time. The stream
//! is delivered to a [`SchemeSink`]:
//!
//! * [`TimelineSink`] turns it into a predicted execution time against a
//!   [`CostModel`] (per-processor speeds plus pairwise link costs). This is
//!   the core of `HMPI_Timeof` and of the group-selection search.
//! * [`RecordingSink`] captures the raw event stream for tests and tools.
//!
//! `par` semantics: variable bindings evolve *sequentially* across the
//! iterations (Figure 7 even increments its loop variable inside the body),
//! but every iteration's activities start from the clock state at the `par`
//! entry, and the block completes at the elementwise maximum over
//! iterations — "data transfer between different pairs of processors is
//! carried out in parallel".

use crate::ast::{AssignOp, CallArg, Expr, LValue, Stmt};
use crate::env::Env;
use crate::error::EvalError;
use crate::eval::{eval_int, eval_num, eval_value, Externs};
use crate::value::{StructVal, Value};
use std::collections::HashMap;

/// Safety cap on total loop iterations while interpreting one scheme.
pub const ITERATION_LIMIT: u64 = 200_000_000;

/// Receives the activity stream of a scheme.
pub trait SchemeSink {
    /// The processor with the given linear index performs `percent` percent
    /// of its total computation volume.
    fn compute(&mut self, proc: usize, percent: f64);
    /// `percent` percent of the total `src → dst` communication volume is
    /// transferred.
    fn transfer(&mut self, src: usize, dst: usize, percent: f64);
    /// A `par` block begins.
    fn par_begin(&mut self) {}
    /// One `par` iteration's activities are complete.
    fn par_branch(&mut self) {}
    /// The `par` block ends (join).
    fn par_end(&mut self) {}
}

/// One recorded scheme event.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeEvent {
    /// Computation activity.
    Compute {
        /// Linear processor index.
        proc: usize,
        /// Percentage of the processor's total volume.
        percent: f64,
    },
    /// Transfer activity.
    Transfer {
        /// Linear source index.
        src: usize,
        /// Linear destination index.
        dst: usize,
        /// Percentage of the pair's total volume.
        percent: f64,
    },
    /// `par` entry.
    ParBegin,
    /// `par` branch boundary.
    ParBranch,
    /// `par` join.
    ParEnd,
}

/// A sink that records every event (for tests and model debugging).
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// The recorded stream.
    pub events: Vec<SchemeEvent>,
}

impl SchemeSink for RecordingSink {
    fn compute(&mut self, proc: usize, percent: f64) {
        self.events.push(SchemeEvent::Compute { proc, percent });
    }
    fn transfer(&mut self, src: usize, dst: usize, percent: f64) {
        self.events.push(SchemeEvent::Transfer { src, dst, percent });
    }
    fn par_begin(&mut self) {
        self.events.push(SchemeEvent::ParBegin);
    }
    fn par_branch(&mut self) {
        self.events.push(SchemeEvent::ParBranch);
    }
    fn par_end(&mut self) {
        self.events.push(SchemeEvent::ParEnd);
    }
}

/// Per-pair and per-processor costs the timeline is computed against.
///
/// Index space: *abstract* processors (the model's linear indices); the
/// caller maps them to physical machines before building the `CostModel`.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Estimated speed of each abstract processor's host, in benchmark units
    /// per second.
    pub speeds: Vec<f64>,
    /// One-way latency between hosts of each pair, seconds.
    pub latency: Vec<Vec<f64>>,
    /// Bandwidth between hosts of each pair, bytes/second.
    pub bandwidth: Vec<Vec<f64>>,
}

impl CostModel {
    /// A homogeneous cost model (testing convenience): `n` processors of
    /// equal `speed`, all pairs with the same `latency`/`bandwidth`.
    pub fn homogeneous(n: usize, speed: f64, latency: f64, bandwidth: f64) -> Self {
        CostModel {
            speeds: vec![speed; n],
            latency: vec![vec![latency; n]; n],
            bandwidth: vec![vec![bandwidth; n]; n],
        }
    }
}

/// Sink computing the predicted execution timeline.
#[derive(Debug, Clone)]
pub struct TimelineSink {
    cost: CostModel,
    /// Total computation volume of each abstract processor (benchmark units).
    volumes: Vec<f64>,
    /// Total bytes between each pair.
    comm: Vec<Vec<f64>>,
    clocks: Vec<f64>,
    stack: Vec<ParFrame>,
}

#[derive(Debug, Clone)]
struct ParFrame {
    snapshot: Vec<f64>,
    merged: Vec<f64>,
}

impl TimelineSink {
    /// A sink over the given cost model, per-processor volumes and pairwise
    /// communication volumes.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn new(cost: CostModel, volumes: Vec<f64>, comm: Vec<Vec<f64>>) -> Self {
        let n = volumes.len();
        assert_eq!(cost.speeds.len(), n, "cost model covers every processor");
        assert_eq!(comm.len(), n, "comm matrix is n x n");
        TimelineSink {
            cost,
            volumes,
            comm,
            clocks: vec![0.0; n],
            stack: Vec::new(),
        }
    }

    /// The predicted execution time so far: the maximum processor clock.
    pub fn total_time(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Per-processor clocks.
    pub fn clocks(&self) -> &[f64] {
        &self.clocks
    }
}

impl SchemeSink for TimelineSink {
    fn compute(&mut self, proc: usize, percent: f64) {
        let units = self.volumes[proc] * percent / 100.0;
        self.clocks[proc] += units / self.cost.speeds[proc];
    }

    fn transfer(&mut self, src: usize, dst: usize, percent: f64) {
        if src == dst {
            return;
        }
        let bytes = self.comm[src][dst] * percent / 100.0;
        if bytes <= 0.0 {
            return;
        }
        let lat = self.cost.latency[src][dst];
        let cost = lat + bytes / self.cost.bandwidth[src][dst];
        let start = self.clocks[src];
        // Sender pays the injection overhead; receiver waits for arrival
        // (mirrors mpisim's eager-send timing model).
        self.clocks[src] = start + lat;
        self.clocks[dst] = self.clocks[dst].max(start + cost);
    }

    fn par_begin(&mut self) {
        self.stack.push(ParFrame {
            snapshot: self.clocks.clone(),
            merged: self.clocks.clone(),
        });
    }

    fn par_branch(&mut self) {
        let frame = self.stack.last_mut().expect("par_branch inside par_begin");
        for (m, c) in frame.merged.iter_mut().zip(&self.clocks) {
            *m = m.max(*c);
        }
        self.clocks.clone_from(&frame.snapshot);
    }

    fn par_end(&mut self) {
        let frame = self.stack.pop().expect("par_end matches par_begin");
        self.clocks = frame.merged;
    }
}

/// Interprets a scheme body, feeding activities to `sink`.
///
/// `extents` is the coordinate space (from the `coord` declaration); activity
/// coordinates are linearised row-major against it.
///
/// # Errors
/// Any [`EvalError`] from expression evaluation, plus
/// [`EvalError::IterationLimit`] if loops run away and
/// [`EvalError::BadProcessor`] for activities outside the coordinate space.
pub fn run_scheme(
    stmts: &[Stmt],
    env: &mut Env,
    externs: &Externs,
    structs: &HashMap<String, Vec<String>>,
    extents: &[usize],
    sink: &mut dyn SchemeSink,
) -> Result<(), EvalError> {
    let mut interp = Interp {
        externs,
        structs,
        extents,
        iterations: 0,
    };
    env.push();
    let result = stmts.iter().try_for_each(|s| interp.exec(env, s, sink));
    env.pop();
    result
}

struct Interp<'a> {
    externs: &'a Externs,
    structs: &'a HashMap<String, Vec<String>>,
    extents: &'a [usize],
    iterations: u64,
}

impl Interp<'_> {
    fn tick(&mut self) -> Result<(), EvalError> {
        self.iterations += 1;
        if self.iterations > ITERATION_LIMIT {
            return Err(EvalError::IterationLimit(ITERATION_LIMIT));
        }
        Ok(())
    }

    fn linearise(&self, env: &Env, coords: &[Expr]) -> Result<usize, EvalError> {
        if coords.len() != self.extents.len() {
            return Err(EvalError::BadProcessor(format!(
                "activity names {} coordinates but the coordinate space has {}",
                coords.len(),
                self.extents.len()
            )));
        }
        let mut linear = 0usize;
        for (e, &extent) in coords.iter().zip(self.extents) {
            let c = eval_int(env, self.externs, e)?;
            if c < 0 || c as usize >= extent {
                return Err(EvalError::BadProcessor(format!(
                    "coordinate {c} outside 0..{extent}"
                )));
            }
            linear = linear * extent + c as usize;
        }
        Ok(linear)
    }

    fn read_lvalue(&self, env: &Env, lv: &LValue) -> Result<Value, EvalError> {
        match lv {
            LValue::Var(name) => Ok(env.get(name)?.clone()),
            LValue::Member(name, field) => {
                let s = env.get(name)?.as_struct()?;
                s.fields
                    .get(field)
                    .copied()
                    .map(Value::Int)
                    .ok_or_else(|| EvalError::Undefined(format!("field {field}")))
            }
        }
    }

    fn write_lvalue(&self, env: &mut Env, lv: &LValue, value: Value) -> Result<(), EvalError> {
        match lv {
            LValue::Var(name) => env.assign(name, value),
            LValue::Member(name, field) => {
                let slot = env.get_mut(name)?;
                match slot {
                    Value::Struct(s) => {
                        let v = value.as_int()?;
                        *s.fields
                            .entry(field.clone())
                            .or_insert(0) = v;
                        Ok(())
                    }
                    other => Err(EvalError::TypeError(format!(
                        "member assignment into non-struct {other}"
                    ))),
                }
            }
        }
    }

    fn exec(
        &mut self,
        env: &mut Env,
        stmt: &Stmt,
        sink: &mut dyn SchemeSink,
    ) -> Result<(), EvalError> {
        match stmt {
            Stmt::Empty => Ok(()),
            Stmt::Block(body) => {
                env.push();
                let r = body.iter().try_for_each(|s| self.exec(env, s, sink));
                env.pop();
                r
            }
            Stmt::Decl { ty, vars } => {
                for (name, init) in vars {
                    let value = if ty == "int" {
                        match init {
                            Some(e) => Value::Int(eval_int(env, self.externs, e)?),
                            None => Value::Int(0),
                        }
                    } else {
                        let fields = self.structs.get(ty).ok_or_else(|| {
                            EvalError::TypeError(format!("unknown struct type `{ty}`"))
                        })?;
                        if init.is_some() {
                            return Err(EvalError::TypeError(
                                "struct declarations cannot take initialisers".into(),
                            ));
                        }
                        Value::Struct(StructVal {
                            type_name: ty.clone(),
                            fields: fields.iter().map(|f| (f.clone(), 0)).collect(),
                        })
                    };
                    env.declare(name.clone(), value);
                }
                Ok(())
            }
            Stmt::Assign { lv, op, rhs } => {
                let new = match op {
                    AssignOp::Set => eval_value(env, self.externs, rhs)?,
                    AssignOp::Add | AssignOp::Sub | AssignOp::Mul => {
                        let old = self.read_lvalue(env, lv)?.as_int()?;
                        let r = eval_int(env, self.externs, rhs)?;
                        Value::Int(match op {
                            AssignOp::Add => old + r,
                            AssignOp::Sub => old - r,
                            AssignOp::Mul => old * r,
                            AssignOp::Set => unreachable!(),
                        })
                    }
                };
                self.write_lvalue(env, lv, new)
            }
            Stmt::If { cond, then, els } => {
                if eval_int(env, self.externs, cond)? != 0 {
                    self.exec(env, then, sink)
                } else if let Some(e) = els {
                    self.exec(env, e, sink)
                } else {
                    Ok(())
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.exec(env, i, sink)?;
                }
                loop {
                    match cond {
                        Some(c) if eval_int(env, self.externs, c)? == 0 => break,
                        None => {
                            return Err(EvalError::TypeError(
                                "for loop without a condition never terminates".into(),
                            ))
                        }
                        _ => {}
                    }
                    self.tick()?;
                    self.exec(env, body, sink)?;
                    if let Some(s) = step {
                        self.exec(env, s, sink)?;
                    }
                }
                Ok(())
            }
            Stmt::Par {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.exec(env, i, sink)?;
                }
                sink.par_begin();
                let result = (|| -> Result<(), EvalError> {
                    loop {
                        match cond {
                            Some(c) if eval_int(env, self.externs, c)? == 0 => break,
                            None => {
                                return Err(EvalError::TypeError(
                                    "par loop without a condition never terminates".into(),
                                ))
                            }
                            _ => {}
                        }
                        self.tick()?;
                        self.exec(env, body, sink)?;
                        if let Some(s) = step {
                            self.exec(env, s, sink)?;
                        }
                        sink.par_branch();
                    }
                    Ok(())
                })();
                sink.par_end();
                result
            }
            Stmt::Compute { percent, proc } => {
                let pct = eval_num(env, self.externs, percent)?;
                let p = self.linearise(env, proc)?;
                sink.compute(p, pct);
                Ok(())
            }
            Stmt::Transfer { percent, src, dst } => {
                let pct = eval_num(env, self.externs, percent)?;
                let s = self.linearise(env, src)?;
                let d = self.linearise(env, dst)?;
                sink.transfer(s, d, pct);
                Ok(())
            }
            Stmt::CallStmt { name, args } => {
                let f = self.externs.get(name)?.clone();
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(match a {
                        CallArg::Value(e) => eval_value(env, self.externs, e)?,
                        CallArg::OutRef(lv) => self.read_lvalue(env, lv)?,
                    });
                }
                let result = f(&vals)?;
                let out_refs: Vec<&LValue> = args
                    .iter()
                    .filter_map(|a| match a {
                        CallArg::OutRef(lv) => Some(lv),
                        CallArg::Value(_) => None,
                    })
                    .collect();
                if out_refs.len() != result.outs.len() {
                    return Err(EvalError::ExternError {
                        name: name.clone(),
                        message: format!(
                            "returned {} out-values for {} &-arguments",
                            result.outs.len(),
                            out_refs.len()
                        ),
                    });
                }
                for (lv, v) in out_refs.into_iter().zip(result.outs) {
                    self.write_lvalue(env, lv, v)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn scheme_of(src: &str) -> (Vec<Stmt>, Vec<usize>, HashMap<String, Vec<String>>) {
        let prog = parse_program(src).unwrap();
        let a = &prog.algorithms[0];
        let structs = prog
            .typedefs
            .iter()
            .map(|t| (t.name.clone(), t.fields.clone()))
            .collect();
        // Coordinates are tests' business: extents resolved by the caller.
        (a.scheme.clone(), Vec::new(), structs)
    }

    fn run(
        src: &str,
        params: &[(&str, i64)],
        extents: Vec<usize>,
    ) -> Result<RecordingSink, EvalError> {
        let (stmts, _, structs) = scheme_of(src);
        let mut env = Env::new();
        for (n, v) in params {
            env.declare(*n, Value::Int(*v));
        }
        let externs = Externs::with_builtins();
        let mut sink = RecordingSink::default();
        run_scheme(&stmts, &mut env, &externs, &structs, &extents, &mut sink)?;
        Ok(sink)
    }

    #[test]
    fn par_emits_fork_join_structure() {
        let src = r"
            algorithm T(int p) {
                coord I=p;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    int i;
                    par (i = 0; i < p; i++) 100%%[i];
                };
            }
        ";
        let sink = run(src, &[("p", 3)], vec![3]).unwrap();
        assert_eq!(
            sink.events,
            vec![
                SchemeEvent::ParBegin,
                SchemeEvent::Compute {
                    proc: 0,
                    percent: 100.0
                },
                SchemeEvent::ParBranch,
                SchemeEvent::Compute {
                    proc: 1,
                    percent: 100.0
                },
                SchemeEvent::ParBranch,
                SchemeEvent::Compute {
                    proc: 2,
                    percent: 100.0
                },
                SchemeEvent::ParBranch,
                SchemeEvent::ParEnd,
            ]
        );
    }

    #[test]
    fn two_dim_coordinates_linearise_row_major() {
        let src = r"
            algorithm T(int m) {
                coord I=m, J=m;
                node {I>=0 && J>=0: bench*(1);};
                parent[0,0];
                scheme {
                    (100)%%[1, 2];
                };
            }
        ";
        let sink = run(src, &[("m", 3)], vec![3, 3]).unwrap();
        assert_eq!(
            sink.events,
            vec![SchemeEvent::Compute {
                proc: 5,
                percent: 100.0
            }]
        );
    }

    #[test]
    fn out_of_range_coordinate_rejected() {
        let src = r"
            algorithm T(int p) {
                coord I=p;
                node {I>=0: bench*(1);};
                parent[0];
                scheme { 100%%[p]; };
            }
        ";
        let err = run(src, &[("p", 2)], vec![2]).unwrap_err();
        assert!(matches!(err, EvalError::BadProcessor(_)));
    }

    #[test]
    fn percent_expressions_use_true_division() {
        let src = r"
            algorithm T(int n) {
                coord I=1;
                node {I>=0: bench*(1);};
                parent[0];
                scheme { (100/n)%%[0]; };
            }
        ";
        let sink = run(src, &[("n", 400)], vec![1]).unwrap();
        assert_eq!(
            sink.events,
            vec![SchemeEvent::Compute {
                proc: 0,
                percent: 0.25
            }]
        );
    }

    #[test]
    fn loop_variable_mutation_inside_par_body() {
        // The Figure 7 pattern: par with an empty step, stepping inside.
        let src = r"
            algorithm T(int l) {
                coord I=1;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    int Arow, count;
                    count = 0;
                    par (Arow = 0; Arow < l; ) {
                        count++;
                        Arow += 2;
                    }
                };
            }
        ";
        // l = 7, step 2 -> iterations at 0,2,4,6 -> 4 branches.
        let sink = run(src, &[("l", 7)], vec![1]).unwrap();
        let branches = sink
            .events
            .iter()
            .filter(|e| **e == SchemeEvent::ParBranch)
            .count();
        assert_eq!(branches, 4);
    }

    #[test]
    fn struct_vars_and_getprocessor() {
        let src = r"
            typedef struct {int I; int J;} Processor;
            algorithm T(int m, int w[m], int h[m][m][m][m]) {
                coord I=m, J=m;
                node {I>=0 && J>=0: bench*(1);};
                parent[0,0];
                scheme {
                    Processor Root;
                    GetProcessor(0, 1, m, h, w, &Root);
                    100%%[Root.I, Root.J];
                };
            }
        ";
        let (stmts, _, structs) = scheme_of(src);
        let mut env = Env::new();
        env.declare("m", Value::Int(2));
        env.declare(
            "w",
            Value::Array(crate::value::ArrayVal::new(vec![2], vec![1, 1]).unwrap()),
        );
        let mut h = vec![0i64; 16];
        let at = |i: usize, j: usize, k: usize, l: usize| ((i * 2 + j) * 2 + k) * 2 + l;
        h[at(0, 0, 0, 0)] = 1;
        h[at(1, 0, 1, 0)] = 1;
        h[at(0, 1, 0, 1)] = 1;
        h[at(1, 1, 1, 1)] = 1;
        env.declare(
            "h",
            Value::Array(crate::value::ArrayVal::new(vec![2, 2, 2, 2], h).unwrap()),
        );
        let externs = Externs::with_builtins();
        let mut sink = RecordingSink::default();
        run_scheme(&stmts, &mut env, &externs, &structs, &[2, 2], &mut sink).unwrap();
        // Block (0,1) belongs to grid processor (0,1) -> linear index 1.
        assert_eq!(
            sink.events,
            vec![SchemeEvent::Compute {
                proc: 1,
                percent: 100.0
            }]
        );
    }

    #[test]
    fn timeline_par_overlaps_and_seq_chains() {
        // Two computations in a par overlap; in sequence they chain.
        let cost = CostModel::homogeneous(2, 1.0, 0.0, 1e9);
        let volumes = vec![10.0, 20.0];
        let comm = vec![vec![0.0; 2]; 2];

        let mut sink = TimelineSink::new(cost.clone(), volumes.clone(), comm.clone());
        sink.par_begin();
        sink.compute(0, 100.0);
        sink.par_branch();
        sink.compute(1, 100.0);
        sink.par_branch();
        sink.par_end();
        assert_eq!(sink.total_time(), 20.0);

        let mut sink = TimelineSink::new(cost, volumes, comm);
        sink.compute(0, 100.0);
        sink.compute(0, 100.0);
        assert_eq!(sink.total_time(), 20.0); // same proc twice: serial
    }

    #[test]
    fn timeline_transfer_couples_clocks() {
        let cost = CostModel::homogeneous(2, 1.0, 0.5, 100.0);
        let volumes = vec![0.0, 0.0];
        let mut comm = vec![vec![0.0; 2]; 2];
        comm[0][1] = 200.0; // bytes
        let mut sink = TimelineSink::new(cost, volumes, comm);
        sink.transfer(0, 1, 50.0); // 100 bytes: 0.5 + 1.0 = 1.5 s
        assert!((sink.clocks()[1] - 1.5).abs() < 1e-12);
        assert!((sink.clocks()[0] - 0.5).abs() < 1e-12); // sender overhead
    }

    #[test]
    fn for_loop_without_condition_is_rejected() {
        // `for (;;)` would never terminate; the interpreter refuses it
        // instead of hitting the iteration cap.
        let src = r"
            algorithm T(int p) {
                coord I=1;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    int i;
                    for (i = 0; ; i++) { ; }
                };
            }
        ";
        let err = run(src, &[("p", 1)], vec![1]).unwrap_err();
        assert!(matches!(err, EvalError::TypeError(_)));
    }

    #[test]
    fn nested_par_timeline() {
        // Outer par of two branches; each branch computes on a different
        // processor; inner activities overlap globally.
        let cost = CostModel::homogeneous(3, 1.0, 0.0, 1e9);
        let volumes = vec![5.0, 7.0, 9.0];
        let comm = vec![vec![0.0; 3]; 3];
        let mut sink = TimelineSink::new(cost, volumes, comm);
        sink.par_begin();
        {
            sink.par_begin();
            sink.compute(0, 100.0);
            sink.par_branch();
            sink.compute(1, 100.0);
            sink.par_branch();
            sink.par_end();
        }
        sink.par_branch();
        sink.compute(2, 100.0);
        sink.par_branch();
        sink.par_end();
        assert_eq!(sink.total_time(), 9.0);
    }
}
