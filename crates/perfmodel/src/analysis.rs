//! Model analysis ("linter"): does the `scheme` actually account for the
//! volumes the `node` and `link` sections declare?
//!
//! A performance model is only as good as its internal consistency: if the
//! scheme's computation steps sum to 40 % of a processor's declared volume,
//! `HMPI_Timeof` will underestimate by 2.5× and `HMPI_Group_create` will
//! optimise the wrong objective. [`analyze`] replays the scheme through a
//! coverage-accumulating sink and reports, per processor and per pair, how
//! much of the declared volume the scheme actually exercises — plus a list
//! of typed [`Finding`]s for anything suspicious. The shipped Figure 4 and
//! Figure 7 models pass clean (see the paper-model tests).

use crate::error::EvalError;
use crate::model::PerformanceModel;
use crate::scheme::SchemeSink;

/// Accumulates percentage coverage per processor and per pair.
#[derive(Debug, Clone)]
pub struct CoverageSink {
    /// Summed computation percentages per processor.
    pub compute: Vec<f64>,
    /// Summed transfer percentages per ordered pair.
    pub transfer: Vec<Vec<f64>>,
    /// Maximum observed `par` nesting depth.
    pub max_par_depth: usize,
    depth: usize,
}

impl CoverageSink {
    /// A sink for `n` processors.
    pub fn new(n: usize) -> Self {
        CoverageSink {
            compute: vec![0.0; n],
            transfer: vec![vec![0.0; n]; n],
            max_par_depth: 0,
            depth: 0,
        }
    }
}

impl SchemeSink for CoverageSink {
    fn compute(&mut self, proc: usize, percent: f64) {
        self.compute[proc] += percent;
    }
    fn transfer(&mut self, src: usize, dst: usize, percent: f64) {
        self.transfer[src][dst] += percent;
    }
    fn par_begin(&mut self) {
        self.depth += 1;
        self.max_par_depth = self.max_par_depth.max(self.depth);
    }
    fn par_end(&mut self) {
        self.depth -= 1;
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// A processor's scheme computation percentages are far from 100 %.
    ComputeCoverage {
        /// Linear processor index.
        proc: usize,
        /// Total percentage the scheme performs.
        total_percent: f64,
    },
    /// A pair's scheme transfer percentages are far from 100 %.
    TransferCoverage {
        /// Source index.
        src: usize,
        /// Destination index.
        dst: usize,
        /// Total percentage the scheme transfers.
        total_percent: f64,
    },
    /// The scheme transfers on a pair whose declared volume is zero (the
    /// step is free — usually a link-rule guard mistake).
    TransferWithoutVolume {
        /// Source index.
        src: usize,
        /// Destination index.
        dst: usize,
    },
    /// A processor has zero declared computation volume (idle by model).
    IdleProcessor {
        /// Linear processor index.
        proc: usize,
    },
    /// The scheme performed no activity at all for a processor that has
    /// declared volume.
    UnexercisedProcessor {
        /// Linear processor index.
        proc: usize,
    },
}

/// The analysis result.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Coverage data the findings were derived from.
    pub coverage: CoverageSink,
    /// Suspicious aspects, in detection order.
    pub findings: Vec<Finding>,
}

impl ModelReport {
    /// True if the model passed with no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Coverage within `100 ± COVERAGE_TOLERANCE` percent counts as complete.
pub const COVERAGE_TOLERANCE: f64 = 2.0;

/// Replays the scheme and checks it against the declared volumes.
///
/// # Errors
/// Propagates scheme evaluation errors.
#[allow(clippy::needless_range_loop)]
pub fn analyze(model: &dyn PerformanceModel) -> Result<ModelReport, EvalError> {
    let n = model.num_processors();
    let mut sink = CoverageSink::new(n);
    model.run_scheme(&mut sink)?;

    let mut findings = Vec::new();
    let volumes = model.volumes();
    let comm = model.comm_bytes();

    for p in 0..n {
        if volumes[p] == 0.0 {
            findings.push(Finding::IdleProcessor { proc: p });
            continue;
        }
        let total = sink.compute[p];
        if total == 0.0 {
            findings.push(Finding::UnexercisedProcessor { proc: p });
        } else if (total - 100.0).abs() > COVERAGE_TOLERANCE {
            findings.push(Finding::ComputeCoverage {
                proc: p,
                total_percent: total,
            });
        }
    }
    for s in 0..n {
        for d in 0..n {
            let total = sink.transfer[s][d];
            if comm[s][d] > 0.0 {
                if (total - 100.0).abs() > COVERAGE_TOLERANCE {
                    findings.push(Finding::TransferCoverage {
                        src: s,
                        dst: d,
                        total_percent: total,
                    });
                }
            } else if total > 0.0 {
                findings.push(Finding::TransferWithoutVolume { src: s, dst: d });
            }
        }
    }

    Ok(ModelReport {
        coverage: sink,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    #[test]
    fn default_scheme_is_clean() {
        let model = ModelBuilder::new("ok")
            .processors(3)
            .volumes(vec![10.0, 20.0, 30.0])
            .comm_fn(|s, d| if s < d { 100.0 } else { 0.0 })
            .build()
            .unwrap();
        let report = analyze(&model).unwrap();
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.coverage.compute, vec![100.0; 3]);
    }

    #[test]
    fn undercovered_compute_is_flagged() {
        let model = ModelBuilder::new("half")
            .processors(2)
            .volumes(vec![10.0, 10.0])
            .scheme(|sink| {
                sink.compute(0, 100.0);
                sink.compute(1, 50.0); // only half of processor 1's volume
            })
            .build()
            .unwrap();
        let report = analyze(&model).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ComputeCoverage { proc: 1, .. })));
    }

    #[test]
    fn unexercised_processor_is_flagged() {
        let model = ModelBuilder::new("skip")
            .processors(2)
            .volumes(vec![10.0, 10.0])
            .scheme(|sink| sink.compute(0, 100.0))
            .build()
            .unwrap();
        let report = analyze(&model).unwrap();
        assert_eq!(
            report.findings,
            vec![Finding::UnexercisedProcessor { proc: 1 }]
        );
    }

    #[test]
    fn transfer_on_zero_volume_pair_is_flagged() {
        let model = ModelBuilder::new("ghost")
            .processors(2)
            .volumes(vec![10.0, 10.0])
            .scheme(|sink| {
                sink.compute(0, 100.0);
                sink.compute(1, 100.0);
                sink.transfer(0, 1, 100.0); // no declared link volume
            })
            .build()
            .unwrap();
        let report = analyze(&model).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::TransferWithoutVolume { src: 0, dst: 1 })));
    }

    #[test]
    fn idle_processor_is_flagged_not_counted_as_unexercised() {
        let model = ModelBuilder::new("idle")
            .processors(2)
            .volumes(vec![10.0, 0.0])
            .scheme(|sink| sink.compute(0, 100.0))
            .build()
            .unwrap();
        let report = analyze(&model).unwrap();
        assert_eq!(report.findings, vec![Finding::IdleProcessor { proc: 1 }]);
    }

    #[test]
    fn iterated_partial_steps_sum_to_full_coverage() {
        let model = ModelBuilder::new("steps")
            .processors(1)
            .volumes(vec![10.0])
            .scheme(|sink| {
                for _ in 0..4 {
                    sink.compute(0, 25.0);
                }
            })
            .build()
            .unwrap();
        let report = analyze(&model).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn par_depth_is_tracked() {
        let model = ModelBuilder::new("nest")
            .processors(1)
            .volumes(vec![1.0])
            .scheme(|sink| {
                sink.par_begin();
                sink.par_begin();
                sink.compute(0, 100.0);
                sink.par_end();
                sink.par_end();
            })
            .build()
            .unwrap();
        let report = analyze(&model).unwrap();
        assert_eq!(report.coverage.max_par_depth, 2);
    }
}
