//! Runtime values of the model language.

use crate::error::EvalError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A multi-dimensional integer array (model parameters like `int d[p]` or
/// `int h[m][m][m][m]`), stored flat in row-major order. Shared cheaply via
/// `Arc` — parameter arrays can be large and are read-only after binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayVal {
    /// Extent of each dimension.
    pub dims: Vec<usize>,
    /// Row-major data; `data.len() == dims.iter().product()`.
    pub data: Arc<Vec<i64>>,
}

impl ArrayVal {
    /// Builds an array, checking the shape.
    ///
    /// # Errors
    /// [`EvalError::BadParameters`] if `data.len()` does not match the dims.
    pub fn new(dims: Vec<usize>, data: Vec<i64>) -> Result<Self, EvalError> {
        let expect: usize = dims.iter().product();
        if data.len() != expect {
            return Err(EvalError::BadParameters(format!(
                "array data has {} elements but dims {:?} require {}",
                data.len(),
                dims,
                expect
            )));
        }
        Ok(ArrayVal {
            dims,
            data: Arc::new(data),
        })
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Indexes with a full coordinate vector.
    ///
    /// # Errors
    /// [`EvalError::IndexOutOfBounds`] on any out-of-range coordinate,
    /// [`EvalError::TypeError`] on wrong arity.
    pub fn get(&self, name: &str, idx: &[i64]) -> Result<i64, EvalError> {
        if idx.len() != self.dims.len() {
            return Err(EvalError::TypeError(format!(
                "`{name}` has rank {} but was indexed with {} subscripts",
                self.dims.len(),
                idx.len()
            )));
        }
        let mut flat = 0usize;
        for (&i, &extent) in idx.iter().zip(&self.dims) {
            if i < 0 || i as usize >= extent {
                return Err(EvalError::IndexOutOfBounds {
                    name: name.to_string(),
                    index: i,
                    extent,
                });
            }
            flat = flat * extent + i as usize;
        }
        Ok(self.data[flat])
    }
}

/// A struct value (all fields are ints), e.g. the Figure 7 `Processor`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructVal {
    /// Typedef name.
    pub type_name: String,
    /// Field values.
    pub fields: BTreeMap<String, i64>,
}

/// Any runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// An integer array.
    Array(ArrayVal),
    /// A struct of integer fields.
    Struct(StructVal),
}

impl Value {
    /// Extracts an integer.
    ///
    /// # Errors
    /// [`EvalError::TypeError`] otherwise.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(EvalError::TypeError(format!(
                "expected int, found {other}"
            ))),
        }
    }

    /// Extracts an array.
    ///
    /// # Errors
    /// [`EvalError::TypeError`] otherwise.
    pub fn as_array(&self) -> Result<&ArrayVal, EvalError> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(EvalError::TypeError(format!(
                "expected array, found {other}"
            ))),
        }
    }

    /// Extracts a struct.
    ///
    /// # Errors
    /// [`EvalError::TypeError`] otherwise.
    pub fn as_struct(&self) -> Result<&StructVal, EvalError> {
        match self {
            Value::Struct(s) => Ok(s),
            other => Err(EvalError::TypeError(format!(
                "expected struct, found {other}"
            ))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Array(a) => write!(f, "int[{:?}]", a.dims),
            Value::Struct(s) => write!(f, "{} {{..}}", s.type_name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_shape_checked() {
        assert!(ArrayVal::new(vec![2, 3], vec![0; 6]).is_ok());
        assert!(ArrayVal::new(vec![2, 3], vec![0; 5]).is_err());
    }

    #[test]
    fn row_major_indexing() {
        let a = ArrayVal::new(vec![2, 3], (0..6).collect()).unwrap();
        assert_eq!(a.get("a", &[0, 0]).unwrap(), 0);
        assert_eq!(a.get("a", &[0, 2]).unwrap(), 2);
        assert_eq!(a.get("a", &[1, 0]).unwrap(), 3);
        assert_eq!(a.get("a", &[1, 2]).unwrap(), 5);
    }

    #[test]
    fn four_dimensional_indexing() {
        // h[m][m][m][m] with m=2: h[i][j][k][l] = 8i+4j+2k+l
        let a = ArrayVal::new(vec![2, 2, 2, 2], (0..16).collect()).unwrap();
        assert_eq!(a.get("h", &[1, 0, 1, 1]).unwrap(), 11);
    }

    #[test]
    fn bounds_and_arity_errors() {
        let a = ArrayVal::new(vec![2, 3], (0..6).collect()).unwrap();
        assert!(matches!(
            a.get("a", &[2, 0]),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            a.get("a", &[-1, 0]),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(a.get("a", &[0]), Err(EvalError::TypeError(_))));
    }

    #[test]
    fn value_extractors() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert!(Value::Int(5).as_array().is_err());
        let s = Value::Struct(StructVal {
            type_name: "Processor".into(),
            fields: [("I".to_string(), 1i64)].into_iter().collect(),
        });
        assert_eq!(s.as_struct().unwrap().fields["I"], 1);
    }
}
