//! Typed builder front-end.
//!
//! Rust applications that don't want to ship model *source text* can
//! assemble the same artefact programmatically: a [`ModelBuilder`] produces
//! a [`BuiltModel`] implementing [`PerformanceModel`], interchangeable with
//! a parsed [`crate::CompiledModel`] instance everywhere the HMPI runtime
//! accepts a model.

use crate::error::EvalError;
use crate::model::PerformanceModel;
use crate::scheme::SchemeSink;
use std::sync::Arc;

type SchemeFn = Arc<dyn Fn(&mut dyn SchemeSink) + Send + Sync>;

/// Builds a [`BuiltModel`] step by step.
///
/// ```
/// use perfmodel::{ModelBuilder, PerformanceModel};
///
/// let model = ModelBuilder::new("ring")
///     .processors(4)
///     .volumes_fn(|i| 10.0 * (i + 1) as f64)
///     .comm_fn(|s, d| if (s + 1) % 4 == d { 1024.0 } else { 0.0 })
///     .parent(0)
///     .build()
///     .unwrap();
/// assert_eq!(model.num_processors(), 4);
/// assert_eq!(model.comm_bytes()[3][0], 1024.0);
/// ```
#[derive(Clone)]
pub struct ModelBuilder {
    name: String,
    extents: Vec<usize>,
    volumes: Option<Vec<f64>>,
    comm: Option<Vec<Vec<f64>>>,
    parent: usize,
    scheme: Option<SchemeFn>,
}

impl std::fmt::Debug for ModelBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBuilder")
            .field("name", &self.name)
            .field("extents", &self.extents)
            .field("has_scheme", &self.scheme.is_some())
            .finish()
    }
}

impl ModelBuilder {
    /// Starts a builder for a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder {
            name: name.into(),
            extents: Vec::new(),
            volumes: None,
            comm: None,
            parent: 0,
            scheme: None,
        }
    }

    /// A linear arrangement of `p` abstract processors (`coord I=p`).
    pub fn processors(mut self, p: usize) -> Self {
        self.extents = vec![p];
        self
    }

    /// A multi-dimensional arrangement (`coord I=m, J=m` is `grid([m, m])`).
    pub fn grid(mut self, extents: &[usize]) -> Self {
        self.extents = extents.to_vec();
        self
    }

    /// Per-processor computation volumes in benchmark units, by vector.
    pub fn volumes(mut self, v: Vec<f64>) -> Self {
        self.volumes = Some(v);
        self
    }

    /// Per-processor volumes by function of the linear index.
    pub fn volumes_fn(mut self, f: impl Fn(usize) -> f64) -> Self {
        let n: usize = self.extents.iter().product();
        self.volumes = Some((0..n).map(f).collect());
        self
    }

    /// Pairwise communication volumes (bytes), by matrix.
    pub fn comm(mut self, m: Vec<Vec<f64>>) -> Self {
        self.comm = Some(m);
        self
    }

    /// Pairwise communication volumes by function of `(src, dst)` linear
    /// indices.
    pub fn comm_fn(mut self, f: impl Fn(usize, usize) -> f64) -> Self {
        let n: usize = self.extents.iter().product();
        self.comm = Some(
            (0..n)
                .map(|s| (0..n).map(|d| if s == d { 0.0 } else { f(s, d) }).collect())
                .collect(),
        );
        self
    }

    /// The parent's linear index (defaults to 0).
    pub fn parent(mut self, p: usize) -> Self {
        self.parent = p;
        self
    }

    /// The interaction scheme, as a closure emitting activities. If omitted,
    /// the default bulk-synchronous pattern is used (all transfers in
    /// parallel, then all computations in parallel).
    pub fn scheme(mut self, f: impl Fn(&mut dyn SchemeSink) + Send + Sync + 'static) -> Self {
        self.scheme = Some(Arc::new(f));
        self
    }

    /// Draws an arbitrary valid model with `1..=max_p` abstract processors:
    /// random volumes, a random-density communication matrix, a random
    /// parent, and — half the time — a random explicit interaction scheme
    /// mixing serial activities with `par` blocks. The same
    /// `(seed, max_p)` always produces the identical model; this is the
    /// scheme generator backing the scenario fuzzer.
    ///
    /// # Panics
    /// Panics if `max_p == 0`.
    pub fn random(seed: u64, max_p: usize) -> BuiltModel {
        use rand::{Rng, SeedableRng, StdRng};
        assert!(max_p > 0, "need room for at least one processor");
        let mut rng = StdRng::seed_from_u64(seed);
        let p = rng.random_range(0..max_p) + 1;
        let volumes: Vec<f64> = (0..p).map(|_| rng.random_range(1.0..100.0)).collect();
        let density = rng.random_range(0.0..1.0);
        let comm: Vec<Vec<f64>> = (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s != d && rng.random_range(0.0..1.0) < density {
                            rng.random_range(64.0..65536.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let mut b = ModelBuilder::new(format!("random-{seed:#x}"))
            .processors(p)
            .volumes(volumes)
            .comm(comm)
            .parent(rng.random_range(0..p));
        if rng.random_range(0u32..2) == 0 {
            // An explicit scheme, precomputed as an op list so the replaying
            // closure stays `Fn` (no RNG state mutated at run time).
            #[derive(Clone)]
            enum Op {
                Compute(usize, f64),
                Transfer(usize, usize, f64),
                ParBegin,
                ParBranch,
                ParEnd,
            }
            let activity = |rng: &mut StdRng, ops: &mut Vec<Op>| {
                if p >= 2 && rng.random_range(0u32..2) == 0 {
                    let src = rng.random_range(0..p);
                    let mut dst = rng.random_range(0..p);
                    while dst == src {
                        dst = rng.random_range(0..p);
                    }
                    ops.push(Op::Transfer(src, dst, rng.random_range(1.0..100.0)));
                } else {
                    ops.push(Op::Compute(
                        rng.random_range(0..p),
                        rng.random_range(1.0..100.0),
                    ));
                }
            };
            let mut ops = Vec::new();
            for _ in 0..rng.random_range(1..4) {
                if rng.random_range(0u32..2) == 0 {
                    for _ in 0..rng.random_range(1..4) {
                        activity(&mut rng, &mut ops);
                    }
                } else {
                    ops.push(Op::ParBegin);
                    for _ in 0..rng.random_range(1..4) {
                        activity(&mut rng, &mut ops);
                        ops.push(Op::ParBranch);
                    }
                    ops.push(Op::ParEnd);
                }
            }
            b = b.scheme(move |sink| {
                for op in &ops {
                    match *op {
                        Op::Compute(proc, pct) => sink.compute(proc, pct),
                        Op::Transfer(src, dst, pct) => sink.transfer(src, dst, pct),
                        Op::ParBegin => sink.par_begin(),
                        Op::ParBranch => sink.par_branch(),
                        Op::ParEnd => sink.par_end(),
                    }
                }
            });
        }
        b.build().expect("generator always satisfies build validation")
    }

    /// Validates and builds.
    ///
    /// # Errors
    /// [`EvalError::BadParameters`] on missing extents or shape mismatches.
    pub fn build(self) -> Result<BuiltModel, EvalError> {
        if self.extents.is_empty() || self.extents.contains(&0) {
            return Err(EvalError::BadParameters(
                "model needs a non-empty processor arrangement".into(),
            ));
        }
        let n: usize = self.extents.iter().product();
        let volumes = self.volumes.unwrap_or_else(|| vec![1.0; n]);
        if volumes.len() != n {
            return Err(EvalError::BadParameters(format!(
                "{} volumes for {} processors",
                volumes.len(),
                n
            )));
        }
        if volumes.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(EvalError::BadParameters(
                "volumes must be finite and non-negative".into(),
            ));
        }
        let comm = self.comm.unwrap_or_else(|| vec![vec![0.0; n]; n]);
        if comm.len() != n || comm.iter().any(|row| row.len() != n) {
            return Err(EvalError::BadParameters(format!(
                "communication matrix must be {n} x {n}"
            )));
        }
        if self.parent >= n {
            return Err(EvalError::BadParameters(format!(
                "parent {} outside 0..{n}",
                self.parent
            )));
        }
        Ok(BuiltModel {
            name: self.name,
            extents: self.extents,
            volumes,
            comm,
            parent: self.parent,
            scheme: self.scheme,
        })
    }
}

/// A performance model assembled with [`ModelBuilder`].
#[derive(Clone)]
pub struct BuiltModel {
    name: String,
    extents: Vec<usize>,
    volumes: Vec<f64>,
    comm: Vec<Vec<f64>>,
    parent: usize,
    scheme: Option<SchemeFn>,
}

impl std::fmt::Debug for BuiltModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltModel")
            .field("name", &self.name)
            .field("extents", &self.extents)
            .field("parent", &self.parent)
            .finish()
    }
}

impl BuiltModel {
    /// The coordinate extents.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }
}

impl PerformanceModel for BuiltModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_processors(&self) -> usize {
        self.volumes.len()
    }

    fn volumes(&self) -> &[f64] {
        &self.volumes
    }

    fn comm_bytes(&self) -> &[Vec<f64>] {
        &self.comm
    }

    fn parent(&self) -> usize {
        self.parent
    }

    fn run_scheme(&self, sink: &mut dyn SchemeSink) -> Result<(), EvalError> {
        match &self.scheme {
            Some(f) => {
                f(sink);
                Ok(())
            }
            None => {
                sink.par_begin();
                for s in 0..self.num_processors() {
                    for d in 0..self.num_processors() {
                        if s != d && self.comm[s][d] > 0.0 {
                            sink.transfer(s, d, 100.0);
                        }
                    }
                    sink.par_branch();
                }
                sink.par_end();
                sink.par_begin();
                for p in 0..self.num_processors() {
                    sink.compute(p, 100.0);
                    sink.par_branch();
                }
                sink.par_end();
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{CostModel, RecordingSink, SchemeEvent};

    #[test]
    fn builder_defaults() {
        let m = ModelBuilder::new("t").processors(3).build().unwrap();
        assert_eq!(m.num_processors(), 3);
        assert_eq!(m.volumes(), &[1.0, 1.0, 1.0]);
        assert_eq!(m.parent(), 0);
    }

    #[test]
    fn builder_validation() {
        assert!(ModelBuilder::new("t").build().is_err()); // no extents
        assert!(ModelBuilder::new("t")
            .processors(2)
            .volumes(vec![1.0])
            .build()
            .is_err());
        assert!(ModelBuilder::new("t")
            .processors(2)
            .parent(5)
            .build()
            .is_err());
        assert!(ModelBuilder::new("t")
            .processors(2)
            .volumes(vec![f64::NAN, 1.0])
            .build()
            .is_err());
    }

    #[test]
    fn comm_fn_zeroes_diagonal() {
        let m = ModelBuilder::new("t")
            .processors(3)
            .comm_fn(|_, _| 100.0)
            .build()
            .unwrap();
        assert_eq!(m.comm_bytes()[1][1], 0.0);
        assert_eq!(m.comm_bytes()[0][2], 100.0);
    }

    #[test]
    fn custom_scheme_is_replayed() {
        let m = ModelBuilder::new("t")
            .processors(2)
            .volumes(vec![10.0, 10.0])
            .scheme(|sink| {
                sink.compute(0, 50.0);
                sink.compute(1, 100.0);
            })
            .build()
            .unwrap();
        let mut rec = RecordingSink::default();
        m.run_scheme(&mut rec).unwrap();
        assert_eq!(
            rec.events,
            vec![
                SchemeEvent::Compute {
                    proc: 0,
                    percent: 50.0
                },
                SchemeEvent::Compute {
                    proc: 1,
                    percent: 100.0
                }
            ]
        );
    }

    #[test]
    fn predict_time_via_trait_default() {
        let m = ModelBuilder::new("t")
            .processors(2)
            .volumes(vec![30.0, 60.0])
            .build()
            .unwrap();
        let t = m.predict_time(&CostModel::homogeneous(2, 30.0, 0.0, 1e9)).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn random_model_is_deterministic_and_evaluable() {
        for seed in 0..40u64 {
            let a = ModelBuilder::random(seed, 8);
            let b = ModelBuilder::random(seed, 8);
            assert_eq!(a.num_processors(), b.num_processors());
            assert_eq!(a.volumes(), b.volumes());
            assert_eq!(a.comm_bytes(), b.comm_bytes());
            assert!((1..=8).contains(&a.num_processors()));
            assert!(a.parent() < a.num_processors());
            let cost = CostModel::homogeneous(a.num_processors(), 50.0, 1e-4, 1e8);
            let (ta, tb) = (a.predict_time(&cost).unwrap(), b.predict_time(&cost).unwrap());
            assert!(ta.is_finite() && ta >= 0.0, "seed {seed} predicted {ta}");
            assert_eq!(ta, tb, "seed {seed} prediction not reproducible");
        }
    }

    #[test]
    fn grid_extents() {
        let m = ModelBuilder::new("g").grid(&[2, 3]).build().unwrap();
        assert_eq!(m.num_processors(), 6);
        assert_eq!(m.extents(), &[2, 3]);
    }
}
