//! Scheme compilation: lowering a model's event stream to a flat cost
//! program.
//!
//! Every objective evaluation of the group-selection search used to re-walk
//! the scheme AST through [`crate::scheme::run_scheme`]. But the event
//! stream a model emits is *assignment-independent*: the scheme sees only
//! the model's own parameters (volumes, communication volumes, coordinate
//! space), never the speeds or link costs of the mapping being priced. So
//! the stream can be recorded **once** per model and re-priced per mapping:
//!
//! * [`CostProgram::record`] replays the scheme into a recording sink that
//!   prescales each activity by the model's volumes (`units = vol·pct/100`,
//!   `bytes = comm·pct/100`) and drops the transfers [`TimelineSink`] would
//!   ignore (`src == dst` or non-positive bytes), producing a flat op list;
//! * [`CostProgram::price`] replays the op list against a [`PairCost`]
//!   (per-processor speeds, pairwise latency/bandwidth) with exactly the
//!   [`TimelineSink`] clock arithmetic — the same floating-point operations
//!   in the same order, so the result is bit-identical to interpreting the
//!   scheme into a `TimelineSink`;
//! * [`CostProgram::price_baseline`] + [`CostProgram::price_delta`] support
//!   incremental re-pricing: the program is split into top-level *segments*
//!   (a single activity, or one complete top-level `par` block), each with
//!   the set of processors it touches. A baseline evaluation checkpoints
//!   the clock vector at every segment boundary; re-pricing a mapping that
//!   differs on a few processors then re-executes only the segments whose
//!   touched set intersects the (growing) dirty set, reading every clean
//!   processor's clock from the checkpoint. Because an activity reads and
//!   writes only its own processors' clocks, and `par` merges are
//!   elementwise, the skipped work is bit-identical to the checkpointed
//!   values — delta pricing returns exactly what a full [`CostProgram::price`]
//!   would.
//!
//! [`CostProgram::compute_units`] additionally exposes the per-processor
//! computation totals `U_p` (obtained by replaying computes at unit speed
//! with transfers as no-ops). Since every op only advances clocks (given
//! non-negative latencies), `max_p U_p / speed_p` is an admissible lower
//! bound on the makespan — the bound behind the branch-and-bound
//! exhaustive search in `hmpi`.
//!
//! [`TimelineSink`]: crate::scheme::TimelineSink

use crate::error::EvalError;
use crate::model::PerformanceModel;
use crate::scheme::{CostModel, SchemeSink};

/// Per-assignment costs a [`CostProgram`] is priced against: estimated
/// speed of each abstract processor's host plus pairwise link costs.
///
/// Implemented by [`CostModel`] and by the selection engine's table-backed
/// evaluator in `hmpi` (which resolves pairs through a precomputed
/// node-pair matrix instead of materialising p×p matrices per assignment).
pub trait PairCost {
    /// Estimated speed of abstract processor `proc`'s host (benchmark
    /// units per second).
    fn speed(&self, proc: usize) -> f64;
    /// One-way latency between the hosts of `src` and `dst`, seconds.
    fn latency(&self, src: usize, dst: usize) -> f64;
    /// Bandwidth between the hosts of `src` and `dst`, bytes/second.
    fn bandwidth(&self, src: usize, dst: usize) -> f64;
    /// The physical host of abstract processor `proc`, as an opaque index:
    /// processors reporting the same host share per-node contention
    /// resources (NIC, memory bus) in [`crate::collective::price`]. The
    /// default places every processor on its own host, which is correct
    /// for the one-process-per-processor configurations the planner
    /// prices; executors with multi-rank nodes override it.
    fn node_of(&self, proc: usize) -> usize {
        proc
    }
}

impl PairCost for CostModel {
    fn speed(&self, proc: usize) -> f64 {
        self.speeds[proc]
    }
    fn latency(&self, src: usize, dst: usize) -> f64 {
        self.latency[src][dst]
    }
    fn bandwidth(&self, src: usize, dst: usize) -> f64 {
        self.bandwidth[src][dst]
    }
}

/// One op of the flat program. Activity costs are prescaled at record time
/// so pricing performs no percentage arithmetic.
#[derive(Debug, Clone, Copy)]
enum CostOp {
    Compute { proc: u32, units: f64 },
    Transfer { src: u32, dst: u32, bytes: f64 },
    ParBegin,
    ParBranch,
    ParEnd,
}

/// A top-level span of ops (one activity or one complete top-level `par`
/// block) plus the bitset of processors whose clocks it reads or writes.
#[derive(Debug, Clone)]
struct Segment {
    start: usize,
    end: usize,
    touched: Vec<u64>,
}

#[inline]
fn bit_set(bits: &mut [u64], p: usize) {
    bits[p / 64] |= 1u64 << (p % 64);
}

#[inline]
fn bit_get(bits: &[u64], p: usize) -> bool {
    bits[p / 64] & (1u64 << (p % 64)) != 0
}

fn bits_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// A model's scheme lowered to a flat, assignment-independent cost program.
#[derive(Debug, Clone)]
pub struct CostProgram {
    n: usize,
    ops: Vec<CostOp>,
    segments: Vec<Segment>,
    /// `U_p`: per-processor computation totals for the admissible bound;
    /// `None` when unusable (negative units or an unbalanced par structure).
    units: Option<Vec<f64>>,
}

/// Recording sink: prescales activities and drops the transfers
/// [`crate::scheme::TimelineSink`] would skip.
struct Recorder<'a> {
    volumes: &'a [f64],
    comm: &'a [Vec<f64>],
    ops: Vec<CostOp>,
    depth: usize,
    balanced: bool,
}

impl SchemeSink for Recorder<'_> {
    fn compute(&mut self, proc: usize, percent: f64) {
        let units = self.volumes[proc] * percent / 100.0;
        self.ops.push(CostOp::Compute {
            proc: proc as u32,
            units,
        });
    }

    fn transfer(&mut self, src: usize, dst: usize, percent: f64) {
        if src == dst {
            return;
        }
        let bytes = self.comm[src][dst] * percent / 100.0;
        if bytes <= 0.0 {
            return;
        }
        self.ops.push(CostOp::Transfer {
            src: src as u32,
            dst: dst as u32,
            bytes,
        });
    }

    fn par_begin(&mut self) {
        self.depth += 1;
        self.ops.push(CostOp::ParBegin);
    }

    fn par_branch(&mut self) {
        if self.depth == 0 {
            self.balanced = false;
        }
        self.ops.push(CostOp::ParBranch);
    }

    fn par_end(&mut self) {
        if self.depth == 0 {
            self.balanced = false;
        } else {
            self.depth -= 1;
        }
        self.ops.push(CostOp::ParEnd);
    }
}

/// Reusable pricing scratch: the clock vector, a pool of `par` frames and
/// the dirty bitset for delta pricing. After the first evaluation at a
/// given size, pricing allocates nothing.
#[derive(Debug, Clone)]
pub struct PriceScratch {
    clocks: Vec<f64>,
    snaps: Vec<Vec<f64>>,
    merges: Vec<Vec<f64>>,
    dirty: Vec<u64>,
}

impl PriceScratch {
    /// Scratch for programs over `n` abstract processors.
    pub fn new(n: usize) -> Self {
        PriceScratch {
            clocks: vec![0.0; n],
            snaps: Vec::new(),
            merges: Vec::new(),
            dirty: vec![0; n.div_ceil(64).max(1)],
        }
    }
}

/// Segment-boundary clock checkpoints from a baseline evaluation, consumed
/// by [`CostProgram::price_delta`].
#[derive(Debug, Clone, Default)]
pub struct DeltaBaseline {
    /// `(segments + 1) × n` clock checkpoints, row-major; row `s` holds the
    /// clocks *before* segment `s`, the final row the finished clocks.
    boundaries: Vec<f64>,
    time: f64,
}

impl DeltaBaseline {
    /// The baseline's full-evaluation makespan.
    pub fn time(&self) -> f64 {
        self.time
    }
}

impl CostProgram {
    /// Records `model`'s event stream once, prescaled by its volumes.
    ///
    /// # Errors
    /// Propagates scheme evaluation errors from
    /// [`PerformanceModel::run_scheme`]; a program cannot be recorded for a
    /// model whose scheme does not evaluate.
    pub fn record(model: &dyn PerformanceModel) -> Result<CostProgram, EvalError> {
        let n = model.num_processors();
        let mut rec = Recorder {
            volumes: model.volumes(),
            comm: model.comm_bytes(),
            ops: Vec::new(),
            depth: 0,
            balanced: true,
        };
        model.run_scheme(&mut rec)?;
        let balanced = rec.balanced && rec.depth == 0;
        let ops = rec.ops;
        let blocks = n.div_ceil(64).max(1);
        let segments = if balanced {
            segment_ops(&ops, blocks)
        } else {
            // Degenerate structure: a single segment touching everyone, so
            // delta pricing falls back to full re-execution (and replays
            // whatever panic TimelineSink itself would produce).
            vec![Segment {
                start: 0,
                end: ops.len(),
                touched: vec![u64::MAX; blocks],
            }]
        };
        let units = if balanced { unit_totals(&ops, n) } else { None };
        Ok(CostProgram {
            n,
            ops,
            segments,
            units,
        })
    }

    /// Number of abstract processors the program spans.
    pub fn num_processors(&self) -> usize {
        self.n
    }

    /// Number of flat ops (for diagnostics and benchmarks).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of top-level segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Per-processor computation totals `U_p` at unit speed, if usable as
    /// an admissible bound (all units non-negative, balanced par
    /// structure). `max_p U_p / speed_p` never exceeds the true makespan
    /// for any cost with non-negative latencies and positive bandwidths.
    pub fn compute_units(&self) -> Option<&[f64]> {
        self.units.as_deref()
    }

    /// Full evaluation: the makespan of the program under `cost`.
    /// Bit-identical to interpreting the scheme into a
    /// [`crate::scheme::TimelineSink`] built from the same costs.
    pub fn price<C: PairCost + ?Sized>(&self, cost: &C, scratch: &mut PriceScratch) -> f64 {
        assert_eq!(scratch.clocks.len(), self.n, "scratch sized for this program");
        let PriceScratch {
            clocks,
            snaps,
            merges,
            ..
        } = scratch;
        clocks.fill(0.0);
        run_ops(&self.ops, cost, clocks, snaps, merges);
        clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Full evaluation that also checkpoints the clock vector at every
    /// segment boundary into `base`, enabling [`CostProgram::price_delta`].
    pub fn price_baseline<C: PairCost + ?Sized>(
        &self,
        cost: &C,
        scratch: &mut PriceScratch,
        base: &mut DeltaBaseline,
    ) -> f64 {
        assert_eq!(scratch.clocks.len(), self.n, "scratch sized for this program");
        let n = self.n;
        base.boundaries.resize((self.segments.len() + 1) * n, 0.0);
        let PriceScratch {
            clocks,
            snaps,
            merges,
            ..
        } = scratch;
        clocks.fill(0.0);
        for (s, seg) in self.segments.iter().enumerate() {
            base.boundaries[s * n..(s + 1) * n].copy_from_slice(clocks);
            run_ops(&self.ops[seg.start..seg.end], cost, clocks, snaps, merges);
        }
        let last = self.segments.len();
        base.boundaries[last * n..(last + 1) * n].copy_from_slice(clocks);
        base.time = clocks.iter().copied().fold(0.0, f64::max);
        base.time
    }

    /// Incremental evaluation of a cost differing from the baseline's only
    /// on the processors in `changed`: re-executes only the segments whose
    /// touched set intersects the dirty set (which grows as re-executed
    /// segments couple further processors in), reading clean processors'
    /// clocks from the baseline checkpoints. Returns exactly the value a
    /// full [`CostProgram::price`] of the changed cost would.
    pub fn price_delta<C: PairCost + ?Sized>(
        &self,
        cost: &C,
        base: &DeltaBaseline,
        changed: &[usize],
        scratch: &mut PriceScratch,
    ) -> f64 {
        let n = self.n;
        assert_eq!(
            base.boundaries.len(),
            (self.segments.len() + 1) * n,
            "baseline built by price_baseline on this program"
        );
        let PriceScratch {
            clocks,
            snaps,
            merges,
            dirty,
        } = scratch;
        dirty.fill(0);
        for &p in changed {
            bit_set(dirty, p);
        }
        let mut ran_any = false;
        for (s, seg) in self.segments.iter().enumerate() {
            if !bits_intersect(&seg.touched, dirty) {
                continue;
            }
            let boundary = &base.boundaries[s * n..(s + 1) * n];
            if ran_any {
                // Refresh clean processors; dirty clocks carry over.
                for (p, b) in boundary.iter().enumerate() {
                    if !bit_get(dirty, p) {
                        clocks[p] = *b;
                    }
                }
            } else {
                // Before the first affected segment the changed run is
                // indistinguishable from the baseline.
                clocks.copy_from_slice(boundary);
                ran_any = true;
            }
            run_ops(&self.ops[seg.start..seg.end], cost, clocks, snaps, merges);
            for (d, t) in dirty.iter_mut().zip(&seg.touched) {
                *d |= *t;
            }
        }
        if !ran_any {
            return base.time;
        }
        let last = &base.boundaries[self.segments.len() * n..];
        let mut t = 0.0f64;
        for (p, b) in last.iter().enumerate() {
            let c = if bit_get(dirty, p) { clocks[p] } else { *b };
            t = t.max(c);
        }
        t
    }
}

/// The core replay loop — exactly [`crate::scheme::TimelineSink`]'s clock
/// arithmetic over prescaled ops, with the frame pool reused across calls.
fn run_ops<C: PairCost + ?Sized>(
    ops: &[CostOp],
    cost: &C,
    clocks: &mut [f64],
    snaps: &mut Vec<Vec<f64>>,
    merges: &mut Vec<Vec<f64>>,
) {
    let mut depth = 0usize;
    for op in ops {
        match *op {
            CostOp::Compute { proc, units } => {
                let p = proc as usize;
                clocks[p] += units / cost.speed(p);
            }
            CostOp::Transfer { src, dst, bytes } => {
                let (s, d) = (src as usize, dst as usize);
                let lat = cost.latency(s, d);
                let total = lat + bytes / cost.bandwidth(s, d);
                let start = clocks[s];
                clocks[s] = start + lat;
                clocks[d] = clocks[d].max(start + total);
            }
            CostOp::ParBegin => {
                if depth == snaps.len() {
                    snaps.push(clocks.to_vec());
                    merges.push(clocks.to_vec());
                } else {
                    snaps[depth].copy_from_slice(clocks);
                    merges[depth].copy_from_slice(clocks);
                }
                depth += 1;
            }
            CostOp::ParBranch => {
                assert!(depth > 0, "par_branch inside par_begin");
                let frame = depth - 1;
                for (m, c) in merges[frame].iter_mut().zip(clocks.iter()) {
                    *m = m.max(*c);
                }
                clocks.copy_from_slice(&snaps[frame]);
            }
            CostOp::ParEnd => {
                assert!(depth > 0, "par_end matches par_begin");
                depth -= 1;
                clocks.copy_from_slice(&merges[depth]);
            }
        }
    }
}

/// Splits a balanced op list into top-level segments with touched bitsets.
fn segment_ops(ops: &[CostOp], blocks: usize) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        let start = i;
        let mut touched = vec![0u64; blocks];
        let mut depth = 0usize;
        loop {
            match ops[i] {
                CostOp::Compute { proc, .. } => bit_set(&mut touched, proc as usize),
                CostOp::Transfer { src, dst, .. } => {
                    bit_set(&mut touched, src as usize);
                    bit_set(&mut touched, dst as usize);
                }
                CostOp::ParBegin => depth += 1,
                CostOp::ParEnd => depth -= 1,
                CostOp::ParBranch => {}
            }
            i += 1;
            if depth == 0 {
                break;
            }
        }
        segments.push(Segment {
            start,
            end: i,
            touched,
        });
    }
    segments
}

/// `U_p`: computes replayed at unit speed through the par structure,
/// transfers as no-ops. `None` if any unit count is negative (the
/// monotonicity argument behind the bound needs non-negative advances).
fn unit_totals(ops: &[CostOp], n: usize) -> Option<Vec<f64>> {
    let mut clocks = vec![0.0f64; n];
    let mut stack: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for op in ops {
        match *op {
            CostOp::Compute { proc, units } => {
                if units < 0.0 {
                    return None;
                }
                clocks[proc as usize] += units;
            }
            CostOp::Transfer { .. } => {}
            CostOp::ParBegin => stack.push((clocks.clone(), clocks.clone())),
            CostOp::ParBranch => {
                let (snap, merged) = stack.last_mut().expect("balanced");
                for (m, c) in merged.iter_mut().zip(&clocks) {
                    *m = m.max(*c);
                }
                clocks.clone_from(snap);
            }
            CostOp::ParEnd => {
                let (_, merged) = stack.pop().expect("balanced");
                clocks = merged;
            }
        }
    }
    Some(clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::model::{CompiledModel, ParamValue};

    fn em3d_instance() -> crate::model::ModelInstance {
        let src = r"
            algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
                coord I=p;
                node {I>=0: bench*(d[I]/k);};
                link (L=p) {
                    I>=0 && I!=L && (dep[I][L] > 0) :
                        length*(dep[I][L]*sizeof(double)) [L]->[I];
                };
                parent[0];
                scheme {
                    int current, owner, remote;
                    par (owner = 0; owner < p; owner++)
                        par (remote = 0; remote < p; remote++)
                            if ((owner != remote) && (dep[owner][remote] > 0))
                                100%%[remote]->[owner];
                    par (current = 0; current < p; current++) 100%%[current];
                };
            }
        ";
        CompiledModel::compile(src)
            .unwrap()
            .instantiate(&[
                ParamValue::Int(4),
                ParamValue::Int(10),
                ParamValue::Array(vec![100, 200, 300, 150]),
                ParamValue::Array(vec![0, 5, 0, 3, 5, 0, 7, 0, 0, 7, 0, 2, 3, 0, 2, 0]),
            ])
            .unwrap()
    }

    fn naive_time(model: &dyn PerformanceModel, cost: &CostModel) -> f64 {
        model.predict_time(cost).unwrap()
    }

    fn hetero_cost(n: usize, seed: u64) -> CostModel {
        // Deterministic pseudo-random but fully reproducible costs.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let speeds = (0..n).map(|_| 1.0 + 200.0 * next()).collect();
        let latency = (0..n)
            .map(|_| (0..n).map(|_| 1e-4 * next()).collect())
            .collect();
        let bandwidth = (0..n)
            .map(|_| (0..n).map(|_| 1e5 + 1e7 * next()).collect())
            .collect();
        CostModel {
            speeds,
            latency,
            bandwidth,
        }
    }

    #[test]
    fn price_is_bit_identical_to_timeline_sink() {
        let inst = em3d_instance();
        let prog = CostProgram::record(&inst).unwrap();
        let mut scratch = PriceScratch::new(4);
        for seed in 0..16 {
            let cost = hetero_cost(4, seed);
            let fast = prog.price(&cost, &mut scratch);
            assert_eq!(fast.to_bits(), naive_time(&inst, &cost).to_bits());
        }
    }

    #[test]
    fn delta_is_bit_identical_to_full_price() {
        let inst = em3d_instance();
        let prog = CostProgram::record(&inst).unwrap();
        assert!(prog.num_segments() >= 2);
        let mut scratch = PriceScratch::new(4);
        let mut base = DeltaBaseline::default();
        let cost = hetero_cost(4, 1);
        let t0 = prog.price_baseline(&cost, &mut scratch, &mut base);
        assert_eq!(t0.to_bits(), prog.price(&cost, &mut scratch).to_bits());

        for changed in [vec![0usize], vec![2], vec![1, 3], vec![0, 1, 2, 3]] {
            let mut mutated = cost.clone();
            for &p in &changed {
                mutated.speeds[p] *= 0.5;
                for q in 0..4 {
                    mutated.latency[p][q] += 1e-5;
                    mutated.latency[q][p] += 1e-5;
                    mutated.bandwidth[p][q] *= 2.0;
                    mutated.bandwidth[q][p] *= 2.0;
                }
            }
            let delta = prog.price_delta(&mutated, &base, &changed, &mut scratch);
            let full = prog.price(&mutated, &mut scratch);
            assert_eq!(delta.to_bits(), full.to_bits(), "changed = {changed:?}");
        }
    }

    #[test]
    fn delta_with_no_affected_segment_returns_baseline() {
        // A model where processor 3 never appears in the scheme: changing
        // it re-executes nothing.
        let model = ModelBuilder::new("sparse")
            .processors(4)
            .volumes(vec![10.0, 20.0, 30.0, 40.0])
            .scheme(|sink| {
                sink.compute(0, 100.0);
                sink.compute(1, 100.0);
                sink.compute(2, 100.0);
            })
            .build()
            .unwrap();
        let prog = CostProgram::record(&model).unwrap();
        let mut scratch = PriceScratch::new(4);
        let mut base = DeltaBaseline::default();
        let cost = hetero_cost(4, 3);
        let t0 = prog.price_baseline(&cost, &mut scratch, &mut base);
        let mut mutated = cost.clone();
        mutated.speeds[3] = 0.25;
        let t = prog.price_delta(&mutated, &base, &[3], &mut scratch);
        assert_eq!(t.to_bits(), t0.to_bits());
    }

    #[test]
    fn compute_units_bound_the_makespan() {
        let inst = em3d_instance();
        let prog = CostProgram::record(&inst).unwrap();
        let units = prog.compute_units().unwrap().to_vec();
        for seed in 0..8 {
            let cost = hetero_cost(4, seed);
            let t = naive_time(&inst, &cost);
            let lb = units
                .iter()
                .zip(&cost.speeds)
                .map(|(u, s)| u / s)
                .fold(0.0, f64::max);
            assert!(lb <= t + 1e-12, "lb {lb} vs makespan {t}");
        }
    }

    #[test]
    fn record_surfaces_scheme_errors() {
        struct Broken;
        impl PerformanceModel for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn num_processors(&self) -> usize {
                1
            }
            fn volumes(&self) -> &[f64] {
                &[1.0]
            }
            fn comm_bytes(&self) -> &[Vec<f64>] {
                &[]
            }
            fn parent(&self) -> usize {
                0
            }
            fn run_scheme(&self, _sink: &mut dyn SchemeSink) -> Result<(), EvalError> {
                Err(EvalError::Undefined("boom".into()))
            }
        }
        assert!(CostProgram::record(&Broken).is_err());
    }

    #[test]
    fn prescaling_drops_noop_transfers() {
        let model = ModelBuilder::new("noop")
            .processors(2)
            .volumes(vec![1.0, 1.0])
            .comm_fn(|s, d| if s == 0 && d == 1 { 100.0 } else { 0.0 })
            .scheme(|sink| {
                sink.transfer(0, 0, 100.0); // self transfer: dropped
                sink.transfer(1, 0, 100.0); // zero comm: dropped
                sink.transfer(0, 1, 100.0); // kept
                sink.compute(0, 100.0);
            })
            .build()
            .unwrap();
        let prog = CostProgram::record(&model).unwrap();
        assert_eq!(prog.num_ops(), 2);
        assert_eq!(prog.num_segments(), 2);
    }
}
